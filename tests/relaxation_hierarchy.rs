//! The correctness-criteria hierarchy of §3.4, checked empirically on
//! generated histories:
//!
//! ```text
//!            linearizable ⟹ IVL            (always)
//!   regular-subset ⟹ IVL                   (monotone objects only)
//!   IVL        ⇏ regular-subset            (intermediate values)
//!   IVL        ⇏ linearizable              (Example 9 / Figure 2)
//! ```

use ivl_core::prelude::*;
use ivl_spec::gen::{completed_queries, random_linearizable_history, GenConfig};
use ivl_spec::relaxations::check_regular_subset;
use ivl_spec::specs::BatchedCounterSpec;
use rand::Rng;

fn gen_history(seed: u64) -> History<u64, (), u64> {
    random_linearizable_history(
        &BatchedCounterSpec,
        &GenConfig {
            processes: 3,
            ops_per_process: 2,
            seed,
            ..GenConfig::default()
        },
        |r| r.gen_range(1..=5u64),
        |_| (),
    )
}

/// Linearizable ⟹ IVL and ⟹ regular, across many generated histories.
#[test]
fn linearizable_implies_everything() {
    for seed in 0..200 {
        let h = gen_history(seed);
        assert!(check_linearizable(&[BatchedCounterSpec], &h).is_linearizable());
        assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
        assert!(
            check_regular_subset(&BatchedCounterSpec, &h).is_regular(),
            "seed {seed}: a linearizable counter history is regular (its \
             linearization's concurrent prefix is the witnessing subset)"
        );
    }
}

/// The strictness witnesses: find (generate) histories separating each
/// pair of criteria, proving the hierarchy is strict on this object.
#[test]
fn hierarchy_is_strict() {
    // IVL but not linearizable and not regular: an intermediate value
    // of a single batched update.
    let mut b = HistoryBuilder::<u64, (), u64>::new();
    let seed = b.invoke_update(ProcessId(0), ObjectId(0), 7);
    b.respond_update(seed);
    let inc = b.invoke_update(ProcessId(0), ObjectId(0), 3);
    let q = b.invoke_query(ProcessId(1), ObjectId(0), ());
    b.respond_query(q, 8);
    b.respond_update(inc);
    let h = b.finish();
    assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
    assert!(!check_linearizable(&[BatchedCounterSpec], &h).is_linearizable());
    assert!(!check_regular_subset(&BatchedCounterSpec, &h).is_regular());

    // Regular and IVL but not linearizable: two same-process queries
    // disagreeing about one concurrent update (Example 9's shape on
    // the counter).
    let mut b = HistoryBuilder::<u64, (), u64>::new();
    let u = b.invoke_update(ProcessId(0), ObjectId(0), 5);
    let q1 = b.invoke_query(ProcessId(1), ObjectId(0), ());
    b.respond_query(q1, 5); // sees u
    let q2 = b.invoke_query(ProcessId(1), ObjectId(0), ());
    b.respond_query(q2, 0); // misses u
    b.respond_update(u);
    let h = b.finish();
    assert!(check_regular_subset(&BatchedCounterSpec, &h).is_regular());
    assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
    assert!(!check_linearizable(&[BatchedCounterSpec], &h).is_linearizable());
}

/// Fuzzed separation census: across random perturbations of generated
/// histories, count which criteria combinations occur and assert the
/// implications hold pointwise. (Monotone object: regular ⟹ IVL must
/// never be violated.)
#[test]
fn fuzzed_census_respects_implications() {
    use ivl_spec::gen::with_query_return;
    let mut seen_ivl_not_lin = false;
    for seed in 0..400u64 {
        let h = gen_history(seed);
        let queries = completed_queries(&h);
        let h = if let Some(&q) = queries.first() {
            let cur = h
                .operations()
                .iter()
                .find(|o| o.id == q)
                .unwrap()
                .return_value
                .unwrap();
            let delta = (seed % 7) as i64 - 3;
            with_query_return(&h, q, cur.saturating_add_signed(delta))
        } else {
            h
        };
        let lin = check_linearizable(&[BatchedCounterSpec], &h).is_linearizable();
        let ivl = check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl();
        let reg = check_regular_subset(&BatchedCounterSpec, &h).is_regular();
        if lin {
            assert!(ivl, "seed {seed}: linearizable but not IVL");
        }
        if reg {
            assert!(ivl, "seed {seed}: regular but not IVL on a monotone object");
        }
        if ivl && !lin {
            seen_ivl_not_lin = true;
        }
    }
    assert!(
        seen_ivl_not_lin,
        "the fuzz should exhibit IVL-but-not-linearizable histories"
    );
}
