//! E10: the §3.4 non-monotone counterexample at integration scope.
//!
//! For monotone objects, regular-like semantics (a query sees all
//! completed updates plus a subset of concurrent ones) imply IVL; for
//! objects supporting increments *and* decrements they do not. The
//! per-slot inc/dec counter realizes the failure; the linearizable
//! inc/dec counter and the monotone analogue both stay legal.

use ivl_concurrent::{LinearizableIncDec, RegularIncDec};
use ivl_core::prelude::*;
use ivl_spec::ivl::check_ivl_exact;
use ivl_spec::specs::{BatchedCounterSpec, IncDecCounterSpec};
use ivl_spec::IvlVerdict;

/// The choreographed §3.4 interleaving on the real per-slot object:
/// the query reads slot 0 before its increment and slot 1 after its
/// decrement, returning −1 — rejected by the exact checker.
#[test]
fn regular_semantics_fail_ivl_for_inc_dec() {
    let c = RegularIncDec::new(2);
    let mut b = HistoryBuilder::<i64, (), i64>::new();
    let x = ObjectId(0);

    let q = b.invoke_query(ProcessId(2), x, ());
    let part0 = c.slot_value(0);

    let inc = b.invoke_update(ProcessId(0), x, 1);
    c.add(0, 1);
    b.respond_update(inc);

    let dec = b.invoke_update(ProcessId(1), x, -1);
    c.add(1, -1);
    b.respond_update(dec);

    let part1 = c.slot_value(1);
    b.respond_query(q, part0 + part1);
    let h = b.finish();

    assert_eq!(part0 + part1, -1);
    assert_eq!(
        check_ivl_exact(&[IncDecCounterSpec], &h),
        IvlVerdict::NoLowerLinearization
    );
}

/// The *same* interleaving on the monotone batched counter is IVL —
/// monotonicity is exactly what the §3.4 argument needs.
#[test]
fn same_interleaving_is_ivl_for_monotone_counter() {
    let c = IvlBatchedCounter::new(2);
    let mut b = HistoryBuilder::<u64, (), u64>::new();
    let x = ObjectId(0);

    let q = b.invoke_query(ProcessId(2), x, ());
    let part0 = c.slot_value(0);

    let u1 = b.invoke_update(ProcessId(0), x, 1);
    c.update_slot(0, 1);
    b.respond_update(u1);

    let u2 = b.invoke_update(ProcessId(1), x, 2);
    c.update_slot(1, 2);
    b.respond_update(u2);

    let part1 = c.slot_value(1);
    b.respond_query(q, part0 + part1);
    let h = b.finish();

    // The read returns 2 (missed the first update, saw the second) —
    // an intermediate value, legal under IVL for a monotone object.
    assert_eq!(part0 + part1, 2);
    assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
    assert!(check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl());
}

/// The linearizable inc/dec counter cannot produce the §3.4 value:
/// under any interleaving of inc(+1);dec(−1) its reads are in {0, 1}.
#[test]
fn linearizable_inc_dec_is_safe() {
    let c = LinearizableIncDec::new();
    crossbeam::scope(|s| {
        let c = &c;
        let w = s.spawn(move |_| {
            for _ in 0..50_000 {
                c.add(1);
                c.add(-1);
            }
        });
        s.spawn(move |_| {
            for _ in 0..50_000 {
                let v = c.read();
                assert!(v == 0 || v == 1, "linearizable read saw {v}");
            }
        });
        w.join().unwrap();
    })
    .unwrap();
}

/// Statistical hunt on real threads: the per-slot inc/dec counter's
/// concurrent reads *can* stray outside [min, max] of the running
/// total — evidence that the §3.4 failure occurs in the wild, not
/// only under choreography. (The monotone counter never does; see
/// `all_counters_satisfy_ivl_envelope` in counter_histories.)
#[test]
fn regular_inc_dec_strays_outside_envelope_in_the_wild() {
    // Writer pattern: slot 0 gets +1, then slot 1 gets -1, repeatedly;
    // the running total is always 0 or 1. A scan that catches slot 1's
    // decrement but misses slot 0's increment returns -1.
    let mut saw_illegal = false;
    'outer: for _round in 0..50 {
        let c = RegularIncDec::new(2);
        let illegal = crossbeam::scope(|s| {
            let c = &c;
            let writer = s.spawn(move |_| {
                for _ in 0..200_000 {
                    c.add(0, 1);
                    c.add(1, -1);
                }
            });
            let reader = s.spawn(move |_| {
                for _ in 0..200_000 {
                    let v = c.read();
                    if !(0..=1).contains(&v) {
                        return true;
                    }
                }
                false
            });
            writer.join().unwrap();
            reader.join().unwrap()
        })
        .unwrap();
        if illegal {
            saw_illegal = true;
            break 'outer;
        }
    }
    // The race window is two adjacent stores; on most hardware this
    // fires quickly. If it never fires, the run is inconclusive, not
    // wrong — so only report, don't fail, when absent.
    if !saw_illegal {
        eprintln!(
            "note: no out-of-envelope read observed; race window did not open on this machine"
        );
    }
}
