//! Cross-crate integration: locality over mixed objects, simulator vs
//! real-thread consistency, and the full record-then-check pipeline.

use ivl_core::prelude::*;
use ivl_spec::history::Event;
use ivl_spec::ivl::check_ivl_by_locality;
use ivl_spec::specs::BatchedCounterSpec;

/// Records a real-thread IVL counter run and a PCM run, merges them
/// into one multi-object history, and checks IVL both directly and
/// via locality (Theorem 1).
#[test]
fn locality_across_real_objects() {
    // Object 0: batched counter (small run so the exact checker
    // terminates fast).
    let counter = RecordedCounter::new(IvlBatchedCounter::new(3));
    crossbeam::scope(|s| {
        for slot in 0..2 {
            let counter = &counter;
            s.spawn(move |_| {
                for _ in 0..3 {
                    counter.update(slot, 2);
                }
            });
        }
        let counter = &counter;
        s.spawn(move |_| {
            for _ in 0..3 {
                counter.read_from(2);
            }
        });
    })
    .unwrap();
    let h_counter = counter.finish();

    // Object 1: a second, independent counter run.
    let counter2 = RecordedCounter::new(IvlBatchedCounter::new(3));
    crossbeam::scope(|s| {
        for slot in 0..2 {
            let counter2 = &counter2;
            s.spawn(move |_| {
                for _ in 0..3 {
                    counter2.update(slot, 5);
                }
            });
        }
        let counter2 = &counter2;
        s.spawn(move |_| {
            for _ in 0..2 {
                counter2.read_from(2);
            }
        });
    })
    .unwrap();
    let h2_raw = counter2.finish();

    // Retag object id and process ids of the second run.
    let events: Vec<_> = h2_raw
        .events()
        .iter()
        .map(|ev| Event {
            op: ev.op,
            process: ProcessId(ev.process.0 + 100),
            object: ObjectId(1),
            kind: ev.kind.clone(),
        })
        .collect();
    let h_counter2 = History::from_events(events).unwrap();

    let composite = h_counter.interleave(&h_counter2);
    let specs = [BatchedCounterSpec, BatchedCounterSpec];
    assert!(check_ivl_exact(&specs, &composite).is_ivl());
    assert!(check_ivl_by_locality(&specs, &composite).is_ivl());
}

/// The README / paper §1 walk-through end to end: record the 7→10
/// scenario from a real counter and check all three verdicts.
#[test]
fn intro_example_on_real_counter() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Barrier;

    // One updater bumps the counter by 3 (from 7 to 10) while a
    // reader reads; barriers carve out a true overlap.
    let counter = IvlBatchedCounter::new(2);
    let recorder = Recorder::<u64, (), u64>::new();
    let seed = recorder.invoke_update(ProcessId(0), ObjectId(0), 7);
    counter.update_slot(0, 7);
    recorder.respond_update(seed);
    let start = Barrier::new(2);
    let updater_done = AtomicBool::new(false);
    crossbeam::scope(|s| {
        let counter = &counter;
        let recorder = &recorder;
        let start = &start;
        let updater_done = &updater_done;
        s.spawn(move |_| {
            let id = recorder.invoke_update(ProcessId(0), ObjectId(0), 3);
            start.wait();
            counter.update_slot(0, 3);
            recorder.respond_update(id);
            updater_done.store(true, Ordering::Release);
        });
        s.spawn(move |_| {
            let id = recorder.invoke_query(ProcessId(1), ObjectId(0), ());
            start.wait();
            let v = counter.read();
            recorder.respond_query(id, v);
        });
    })
    .unwrap();
    let h = recorder.finish();
    let read_value = h
        .operations()
        .iter()
        .find(|o| o.op.is_query())
        .unwrap()
        .return_value
        .unwrap();
    assert!((7..=10).contains(&read_value));
    assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
    assert!(check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl());
}

/// Simulator and real threads agree on quiescent counter semantics.
#[test]
fn simulator_and_threads_agree_on_totals() {
    use ivl_core::shmem::algorithms::IvlCounterSim;
    use ivl_core::shmem::{Executor, Memory, RoundRobinScheduler, Workload};

    let n = 4;
    let per = 10u64;
    // Simulator.
    let mut mem = Memory::new();
    let obj = IvlCounterSim::new(&mut mem, n);
    let mut workloads = vec![Workload::updates(per as usize, 3); n];
    workloads[0].ops.push(ivl_core::shmem::SimOp::Query(0));
    let mut exec = Executor::new(mem, Box::new(obj), workloads, RoundRobinScheduler::new());
    let result = exec.run();
    let sim_total = result
        .history
        .operations()
        .iter()
        .filter_map(|o| o.return_value)
        .next_back()
        .unwrap();

    // Real threads.
    let c = IvlBatchedCounter::new(n);
    crossbeam::scope(|s| {
        for slot in 0..n {
            let c = &c;
            s.spawn(move |_| {
                for _ in 0..per {
                    c.update_slot(slot, 3);
                }
            });
        }
    })
    .unwrap();
    assert_eq!(sim_total, c.read());
    assert_eq!(sim_total, 3 * per * n as u64);
}

/// The recorded-history pipeline also validates raw events.
#[test]
fn recorded_events_are_wellformed() {
    let counter = RecordedCounter::new(FetchAddCounter::new(4));
    crossbeam::scope(|s| {
        for slot in 0..4 {
            let counter = &counter;
            s.spawn(move |_| {
                for _ in 0..100 {
                    counter.update(slot, 1);
                }
            });
        }
    })
    .unwrap();
    let h = counter.finish();
    assert!(History::from_events(h.events().to_vec()).is_ok());
    assert_eq!(h.operations().len(), 400);
    // All updates completed.
    assert!(h.operations().iter().all(|o| o.is_complete()));
    // Erasing returns then projecting is consistent.
    assert_eq!(
        h.skeleton().project(ObjectId(0)).len(),
        h.project(ObjectId(0)).skeleton().len()
    );
}
