//! E4/E5: recorded real-thread counter histories — the IVL counter's
//! histories pass the IVL checker (Lemma 10); a Figure 2-style overlap
//! demonstrates an intermediate value; linearizable baselines pass the
//! exact linearizability checker.

use ivl_core::prelude::*;
use ivl_spec::specs::BatchedCounterSpec;
use std::sync::Barrier;

/// Lemma 10 at real-thread stress: large recorded histories checked
/// with the (linear-time) monotone interval checker.
#[test]
fn ivl_counter_histories_pass_ivl_at_scale() {
    for round in 0..3 {
        let c = RecordedCounter::new(IvlBatchedCounter::new(8));
        crossbeam::scope(|s| {
            for slot in 0..7 {
                let c = &c;
                s.spawn(move |_| {
                    for k in 0..2_000u64 {
                        c.update(slot, (k % 4) + 1);
                    }
                });
            }
            let c = &c;
            s.spawn(move |_| {
                for _ in 0..1_000 {
                    c.read_from(7);
                }
            });
        })
        .unwrap();
        let h = c.finish();
        assert!(h.operations().len() >= 15_000);
        assert!(
            check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl(),
            "round {round}: Lemma 10 violated in a recorded execution"
        );
    }
}

/// Figure 2: p1 updates 7, p2 updates 3, p3's read overlaps both and
/// returns an intermediate value in [0, 10]. Barriers force the
/// overlap; the checkers confirm the verdicts.
#[test]
fn figure2_overlapping_read() {
    let c = IvlBatchedCounter::new(3);
    let rec = Recorder::<u64, (), u64>::new();
    let start = Barrier::new(3);
    crossbeam::scope(|s| {
        let c = &c;
        let rec = &rec;
        let start = &start;
        s.spawn(move |_| {
            let id = rec.invoke_update(ProcessId(1), ObjectId(0), 7);
            start.wait();
            c.update_slot(0, 7);
            rec.respond_update(id);
        });
        s.spawn(move |_| {
            let id = rec.invoke_update(ProcessId(2), ObjectId(0), 3);
            start.wait();
            c.update_slot(1, 3);
            rec.respond_update(id);
        });
        s.spawn(move |_| {
            let id = rec.invoke_query(ProcessId(3), ObjectId(0), ());
            start.wait();
            let v = c.read();
            rec.respond_query(id, v);
        });
    })
    .unwrap();
    let h = rec.finish();
    let read = h
        .operations()
        .into_iter()
        .find(|o| o.op.is_query())
        .unwrap();
    let v = read.return_value.unwrap();
    assert!([0, 3, 7, 10].contains(&v), "sum of slot subsets");
    assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
    assert!(check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl());
}

/// Linearizable baselines: small recorded histories pass the exact
/// linearizability checker, across all three implementations.
#[test]
fn linearizable_baselines_pass_checker() {
    fn run<C: SharedBatchedCounter>(c: C) -> History<u64, (), u64> {
        let rec = RecordedCounter::new(c);
        crossbeam::scope(|s| {
            for slot in 0..2 {
                let rec = &rec;
                s.spawn(move |_| {
                    for _ in 0..5 {
                        rec.update(slot, slot as u64 + 1);
                    }
                });
            }
            let rec = &rec;
            s.spawn(move |_| {
                for _ in 0..5 {
                    rec.read_from(2);
                }
            });
        })
        .unwrap();
        rec.finish()
    }
    for (name, h) in [
        ("mutex", run(MutexBatchedCounter::new(3))),
        ("fetch_add", run(FetchAddCounter::new(3))),
        ("snapshot", run(SnapshotBatchedCounter::new(3))),
    ] {
        assert!(
            check_linearizable(&[BatchedCounterSpec], &h).is_linearizable(),
            "{name}: recorded history not linearizable"
        );
    }
}

/// The IVL envelope (Theorem 6 with ε = 0 for the exact counter):
/// every concurrent read is bounded by completed-at-start /
/// invoked-at-end — for all counter implementations, IVL and
/// linearizable alike (linearizable ⊂ IVL).
#[test]
fn all_counters_satisfy_ivl_envelope() {
    use ivl_core::theorem6::counter_envelope_run;
    let ivl = IvlBatchedCounter::new(4);
    let r = counter_envelope_run(&ivl, 20_000, 2, 4_000);
    assert_eq!(
        (r.lower_violations, r.upper_violations),
        (0, 0),
        "IVL counter"
    );

    let fa = FetchAddCounter::new(4);
    let r = counter_envelope_run(&fa, 20_000, 2, 4_000);
    assert_eq!(
        (r.lower_violations, r.upper_violations),
        (0, 0),
        "fetch_add"
    );

    let mx = MutexBatchedCounter::new(4);
    let r = counter_envelope_run(&mx, 20_000, 2, 4_000);
    assert_eq!((r.lower_violations, r.upper_violations), (0, 0), "mutex");

    let sn = SnapshotBatchedCounter::new(4);
    let r = counter_envelope_run(&sn, 2_000, 2, 500);
    assert_eq!((r.lower_violations, r.upper_violations), (0, 0), "snapshot");
}
