//! End-to-end check of the serving subsystem against the paper.
//!
//! An in-process `ivl-service` server is hammered over real TCP by
//! four ingest connections while a fifth queries live. Every check
//! runs twice — once against each serving backend (thread-per-
//! connection and epoll event loop) — asserting the exact same IVL
//! and envelope verdicts: the backend is an implementation choice,
//! not a semantic one, because both funnel every frame through the
//! same request executor over the same sharded sketch. Two properties
//! are asserted:
//!
//! 1. **Envelopes cover ground truth** (Theorem 6 instantiated at the
//!    service boundary). For every live query the test brackets the
//!    key's true frequency from the client side: `lo` = weight acked
//!    before the query was sent (≤ `f_start`), `hi` = weight invoked
//!    by the time the answer arrived (≥ `f_end`). CountMin never
//!    underestimates, so `estimate ≥ lo` must hold *deterministically*;
//!    `estimate ≤ hi + ε` holds per query with probability `1 − δ`,
//!    so upper-side misses are counted against a δ budget.
//! 2. **The recorded history is IVL**: the server's full operation
//!    history (every `(key, weight)` update and every answered query)
//!    replays clean through the monotone interval checker, and a
//!    small second run through the exact (exponential) checker.

use ivl_core::prelude::*;
use ivl_core::service::server::{serve, Backend, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};

const KEYS: usize = 64;
const WORKERS: usize = 4;
const UPDATES_PER_WORKER: usize = 500;
const LIVE_QUERIES: usize = 300;

fn key_weight(worker: usize, i: usize) -> (u64, u64) {
    (((worker * 31 + i * 7) % KEYS) as u64, 1 + (i % 3) as u64)
}

fn concurrent_serving_run_is_ivl_and_envelopes_cover_truth(backend: Backend) {
    let cfg = ServerConfig {
        backend,
        shards: WORKERS,
        record: true,
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).expect("bind");
    let addr = handle.addr();

    // Client-side ground truth per key, in total weight.
    let invoked: Vec<AtomicU64> = (0..KEYS).map(|_| AtomicU64::new(0)).collect();
    let completed: Vec<AtomicU64> = (0..KEYS).map(|_| AtomicU64::new(0)).collect();
    let upper_misses = AtomicU64::new(0);
    let delta = handle.params().delta();

    crossbeam::scope(|s| {
        for w in 0..WORKERS {
            let (invoked, completed) = (&invoked, &completed);
            s.spawn(move |_| {
                let mut client = Client::connect(addr).expect("connect ingest");
                for i in 0..UPDATES_PER_WORKER {
                    let (key, weight) = key_weight(w, i);
                    invoked[key as usize].fetch_add(weight, Ordering::SeqCst);
                    client.update(key, weight).expect("update acked");
                    completed[key as usize].fetch_add(weight, Ordering::SeqCst);
                }
            });
        }
        let (invoked, completed, upper_misses) = (&invoked, &completed, &upper_misses);
        s.spawn(move |_| {
            let mut client = Client::connect(addr).expect("connect querier");
            for q in 0..LIVE_QUERIES {
                let key = (q % KEYS) as u64;
                let lo = completed[key as usize].load(Ordering::SeqCst);
                let env = client.query(key).expect("query answered");
                let hi = invoked[key as usize].load(Ordering::SeqCst);
                // Deterministic side: the estimate dominates every
                // update completed before the query began.
                assert!(
                    env.estimate >= lo,
                    "query {q} key {key}: estimate {} below completed weight {lo}",
                    env.estimate
                );
                // Probabilistic side: within epsilon of everything
                // invoked by the end, up to delta misses.
                if !env.covers(lo, hi) {
                    upper_misses.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
    })
    .unwrap();

    // Quiescent recheck: every key's envelope brackets its exact
    // final frequency.
    {
        let mut client = Client::connect(addr).expect("connect recheck");
        for key in 0..KEYS as u64 {
            let truth = completed[key as usize].load(Ordering::SeqCst);
            assert_eq!(truth, invoked[key as usize].load(Ordering::SeqCst));
            let env = client.query(key).expect("query answered");
            assert!(env.estimate >= truth, "quiescent underestimate of {key}");
            if !env.covers(truth, truth) {
                upper_misses.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    let total_queries = (LIVE_QUERIES + KEYS) as f64;
    let allowed = (3.0 * delta * total_queries).ceil().max(3.0) as u64;
    let misses = upper_misses.load(Ordering::SeqCst);
    assert!(
        misses <= allowed,
        "{misses} envelopes exceeded epsilon (delta {delta} allows ~{allowed} of {total_queries})"
    );

    // The server's own accounting matches the load it was given.
    let total_updates = (WORKERS * UPDATES_PER_WORKER) as u64;
    let total_weight: u64 = (0..WORKERS)
        .flat_map(|w| (0..UPDATES_PER_WORKER).map(move |i| key_weight(w, i).1))
        .sum();
    let stats = handle.stats();
    assert_eq!(stats.updates, total_updates);
    assert_eq!(stats.stream_len, total_weight);
    assert_eq!(stats.queries, (LIVE_QUERIES + KEYS) as u64);
    assert_eq!(stats.accepted, (WORKERS + 2) as u64);
    assert!(stats.update_p50_ns > 0 && stats.update_p50_ns <= stats.update_p99_ns);
    assert!(stats.query_p50_ns > 0 && stats.query_p50_ns <= stats.query_p99_ns);

    // The recorded history replays clean through the IVL checker.
    let joined = handle.join();
    let spec = joined.spec();
    let history = joined.history.expect("recording was on");
    let ops = history.operations();
    assert_eq!(
        ops.iter().filter(|o| o.op.is_update()).count() as u64,
        total_updates
    );
    assert!(
        check_ivl_monotone(&spec, &history).is_ivl(),
        "recorded serving history is not IVL"
    );
}

fn small_serving_run_passes_the_exact_checker(backend: Backend) {
    let cfg = ServerConfig {
        backend,
        shards: 2,
        record: true,
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).expect("bind");
    let addr = handle.addr();
    crossbeam::scope(|s| {
        for t in 0..2u64 {
            s.spawn(move |_| {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..6u64 {
                    client.update(i % 3, t + 1).expect("update acked");
                }
                client.query(t % 3).expect("query answered");
                client.query((t + 1) % 3).expect("query answered");
            });
        }
    })
    .unwrap();
    let joined = handle.join();
    let spec = joined.spec();
    let history = joined.history.expect("recording was on");
    let ops = history.operations().len();
    assert!(
        ops <= ivl_core::spec::linearize::MAX_EXACT_OPS,
        "history too large for the exact checker: {ops} ops"
    );
    assert!(
        check_ivl_exact(std::slice::from_ref(&spec), &history).is_ivl(),
        "small serving history fails the exact IVL check"
    );
}

/// What one multi-object run produced, for cross-backend comparison:
/// the per-object verdict table plus each object's quiescent envelope.
#[derive(Debug, PartialEq)]
struct MultiObjectOutcome {
    verdicts: Vec<(u32, String, String, usize, Option<bool>)>,
    envelopes: Vec<(String, ivl_core::service::envelope::ErrorEnvelope)>,
}

/// Serves a CountMin, an HLL, a Morris counter, and a min register
/// through the registry on the given backend: one ingest connection
/// per object (updates within an object stay sequential, so the
/// drained state is a deterministic function of the update multiset
/// and the server seed), live cross-object concurrency on the wire,
/// and a per-object IVL verdict on drain — Theorem 1's locality,
/// operationally.
fn multi_object_run(backend: Backend) -> MultiObjectOutcome {
    use ivl_core::service::objects::{ObjectConfig, ObjectKind};

    const NAMES: [(&str, ObjectKind); 4] = [
        ("cm", ObjectKind::CountMin),
        ("hits", ObjectKind::Hll),
        ("approx", ObjectKind::Morris),
        ("low", ObjectKind::MinRegister),
    ];
    let cfg = ServerConfig {
        backend,
        shards: 4,
        record: true,
        objects: NAMES
            .iter()
            .map(|&(name, kind)| ObjectConfig::new(name, kind))
            .collect(),
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).expect("bind");
    let addr = handle.addr();
    crossbeam::scope(|s| {
        for (w, &(name, _)) in NAMES.iter().enumerate() {
            s.spawn(move |_| {
                let mut client = Client::connect(addr).expect("connect");
                let mut handle = client.object(name).expect("resolve object");
                for i in 0..120u64 {
                    let key = (w as u64 * 17 + i * 13) % 97 + 1;
                    handle.update(key, 1 + i % 3).expect("update acked");
                    if i % 10 == 9 {
                        let env = handle.query(key).expect("query answered");
                        assert!(env.observed() > 0, "{name}: no weight acknowledged");
                    }
                }
            });
        }
    })
    .unwrap();

    // Quiescent envelopes, one per object, before drain.
    let mut client = Client::connect(addr).expect("connect recheck");
    let infos = client.objects().expect("objects listed");
    assert_eq!(infos.len(), NAMES.len());
    let mut envelopes = Vec::new();
    for info in &infos {
        let env = client.object_id(info.id).query(18).expect("query answered");
        assert_eq!(env.observed(), 240, "{}: acknowledged weight", info.name);
        envelopes.push((info.name.clone(), env));
    }
    // Addressing past the roster answers a typed UNKNOWN_OBJECT error
    // and leaves the connection serviceable.
    match client.object_id(99).query(1) {
        Err(ivl_core::service::client::ClientError::Server { code, .. }) => {
            assert_eq!(code, ivl_core::service::protocol::ErrorCode::UnknownObject);
        }
        other => panic!("expected unknown-object error, got {other:?}"),
    }
    let stats = client.stats().expect("stats answered");
    assert_eq!(stats.objects.len(), NAMES.len());
    for row in &stats.objects {
        assert_eq!(row.updates, 120, "object {} update count", row.id);
        assert_eq!(row.observed, 240, "object {} observed weight", row.id);
    }
    drop(client);

    handle.shutdown();
    let joined = handle.join();
    let verdicts = joined.verdicts().expect("recording was on");
    assert_eq!(verdicts.len(), NAMES.len());
    for v in &verdicts {
        assert_ne!(
            v.ivl,
            Some(false),
            "object {} ({}) projection is not IVL on {backend}",
            v.id,
            v.name
        );
        assert!(v.ops > 0, "object {} projection is empty", v.id);
    }
    MultiObjectOutcome {
        verdicts: verdicts
            .into_iter()
            .map(|v| (v.id, v.name, v.kind.to_string(), v.ops, v.ivl))
            .collect(),
        envelopes,
    }
}

#[test]
fn multi_object_verdicts_are_identical_across_backends() {
    let threaded = multi_object_run(Backend::Threaded);
    let event_loop = multi_object_run(Backend::EventLoop);
    assert_eq!(
        threaded, event_loop,
        "per-object verdicts and quiescent envelopes must not depend on the backend"
    );
}

#[test]
fn threaded_serving_run_is_ivl_and_envelopes_cover_truth() {
    concurrent_serving_run_is_ivl_and_envelopes_cover_truth(Backend::Threaded);
}

#[test]
fn event_loop_serving_run_is_ivl_and_envelopes_cover_truth() {
    concurrent_serving_run_is_ivl_and_envelopes_cover_truth(Backend::EventLoop);
}

#[test]
fn threaded_small_run_passes_the_exact_checker() {
    small_serving_run_passes_the_exact_checker(Backend::Threaded);
}

#[test]
fn event_loop_small_run_passes_the_exact_checker() {
    small_serving_run_passes_the_exact_checker(Backend::EventLoop);
}
