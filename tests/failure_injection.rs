//! Crash-stop failure injection: threads that die mid-operation leave
//! *pending* operations in the recorded history, and IVL's completion
//! semantics (pending updates may be linearized or dropped) must
//! absorb every variant.

use ivl_core::prelude::*;
use ivl_spec::specs::BatchedCounterSpec;
use std::panic::AssertUnwindSafe;

/// A thread crashes after applying its update but before the response
/// is recorded: the update is pending in the history yet *visible* to
/// readers — legal, because a pending update may be completed in the
/// linearization.
#[test]
fn crash_after_apply_leaves_visible_pending_update() {
    let counter = IvlBatchedCounter::new(2);
    let rec = Recorder::<u64, (), u64>::new();

    // "Crashing" updater: invoke, apply, die (no respond).
    let id = rec.invoke_update(ProcessId(0), ObjectId(0), 5);
    counter.update_slot(0, 5);
    let _ = id; // the response is never recorded

    // A later read sees the orphaned value.
    let rid = rec.invoke_query(ProcessId(1), ObjectId(0), ());
    let v = counter.read();
    rec.respond_query(rid, v);

    let h = rec.finish();
    assert_eq!(v, 5);
    assert!(
        check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl(),
        "a visible pending update is IVL (completed in the linearization)"
    );
    assert!(
        check_linearizable(&[BatchedCounterSpec], &h).is_linearizable(),
        "and even linearizable (complete the pending update)"
    );
}

/// A thread crashes after invoking but *before* applying: the pending
/// update is invisible — equally legal (dropped from the
/// linearization).
#[test]
fn crash_before_apply_leaves_invisible_pending_update() {
    let counter = IvlBatchedCounter::new(2);
    let rec = Recorder::<u64, (), u64>::new();

    let _id = rec.invoke_update(ProcessId(0), ObjectId(0), 5);
    // dies before counter.update_slot

    let rid = rec.invoke_query(ProcessId(1), ObjectId(0), ());
    let v = counter.read();
    rec.respond_query(rid, v);

    let h = rec.finish();
    assert_eq!(v, 0);
    assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
    assert!(check_linearizable(&[BatchedCounterSpec], &h).is_linearizable());
}

/// A real panicking thread: the panic unwinds out of the worker, the
/// recorder is left with the pending op, and everything downstream
/// still works (no poisoning of the recording path, well-formed
/// history, checkers run).
#[test]
fn panicking_updater_is_absorbed() {
    let counter = IvlBatchedCounter::new(4);
    let rec = Recorder::<u64, (), u64>::new();

    crossbeam::scope(|s| {
        // Healthy updaters.
        for slot in 1..3usize {
            let counter = &counter;
            let rec = &rec;
            s.spawn(move |_| {
                for _ in 0..100 {
                    let id = rec.invoke_update(ProcessId(slot as u32), ObjectId(0), 1);
                    counter.update_slot(slot, 1);
                    rec.respond_update(id);
                }
            });
        }
        // The doomed one: dies mid-operation.
        let counter = &counter;
        let rec = &rec;
        let doomed = s.spawn(move |_| {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let _id = rec.invoke_update(ProcessId(0), ObjectId(0), 7);
                counter.update_slot(0, 7);
                panic!("injected crash");
            }));
            assert!(result.is_err(), "the crash must fire");
        });
        doomed.join().unwrap();
        // A reader races along.
        s.spawn(move |_| {
            for _ in 0..50 {
                let id = rec.invoke_query(ProcessId(9), ObjectId(0), ());
                let v = counter.read();
                rec.respond_query(id, v);
            }
        });
    })
    .unwrap();

    let h = rec.finish();
    assert!(History::from_events(h.events().to_vec()).is_ok());
    let pending = h.operations().iter().filter(|o| !o.is_complete()).count();
    assert_eq!(pending, 1, "exactly the crashed op is pending");
    assert!(check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl());
}

/// Simulator flavour: cut an execution at every possible instant and
/// check the truncated history — crash-stop of the whole world at an
/// arbitrary point — is always IVL.
#[test]
fn world_stop_at_every_instant_is_ivl() {
    use ivl_core::shmem::algorithms::IvlCounterSim;
    use ivl_core::shmem::executor::SimCounterSpec;
    use ivl_core::shmem::{Executor, Memory, RandomScheduler, SimOp, Workload};

    let full_len = {
        let mut mem = Memory::new();
        let obj = IvlCounterSim::new(&mut mem, 3);
        let w = vec![
            Workload {
                ops: vec![SimOp::Update(2), SimOp::Update(3)],
            },
            Workload {
                ops: vec![SimOp::Query(0), SimOp::Query(0)],
            },
            Workload {
                ops: vec![SimOp::Update(5)],
            },
        ];
        let mut exec = Executor::new(mem, Box::new(obj), w, RandomScheduler::new(9));
        exec.run().history.len()
    };
    for cutoff in 0..=full_len as u64 {
        let mut mem = Memory::new();
        let obj = IvlCounterSim::new(&mut mem, 3);
        let w = vec![
            Workload {
                ops: vec![SimOp::Update(2), SimOp::Update(3)],
            },
            Workload {
                ops: vec![SimOp::Query(0), SimOp::Query(0)],
            },
            Workload {
                ops: vec![SimOp::Update(5)],
            },
        ];
        let mut exec = Executor::new(mem, Box::new(obj), w, RandomScheduler::new(9));
        let result = exec.run_bounded(cutoff);
        assert!(
            check_ivl_monotone(&SimCounterSpec, &result.history).is_ivl(),
            "cutoff {cutoff}: truncated history violated IVL"
        );
    }
}
