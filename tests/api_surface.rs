//! Coverage for API surfaces not exercised elsewhere: batched update
//! paths, accessors, renderers, verdict plumbing, and cross-type
//! consistency checks.

use ivl_core::prelude::*;
use ivl_spec::io::{parse_history, write_history};
use ivl_spec::linearize::LinVerdict;
use ivl_spec::render::{render_events, render_timeline};
use ivl_spec::specs::BatchedCounterSpec;

#[test]
fn pcm_batched_updates_equal_unit_updates() {
    let mut coins_a = CoinFlips::from_seed(3);
    let mut coins_b = CoinFlips::from_seed(3);
    let params = CountMinParams {
        width: 32,
        depth: 3,
    };
    let a = Pcm::new(params, &mut coins_a);
    let b = Pcm::new(params, &mut coins_b);
    a.update_by(9, 500);
    for _ in 0..500 {
        b.update(9);
    }
    for item in 0..32u64 {
        assert_eq!(a.estimate(item), b.estimate(item));
    }
    assert_eq!(a.stream_len_estimate(), 500);
    assert_eq!(a.cells_snapshot(), b.cells_snapshot());
}

#[test]
fn pcm_batched_update_is_the_intro_scenario() {
    // A single batched update observed partially by a concurrent
    // query: with d rows bumped by `count` each, the estimate moves
    // from f to f + count through row-sized steps — the paper's
    // "7 to 10" in sketch form. At quiescence it has fully landed.
    let pcm = Pcm::new(
        CountMinParams {
            width: 16,
            depth: 4,
        },
        &mut CoinFlips::from_seed(4),
    );
    pcm.update_by(5, 7);
    assert_eq!(pcm.estimate(5), 7);
    pcm.update_by(5, 3);
    assert_eq!(pcm.estimate(5), 10);
}

#[test]
fn linearization_witness_is_a_valid_order() {
    let mut b = HistoryBuilder::<u64, (), u64>::new();
    let u1 = b.invoke_update(ProcessId(0), ObjectId(0), 1);
    let q = b.invoke_query(ProcessId(1), ObjectId(0), ());
    b.respond_update(u1);
    let u2 = b.invoke_update(ProcessId(0), ObjectId(0), 2);
    b.respond_query(q, 1);
    b.respond_update(u2);
    let h = b.finish();
    match check_linearizable(&[BatchedCounterSpec], &h) {
        LinVerdict::Linearizable { witness } => {
            // The witness must contain every completed operation
            // exactly once and respect u1 ≺ u2.
            assert_eq!(witness.len(), 3);
            let pos = |id| witness.iter().position(|&x| x == id).expect("in witness");
            assert!(pos(u1) < pos(u2));
        }
        LinVerdict::NotLinearizable => panic!("history is linearizable"),
    }
}

#[test]
fn renderers_cover_multi_object_histories() {
    let mut b = HistoryBuilder::<u64, u64, u64>::new();
    let u = b.invoke_update(ProcessId(0), ObjectId(0), 1);
    b.respond_update(u);
    let q = b.invoke_query(ProcessId(1), ObjectId(1), 7);
    b.respond_query(q, 0);
    let h = b.finish();
    let t = render_timeline(&h);
    assert!(t.contains("p0:"));
    assert!(t.contains("p1:"));
    let e = render_events(&h);
    assert!(e.contains("x0"));
    assert!(e.contains("x1"));
    assert_eq!(e.lines().count(), 4);
}

#[test]
fn io_roundtrip_preserves_checker_verdicts() {
    // Serialize a recorded real execution, parse it back, and confirm
    // the verdicts are identical.
    let counter = RecordedCounter::new(IvlBatchedCounter::new(3));
    crossbeam::scope(|s| {
        for slot in 0..2 {
            let counter = &counter;
            s.spawn(move |_| {
                for _ in 0..4 {
                    counter.update(slot, 2);
                }
            });
        }
        let counter = &counter;
        s.spawn(move |_| {
            for _ in 0..3 {
                counter.read_from(2);
            }
        });
    })
    .unwrap();
    let h = counter.finish();

    // The counter history has Q = (); map to the u64-query format by
    // rebuilding events through the text format of a compatible type.
    use ivl_spec::history::{Event, EventKind, History, Op};
    let as_u64q: History<u64, u64, u64> = History::from_events(
        h.events()
            .iter()
            .map(|ev| Event {
                op: ev.op,
                process: ev.process,
                object: ev.object,
                kind: match &ev.kind {
                    EventKind::Invoke(Op::Update(u)) => EventKind::Invoke(Op::Update(*u)),
                    EventKind::Invoke(Op::Query(())) => EventKind::Invoke(Op::Query(0u64)),
                    EventKind::Respond(v) => EventKind::Respond(*v),
                },
            })
            .collect(),
    )
    .unwrap();
    let text = write_history(&as_u64q);
    let parsed: History<u64, u64, u64> = parse_history(&text).unwrap();
    assert_eq!(as_u64q, parsed);
}

#[test]
fn countmin_params_accessors_consistent() {
    let p = CountMinParams::for_bounds(0.02, 0.05);
    assert!(p.alpha() <= 0.02 + 1e-12);
    assert!(p.delta() <= 0.05 + 1e-12);
    let mut coins = CoinFlips::from_seed(1);
    let cm = CountMin::new(p, &mut coins);
    assert_eq!(cm.params(), p);
    assert_eq!(cm.cells().len(), p.width * p.depth);
    assert_eq!(cm.hashes().len(), p.depth);
}

#[test]
fn gk_accessors() {
    let mut gk = GkQuantiles::new(0.05);
    assert_eq!(gk.epsilon(), 0.05);
    assert_eq!(gk.count(), 0);
    gk.insert(3);
    assert_eq!(gk.count(), 1);
    assert!(gk.summary_size() >= 1);
}

#[test]
fn kll_quantile_api() {
    use ivl_sketch::KllSketch;
    let mut kll = KllSketch::new(128, CoinFlips::from_seed(5));
    assert_eq!(kll.capacity(), 128);
    for v in 0..10_000u64 {
        kll.insert(v);
    }
    let q = kll.quantile(0.9);
    assert!((8_500..=9_500).contains(&q), "{q}");
}

#[test]
fn spacesaving_epsilon_tracks_stream() {
    let mut ss = SpaceSaving::new(10);
    for _ in 0..100 {
        ss.update(1);
    }
    assert_eq!(ss.capacity(), 10);
    assert!((ss.epsilon() - 10.0).abs() < 1e-12);
}

#[test]
fn concurrent_histogram_rank_upper_bounds_lower() {
    use ivl_concurrent::ConcurrentHistogram;
    let h = ConcurrentHistogram::new(100, 10);
    for v in 0..100u64 {
        h.insert(v);
    }
    for probe in [0u64, 37, 99] {
        assert!(h.rank_lower(probe) <= h.rank_upper(probe));
    }
    assert_eq!(h.count(), 100);
}

#[test]
fn theorem6_default_config_is_sane() {
    use ivl_core::theorem6::Theorem6Config;
    let cfg = Theorem6Config::default();
    assert!(cfg.threads > 0);
    assert!(cfg.alpha > 0.0 && cfg.alpha < 1.0);
    assert!(cfg.alphabet > 0);
}

#[test]
fn monitor_outcome_shapes() {
    use ivl_core::counter::monitor::MonitorOutcome;
    let c = IvlBatchedCounter::new(1);
    c.update_slot(0, 10);
    let m = ThresholdMonitor::new(&c, 5);
    match m.run() {
        MonitorOutcome::Fired { observed, reads } => {
            assert_eq!(observed, 10);
            assert_eq!(reads, 1);
        }
        MonitorOutcome::Stopped { .. } => panic!("threshold already passed"),
    }
}

#[test]
fn eval_after_is_order_insensitive_for_monotone_specs() {
    use ivl_spec::spec::ObjectSpec;
    let s = BatchedCounterSpec;
    let forward = s.eval_after([1u64, 2, 3].iter(), &());
    let backward = s.eval_after([3u64, 2, 1].iter(), &());
    assert_eq!(forward, backward);
}
