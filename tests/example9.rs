//! E7: the paper's Example 9 — `PCM` is not linearizable — re-enacted
//! three ways: deterministically in the simulator, statistically over
//! random schedules, and in the history domain against a real
//! `CM(c̄)` with sampled hashes.

use ivl_core::prelude::*;
use ivl_core::shmem::algorithms::{example9_hash, example9_violation_count, PcmSim};
use ivl_core::shmem::{Executor, FixedScheduler, Memory, SimOp, Workload};
use ivl_sketch::cm_spec::CountMinSpec;

/// Deterministic re-enactment in the simulator: the exact schedule of
/// Example 9 (update stalled between rows, two queries slipping into
/// the gap) with the paper's initial matrix `[[1,4],[2,3]]` reached by
/// real seed updates.
#[test]
fn example9_exact_schedule() {
    let mut mem = Memory::new();
    let obj = PcmSim::new(&mut mem, 2, 2, example9_hash());
    let spec = obj.spec();
    let workloads = vec![
        Workload {
            ops: vec![
                SimOp::Update(2),
                SimOp::Update(2),
                SimOp::Update(2),
                SimOp::Update(0),
                SimOp::Update(1),
                SimOp::Update(0), // U, stalled between rows
            ],
        },
        Workload {
            ops: vec![SimOp::Query(0), SimOp::Query(1)],
        },
    ];
    let mut script = vec![0; 11];
    script.extend([1, 1, 1, 1, 0]);
    let mut exec = Executor::new(mem, Box::new(obj), workloads, FixedScheduler::new(script));
    let result = exec.run();

    let queries: Vec<_> = result
        .history
        .operations()
        .into_iter()
        .filter(|o| o.op.is_query())
        .collect();
    assert_eq!(queries[0].return_value, Some(2), "Q1 = 2 (sees U)");
    assert_eq!(queries[1].return_value, Some(2), "Q2 = 2 (misses U)");

    assert!(
        !check_linearizable(std::slice::from_ref(&spec), &result.history).is_linearizable(),
        "Example 9: U ≺ Q1, Q2 ≺ U, Q1 ≺_H Q2 — no linearization"
    );
    assert!(
        check_ivl_monotone(&spec, &result.history).is_ivl(),
        "Lemma 7: the same history is IVL"
    );
}

/// Statistical version: under random schedules of an Example 9-shaped
/// workload, a non-trivial fraction of histories is not linearizable,
/// and every single one is IVL.
#[test]
fn example9_statistical_frequency() {
    let runs = 400;
    let violations = example9_violation_count(runs);
    assert!(
        violations > 0,
        "no non-linearizable schedule found in {runs} runs"
    );
    // Sanity: the effect is not ubiquitous either — most histories do
    // linearize under uniform scheduling.
    assert!(
        violations < runs,
        "every schedule non-linearizable is implausible"
    );
}

/// History-domain version against a real sampled `CM(c̄)`: find items
/// realizing Example 9's collision pattern in a drawn hash family,
/// and build the history with true hashes. The pattern (mirroring the
/// simulator construction) is a triple (a, b, f):
///
/// * row 0: `a` and `b` distinct, `f` shares `b`'s cell;
/// * row 1: `a` and `b` collide, `f` elsewhere.
///
/// Seeding f×3, a, b then makes `query(b)`'s minimum come from the
/// shared row-1 cell, so a pending `update(a)` that `Q1 = query(a)`
/// observes but a later `Q2 = query(b)` misses yields the paper's
/// contradiction.
#[test]
fn example9_with_sampled_hashes() {
    let mut found = None;
    'seeds: for seed in 0..500u64 {
        let mut coins = CoinFlips::from_seed(seed);
        let proto = CountMin::new(CountMinParams { width: 2, depth: 2 }, &mut coins);
        let h0 = |x: u64| proto.hashes()[0].hash(x);
        let h1 = |x: u64| proto.hashes()[1].hash(x);
        for a in 0..30u64 {
            for b in 0..30u64 {
                if a == b || h0(a) == h0(b) || h1(a) != h1(b) {
                    continue;
                }
                for f in 0..30u64 {
                    if f == a || f == b {
                        continue;
                    }
                    if h0(f) == h0(b) && h1(f) != h1(b) {
                        found = Some((proto.clone(), a, b, f));
                        break 'seeds;
                    }
                }
            }
        }
    }
    let (proto, a, b, f) = found.expect("collision pattern must exist at w=2, d=2");
    let spec = CountMinSpec::new(proto.clone());

    // Sequential ground values via replay.
    let est = |items: &[u64], q: u64| {
        let mut st = proto.clone();
        for &i in items {
            ivl_sketch::FrequencySketch::update(&mut st, i);
        }
        ivl_sketch::FrequencySketch::estimate(&st, q)
    };
    let seeds = [f, f, f, a, b];
    let with_u: Vec<u64> = seeds.iter().copied().chain([a]).collect();
    let q1_without = est(&seeds, a);
    let q1_with = est(&with_u, a);
    let q2_without = est(&seeds, b);
    let q2_with = est(&with_u, b);
    assert!(q1_with > q1_without, "Q1's value must prove U ≺ Q1");
    assert!(q2_with > q2_without, "Q2's value must prove Q2 ≺ U");

    let mut hb = HistoryBuilder::<u64, u64, u64>::new();
    let p0 = ProcessId(0);
    let p1 = ProcessId(1);
    let x = ObjectId(0);
    for &s in &seeds {
        let u = hb.invoke_update(p0, x, s);
        hb.respond_update(u);
    }
    let u = hb.invoke_update(p0, x, a); // U, concurrent with both queries
    let q1 = hb.invoke_query(p1, x, a);
    hb.respond_query(q1, q1_with);
    let q2 = hb.invoke_query(p1, x, b);
    hb.respond_query(q2, q2_without);
    hb.respond_update(u);
    let h = hb.finish();

    assert!(
        !check_linearizable(std::slice::from_ref(&spec), &h).is_linearizable(),
        "Example 9 with sampled hashes must not linearize"
    );
    assert!(check_ivl_monotone(&spec, &h).is_ivl());
    assert!(check_ivl_exact(&[spec], &h).is_ivl());
}
