//! E14: the breadth of the monotone ⇒ IVL observation — concurrent
//! HyperLogLog and PCM recorded at stress and checked with the
//! interval fast path; concurrent Morris validated statistically.

use ivl_core::prelude::*;
use ivl_sketch::cm_spec::CountMinSpec;
use ivl_sketch::countmin::CountMinParams;
use ivl_spec::spec::{MonotoneSpec, ObjectSpec};

/// Sequential spec of the concurrent HLL's *indicator* value (a
/// strictly monotone integer functional of the register vector; see
/// `ivl_concurrent::hll_conc`). Update = item, query = (), value =
/// indicator.
#[derive(Clone, Debug)]
struct HllIndicatorSpec {
    proto: HyperLogLog,
}

impl ObjectSpec for HllIndicatorSpec {
    type Update = u64;
    type Query = ();
    type Value = u128;
    type State = Vec<u8>;

    fn initial_state(&self) -> Vec<u8> {
        vec![0; self.proto.num_registers()]
    }

    fn apply_update(&self, state: &mut Vec<u8>, update: &u64) {
        let (idx, rank) = self.proto.route(*update);
        if rank > state[idx] {
            state[idx] = rank;
        }
    }

    fn eval_query(&self, state: &Vec<u8>, _query: &()) -> u128 {
        state
            .iter()
            .map(|&m| (1u128 << 64) - (1u128 << (64 - (m as u32).min(64))))
            .sum()
    }
}

impl MonotoneSpec for HllIndicatorSpec {}

/// Concurrent HLL under heavy ingest with concurrent indicator
/// queries: recorded histories pass the IVL checker against the
/// sequential register spec with the same coins.
#[test]
fn concurrent_hll_histories_are_ivl() {
    for seed in 0..3 {
        let mut coins = CoinFlips::from_seed(seed);
        let hll = ConcurrentHll::new(6, &mut coins);
        let spec = HllIndicatorSpec {
            proto: hll.prototype().clone(),
        };
        let rec = Recorder::<u64, (), u128>::new();
        crossbeam::scope(|s| {
            for t in 0..3u64 {
                let hll = &hll;
                let rec = &rec;
                s.spawn(move |_| {
                    for k in 0..2_000u64 {
                        let item = t * 1_000_000 + k;
                        let id = rec.invoke_update(ProcessId(t as u32), ObjectId(0), item);
                        hll.update(item);
                        rec.respond_update(id);
                    }
                });
            }
            {
                let hll = &hll;
                let rec = &rec;
                s.spawn(move |_| {
                    for _ in 0..1_000 {
                        let id = rec.invoke_query(ProcessId(9), ObjectId(0), ());
                        let v = hll.indicator();
                        rec.respond_query(id, v);
                    }
                });
            }
        })
        .unwrap();
        let h = rec.finish();
        assert!(
            check_ivl_monotone(&spec, &h).is_ivl(),
            "seed {seed}: concurrent HLL violated IVL"
        );
    }
}

/// PCM at a larger scale than the unit test: tens of thousands of
/// recorded events, all IVL (the fast path makes this cheap).
#[test]
fn pcm_histories_ivl_at_scale() {
    let params = CountMinParams {
        width: 128,
        depth: 4,
    };
    let mut coins = CoinFlips::from_seed(77);
    let proto = CountMin::new(params, &mut coins);
    let spec = CountMinSpec::new(proto.clone());
    let rec = RecordedSketch::new(Pcm::from_prototype(&proto));
    crossbeam::scope(|s| {
        for t in 0..4u64 {
            let mut h = rec.handle();
            s.spawn(move |_| {
                for k in 0..5_000u64 {
                    h.update((t * 31 + k) % 257);
                }
            });
        }
        let rec = &rec;
        s.spawn(move |_| {
            for k in 0..2_000u64 {
                rec.query_from(1000, k % 257);
            }
        });
    })
    .unwrap();
    let h = rec.finish();
    assert!(h.operations().len() >= 22_000);
    assert!(check_ivl_monotone(&spec, &h).is_ivl());
}

/// Concurrent Morris: estimates remain within a loose (ε,δ)-style
/// envelope across independent runs (the paper's Definition 3 story
/// needs common linearizations across coin vectors; here we validate
/// the user-facing accuracy claim).
#[test]
fn concurrent_morris_accuracy_envelope() {
    let runs = 20;
    let threads = 4;
    let per_thread = 10_000u64;
    let n = threads as f64 * per_thread as f64;
    let mut within = 0;
    for seed in 0..runs {
        let m = ConcurrentMorris::new(0.05, CoinFlips::from_seed(seed));
        crossbeam::scope(|s| {
            for _ in 0..threads {
                let m = &m;
                s.spawn(move |_| {
                    for _ in 0..per_thread {
                        m.update();
                    }
                });
            }
        })
        .unwrap();
        let rel = (m.estimate() - n).abs() / n;
        if rel < 0.5 {
            within += 1;
        }
    }
    assert!(
        within as f64 >= 0.8 * runs as f64,
        "only {within}/{runs} runs within 50% of the truth"
    );
}
