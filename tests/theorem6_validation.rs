//! E8: Theorem 6 / Corollary 8 validation — the IVL parallelization
//! `PCM` preserves CountMin's (ε,δ) bounds under concurrency, while
//! the delegation-style sketch (regular-like staleness) violates the
//! bound IVL guarantees.

use ivl_concurrent::delegation::DelegatedCountMin;
use ivl_core::prelude::*;
use ivl_core::theorem6::{theorem6_run, Theorem6Config};
use ivl_sketch::cm_spec::CountMinSpec;
use ivl_sketch::countmin::CountMinParams;
use ivl_spec::ivl::check_ivl_exact;
use ivl_spec::IvlVerdict;

/// Corollary 8 on PCM: the lower bound `f_a^start ≤ f̂_a` holds for
/// every single query (CountMin's lower bound is deterministic), and
/// upper violations stay within δ.
#[test]
fn pcm_preserves_error_bounds() {
    let cfg = Theorem6Config {
        threads: 4,
        updates_per_thread: 40_000,
        alphabet: 2_000,
        zipf_s: 1.1,
        queries: 2_000,
        alpha: 0.005,
        seed: 42,
    };
    let delta = 0.01;
    let pcm = Pcm::for_bounds(cfg.alpha, delta, &mut CoinFlips::from_seed(7));
    let report = theorem6_run(&pcm, &cfg);
    assert_eq!(report.lower_violations, 0, "IVL forbids underestimates");
    assert!(
        report.upper_violation_rate() <= delta * 3.0,
        "upper violation rate {} should be ≲ δ = {delta}",
        report.upper_violation_rate()
    );
    assert_eq!(report.stream_len, 160_000);
}

/// The sharded IVL CountMin passes the same validation — a second,
/// structurally different IVL implementation of the same spec.
#[test]
fn sharded_pcm_preserves_error_bounds() {
    use ivl_concurrent::ShardedPcm;
    let cfg = Theorem6Config {
        threads: 4,
        updates_per_thread: 30_000,
        alphabet: 1_500,
        zipf_s: 1.1,
        queries: 1_500,
        alpha: 0.005,
        seed: 43,
    };
    let sharded = ShardedPcm::new(
        CountMinParams::for_bounds(cfg.alpha, 0.01),
        cfg.threads,
        &mut CoinFlips::from_seed(8),
    );
    let report = theorem6_run(&sharded, &cfg);
    assert_eq!(report.lower_violations, 0);
    assert!(report.upper_violation_rate() <= 0.03);
}

/// The delegation sketch deterministically violates the IVL lower
/// bound: a query issued after an update *completed* (but sits in a
/// local buffer) underestimates — forbidden for any IVL
/// implementation of CountMin.
#[test]
fn delegation_violates_ivl_lower_bound() {
    let params = CountMinParams {
        width: 256,
        depth: 4,
    };
    let mut coins = CoinFlips::from_seed(9);
    let dcm = DelegatedCountMin::new(params, 1_000, &mut coins);
    let mut handle = dcm.handle();
    for _ in 0..500 {
        handle.update(7); // all 500 complete, none flushed
    }
    // A fresh, non-concurrent query after 500 *completed* updates:
    let est = dcm.estimate(7);
    assert!(est < 500, "the buffered sketch must miss completed updates");
    assert_eq!(est, 0);
    handle.flush();
    assert_eq!(dcm.estimate(7), 500);
}

/// The same violation expressed as a recorded history rejected by the
/// exact checker — connecting the systems observation back to
/// Definition 2.
#[test]
fn delegation_history_rejected_by_checker() {
    let params = CountMinParams { width: 8, depth: 2 };
    let mut coins = CoinFlips::from_seed(11);
    let proto = ivl_sketch::CountMin::new(params, &mut coins);
    let spec = CountMinSpec::new(proto.clone());
    let dcm = DelegatedCountMin::new(params, 100, &mut CoinFlips::from_seed(11));

    let rec = Recorder::<u64, u64, u64>::new();
    let mut handle = dcm.handle();
    // Three completed (but buffered) updates of item 3.
    for _ in 0..3 {
        let id = rec.invoke_update(ProcessId(0), ObjectId(0), 3);
        SketchHandle::update(&mut handle, 3);
        rec.respond_update(id);
    }
    // A later, non-overlapping query.
    let id = rec.invoke_query(ProcessId(1), ObjectId(0), 3);
    let est = dcm.estimate(3);
    rec.respond_query(id, est);
    let h = rec.finish();
    assert_eq!(est, 0);
    assert_eq!(
        check_ivl_exact(&[spec], &h),
        IvlVerdict::NoLowerLinearization,
        "regular-like staleness must fail IVL's lower bound"
    );
}

/// Definition 5 in the formal domain: record a real PCM run, then
/// have the checker evaluate `v_min − ε ≤ f̂ ≤ v_max + ε` per query
/// against the *ideal* frequency spec (v_min/v_max from the extremal
/// linearizations of the recorded history itself).
#[test]
fn definition5_checker_on_recorded_pcm_run() {
    use ivl_spec::bounded::epsilon_bounded_report;
    use ivl_spec::spec::{MonotoneSpec, ObjectSpec};

    /// Exact frequencies over u64 items — the ideal `I` for CountMin.
    #[derive(Clone, Copy, Debug)]
    struct IdealFreq {
        alphabet: u64,
    }

    impl ObjectSpec for IdealFreq {
        type Update = u64;
        type Query = u64;
        type Value = u64;
        type State = Vec<u64>;

        fn initial_state(&self) -> Vec<u64> {
            vec![0; self.alphabet as usize]
        }

        fn apply_update(&self, state: &mut Vec<u64>, update: &u64) {
            state[*update as usize] += 1;
        }

        fn eval_query(&self, state: &Vec<u64>, query: &u64) -> u64 {
            state[*query as usize]
        }
    }

    impl MonotoneSpec for IdealFreq {}

    let alpha = 0.01;
    let alphabet = 64u64;
    let params = CountMinParams::for_bounds(alpha, 0.01);
    let pcm = Pcm::new(params, &mut CoinFlips::from_seed(5));
    let rec = RecordedSketch::new(pcm);
    let per_thread = 4_000u64;
    let threads = 3u64;
    crossbeam::scope(|s| {
        for t in 0..threads {
            let mut h = rec.handle();
            s.spawn(move |_| {
                for k in 0..per_thread {
                    h.update((t * 31 + k * 7) % alphabet);
                }
            });
        }
        let rec = &rec;
        s.spawn(move |_| {
            for k in 0..1_500u64 {
                rec.query_from(1000, (k * 13) % alphabet);
            }
        });
    })
    .unwrap();
    let h = rec.finish();
    let n = (threads * per_thread) as f64;
    let report = epsilon_bounded_report(&IdealFreq { alphabet }, &h, alpha * n, |v| *v as f64);
    assert_eq!(
        report.lower_violations(),
        0,
        "CountMin under-estimates are impossible under IVL"
    );
    assert!(
        report.violation_rate() <= 0.03,
        "Definition 5 violation rate {} too high",
        report.violation_rate()
    );
}

/// A coarse two-sided sanity check at quiescence: the concurrent
/// sketch's estimates equal a sequential replay's (cell increments
/// commute), so Theorem 6's conclusion is anchored to the sequential
/// analysis.
#[test]
fn pcm_quiescent_estimates_match_sequential_bounds() {
    use ivl_sketch::stream::ZipfStream;
    use std::collections::HashMap;

    let alpha = 0.01;
    let delta = 0.02;
    let mut coins = CoinFlips::from_seed(21);
    let proto = ivl_sketch::CountMin::for_bounds(alpha, delta, &mut coins);
    let pcm = Pcm::from_prototype(&proto);
    let mut truth: HashMap<u64, u64> = HashMap::new();
    let streams: Vec<Vec<u64>> = (0..4)
        .map(|t| ZipfStream::new(1_000, 1.2, 100 + t).take(25_000).collect())
        .collect();
    for s in &streams {
        for &item in s {
            *truth.entry(item).or_default() += 1;
        }
    }
    crossbeam::scope(|s| {
        for stream in &streams {
            let pcm = &pcm;
            s.spawn(move |_| {
                for &item in stream {
                    pcm.update(item);
                }
            });
        }
    })
    .unwrap();
    let n: u64 = truth.values().sum();
    let eps = (alpha * n as f64).ceil() as u64;
    let failures = truth
        .iter()
        .filter(|(&a, &f)| {
            let est = pcm.estimate(a);
            est < f || est > f + eps
        })
        .count();
    let rate = failures as f64 / truth.len() as f64;
    assert!(rate <= delta * 2.0, "failure rate {rate} >> δ {delta}");
}
