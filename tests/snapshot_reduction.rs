//! E12: Algorithm 3 — the binary-snapshot-from-batched-counter
//! reduction on real threads. Over a linearizable counter the
//! snapshot's recorded histories linearize (Lemma 13); Invariant 1
//! holds at quiescent points; and the carry arithmetic survives
//! adversarial flip counts.

use ivl_core::prelude::*;
use ivl_spec::history::{HistoryBuilder, ObjectId, ProcessId};
use ivl_spec::spec::{MonotoneSpec, ObjectSpec};

/// Sequential spec of the n-component binary snapshot: update args
/// encode `(component << 1) | bit`; scans return the component mask.
#[derive(Clone, Copy, Debug)]
struct BinarySnapshotSpec {
    n: usize,
}

impl ObjectSpec for BinarySnapshotSpec {
    type Update = u64;
    type Query = ();
    type Value = u64;
    type State = u64;

    fn initial_state(&self) -> u64 {
        0
    }

    fn apply_update(&self, state: &mut u64, update: &u64) {
        let comp = (update >> 1) as usize;
        assert!(comp < self.n);
        if update & 1 == 1 {
            *state |= 1 << comp;
        } else {
            *state &= !(1 << comp);
        }
    }

    fn eval_query(&self, state: &u64, _query: &()) -> u64 {
        *state
    }
}

/// Invariant 1 (paper): after any quiescent prefix, the counter's
/// value is `c·2^n + Σ v_i 2^i` for the current component values
/// `v_i` and some integer `c ≥ 0`.
#[test]
fn invariant1_at_quiescent_points() {
    let n = 4;
    let bs = BinarySnapshot::new(FetchAddCounter::new(n));
    let mut expected_bits = vec![0u64; n];
    let mut rng_state = 12345u64;
    for _ in 0..500 {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let comp = (rng_state >> 33) as usize % n;
        let bit = (rng_state >> 20) & 1;
        bs.update(comp, bit);
        expected_bits[comp] = bit;
        let sum = bs.counter().read();
        let low = sum & ((1 << n) - 1);
        let expected_mask = expected_bits
            .iter()
            .enumerate()
            .fold(0u64, |m, (i, &b)| m | (b << i));
        assert_eq!(low, expected_mask, "Invariant 1 violated");
    }
}

/// Lemma 13 on real threads: recorded histories of the snapshot over
/// a linearizable counter pass the exact linearizability checker.
#[test]
fn snapshot_over_linearizable_counter_linearizes() {
    for round in 0..10 {
        let n = 3;
        let bs = BinarySnapshot::new(FetchAddCounter::new(n));
        let rec = Recorder::<u64, (), u64>::new();
        crossbeam::scope(|s| {
            for comp in 0..2usize {
                let bs = &bs;
                let rec = &rec;
                s.spawn(move |_| {
                    for k in 0..3u64 {
                        let bit = (k + 1) % 2;
                        let id = rec.invoke_update(
                            ProcessId(comp as u32),
                            ObjectId(0),
                            ((comp as u64) << 1) | bit,
                        );
                        bs.update(comp, bit);
                        rec.respond_update(id);
                    }
                });
            }
            {
                let bs = &bs;
                let rec = &rec;
                s.spawn(move |_| {
                    for _ in 0..4 {
                        let id = rec.invoke_query(ProcessId(9), ObjectId(0), ());
                        let mask = bs.scan_mask();
                        rec.respond_query(id, mask);
                    }
                });
            }
        })
        .unwrap();
        let h = rec.finish();
        assert!(
            check_linearizable(&[BinarySnapshotSpec { n }], &h).is_linearizable(),
            "round {round}: snapshot over linearizable counter must linearize: {h:?}"
        );
    }
}

/// Negative control for the recording pipeline: a hand-built snapshot
/// history that mixes instants is rejected by the checker.
#[test]
fn checker_rejects_mixed_instant_scan() {
    let n = 3;
    let spec = BinarySnapshotSpec { n };
    let mut b = HistoryBuilder::<u64, (), u64>::new();
    let x = ObjectId(0);
    // p0 sets component 0; completes.
    let u1 = b.invoke_update(ProcessId(0), x, 0b01);
    b.respond_update(u1);
    // p0 clears component 0; completes.
    let u2 = b.invoke_update(ProcessId(0), x, 0b00);
    b.respond_update(u2);
    // p1 sets component 1; completes.
    let u3 = b.invoke_update(ProcessId(1), x, 0b11);
    b.respond_update(u3);
    // A scan AFTER all of that claims comp0=1, comp1=1: stale comp0.
    let q = b.invoke_query(ProcessId(2), x, ());
    b.respond_query(q, 0b011);
    let h = b.finish();
    assert!(
        !check_linearizable(&[spec], &h).is_linearizable(),
        "mixed-instant scan must be rejected"
    );
}

/// The spec used above is deliberately NOT monotone (bits go up and
/// down); confirm the exact IVL checker also rejects out-of-envelope
/// scan values while accepting legal ones.
#[test]
fn ivl_checker_on_snapshot_histories() {
    let n = 2;
    let spec = BinarySnapshotSpec { n };
    // Legal: scan overlapping a 0→1 flip may return either value.
    for val in [0b00u64, 0b01] {
        let mut b = HistoryBuilder::<u64, (), u64>::new();
        let x = ObjectId(0);
        let q = b.invoke_query(ProcessId(1), x, ());
        let u = b.invoke_update(ProcessId(0), x, 0b01);
        b.respond_update(u);
        b.respond_query(q, val);
        let h = b.finish();
        assert!(
            check_ivl_exact(&[spec], &h).is_ivl(),
            "value {val:#b} is legal under IVL"
        );
    }
    // Illegal: 0b10 is outside every linearization's value set and
    // also outside the interval [0b00, 0b01]... as integers 0b10 = 2
    // exceeds both legal values 0 and 1.
    let mut b = HistoryBuilder::<u64, (), u64>::new();
    let x = ObjectId(0);
    let q = b.invoke_query(ProcessId(1), x, ());
    let u = b.invoke_update(ProcessId(0), x, 0b01);
    b.respond_update(u);
    b.respond_query(q, 0b10);
    let h = b.finish();
    assert!(!check_ivl_exact(&[spec], &h).is_ivl());
}

const _: () = {
    // BinarySnapshotSpec must NOT be marked monotone; this block
    // documents the deliberate absence (a MonotoneSpec impl here
    // would make the interval fast path unsound for it).
    fn _assert_not_monotone<T: MonotoneSpec>() {}
};
