//! [`ivl_spec::ObjectSpec`] adapter for CountMin: the deterministic
//! sequential specification `CM(c̄)` of the paper's §5.
//!
//! Given the sampled coin flips (i.e. a constructed, empty
//! [`CountMin`]), replaying a sequential history against this spec
//! computes `τ_{CM(c̄)}(H)` — exactly what the IVL checkers need to
//! verify a recorded concurrent `PCM(c̄)` execution (Lemma 7 /
//! Definition 3 instantiated at the sampled coin vector).
//!
//! CountMin point queries are *monotone*: counters only grow under
//! updates, updates commute (they are cell increments), and `min` of
//! coordinate-wise-larger vectors is larger — so the interval fast
//! path ([`ivl_spec::check_ivl_monotone`]) is sound and complete for
//! it, and scales to recorded executions with millions of events.

use crate::countmin::CountMin;
use crate::FrequencySketch;
use ivl_spec::spec::{MonotoneSpec, ObjectSpec};

/// Sequential specification `CM(c̄)` built around an empty prototype
/// sketch (which fixes dimensions and hash functions = the coin
/// flips).
#[derive(Clone, Debug)]
pub struct CountMinSpec {
    proto: CountMin,
}

impl CountMinSpec {
    /// Wraps an (empty) prototype sketch as the sequential spec.
    ///
    /// # Panics
    ///
    /// Panics if the prototype has already ingested updates — the spec
    /// must start from the initial state.
    pub fn new(proto: CountMin) -> Self {
        assert_eq!(proto.stream_len(), 0, "prototype must be empty");
        CountMinSpec { proto }
    }

    /// The prototype (empty) sketch.
    pub fn prototype(&self) -> &CountMin {
        &self.proto
    }
}

impl ObjectSpec for CountMinSpec {
    type Update = u64;
    type Query = u64;
    type Value = u64;
    type State = CountMin;

    fn initial_state(&self) -> CountMin {
        self.proto.clone()
    }

    fn apply_update(&self, state: &mut CountMin, update: &u64) {
        state.update(*update);
    }

    fn eval_query(&self, state: &CountMin, query: &u64) -> u64 {
        state.estimate(*query)
    }
}

impl MonotoneSpec for CountMinSpec {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coins::CoinFlips;
    use crate::countmin::CountMinParams;
    use ivl_spec::history::{HistoryBuilder, ObjectId, ProcessId};
    use ivl_spec::ivl::{check_ivl_exact, check_ivl_monotone};
    use ivl_spec::linearize::check_linearizable;
    use ivl_spec::spec::tau;

    fn spec(seed: u64) -> CountMinSpec {
        let mut coins = CoinFlips::from_seed(seed);
        CountMinSpec::new(CountMin::new(
            CountMinParams { width: 8, depth: 2 },
            &mut coins,
        ))
    }

    #[test]
    fn tau_matches_direct_replay() {
        let s = spec(1);
        let mut b = HistoryBuilder::<u64, u64, u64>::new();
        let p = ProcessId(0);
        let x = ObjectId(0);
        for item in [3u64, 3, 5] {
            let u = b.invoke_update(p, x, item);
            b.respond_update(u);
        }
        let q = b.invoke_query(p, x, 3);
        b.respond_query(q, 0);
        let t = tau(&s, &b.finish());
        let mut direct = s.initial_state();
        for item in [3u64, 3, 5] {
            direct.update(item);
        }
        assert_eq!(*t.ret(q), direct.estimate(3));
    }

    #[test]
    fn sequential_cm_history_is_linearizable_and_ivl() {
        let s = spec(2);
        let mut replay = s.initial_state();
        let mut b = HistoryBuilder::<u64, u64, u64>::new();
        let p = ProcessId(0);
        let x = ObjectId(0);
        for item in [1u64, 2, 1, 1, 7] {
            let u = b.invoke_update(p, x, item);
            b.respond_update(u);
            replay.update(item);
        }
        let q = b.invoke_query(p, x, 1);
        b.respond_query(q, replay.estimate(1));
        let h = b.finish();
        assert!(check_linearizable(std::slice::from_ref(&s), &h).is_linearizable());
        assert!(check_ivl_exact(std::slice::from_ref(&s), &h).is_ivl());
        assert!(check_ivl_monotone(&s, &h).is_ivl());
    }

    #[test]
    fn example9_structure_not_linearizable_but_ivl() {
        // The paper's Example 9, re-expressed against a real CM(c̄):
        // find two items a, b colliding in row 2 but not row 1; a
        // query of a sees the concurrent update's row-1 increment
        // while a *later* query of b misses its row-2 increment —
        // impossible to linearize, yet IVL.
        //
        // Rather than searching for hash collisions, we reproduce the
        // *counter-example shape* with the batched counter inside
        // Example 9's proof: Q1 observes U, Q2 (after Q1) does not.
        let s = spec(3);
        let mut b = HistoryBuilder::<u64, u64, u64>::new();
        let p0 = ProcessId(0);
        let p1 = ProcessId(1);
        let x = ObjectId(0);
        // A completed update of item 9 establishes a baseline.
        let u0 = b.invoke_update(p0, x, 9);
        b.respond_update(u0);
        let base = {
            let mut st = s.initial_state();
            st.update(9);
            st.estimate(9)
        };
        let with_u = {
            let mut st = s.initial_state();
            st.update(9);
            st.update(9);
            st.estimate(9)
        };
        // Pending-ish concurrent update U of the same item; Q1 sees it,
        // Q2 (same process, later) does not.
        let u = b.invoke_update(p0, x, 9);
        let q1 = b.invoke_query(p1, x, 9);
        b.respond_query(q1, with_u);
        let q2 = b.invoke_query(p1, x, 9);
        b.respond_query(q2, base);
        b.respond_update(u);
        let h = b.finish();
        assert!(
            !check_linearizable(std::slice::from_ref(&s), &h).is_linearizable(),
            "Q1 before Q2 with Q1 seeing U and Q2 missing it cannot linearize"
        );
        assert!(check_ivl_exact(std::slice::from_ref(&s), &h).is_ivl());
        assert!(check_ivl_monotone(&s, &h).is_ivl());
    }
}
