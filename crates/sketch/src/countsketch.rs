//! The CountSketch (Charikar–Chen–Farach-Colton): a frequency
//! estimator with *two-sided* error, used here as a second sequential
//! (ε,δ)-bounded frequency object and as a contrast to CountMin.
//!
//! Each row `i` has a bucket hash `h_i` and a sign hash `s_i`;
//! `update(a)` adds `s_i(a)` to `c[i][h_i(a)]`, and the estimate is
//! the **median** over rows of `s_i(a) · c[i][h_i(a)]`. The estimate is
//! unbiased per row, with |error| ≤ `√(n₂)/√w`-ish (ℓ2 guarantee);
//! with `d = O(log 1/δ)` rows the median concentrates.
//!
//! Note: CountSketch estimates can *decrease* as unrelated updates
//! arrive (signs are ±1), so unlike CountMin it is **not monotone** —
//! its straightforward parallelization is *not* automatically
//! IVL-checkable by the interval fast path. This is exactly the
//! distinction §3.4 of the paper draws; the concurrent crate
//! demonstrates it.

use crate::coins::CoinFlips;
use crate::hash::{PairwiseHash, SignHash};
use crate::FrequencySketch;

/// The sequential CountSketch.
#[derive(Clone, PartialEq, Debug)]
pub struct CountSketch {
    width: usize,
    depth: usize,
    bucket_hashes: Vec<PairwiseHash>,
    sign_hashes: Vec<SignHash>,
    cells: Vec<i64>,
    stream_len: u64,
}

impl CountSketch {
    /// Creates a `depth × width` CountSketch, drawing hashes from
    /// `coins`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    pub fn new(width: usize, depth: usize, coins: &mut CoinFlips) -> Self {
        assert!(width > 0 && depth > 0, "dimensions must be positive");
        let bucket_hashes = (0..depth)
            .map(|_| PairwiseHash::draw(coins, width as u64))
            .collect();
        let sign_hashes = (0..depth).map(|_| SignHash::draw(coins)).collect();
        CountSketch {
            width,
            depth,
            bucket_hashes,
            sign_hashes,
            cells: vec![0; width * depth],
            stream_len: 0,
        }
    }

    /// Signed per-row estimate for `item`.
    fn row_estimate(&self, row: usize, item: u64) -> i64 {
        let col = self.bucket_hashes[row].hash(item);
        self.sign_hashes[row].sign(item) * self.cells[row * self.width + col]
    }

    /// The signed median estimate (may be negative for rare items under
    /// heavy collision noise).
    pub fn estimate_signed(&self, item: u64) -> i64 {
        let mut ests: Vec<i64> = (0..self.depth)
            .map(|r| self.row_estimate(r, item))
            .collect();
        ests.sort_unstable();
        let mid = ests.len() / 2;
        if ests.len() % 2 == 1 {
            ests[mid]
        } else {
            (ests[mid - 1] + ests[mid]) / 2
        }
    }

    /// Width of each row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Estimates the second frequency moment `F₂ = Σ_a f_a²` (the
    /// self-join size): per row, the sum of squared cells is the
    /// classic AMS / tug-of-war estimator — unbiased with variance
    /// `≤ 2F₂²/w`; the median over rows concentrates it.
    pub fn f2_estimate(&self) -> u64 {
        let mut rows: Vec<u64> = (0..self.depth)
            .map(|row| {
                self.cells[row * self.width..(row + 1) * self.width]
                    .iter()
                    .map(|&c| (c * c) as u64)
                    .sum()
            })
            .collect();
        rows.sort_unstable();
        let mid = rows.len() / 2;
        if rows.len() % 2 == 1 {
            rows[mid]
        } else {
            (rows[mid - 1] + rows[mid]) / 2
        }
    }

    /// Merges another sketch built with the **same coins** (cell-wise
    /// sum) — mergeable-summaries \[1\]: equals the sketch of the
    /// concatenated streams.
    ///
    /// # Panics
    ///
    /// Panics if dimensions or hashes differ.
    pub fn merge(&mut self, other: &CountSketch) {
        assert_eq!(
            (self.width, self.depth),
            (other.width, other.depth),
            "dimension mismatch"
        );
        assert_eq!(
            (&self.bucket_hashes, &self.sign_hashes),
            (&other.bucket_hashes, &other.sign_hashes),
            "sketches use different coins"
        );
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            *a += b;
        }
        self.stream_len += other.stream_len;
    }
}

impl FrequencySketch for CountSketch {
    fn update(&mut self, item: u64) {
        for row in 0..self.depth {
            let col = self.bucket_hashes[row].hash(item);
            self.cells[row * self.width + col] += self.sign_hashes[row].sign(item);
        }
        self.stream_len += 1;
    }

    fn estimate(&self, item: u64) -> u64 {
        self.estimate_signed(item).max(0) as u64
    }

    fn stream_len(&self) -> u64 {
        self.stream_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ZipfStream;
    use std::collections::HashMap;

    #[test]
    fn heavy_hitters_estimated_accurately() {
        let mut cs = CountSketch::new(1024, 5, &mut CoinFlips::from_seed(1));
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut stream = ZipfStream::new(10_000, 1.3, 9);
        let n = 50_000;
        for _ in 0..n {
            let a = stream.next_item();
            cs.update(a);
            *truth.entry(a).or_default() += 1;
        }
        // The top item's relative error should be small.
        let (&top, &f) = truth.iter().max_by_key(|(_, &f)| f).unwrap();
        let est = cs.estimate(top);
        let err = (est as f64 - f as f64).abs() / f as f64;
        assert!(err < 0.1, "top item {top}: est {est}, true {f}");
    }

    #[test]
    fn unbiasedness_rough_check() {
        // Mean estimate over many sketches of a mid-frequency item
        // should straddle the truth.
        let mut total = 0i64;
        let runs = 30;
        for seed in 0..runs {
            let mut cs = CountSketch::new(64, 1, &mut CoinFlips::from_seed(seed));
            for x in 0..2_000u64 {
                cs.update(x % 100);
            }
            total += cs.estimate_signed(7); // true count 20
        }
        let mean = total as f64 / runs as f64;
        assert!((mean - 20.0).abs() < 15.0, "mean {mean} far from 20");
    }

    #[test]
    fn estimates_can_decrease_not_monotone() {
        // Demonstrates non-monotonicity: an unrelated update with a
        // negative sign in the shared bucket lowers the estimate.
        let mut cs = CountSketch::new(2, 1, &mut CoinFlips::from_seed(3));
        for _ in 0..100 {
            cs.update(1);
        }
        let before = cs.estimate_signed(1);
        // Find an item with opposite sign in the same bucket.
        let bucket1 = cs.bucket_hashes[0].hash(1);
        let sign1 = cs.sign_hashes[0].sign(1);
        let other = (2..10_000u64)
            .find(|&x| {
                cs.bucket_hashes[0].hash(x) == bucket1 && cs.sign_hashes[0].sign(x) == -sign1
            })
            .expect("a colliding opposite-sign item exists");
        for _ in 0..10 {
            cs.update(other);
        }
        let after = cs.estimate_signed(1);
        assert_eq!(after, before - 10, "estimate decreased");
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let cs = CountSketch::new(16, 3, &mut CoinFlips::from_seed(4));
        assert_eq!(cs.estimate(5), 0);
        assert_eq!(cs.stream_len(), 0);
    }

    #[test]
    fn deterministic_given_coins() {
        let mk = || {
            let mut cs = CountSketch::new(32, 3, &mut CoinFlips::from_seed(8));
            for x in 0..500u64 {
                cs.update(x % 17);
            }
            cs
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn merge_equals_concatenated_stream() {
        let mk = || CountSketch::new(64, 3, &mut CoinFlips::from_seed(9));
        let mut left = mk();
        let mut right = mk();
        let mut whole = mk();
        for x in 0..2_000u64 {
            left.update(x % 23);
            whole.update(x % 23);
            right.update(x % 31);
            whole.update(x % 31);
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    #[should_panic(expected = "different coins")]
    fn merge_rejects_mismatched_coins() {
        let mut a = CountSketch::new(8, 2, &mut CoinFlips::from_seed(1));
        let b = CountSketch::new(8, 2, &mut CoinFlips::from_seed(2));
        a.merge(&b);
    }

    #[test]
    fn f2_estimate_tracks_second_moment() {
        // Zipf stream with known-ish F2; median-of-rows estimate
        // should land within ~25%.
        let mut cs = CountSketch::new(2048, 7, &mut CoinFlips::from_seed(10));
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut stream = ZipfStream::new(2_000, 1.2, 11);
        for _ in 0..40_000 {
            let a = stream.next_item();
            cs.update(a);
            *truth.entry(a).or_default() += 1;
        }
        let f2: u64 = truth.values().map(|&f| f * f).sum();
        let est = cs.f2_estimate();
        let rel = (est as f64 - f2 as f64).abs() / f2 as f64;
        assert!(rel < 0.25, "F2 est {est} vs {f2} (rel {rel})");
    }

    #[test]
    fn f2_of_singleton_stream_is_exact() {
        let mut cs = CountSketch::new(64, 3, &mut CoinFlips::from_seed(12));
        for _ in 0..100 {
            cs.update(5);
        }
        assert_eq!(cs.f2_estimate(), 100 * 100);
    }
}
