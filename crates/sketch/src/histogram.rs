//! A fixed-boundary histogram rank/quantile estimator.
//!
//! The paper's §4 uses the Quantiles sketch (rank within ±εn \[1\]) as
//! a running example of an (ε,δ)-bounded object. GK ([`crate::quantiles`])
//! covers the deterministic sequential case but resists
//! parallelization (its tuple list is order-sensitive). The classic
//! alternative that *does* parallelize is an **equi-width histogram**
//! over a bounded value domain: `b` buckets of atomic counters;
//! `rank(x)` is the count in buckets strictly below `x`'s, plus
//! (optionally) a part of `x`'s own bucket.
//!
//! * `rank_lower(x) ≤ true rank(x) ≤ rank_lower(x) + bucket_count(x)`,
//!   so the rank error is bounded by the heaviest bucket — a
//!   deterministic (ε, 0) bound of `n/b` for near-uniform data, or
//!   exactly `max bucket load` in general (exposed, not assumed).
//! * `rank_lower` is a **sum of monotonically growing counters** —
//!   precisely the shape of the IVL batched counter's read — so the
//!   concurrent version (in `ivl-concurrent`) is a monotone
//!   quantitative object and IVL by the Lemma 10 argument.

use crate::FrequencySketch;

/// A sequential equi-width histogram over `[0, domain)`.
///
/// # Examples
///
/// ```
/// use ivl_sketch::Histogram;
///
/// let mut h = Histogram::new(1_000, 100);
/// for v in 0..1_000u64 {
///     h.insert(v);
/// }
/// // True rank of 500 is 500; the histogram brackets it.
/// assert!(h.rank_lower(500) <= 500 && 500 <= h.rank_upper(500));
/// // With 10 values per bucket, the bracket width is 10.
/// assert_eq!(h.max_bucket_load(), 10);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    domain: u64,
    buckets: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equi-width buckets covering
    /// `[0, domain)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is 0 or `domain < buckets`.
    pub fn new(domain: u64, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(domain >= buckets as u64, "domain smaller than bucket count");
        Histogram {
            domain,
            buckets: vec![0; buckets],
            count: 0,
        }
    }

    /// The bucket index of value `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the domain.
    pub fn bucket_of(&self, x: u64) -> usize {
        assert!(x < self.domain, "value outside domain");
        ((x as u128 * self.buckets.len() as u128) / self.domain as u128) as usize
    }

    /// Inserts a value.
    pub fn insert(&mut self, x: u64) {
        let b = self.bucket_of(x);
        self.buckets[b] += 1;
        self.count += 1;
    }

    /// Number of values inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Lower bound on the rank of `x` (1-based rank of the first
    /// occurrence): values in buckets strictly below `x`'s.
    pub fn rank_lower(&self, x: u64) -> u64 {
        let b = self.bucket_of(x);
        self.buckets[..b].iter().sum()
    }

    /// Upper bound on the rank of `x`: `rank_lower` plus `x`'s whole
    /// bucket.
    pub fn rank_upper(&self, x: u64) -> u64 {
        let b = self.bucket_of(x);
        self.buckets[..=b].iter().sum()
    }

    /// The maximum bucket load — the exact additive rank-error bound
    /// of this histogram on the data it actually saw.
    pub fn max_bucket_load(&self) -> u64 {
        self.buckets.iter().copied().max().unwrap_or(0)
    }

    /// A value whose rank is approximately `rank` (returns the left
    /// edge of the first bucket whose cumulative count reaches
    /// `rank`).
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `rank` exceeds the count.
    pub fn value_at_rank(&self, rank: u64) -> u64 {
        assert!(self.count > 0, "empty histogram");
        assert!((1..=self.count).contains(&rank), "rank out of range");
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return (i as u128 * self.domain as u128 / self.buckets.len() as u128) as u64;
            }
        }
        self.domain - 1
    }

    /// Approximate `phi`-quantile.
    pub fn quantile(&self, phi: f64) -> u64 {
        let rank = ((phi * self.count as f64).ceil() as u64).clamp(1, self.count.max(1));
        self.value_at_rank(rank)
    }

    /// Merges another histogram with identical shape (bucket-wise
    /// sum) — mergeable \[1\].
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.domain, other.domain, "domain mismatch");
        assert_eq!(self.buckets.len(), other.buckets.len(), "bucket mismatch");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }
}

/// [`FrequencySketch`]-flavoured adapter is deliberately absent: a
/// histogram estimates *ranks*, not point frequencies. The marker impl
/// below documents the distinction for readers grepping the trait.
const _: Option<&dyn FrequencySketch> = None;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ranks_bracket_truth() {
        let mut h = Histogram::new(1_000, 50);
        let mut values: Vec<u64> = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(0..1_000);
            h.insert(v);
            values.push(v);
        }
        values.sort_unstable();
        for probe in [0u64, 13, 250, 500, 900, 999] {
            let true_rank_lo = values.partition_point(|&v| v < probe) as u64;
            let lo = h.rank_lower(probe);
            let hi = h.rank_upper(probe);
            assert!(
                lo <= true_rank_lo && true_rank_lo <= hi,
                "probe {probe}: true {true_rank_lo} outside [{lo}, {hi}]"
            );
            assert!(hi - lo <= h.max_bucket_load());
        }
    }

    #[test]
    fn uniform_data_error_near_n_over_b() {
        let mut h = Histogram::new(10_000, 100);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        for _ in 0..n {
            h.insert(rng.gen_range(0..10_000));
        }
        // Max bucket ≈ n/b = 500 with slack for variance.
        assert!(
            h.max_bucket_load() < 2 * (n / 100),
            "{}",
            h.max_bucket_load()
        );
    }

    #[test]
    fn quantiles_are_ordered() {
        let mut h = Histogram::new(1_000, 64);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20_000 {
            h.insert(rng.gen_range(0..1_000));
        }
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.5);
        let q75 = h.quantile(0.75);
        assert!(q25 <= q50 && q50 <= q75, "{q25} {q50} {q75}");
        assert!((200..300).contains(&q25), "{q25}");
        assert!((450..550).contains(&q50), "{q50}");
        assert!((700..800).contains(&q75), "{q75}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Histogram::new(100, 10);
        let mut b = Histogram::new(100, 10);
        let mut u = Histogram::new(100, 10);
        for v in 0..50 {
            a.insert(v);
            u.insert(v);
        }
        for v in 50..100 {
            b.insert(v);
            u.insert(v);
        }
        a.merge(&b);
        assert_eq!(a, u);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_rejected() {
        let mut h = Histogram::new(10, 2);
        h.insert(10);
    }

    #[test]
    fn bucket_mapping_covers_domain_evenly() {
        let h = Histogram::new(100, 4);
        assert_eq!(h.bucket_of(0), 0);
        assert_eq!(h.bucket_of(24), 0);
        assert_eq!(h.bucket_of(25), 1);
        assert_eq!(h.bucket_of(99), 3);
    }
}
