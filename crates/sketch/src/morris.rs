//! Morris's approximate counter (CACM 1978), analyzed by Flajolet
//! (BIT 1985) — the oldest (ε,δ)-bounded object \[27\]\[12\].
//!
//! The counter stores only an exponent `X`. `update()` increments `X`
//! with probability `b^−X` for base `b = 1 + a`; `query()` returns
//! `(b^X − 1)/a`, an unbiased estimate of the number of updates with
//! variance `≈ a·n²/2`. Small `a` trades memory (larger `X`) for
//! accuracy: `Var = a n²/2`, so by Chebyshev the estimate is within
//! `εn` of `n` with probability `1 − a/(2ε²)`.
//!
//! The estimate is a monotone function of `X`, and `X` only grows — a
//! *monotone quantitative object* in the paper's sense, so its lock-free
//! parallelization (in `ivl-concurrent`) is IVL-checkable with the
//! interval fast path.

use crate::coins::CoinFlips;

/// A Morris approximate counter with base `1 + a`.
///
/// # Examples
///
/// ```
/// use ivl_sketch::{CoinFlips, MorrisCounter};
///
/// let mut m = MorrisCounter::new(0.05, CoinFlips::from_seed(1));
/// for _ in 0..10_000 {
///     m.update();
/// }
/// // The whole state is one small exponent...
/// assert!(m.exponent() < 300);
/// // ...yet the estimate tracks the count.
/// assert!((m.estimate() - 10_000.0).abs() / 10_000.0 < 0.5);
/// ```
#[derive(Clone, Debug)]
pub struct MorrisCounter {
    /// The stored exponent `X`.
    exponent: u32,
    /// Accuracy parameter `a` (base is `1 + a`).
    a: f64,
    coins: CoinFlips,
    updates: u64,
}

impl MorrisCounter {
    /// Creates a counter with accuracy parameter `a` (smaller = more
    /// accurate; classic Morris is `a = 1`).
    ///
    /// # Panics
    ///
    /// Panics unless `a > 0`.
    pub fn new(a: f64, coins: CoinFlips) -> Self {
        assert!(a > 0.0, "accuracy parameter must be positive");
        MorrisCounter {
            exponent: 0,
            a,
            coins,
            updates: 0,
        }
    }

    /// The classic Morris counter (`a = 1`, base 2).
    pub fn classic(coins: CoinFlips) -> Self {
        Self::new(1.0, coins)
    }

    /// Probability that the next update increments the exponent.
    pub fn increment_probability(&self) -> f64 {
        (1.0 + self.a).powi(-(self.exponent as i32))
    }

    /// Registers one event.
    pub fn update(&mut self) {
        let p = self.increment_probability();
        if self.coins.next_bool(p) {
            self.exponent += 1;
        }
        self.updates += 1;
    }

    /// The estimate `((1+a)^X − 1)/a` of the number of events.
    pub fn estimate(&self) -> f64 {
        ((1.0 + self.a).powi(self.exponent as i32) - 1.0) / self.a
    }

    /// The stored exponent `X` (the entire state of the sketch).
    pub fn exponent(&self) -> u32 {
        self.exponent
    }

    /// Exact number of updates performed (ground truth for tests).
    pub fn true_count(&self) -> u64 {
        self.updates
    }

    /// The (ε,δ) relation: for relative error `eps`, the failure
    /// probability by Chebyshev is `δ ≤ a / (2 ε²)`.
    pub fn delta_for(&self, eps: f64) -> f64 {
        self.a / (2.0 * eps * eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_first_increment() {
        // X=0 -> increment probability 1: first update always counts.
        let mut m = MorrisCounter::classic(CoinFlips::from_seed(1));
        assert_eq!(m.estimate(), 0.0);
        m.update();
        assert_eq!(m.exponent(), 1);
        assert_eq!(m.estimate(), 1.0);
    }

    #[test]
    fn estimate_tracks_count_on_average() {
        // Average over independent counters: mean relative error small.
        let n = 10_000u64;
        let runs = 40;
        let mut total = 0.0;
        for seed in 0..runs {
            let mut m = MorrisCounter::new(0.1, CoinFlips::from_seed(seed));
            for _ in 0..n {
                m.update();
            }
            total += m.estimate();
        }
        let mean = total / runs as f64;
        let rel = (mean - n as f64).abs() / n as f64;
        assert!(rel < 0.05, "mean {mean} vs {n} (rel err {rel})");
    }

    #[test]
    fn smaller_a_is_more_accurate() {
        let spread = |a: f64| -> f64 {
            let n = 5_000u64;
            let mut errs = 0.0;
            for seed in 100..130 {
                let mut m = MorrisCounter::new(a, CoinFlips::from_seed(seed));
                for _ in 0..n {
                    m.update();
                }
                errs += ((m.estimate() - n as f64) / n as f64).powi(2);
            }
            errs
        };
        assert!(spread(0.05) < spread(1.0), "a=0.05 should beat a=1.0");
    }

    #[test]
    fn exponent_is_monotone() {
        let mut m = MorrisCounter::classic(CoinFlips::from_seed(5));
        let mut last = 0;
        for _ in 0..10_000 {
            m.update();
            assert!(m.exponent() >= last);
            last = m.exponent();
        }
    }

    #[test]
    fn chebyshev_bound_formula() {
        let m = MorrisCounter::new(0.02, CoinFlips::from_seed(6));
        assert!((m.delta_for(0.1) - 1.0).abs() < 1e-12); // 0.02 / 0.02
        assert!(m.delta_for(0.5) < 0.05);
    }

    #[test]
    fn deterministic_given_coins() {
        let run = || {
            let mut m = MorrisCounter::classic(CoinFlips::from_seed(9));
            for _ in 0..1000 {
                m.update();
            }
            m.exponent()
        };
        assert_eq!(run(), run());
    }
}
