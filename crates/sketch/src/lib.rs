//! Sequential (ε,δ)-bounded data sketches, built from scratch.
//!
//! The paper's Theorem 6 transfers the *sequential* error analysis of
//! any (ε,δ)-bounded object to concurrent IVL implementations. This
//! crate provides the sequential objects (and their analyses as
//! executable assertions):
//!
//! * [`countmin`] — the CountMin sketch of Cormode & Muthukrishnan
//!   (§5's running example): `f_a ≤ f̂_a ≤ f_a + αn` with probability
//!   `1 − δ`.
//! * [`countsketch`] — the median-of-signs CountSketch (an alternative
//!   frequency estimator with two-sided error).
//! * [`morris`] — Morris's approximate counter \[27\]\[12\].
//! * [`hll`] — HyperLogLog distinct counting \[13\]\[18\].
//! * [`spacesaving`] — SpaceSaving top-k / heavy hitters \[26\].
//! * [`quantiles`] — Greenwald–Khanna ε-approximate quantiles
//!   (deterministic rank error, the (ε, 0) end of the spectrum).
//! * [`hash`] — Carter–Wegman universal hashing over the Mersenne
//!   prime `2^61 − 1`, built from scratch.
//! * [`coins`] — the explicit coin-flip vector `c̄ ∈ Ω^∞` of the
//!   paper's §2.2: a randomized sketch is a *distribution over
//!   deterministic sketches*, realized here by constructing each
//!   sketch from a [`coins::CoinFlips`] value. Two sketches built from
//!   equal coin flips are the *same deterministic algorithm*.
//! * [`stream`] — synthetic workload generators (uniform, Zipf,
//!   adversarial bursts) standing in for the proprietary traces the
//!   sketch literature evaluates on.
//! * [`cm_spec`] — [`ivl_spec::ObjectSpec`] adapters so recorded
//!   concurrent histories can be checked for IVL against `CM(c̄)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cm_spec;
pub mod coins;
pub mod countmin;
pub mod countsketch;
pub mod hash;
pub mod histogram;
pub mod hll;
pub mod kll;
pub mod morris;
pub mod quantiles;
pub mod spacesaving;
pub mod stream;

pub use coins::CoinFlips;
pub use countmin::{CountMin, CountMinConservative, CountMinParams};
pub use countsketch::CountSketch;
pub use histogram::Histogram;
pub use hll::HyperLogLog;
pub use kll::KllSketch;
pub use morris::MorrisCounter;
pub use quantiles::GkQuantiles;
pub use spacesaving::SpaceSaving;

/// A point-frequency estimator over `u64` items.
///
/// Implemented by [`CountMin`], [`CountSketch`] and [`SpaceSaving`];
/// lets benches and concurrent wrappers treat them uniformly.
pub trait FrequencySketch {
    /// Processes one occurrence of `item`.
    fn update(&mut self, item: u64);

    /// Estimates how many times `item` has been updated.
    fn estimate(&self, item: u64) -> u64;

    /// Total updates processed (the stream length `n`).
    fn stream_len(&self) -> u64;
}
