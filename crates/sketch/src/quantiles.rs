//! Greenwald–Khanna ε-approximate quantiles (SIGMOD 2001) — the
//! deterministic ((εn, 0)-bounded) end of the quantitative-object
//! spectrum, complementing the probabilistic sketches. The paper's §4
//! cites the Quantiles sketch of \[1\] as its example of rank-error
//! bounds; GK provides the same interface with a deterministic
//! guarantee.
//!
//! The summary keeps tuples `(v_i, g_i, Δ_i)` sorted by value, where
//! `g_i` is the gap in minimum rank to the previous tuple and `Δ_i`
//! the uncertainty. Invariant: `g_i + Δ_i ≤ ⌊2εn⌋`, which bounds any
//! rank query's error by `εn`.

/// One GK summary tuple.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Tuple {
    value: u64,
    /// Gap in min-rank from the previous tuple.
    g: u64,
    /// Rank uncertainty.
    delta: u64,
}

/// A Greenwald–Khanna ε-approximate quantile summary over `u64`
/// values.
///
/// # Examples
///
/// ```
/// use ivl_sketch::GkQuantiles;
///
/// let mut gk = GkQuantiles::new(0.01);
/// for v in 0..10_000u64 {
///     gk.insert(v);
/// }
/// let median = gk.query_quantile(0.5);
/// assert!((4800..=5200).contains(&median));
/// // Sub-linear space:
/// assert!(gk.summary_size() < 1_000);
/// ```
#[derive(Clone, Debug)]
pub struct GkQuantiles {
    epsilon: f64,
    tuples: Vec<Tuple>,
    count: u64,
    since_compress: u64,
}

impl GkQuantiles {
    /// Creates a summary with rank-error parameter `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon < 1`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        GkQuantiles {
            epsilon,
            tuples: Vec::new(),
            count: 0,
            since_compress: 0,
        }
    }

    /// The rank-error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of values inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of tuples currently stored (the space the summary uses —
    /// `O((1/ε) log εn)`).
    pub fn summary_size(&self) -> usize {
        self.tuples.len()
    }

    fn two_eps_n(&self) -> u64 {
        (2.0 * self.epsilon * self.count as f64).floor() as u64
    }

    /// Inserts one value.
    pub fn insert(&mut self, value: u64) {
        self.count += 1;
        let pos = self.tuples.partition_point(|t| t.value < value);
        let delta = if pos == 0 || pos == self.tuples.len() {
            0 // new minimum or maximum is known exactly
        } else {
            self.two_eps_n().saturating_sub(1)
        };
        self.tuples.insert(pos, Tuple { value, g: 1, delta });
        self.since_compress += 1;
        if self.since_compress as f64 >= 1.0 / (2.0 * self.epsilon) {
            self.compress();
            self.since_compress = 0;
        }
    }

    /// Merges adjacent tuples whose combined uncertainty stays within
    /// the invariant.
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let cap = self.two_eps_n();
        let mut out: Vec<Tuple> = Vec::with_capacity(self.tuples.len());
        out.push(self.tuples[0]);
        for i in 1..self.tuples.len() {
            let t = self.tuples[i];
            let last = *out.last().expect("non-empty");
            let is_last_input = i == self.tuples.len() - 1;
            // Merge `last` into `t` when allowed; never merge away the
            // first or last tuple (min/max must stay exact).
            if out.len() > 1 && !is_last_input && last.g + t.g + t.delta <= cap {
                out.pop();
                out.push(Tuple {
                    value: t.value,
                    g: last.g + t.g,
                    delta: t.delta,
                });
            } else {
                out.push(t);
            }
        }
        self.tuples = out;
    }

    /// Returns a value whose rank differs from `rank` by at most
    /// `εn` (ranks are 1-based).
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty or `rank` is out of `1..=count`.
    pub fn query_rank(&self, rank: u64) -> u64 {
        assert!(!self.tuples.is_empty(), "empty summary");
        assert!((1..=self.count).contains(&rank), "rank out of range");
        // Accept the first tuple with r − rmin ≤ εn and rmax − r ≤ εn;
        // the GK invariant (g_i + Δ_i ≤ 2εn) guarantees one exists.
        let eps_n = self.epsilon * self.count as f64;
        let mut rmin = 0u64;
        for t in &self.tuples {
            rmin += t.g;
            let rmax = rmin + t.delta;
            if rank as f64 - rmin as f64 <= eps_n && rmax as f64 - rank as f64 <= eps_n {
                return t.value;
            }
        }
        self.tuples.last().expect("non-empty").value
    }

    /// Returns a value at approximately the `phi`-quantile
    /// (`0 ≤ phi ≤ 1`).
    pub fn query_quantile(&self, phi: f64) -> u64 {
        let rank = ((phi * self.count as f64).ceil() as u64).clamp(1, self.count.max(1));
        self.query_rank(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// True rank error of `value` against a sorted ground truth:
    /// distance from `rank` to the closest rank where `value` occurs.
    fn rank_error(sorted: &[u64], value: u64, rank: u64) -> u64 {
        let lo = sorted.partition_point(|&x| x < value) as u64 + 1;
        let hi = sorted.partition_point(|&x| x <= value) as u64;
        if rank < lo {
            lo - rank
        } else {
            rank.saturating_sub(hi)
        }
    }

    fn check_stream(values: Vec<u64>, eps: f64) {
        let mut gk = GkQuantiles::new(eps);
        for &v in &values {
            gk.insert(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let n = values.len() as u64;
        let allow = (eps * n as f64).ceil() as u64 + 1;
        for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let rank = ((phi * n as f64).ceil() as u64).clamp(1, n);
            let v = gk.query_rank(rank);
            let err = rank_error(&sorted, v, rank);
            assert!(
                err <= allow,
                "phi={phi}: value {v} has rank error {err} > {allow}"
            );
        }
    }

    #[test]
    fn uniform_random_stream() {
        let mut rng = StdRng::seed_from_u64(1);
        let values: Vec<u64> = (0..20_000).map(|_| rng.gen_range(0..1_000_000)).collect();
        check_stream(values, 0.01);
    }

    #[test]
    fn sorted_stream() {
        check_stream((0..10_000).collect(), 0.01);
    }

    #[test]
    fn reverse_sorted_stream() {
        check_stream((0..10_000).rev().collect(), 0.01);
    }

    #[test]
    fn heavily_duplicated_stream() {
        let mut rng = StdRng::seed_from_u64(2);
        let values: Vec<u64> = (0..20_000).map(|_| rng.gen_range(0..10)).collect();
        check_stream(values, 0.02);
    }

    #[test]
    fn summary_is_sublinear() {
        let mut gk = GkQuantiles::new(0.01);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50_000 {
            gk.insert(rng.gen_range(0..1_000_000));
        }
        assert!(
            gk.summary_size() < 5_000,
            "summary holds {} tuples for 50k inserts",
            gk.summary_size()
        );
    }

    #[test]
    fn median_of_known_distribution() {
        let mut gk = GkQuantiles::new(0.01);
        for v in 0..10_001u64 {
            gk.insert(v);
        }
        let med = gk.query_quantile(0.5);
        assert!((4800..=5200).contains(&med), "median {med}");
    }

    #[test]
    #[should_panic(expected = "empty summary")]
    fn empty_query_panics() {
        GkQuantiles::new(0.1).query_rank(1);
    }

    #[test]
    fn extremes_are_exact() {
        let mut gk = GkQuantiles::new(0.05);
        for v in [5u64, 3, 9, 1, 7] {
            gk.insert(v);
        }
        assert_eq!(gk.query_rank(1), 1);
        assert_eq!(gk.query_rank(5), 9);
    }
}
