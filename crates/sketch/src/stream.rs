//! Synthetic stream generators.
//!
//! The sketch literature evaluates on skewed real traces (network
//! packets, query logs); lacking those, these generators produce the
//! same workload classes: uniform, Zipf-distributed (the standard model
//! of heavy-hitter workloads), and adversarial bursts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Zipf-distributed item stream over alphabet `0..alphabet` with
/// exponent `s` (items are ranked: item 0 is the most frequent).
///
/// Sampling is inverse-CDF with a precomputed table and binary search —
/// `O(log |alphabet|)` per draw, exact (no rejection).
#[derive(Clone, Debug)]
pub struct ZipfStream {
    cdf: Vec<f64>,
    rng: StdRng,
    drawn: u64,
}

impl ZipfStream {
    /// Creates a stream over `alphabet` items with Zipf exponent
    /// `s > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet` is 0 or `s ≤ 0`.
    pub fn new(alphabet: usize, s: f64, seed: u64) -> Self {
        assert!(alphabet > 0, "alphabet must be non-empty");
        assert!(s > 0.0, "exponent must be positive");
        let mut cdf = Vec::with_capacity(alphabet);
        let mut acc = 0.0;
        for k in 1..=alphabet {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfStream {
            cdf,
            rng: StdRng::seed_from_u64(seed),
            drawn: 0,
        }
    }

    /// Draws the next item.
    pub fn next_item(&mut self) -> u64 {
        self.drawn += 1;
        let u: f64 = self.rng.gen();
        self.cdf.partition_point(|&c| c < u) as u64
    }

    /// Items drawn so far.
    pub fn drawn(&self) -> u64 {
        self.drawn
    }

    /// The alphabet size.
    pub fn alphabet(&self) -> usize {
        self.cdf.len()
    }
}

impl Iterator for ZipfStream {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.next_item())
    }
}

/// A uniform item stream over `0..alphabet`.
#[derive(Clone, Debug)]
pub struct UniformStream {
    alphabet: u64,
    rng: StdRng,
}

impl UniformStream {
    /// Creates a uniform stream over `alphabet` items.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet` is 0.
    pub fn new(alphabet: usize, seed: u64) -> Self {
        assert!(alphabet > 0, "alphabet must be non-empty");
        UniformStream {
            alphabet: alphabet as u64,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next item.
    pub fn next_item(&mut self) -> u64 {
        self.rng.gen_range(0..self.alphabet)
    }
}

impl Iterator for UniformStream {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.next_item())
    }
}

/// An adversarial burst stream: long runs of a single hot item
/// interleaved with uniform background noise — the worst case for
/// staleness-based (delegation-style) concurrent sketches, where a
/// whole burst can hide in thread-local buffers.
#[derive(Clone, Debug)]
pub struct BurstStream {
    alphabet: u64,
    burst_len: u64,
    hot: u64,
    in_burst: u64,
    rng: StdRng,
}

impl BurstStream {
    /// Creates a stream alternating `burst_len`-long bursts of a hot
    /// item with equally long uniform stretches.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet` is 0 or `burst_len` is 0.
    pub fn new(alphabet: usize, burst_len: u64, seed: u64) -> Self {
        assert!(alphabet > 0 && burst_len > 0);
        BurstStream {
            alphabet: alphabet as u64,
            burst_len,
            hot: 0,
            in_burst: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next item.
    pub fn next_item(&mut self) -> u64 {
        if self.in_burst < self.burst_len {
            self.in_burst += 1;
            self.hot
        } else if self.in_burst < 2 * self.burst_len {
            self.in_burst += 1;
            self.rng.gen_range(0..self.alphabet)
        } else {
            self.in_burst = 0;
            self.hot = self.rng.gen_range(0..self.alphabet);
            self.hot
        }
    }
}

impl Iterator for BurstStream {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.next_item())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn zipf_is_skewed_and_ranked() {
        let mut s = ZipfStream::new(1000, 1.2, 1);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(s.next_item()).or_default() += 1;
        }
        let c0 = counts.get(&0).copied().unwrap_or(0);
        let c10 = counts.get(&10).copied().unwrap_or(0);
        let c100 = counts.get(&100).copied().unwrap_or(0);
        assert!(c0 > c10, "rank 0 ({c0}) should beat rank 10 ({c10})");
        assert!(c10 > c100, "rank 10 ({c10}) should beat rank 100 ({c100})");
    }

    #[test]
    fn zipf_items_in_alphabet() {
        let mut s = ZipfStream::new(50, 1.0, 2);
        for _ in 0..10_000 {
            assert!(s.next_item() < 50);
        }
    }

    #[test]
    fn zipf_is_reproducible() {
        let a: Vec<u64> = ZipfStream::new(100, 1.1, 7).take(100).collect();
        let b: Vec<u64> = ZipfStream::new(100, 1.1, 7).take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_covers_alphabet() {
        let mut s = UniformStream::new(10, 3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[s.next_item() as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn bursts_have_long_runs() {
        let mut s = BurstStream::new(1000, 50, 4);
        let first: Vec<u64> = (0..50).map(|_| s.next_item()).collect();
        assert!(first.windows(2).all(|w| w[0] == w[1]), "burst is constant");
    }
}
