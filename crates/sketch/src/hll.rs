//! HyperLogLog distinct counting (Flajolet et al. 2007; engineering
//! per Heule et al. \[18\]).
//!
//! `m = 2^b` registers; each item is hashed to 64 well-mixed bits, the
//! first `b` select a register and the register keeps the **maximum**
//! number of leading zeros (+1) of the remaining bits. The estimate is
//! the bias-corrected harmonic mean `α_m · m² / Σ 2^{−M[j]}`, with the
//! standard linear-counting correction for small cardinalities.
//! Standard error is `≈ 1.04/√m`.
//!
//! Registers are **max-registers**: state only grows, and the estimate
//! is a monotone function of the register vector — the second monotone
//! quantitative object family of the workspace (`ivl-concurrent`
//! parallelizes it with CAS-max and checks IVL via the interval fast
//! path).

use crate::coins::CoinFlips;
use crate::hash::MixHash;

/// A HyperLogLog sketch with `2^precision` registers.
///
/// # Examples
///
/// ```
/// use ivl_sketch::{CoinFlips, HyperLogLog};
///
/// let mut coins = CoinFlips::from_seed(7);
/// let mut hll = HyperLogLog::new(12, &mut coins);
/// for x in 0..10_000u64 {
///     hll.update(x);
///     hll.update(x); // duplicates don't inflate the estimate
/// }
/// let est = hll.estimate();
/// assert!((est - 10_000.0).abs() / 10_000.0 < 4.0 * hll.standard_error());
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct HyperLogLog {
    precision: u32,
    registers: Vec<u8>,
    hash: MixHash,
}

impl HyperLogLog {
    /// Creates a sketch with `2^precision` registers (`4 ≤ precision ≤
    /// 16`), drawing its hash from `coins`.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is outside `[4, 16]`.
    pub fn new(precision: u32, coins: &mut CoinFlips) -> Self {
        assert!(
            (4..=16).contains(&precision),
            "precision must be in [4, 16]"
        );
        HyperLogLog {
            precision,
            registers: vec![0; 1 << precision],
            hash: MixHash::draw(coins),
        }
    }

    /// Number of registers `m`.
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// The register index and rank contribution of `item` — exposed so
    /// the concurrent parallelization applies *the same deterministic
    /// mapping* (same coin flips ⇒ same algorithm).
    pub fn route(&self, item: u64) -> (usize, u8) {
        let h = self.hash.hash(item);
        let idx = (h >> (64 - self.precision)) as usize;
        let rest = h << self.precision;
        // Rank: leading zeros of the remaining bits + 1, capped.
        let rank = (rest.leading_zeros() + 1).min(64 - self.precision + 1) as u8;
        (idx, rank)
    }

    /// Observes `item`.
    pub fn update(&mut self, item: u64) {
        let (idx, rank) = self.route(item);
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Bias-correction constant `α_m`.
    fn alpha(&self) -> f64 {
        let m = self.registers.len() as f64;
        match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        }
    }

    /// Estimates the number of distinct items observed.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = self.alpha() * m * m / sum;
        if raw <= 2.5 * m {
            // Small-range (linear counting) correction.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// The standard error `1.04/√m` of the estimate.
    pub fn standard_error(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }

    /// Read-only register view.
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Merges another sketch built with the *same coins* (register-wise
    /// max) — the mergeability property of \[1\].
    ///
    /// # Panics
    ///
    /// Panics if the sketches have different precision or hashes.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        assert_eq!(self.hash, other.hash, "sketches use different coins");
        self.merge_registers(&other.registers);
    }

    /// Merges a raw register vector (register-wise max) — used by
    /// concurrent implementations to install a loaded snapshot into a
    /// sequential sketch for estimation.
    ///
    /// # Panics
    ///
    /// Panics if `regs` has a different length.
    pub fn merge_registers(&mut self, regs: &[u8]) {
        assert_eq!(regs.len(), self.registers.len(), "register count mismatch");
        for (a, &b) in self.registers.iter_mut().zip(regs) {
            *a = (*a).max(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_within_a_few_standard_errors() {
        let mut coins = CoinFlips::from_seed(1);
        let mut hll = HyperLogLog::new(12, &mut coins);
        let n = 100_000u64;
        for x in 0..n {
            hll.update(x);
        }
        let est = hll.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(
            rel < 4.0 * hll.standard_error(),
            "estimate {est} vs {n}: rel err {rel}"
        );
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut coins = CoinFlips::from_seed(2);
        let mut hll = HyperLogLog::new(10, &mut coins);
        for _ in 0..100 {
            for x in 0..500u64 {
                hll.update(x);
            }
        }
        let est = hll.estimate();
        assert!((est - 500.0).abs() / 500.0 < 0.15, "est {est}");
    }

    #[test]
    fn small_range_uses_linear_counting() {
        let mut coins = CoinFlips::from_seed(3);
        let mut hll = HyperLogLog::new(12, &mut coins);
        for x in 0..10u64 {
            hll.update(x);
        }
        let est = hll.estimate();
        assert!((est - 10.0).abs() <= 2.0, "small-range est {est}");
    }

    #[test]
    fn registers_are_monotone() {
        let mut coins = CoinFlips::from_seed(4);
        let mut hll = HyperLogLog::new(8, &mut coins);
        let mut prev = hll.registers().to_vec();
        for x in 0..10_000u64 {
            hll.update(x);
            for (a, b) in hll.registers().iter().zip(&prev) {
                assert!(a >= b, "register decreased");
            }
            prev = hll.registers().to_vec();
        }
    }

    #[test]
    fn merge_equals_union() {
        let mut coins = CoinFlips::from_seed(5);
        let proto = HyperLogLog::new(10, &mut coins);
        let mut a = proto.clone();
        let mut b = proto.clone();
        let mut u = proto.clone();
        for x in 0..3000u64 {
            a.update(x);
            u.update(x);
        }
        for x in 2000..6000u64 {
            b.update(x);
            u.update(x);
        }
        a.merge(&b);
        assert_eq!(a, u, "merge must equal processing the union");
    }

    #[test]
    #[should_panic(expected = "different coins")]
    fn merge_rejects_mismatched_coins() {
        let mut c1 = CoinFlips::from_seed(6);
        let mut c2 = CoinFlips::from_seed(7);
        let mut a = HyperLogLog::new(8, &mut c1);
        let b = HyperLogLog::new(8, &mut c2);
        a.merge(&b);
    }

    #[test]
    fn route_is_stable() {
        let mut coins = CoinFlips::from_seed(8);
        let hll = HyperLogLog::new(8, &mut coins);
        let (i1, r1) = hll.route(12345);
        let (i2, r2) = hll.route(12345);
        assert_eq!((i1, r1), (i2, r2));
        assert!(i1 < hll.num_registers());
        assert!(r1 >= 1);
    }
}
