//! SpaceSaving (Metwally, Agrawal, El Abbadi, ICDT 2005): top-k /
//! heavy-hitters with `k` counters \[26\].
//!
//! Invariants maintained (and tested):
//!
//! * every monitored item's stored count **over**-estimates its true
//!   frequency by at most its stored `error`;
//! * the minimum stored count is at most `n/k`, so any item with true
//!   frequency above `n/k` is guaranteed to be monitored;
//! * estimates never under-estimate: `f_a ≤ f̂_a ≤ f_a + n/k` — the
//!   (ε, 0) guarantee with `ε = n/k`.
//!
//! The implementation keeps a `BTreeSet<(count, item)>` alongside the
//! item map for `O(log k)` updates.

use std::collections::{BTreeSet, HashMap};

use crate::FrequencySketch;

/// One monitored counter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Slot {
    count: u64,
    /// Upper bound on over-estimation inherited at takeover time.
    error: u64,
}

/// The SpaceSaving top-k sketch.
///
/// # Examples
///
/// ```
/// use ivl_sketch::{FrequencySketch, SpaceSaving};
///
/// let mut ss = SpaceSaving::new(8);
/// for _ in 0..100 {
///     ss.update(42); // a heavy hitter
/// }
/// for x in 0..50u64 {
///     ss.update(x); // light noise
/// }
/// assert!(ss.is_monitored(42));
/// assert!(ss.estimate(42) >= 100);
/// assert_eq!(ss.guaranteed_above(90), vec![42]);
/// ```
#[derive(Clone, Debug)]
pub struct SpaceSaving {
    capacity: usize,
    slots: HashMap<u64, Slot>,
    /// Orders monitored items by (count, item) for O(log k) min
    /// lookup/eviction.
    order: BTreeSet<(u64, u64)>,
    stream_len: u64,
}

impl SpaceSaving {
    /// Creates a sketch monitoring at most `capacity` items
    /// (`ε = n/capacity`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SpaceSaving {
            capacity,
            slots: HashMap::with_capacity(capacity),
            order: BTreeSet::new(),
            stream_len: 0,
        }
    }

    /// The capacity `k`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The additive error bound `n/k` for the current stream.
    pub fn epsilon(&self) -> f64 {
        self.stream_len as f64 / self.capacity as f64
    }

    /// The monitored items with their (count, error) pairs, highest
    /// count first.
    pub fn top(&self) -> Vec<(u64, u64, u64)> {
        let mut v: Vec<(u64, u64, u64)> = self
            .slots
            .iter()
            .map(|(&item, s)| (item, s.count, s.error))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Whether `item` is currently monitored.
    pub fn is_monitored(&self, item: u64) -> bool {
        self.slots.contains_key(&item)
    }

    /// Items guaranteed to exceed frequency `threshold` (count − error
    /// ≥ threshold).
    pub fn guaranteed_above(&self, threshold: u64) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .slots
            .iter()
            .filter(|(_, s)| s.count.saturating_sub(s.error) >= threshold)
            .map(|(&item, _)| item)
            .collect();
        v.sort_unstable();
        v
    }

    /// Merges another SpaceSaving summary (Agarwal et al.'s mergeable
    /// heavy-hitters \[1\]): counts and errors of common items add;
    /// items unique to one side inherit the other side's minimum count
    /// as extra error; the result is pruned back to `capacity`. The
    /// merged summary keeps the `f ≤ f̂ ≤ f + (n₁+n₂)/k` guarantee.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn merge(&mut self, other: &SpaceSaving) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let self_min = if self.slots.len() < self.capacity {
            0
        } else {
            self.order.iter().next().map_or(0, |&(c, _)| c)
        };
        let other_min = if other.slots.len() < other.capacity {
            0
        } else {
            other.order.iter().next().map_or(0, |&(c, _)| c)
        };

        let mut merged: Vec<(u64, Slot)> = Vec::with_capacity(self.slots.len() + other.slots.len());
        for (&item, s) in &self.slots {
            match other.slots.get(&item) {
                Some(o) => merged.push((
                    item,
                    Slot {
                        count: s.count + o.count,
                        error: s.error + o.error,
                    },
                )),
                None => merged.push((
                    item,
                    Slot {
                        count: s.count + other_min,
                        error: s.error + other_min,
                    },
                )),
            }
        }
        for (&item, o) in &other.slots {
            if !self.slots.contains_key(&item) {
                merged.push((
                    item,
                    Slot {
                        count: o.count + self_min,
                        error: o.error + self_min,
                    },
                ));
            }
        }
        merged.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(&b.0)));
        merged.truncate(self.capacity);

        self.slots.clear();
        self.order.clear();
        for (item, slot) in merged {
            self.slots.insert(item, slot);
            self.order.insert((slot.count, item));
        }
        self.stream_len += other.stream_len;
    }
}

impl FrequencySketch for SpaceSaving {
    fn update(&mut self, item: u64) {
        self.stream_len += 1;
        if let Some(slot) = self.slots.get_mut(&item) {
            assert!(self.order.remove(&(slot.count, item)));
            slot.count += 1;
            self.order.insert((slot.count, item));
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.insert(item, Slot { count: 1, error: 0 });
            self.order.insert((1, item));
            return;
        }
        // Evict the minimum and take over its count.
        let &(min_count, victim) = self.order.iter().next().expect("capacity > 0");
        self.order.remove(&(min_count, victim));
        self.slots.remove(&victim);
        self.slots.insert(
            item,
            Slot {
                count: min_count + 1,
                error: min_count,
            },
        );
        self.order.insert((min_count + 1, item));
    }

    fn estimate(&self, item: u64) -> u64 {
        self.slots.get(&item).map_or(
            // Unmonitored items: bounded by the current minimum count
            // (0 if the table is not yet full).
            if self.slots.len() < self.capacity {
                0
            } else {
                self.order.iter().next().map_or(0, |&(c, _)| c)
            },
            |s| s.count,
        )
    }

    fn stream_len(&self) -> u64 {
        self.stream_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ZipfStream;
    use std::collections::HashMap;

    #[test]
    fn exact_until_capacity() {
        let mut ss = SpaceSaving::new(8);
        for x in 0..8u64 {
            for _ in 0..=x {
                ss.update(x);
            }
        }
        for x in 0..8u64 {
            assert_eq!(ss.estimate(x), x + 1);
        }
    }

    #[test]
    fn never_underestimates() {
        let mut ss = SpaceSaving::new(32);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut stream = ZipfStream::new(500, 1.2, 3);
        for _ in 0..20_000 {
            let a = stream.next_item();
            ss.update(a);
            *truth.entry(a).or_default() += 1;
        }
        for (&a, &f) in &truth {
            assert!(ss.estimate(a) >= f, "item {a}: {} < {f}", ss.estimate(a));
        }
    }

    #[test]
    fn overestimate_bounded_by_n_over_k() {
        let k = 64;
        let mut ss = SpaceSaving::new(k);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut stream = ZipfStream::new(2_000, 1.1, 4);
        let n = 30_000u64;
        for _ in 0..n {
            let a = stream.next_item();
            ss.update(a);
            *truth.entry(a).or_default() += 1;
        }
        let bound = n / k as u64 + 1;
        for (a, _, _) in ss.top() {
            let f = truth[&a];
            assert!(
                ss.estimate(a) <= f + bound,
                "item {a}: est {} > {f} + {bound}",
                ss.estimate(a)
            );
        }
    }

    #[test]
    fn frequent_items_guaranteed_monitored() {
        let k = 50;
        let mut ss = SpaceSaving::new(k);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut stream = ZipfStream::new(1_000, 1.5, 5);
        let n = 25_000u64;
        for _ in 0..n {
            let a = stream.next_item();
            ss.update(a);
            *truth.entry(a).or_default() += 1;
        }
        for (&a, &f) in &truth {
            if f > n / k as u64 {
                assert!(ss.is_monitored(a), "frequent item {a} (f={f}) evicted");
            }
        }
    }

    #[test]
    fn guaranteed_above_uses_error_bound() {
        let mut ss = SpaceSaving::new(4);
        for _ in 0..100 {
            ss.update(1);
        }
        for _ in 0..5 {
            ss.update(2);
        }
        let g = ss.guaranteed_above(50);
        assert_eq!(g, vec![1]);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut ss = SpaceSaving::new(8);
        let mut stream = ZipfStream::new(10_000, 1.01, 6);
        for _ in 0..5_000 {
            ss.update(stream.next_item());
            assert!(ss.top().len() <= 8);
        }
    }

    #[test]
    fn merge_preserves_no_underestimate_guarantee() {
        let k = 32;
        let mut left = SpaceSaving::new(k);
        let mut right = SpaceSaving::new(k);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut s1 = ZipfStream::new(300, 1.3, 7);
        let mut s2 = ZipfStream::new(300, 1.3, 8);
        for _ in 0..10_000 {
            let a = s1.next_item();
            left.update(a);
            *truth.entry(a).or_default() += 1;
            let b = s2.next_item();
            right.update(b);
            *truth.entry(b).or_default() += 1;
        }
        left.merge(&right);
        assert_eq!(left.stream_len(), 20_000);
        assert!(left.top().len() <= k);
        // Monitored items never underestimate after a merge.
        for (item, count, _err) in left.top() {
            assert!(
                count >= truth[&item],
                "item {item}: merged count {count} < true {}",
                truth[&item]
            );
        }
        // Heavy items (well above 2n/k) survive the merge.
        let n = 20_000u64;
        for (&a, &f) in &truth {
            if f > 4 * n / k as u64 {
                assert!(left.is_monitored(a), "heavy item {a} (f={f}) lost in merge");
            }
        }
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn merge_rejects_mismatched_capacity() {
        let mut a = SpaceSaving::new(4);
        let b = SpaceSaving::new(8);
        a.merge(&b);
    }
}
