//! The CountMin sketch (Cormode & Muthukrishnan, J. Algorithms 2005) —
//! Algorithm 1 of the paper.
//!
//! A `d × w` matrix of counters and `d` pairwise-independent hash
//! functions. `update(a)` increments `c[i][h_i(a)]` for every row `i`;
//! `query(a)` returns `min_i c[i][h_i(a)]`.
//!
//! **Error bound** (the sequential (ε,δ) analysis that Theorem 6
//! transfers to IVL parallelizations): with `w = ⌈e/α⌉` and
//! `d = ⌈ln(1/δ)⌉`, a query after `n` updates returns `f̂_a` with
//!
//! ```text
//! f_a ≤ f̂_a ≤ f_a + αn      with probability ≥ 1 − δ .
//! ```
//!
//! The lower bound `f_a ≤ f̂_a` holds *always* (counters only grow and
//! every occurrence of `a` lands in `a`'s cells).

use crate::coins::CoinFlips;
use crate::hash::PairwiseHash;
use crate::FrequencySketch;

/// Dimension parameters of a CountMin sketch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CountMinParams {
    /// Number of counters per row.
    pub width: usize,
    /// Number of rows (hash functions).
    pub depth: usize,
}

impl CountMinParams {
    /// Dimensions for relative error `α` (the paper's ε is `αn`) with
    /// failure probability `δ`: `w = ⌈e/α⌉`, `d = ⌈ln(1/δ)⌉`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1` and `0 < delta < 1`.
    pub fn for_bounds(alpha: f64, delta: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        CountMinParams {
            width: (std::f64::consts::E / alpha).ceil() as usize,
            depth: (1.0 / delta).ln().ceil().max(1.0) as usize,
        }
    }

    /// The relative error factor `α = e/w` these dimensions provide.
    pub fn alpha(&self) -> f64 {
        std::f64::consts::E / self.width as f64
    }

    /// The failure probability `δ = e^-d` these dimensions provide.
    pub fn delta(&self) -> f64 {
        (-(self.depth as f64)).exp()
    }
}

/// The sequential CountMin sketch `CM(c̄)`.
///
/// Constructing the sketch from a [`CoinFlips`] value samples the hash
/// functions, fixing the deterministic algorithm `CM(c̄)` of the
/// paper's §5.
///
/// # Examples
///
/// ```
/// use ivl_sketch::{CoinFlips, CountMin, FrequencySketch};
///
/// let mut coins = CoinFlips::from_seed(42);
/// // 1% relative error with 99% confidence.
/// let mut cm = CountMin::for_bounds(0.01, 0.01, &mut coins);
/// for _ in 0..500 {
///     cm.update(7);
/// }
/// let est = cm.estimate(7);
/// assert!(est >= 500); // CountMin never under-estimates
/// assert!(est as f64 <= 500.0 + cm.epsilon());
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct CountMin {
    params: CountMinParams,
    hashes: Vec<PairwiseHash>,
    cells: Vec<u64>,
    stream_len: u64,
}

impl CountMin {
    /// Creates a sketch with explicit dimensions, drawing hash
    /// functions from `coins`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    pub fn new(params: CountMinParams, coins: &mut CoinFlips) -> Self {
        assert!(
            params.width > 0 && params.depth > 0,
            "dimensions must be positive"
        );
        let hashes = (0..params.depth)
            .map(|_| PairwiseHash::draw(coins, params.width as u64))
            .collect();
        CountMin {
            params,
            hashes,
            cells: vec![0; params.width * params.depth],
            stream_len: 0,
        }
    }

    /// Creates a sketch sized for relative error `alpha` and failure
    /// probability `delta`.
    pub fn for_bounds(alpha: f64, delta: f64, coins: &mut CoinFlips) -> Self {
        Self::new(CountMinParams::for_bounds(alpha, delta), coins)
    }

    /// The sketch dimensions.
    pub fn params(&self) -> CountMinParams {
        self.params
    }

    /// The flat index of row `i`, column `h_i(item)`.
    #[inline]
    pub fn cell_index(&self, row: usize, item: u64) -> usize {
        row * self.params.width + self.hashes[row].hash(item)
    }

    /// Read-only view of the counter matrix (row-major).
    pub fn cells(&self) -> &[u64] {
        &self.cells
    }

    /// The sampled hash functions (shared with concurrent
    /// parallelizations so `PCM(c̄)` and `CM(c̄)` are the same
    /// deterministic algorithm).
    pub fn hashes(&self) -> &[PairwiseHash] {
        &self.hashes
    }

    /// The additive error bound `ε = αn` for the current stream length.
    pub fn epsilon(&self) -> f64 {
        self.params.alpha() * self.stream_len as f64
    }

    /// Processes `count` occurrences of `item` in one batched update —
    /// the "batched updates" of the paper's abstract. Equivalent to
    /// `count` unit updates (cells are additive).
    pub fn update_by(&mut self, item: u64, count: u64) {
        for row in 0..self.params.depth {
            let idx = self.cell_index(row, item);
            self.cells[idx] += count;
        }
        self.stream_len += count;
    }

    /// Estimates the inner product `Σ_a f_a · g_a` of this sketch's
    /// stream with another's (join-size estimation, Cormode &
    /// Muthukrishnan §4.3): per row, the dot product of the two rows;
    /// the estimate is the row minimum. Never under-estimates, and
    /// over-estimates by at most `α·n₁·n₂` with probability `1 − δ`.
    ///
    /// # Panics
    ///
    /// Panics if the sketches have different dimensions or coins.
    pub fn inner_product(&self, other: &CountMin) -> u64 {
        assert_eq!(self.params, other.params, "dimension mismatch");
        assert_eq!(self.hashes, other.hashes, "sketches use different coins");
        let w = self.params.width;
        (0..self.params.depth)
            .map(|row| {
                (0..w)
                    .map(|col| self.cells[row * w + col] * other.cells[row * w + col])
                    .sum::<u64>()
            })
            .min()
            .expect("depth >= 1")
    }

    /// Merges another sketch built with the **same coins** (cell-wise
    /// sum) — the mergeable-summaries property \[1\]: the merged
    /// sketch equals the sketch of the concatenated streams, so the
    /// (ε,δ) analysis applies to the union.
    ///
    /// # Panics
    ///
    /// Panics if dimensions or hash functions differ.
    pub fn merge(&mut self, other: &CountMin) {
        assert_eq!(self.params, other.params, "dimension mismatch");
        assert_eq!(self.hashes, other.hashes, "sketches use different coins");
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            *a += b;
        }
        self.stream_len += other.stream_len;
    }
}

/// CountMin with *conservative update* (Estan & Varghese): an update
/// increments only the cells currently equal to the row minimum,
/// raising them to `min + 1`. Point estimates keep the one-sided
/// guarantee `f_a ≤ f̂_a` and are never larger than plain CountMin's —
/// a strictly better sequential estimator.
///
/// Cells still only grow, so the object stays **monotone** in the
/// paper's sense; but unlike plain CountMin, an update *reads* cells
/// to decide what to write, so the straightforward parallelization is
/// not a per-cell-atomic one-liner (an interleaved conservative update
/// can skip a cell another thread is about to lower the min of). The
/// crate therefore ships it sequentially only — a concrete instance of
/// the paper's closing question about which sketches parallelize
/// under IVL.
#[derive(Clone, PartialEq, Debug)]
pub struct CountMinConservative {
    inner: CountMin,
}

impl CountMinConservative {
    /// Creates a conservative-update sketch with the given dimensions.
    pub fn new(params: CountMinParams, coins: &mut CoinFlips) -> Self {
        CountMinConservative {
            inner: CountMin::new(params, coins),
        }
    }

    /// Creates a sketch sized for relative error `alpha` and failure
    /// probability `delta`.
    pub fn for_bounds(alpha: f64, delta: f64, coins: &mut CoinFlips) -> Self {
        CountMinConservative {
            inner: CountMin::for_bounds(alpha, delta, coins),
        }
    }

    /// The sketch dimensions.
    pub fn params(&self) -> CountMinParams {
        self.inner.params()
    }
}

impl FrequencySketch for CountMinConservative {
    fn update(&mut self, item: u64) {
        let depth = self.inner.params.depth;
        let indices: Vec<usize> = (0..depth).map(|r| self.inner.cell_index(r, item)).collect();
        let min = indices
            .iter()
            .map(|&i| self.inner.cells[i])
            .min()
            .expect("depth >= 1");
        for &i in &indices {
            if self.inner.cells[i] == min {
                self.inner.cells[i] = min + 1;
            }
        }
        self.inner.stream_len += 1;
    }

    fn estimate(&self, item: u64) -> u64 {
        self.inner.estimate(item)
    }

    fn stream_len(&self) -> u64 {
        self.inner.stream_len
    }
}

impl FrequencySketch for CountMin {
    fn update(&mut self, item: u64) {
        for row in 0..self.params.depth {
            let idx = self.cell_index(row, item);
            self.cells[idx] += 1;
        }
        self.stream_len += 1;
    }

    fn estimate(&self, item: u64) -> u64 {
        (0..self.params.depth)
            .map(|row| self.cells[self.cell_index(row, item)])
            .min()
            .expect("depth >= 1")
    }

    fn stream_len(&self) -> u64 {
        self.stream_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ZipfStream;
    use std::collections::HashMap;

    fn coins(seed: u64) -> CoinFlips {
        CoinFlips::from_seed(seed)
    }

    #[test]
    fn params_match_formulas() {
        let p = CountMinParams::for_bounds(0.01, 0.01);
        assert_eq!(p.width, 272); // ceil(e / 0.01)
        assert_eq!(p.depth, 5); // ceil(ln 100) = ceil(4.6)
        assert!(p.alpha() <= 0.01 + 1e-9);
        assert!(p.delta() <= 0.01 + 1e-9);
    }

    #[test]
    fn never_underestimates() {
        let mut cm = CountMin::for_bounds(0.05, 0.05, &mut coins(1));
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut stream = ZipfStream::new(1000, 1.2, 77);
        for _ in 0..20_000 {
            let a = stream.next_item();
            cm.update(a);
            *truth.entry(a).or_default() += 1;
        }
        for (&a, &f) in &truth {
            assert!(cm.estimate(a) >= f, "item {a}: {} < {f}", cm.estimate(a));
        }
    }

    #[test]
    fn overestimate_within_alpha_n_whp() {
        // Empirical check of the (ε,δ) bound: failures over many items
        // must be ≤ δ-ish.
        let alpha = 0.01;
        let delta = 0.02;
        let mut cm = CountMin::for_bounds(alpha, delta, &mut coins(2));
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut stream = ZipfStream::new(5_000, 1.1, 5);
        let n = 50_000u64;
        for _ in 0..n {
            let a = stream.next_item();
            cm.update(a);
            *truth.entry(a).or_default() += 1;
        }
        let eps = (alpha * n as f64).ceil() as u64;
        let failures = truth
            .iter()
            .filter(|(&a, &f)| cm.estimate(a) > f + eps)
            .count();
        let rate = failures as f64 / truth.len() as f64;
        assert!(rate <= delta * 2.0, "failure rate {rate} >> delta {delta}");
    }

    #[test]
    fn exact_when_width_exceeds_alphabet() {
        // With no collisions possible (huge width, distinct cells),
        // estimates may still collide by hashing; but a width much
        // larger than the alphabet makes collisions unlikely across
        // all rows simultaneously - the min over 6 rows is exact here.
        let mut cm = CountMin::new(
            CountMinParams {
                width: 4096,
                depth: 6,
            },
            &mut coins(3),
        );
        for a in 0..16u64 {
            for _ in 0..=a {
                cm.update(a);
            }
        }
        for a in 0..16u64 {
            assert_eq!(cm.estimate(a), a + 1);
        }
    }

    #[test]
    fn same_coins_same_sketch() {
        let mut a = CountMin::for_bounds(0.1, 0.1, &mut coins(9));
        let mut b = CountMin::for_bounds(0.1, 0.1, &mut coins(9));
        for x in 0..1000u64 {
            a.update(x % 37);
            b.update(x % 37);
        }
        assert_eq!(a, b, "CM(c̄) is deterministic given c̄");
    }

    #[test]
    fn stream_len_and_epsilon_track_updates() {
        let mut cm = CountMin::for_bounds(0.1, 0.1, &mut coins(4));
        assert_eq!(cm.stream_len(), 0);
        for _ in 0..100 {
            cm.update(1);
        }
        assert_eq!(cm.stream_len(), 100);
        assert!((cm.epsilon() - cm.params().alpha() * 100.0).abs() < 1e-12);
    }

    #[test]
    fn unqueried_item_estimate_bounded_by_stream() {
        let mut cm = CountMin::for_bounds(0.1, 0.1, &mut coins(5));
        for _ in 0..50 {
            cm.update(42);
        }
        // Some never-updated item: estimate is whatever collided, at
        // most the whole stream.
        assert!(cm.estimate(777) <= 50);
    }

    #[test]
    fn update_by_equals_repeated_updates() {
        let mut a = CountMin::for_bounds(0.1, 0.1, &mut coins(6));
        let mut b = CountMin::for_bounds(0.1, 0.1, &mut coins(6));
        a.update_by(9, 37);
        a.update_by(2, 5);
        for _ in 0..37 {
            b.update(9);
        }
        for _ in 0..5 {
            b.update(2);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn merge_equals_concatenated_stream() {
        let mk = || CountMin::for_bounds(0.05, 0.05, &mut coins(7));
        let mut left = mk();
        let mut right = mk();
        let mut whole = mk();
        let mut s1 = ZipfStream::new(300, 1.2, 1);
        let mut s2 = ZipfStream::new(300, 1.2, 2);
        for _ in 0..5_000 {
            let a = s1.next_item();
            left.update(a);
            whole.update(a);
            let b = s2.next_item();
            right.update(b);
            whole.update(b);
        }
        left.merge(&right);
        assert_eq!(left, whole, "merge must equal the union stream");
    }

    #[test]
    #[should_panic(expected = "different coins")]
    fn merge_rejects_mismatched_coins() {
        let mut a = CountMin::for_bounds(0.1, 0.1, &mut coins(8));
        let b = CountMin::for_bounds(0.1, 0.1, &mut coins(9));
        a.merge(&b);
    }

    #[test]
    fn inner_product_never_underestimates() {
        let mk = || CountMin::for_bounds(0.02, 0.02, &mut coins(12));
        let mut a = mk();
        let mut b = mk();
        let mut fa: HashMap<u64, u64> = HashMap::new();
        let mut fb: HashMap<u64, u64> = HashMap::new();
        let mut s1 = ZipfStream::new(200, 1.3, 1);
        let mut s2 = ZipfStream::new(200, 1.3, 2);
        for _ in 0..5_000 {
            let x = s1.next_item();
            a.update(x);
            *fa.entry(x).or_default() += 1;
            let y = s2.next_item();
            b.update(y);
            *fb.entry(y).or_default() += 1;
        }
        let truth: u64 = fa
            .iter()
            .map(|(k, &va)| va * fb.get(k).copied().unwrap_or(0))
            .sum();
        let est = a.inner_product(&b);
        assert!(est >= truth, "{est} < {truth}");
        // Over-estimate bounded by α·n₁·n₂ whp; allow generous slack.
        let bound = (0.02 * 5_000.0 * 5_000.0) as u64;
        assert!(est <= truth + 3 * bound, "{est} vs {truth} + {bound}");
    }

    #[test]
    fn inner_product_with_self_bounds_second_moment() {
        let mut a = CountMin::for_bounds(0.05, 0.05, &mut coins(13));
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for x in 0..1_000u64 {
            let item = x % 10;
            a.update(item);
            *truth.entry(item).or_default() += 1;
        }
        let f2: u64 = truth.values().map(|&f| f * f).sum();
        assert!(a.inner_product(&a) >= f2);
    }

    #[test]
    fn conservative_never_underestimates_and_beats_plain() {
        let params = CountMinParams {
            width: 32,
            depth: 4,
        };
        let mut plain = CountMin::new(params, &mut coins(10));
        let mut cu = CountMinConservative::new(params, &mut coins(10));
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut stream = ZipfStream::new(500, 1.1, 3);
        for _ in 0..20_000 {
            let a = stream.next_item();
            plain.update(a);
            cu.update(a);
            *truth.entry(a).or_default() += 1;
        }
        for (&a, &ft) in &truth {
            assert!(cu.estimate(a) >= ft, "CU underestimated item {a}");
            assert!(
                cu.estimate(a) <= plain.estimate(a),
                "CU must never exceed plain CountMin (item {a})"
            );
        }
        // And on a skewed stream it is strictly better somewhere.
        let strictly_better = truth.keys().any(|&a| cu.estimate(a) < plain.estimate(a));
        assert!(strictly_better, "expected CU to win on some item");
    }

    #[test]
    fn conservative_estimates_are_monotone_over_time() {
        let mut cu =
            CountMinConservative::new(CountMinParams { width: 8, depth: 2 }, &mut coins(11));
        let mut last = 0;
        for k in 0..2_000u64 {
            cu.update(k % 17);
            let est = cu.estimate(3);
            assert!(est >= last, "estimate regressed");
            last = est;
        }
    }
}
