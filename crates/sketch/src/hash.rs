//! Carter–Wegman universal hashing over the Mersenne prime `2^61 − 1`.
//!
//! CountMin's analysis needs each row's hash drawn from a *pairwise
//! independent* family. The classic construction is `h(x) = ((a·x + b)
//! mod p) mod w` with `p` prime and `a ∈ [1, p)`, `b ∈ [0, p)` drawn
//! from the coin flips. Using the Mersenne prime `p = 2^61 − 1` lets
//! the `mod p` reduction be two shifts and an add.
//!
//! [`SignHash`] extends the family with a pairwise-independent ±1 sign
//! (for CountSketch) by taking one extra output bit.

use crate::coins::CoinFlips;

/// The Mersenne prime `2^61 − 1`.
pub const MERSENNE_61: u64 = (1 << 61) - 1;

/// Reduces a 128-bit product modulo `2^61 − 1`.
#[inline]
fn mod_mersenne61(x: u128) -> u64 {
    // x = hi * 2^61 + lo, and 2^61 ≡ 1 (mod p). For inputs up to
    // ~2^122, `hi` may itself reach p, so the fold can need two
    // subtractions.
    let lo = (x as u64) & MERSENNE_61;
    let hi = (x >> 61) as u64;
    let mut s = lo + hi;
    while s >= MERSENNE_61 {
        s -= MERSENNE_61;
    }
    s
}

/// A pairwise-independent hash `x ↦ ((a·x + b) mod p) mod w` into
/// `[0, w)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
    w: u64,
}

impl PairwiseHash {
    /// Draws a hash into `[0, w)` from the coin flips.
    ///
    /// # Panics
    ///
    /// Panics if `w` is 0.
    pub fn draw(coins: &mut CoinFlips, w: u64) -> Self {
        assert!(w > 0, "range must be positive");
        let a = 1 + coins.next_below(MERSENNE_61 - 1); // a ∈ [1, p)
        let b = coins.next_below(MERSENNE_61); // b ∈ [0, p)
        PairwiseHash { a, b, w }
    }

    /// Hashes `x` into `[0, w)`.
    #[inline]
    pub fn hash(&self, x: u64) -> usize {
        self.hash_reduced(Self::reduce(x))
    }

    /// Reduces an input modulo the prime, once, for reuse across many
    /// rows via [`hash_reduced`](Self::hash_reduced).
    #[inline]
    pub fn reduce(x: u64) -> u64 {
        x % MERSENNE_61
    }

    /// Hashes an already-reduced input (`xr = x mod p`, from
    /// [`reduce`](Self::reduce)) into `[0, w)`. Equal to
    /// `self.hash(x)` for every `x` with `x mod p == xr`.
    #[inline]
    pub fn hash_reduced(&self, xr: u64) -> usize {
        debug_assert!(xr < MERSENNE_61, "input must be pre-reduced");
        let ax = (self.a as u128) * (xr as u128) + self.b as u128;
        (mod_mersenne61(ax) % self.w) as usize
    }

    /// Computes every row's bucket for `x` in one pass: the `mod p`
    /// reduction of `x` happens once instead of once per row. Clears
    /// and refills `out`, so callers can reuse one scratch buffer
    /// across a whole batch of items without reallocating.
    pub fn hash_row_batch(hashes: &[PairwiseHash], x: u64, out: &mut Vec<usize>) {
        let xr = Self::reduce(x);
        out.clear();
        out.extend(hashes.iter().map(|h| h.hash_reduced(xr)));
    }

    /// The range bound `w`.
    pub fn range(&self) -> u64 {
        self.w
    }

    /// [`hash_reduced`](Self::hash_reduced) with the final `% w`
    /// strength-reduced through a precomputed [`FastMod`]: identical
    /// output (the batch-kernel proptests and [`FastMod`]'s own tests
    /// pin this), no hardware divide on the hot path.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `wmod` was not built for this
    /// hash's `w`.
    #[inline]
    pub fn hash_reduced_fast(&self, xr: u64, wmod: &FastMod) -> usize {
        debug_assert!(xr < MERSENNE_61, "input must be pre-reduced");
        debug_assert_eq!(wmod.divisor(), self.w, "FastMod divisor mismatch");
        let ax = (self.a as u128) * (xr as u128) + self.b as u128;
        wmod.rem(mod_mersenne61(ax)) as usize
    }
}

/// Exact strength-reduced `x % w` for a fixed divisor
/// (Granlund–Montgomery / Lemire direct-remainder): a 128-bit magic
/// `m = ⌈2^128 / w⌉` is precomputed once, after which a remainder is
/// two multiplies — `(m·x mod 2^128) · w / 2^128` — instead of a
/// hardware divide. Exact for every `x: u64` and `w ≥ 1`.
#[derive(Clone, Copy, Debug)]
pub struct FastMod {
    w: u64,
    m: u128,
}

impl FastMod {
    /// Precomputes the magic for divisor `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is 0.
    pub fn new(w: u64) -> Self {
        assert!(w > 0, "divisor must be positive");
        // ⌈2^128 / w⌉ computed as ⌊(2^128 − 1) / w⌋ + 1; for w = 1
        // this wraps to 0, and m·x mod 2^128 = 0 ⇒ rem = 0 = x % 1.
        FastMod {
            w,
            m: (u128::MAX / w as u128).wrapping_add(1),
        }
    }

    /// The divisor this magic was built for.
    pub fn divisor(&self) -> u64 {
        self.w
    }

    /// `x % w`, exactly.
    #[inline]
    pub fn rem(&self, x: u64) -> u64 {
        let low = self.m.wrapping_mul(x as u128);
        // High 64 bits of the 128×64 product `low · w`, i.e.
        // ⌊low · w / 2^128⌋: split low = hi·2^64 + lo and note the
        // discarded fraction of `lo·w` can never carry past the floor.
        let w = self.w as u128;
        let hi = (low >> 64) * w;
        let lo = (low & u64::MAX as u128) * w;
        ((hi + (lo >> 64)) >> 64) as u64
    }
}

/// A pairwise-independent ±1 sign hash (one bit of a fresh
/// [`PairwiseHash`] with range 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SignHash {
    inner: PairwiseHash,
}

impl SignHash {
    /// Draws a sign hash from the coin flips.
    pub fn draw(coins: &mut CoinFlips) -> Self {
        SignHash {
            inner: PairwiseHash::draw(coins, 2),
        }
    }

    /// Returns `+1` or `-1`.
    #[inline]
    pub fn sign(&self, x: u64) -> i64 {
        if self.inner.hash(x) == 0 {
            1
        } else {
            -1
        }
    }
}

/// A 64-bit mixing hash (SplitMix64 finalizer) for uses that need a
/// well-scrambled full-width value, e.g. HyperLogLog's bit patterns.
/// Seeded per-sketch from the coin flips.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MixHash {
    seed: u64,
}

impl MixHash {
    /// Draws a mixing hash from the coin flips.
    pub fn draw(coins: &mut CoinFlips) -> Self {
        MixHash {
            seed: coins.next_u64() | 1,
        }
    }

    /// Scrambles `x` to 64 well-mixed bits.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        let mut z = x.wrapping_mul(self.seed).wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mersenne_reduction_matches_naive() {
        for x in [
            0u128,
            1,
            MERSENNE_61 as u128,
            u64::MAX as u128,
            u128::MAX >> 6,
        ] {
            assert_eq!(mod_mersenne61(x), (x % MERSENNE_61 as u128) as u64, "x={x}");
        }
    }

    #[test]
    fn hash_stays_in_range() {
        let mut coins = CoinFlips::from_seed(1);
        let h = PairwiseHash::draw(&mut coins, 100);
        for x in 0..10_000u64 {
            assert!(h.hash(x) < 100);
        }
    }

    #[test]
    fn hash_is_deterministic_per_coins() {
        let h1 = PairwiseHash::draw(&mut CoinFlips::from_seed(9), 64);
        let h2 = PairwiseHash::draw(&mut CoinFlips::from_seed(9), 64);
        for x in 0..1000u64 {
            assert_eq!(h1.hash(x), h2.hash(x));
        }
    }

    #[test]
    fn hash_spreads_roughly_uniformly() {
        let mut coins = CoinFlips::from_seed(2);
        let w = 16u64;
        let h = PairwiseHash::draw(&mut coins, w);
        let mut buckets = vec![0u32; w as usize];
        for x in 0..16_000u64 {
            buckets[h.hash(x)] += 1;
        }
        for (i, &c) in buckets.iter().enumerate() {
            assert!((500..1500).contains(&c), "bucket {i} holds {c}");
        }
    }

    #[test]
    fn signs_are_balanced() {
        let mut coins = CoinFlips::from_seed(3);
        let s = SignHash::draw(&mut coins);
        let pos = (0..10_000u64).filter(|&x| s.sign(x) == 1).count();
        assert!((4000..6000).contains(&pos), "got {pos} positive signs");
    }

    #[test]
    fn fastmod_matches_hardware_remainder() {
        let divisors = [
            1u64,
            2,
            3,
            7,
            16,
            61,
            2719,
            65_536,
            (1 << 31) - 1,
            u32::MAX as u64,
            MERSENNE_61,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        // Deterministic xorshift64* covers x across the whole u64 range.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut samples = vec![0u64, 1, 2, u64::MAX, u64::MAX - 1, MERSENNE_61];
        for _ in 0..4_000 {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            samples.push(x.wrapping_mul(0x2545_F491_4F6C_DD1D));
        }
        for &w in &divisors {
            let f = FastMod::new(w);
            assert_eq!(f.divisor(), w);
            for &s in &samples {
                assert_eq!(f.rem(s), s % w, "x={s} w={w}");
            }
            // Boundary values around the divisor itself.
            for s in [w.wrapping_sub(1), w, w.wrapping_add(1)] {
                assert_eq!(f.rem(s), s % w, "x={s} w={w}");
            }
        }
    }

    #[test]
    fn hash_reduced_fast_matches_hash_reduced() {
        let mut coins = CoinFlips::from_seed(8);
        for w in [1u64, 2, 63, 64, 2719, 100_003] {
            let h = PairwiseHash::draw(&mut coins, w);
            let f = FastMod::new(w);
            for x in [0u64, 1, 7, 12345, MERSENNE_61 - 1, u64::MAX / 3] {
                let xr = PairwiseHash::reduce(x);
                assert_eq!(
                    h.hash_reduced_fast(xr, &f),
                    h.hash_reduced(xr),
                    "x={x} w={w}"
                );
            }
        }
    }

    #[test]
    fn mix_hash_changes_all_bit_positions() {
        let mut coins = CoinFlips::from_seed(4);
        let m = MixHash::draw(&mut coins);
        let mut seen_diff = 0u64;
        for x in 0..64u64 {
            seen_diff |= m.hash(x) ^ m.hash(x + 1);
        }
        assert_eq!(
            seen_diff.count_ones(),
            64,
            "every bit should flip somewhere"
        );
    }

    #[test]
    fn row_batch_matches_per_row_hashing() {
        let mut coins = CoinFlips::from_seed(6);
        let hashes: Vec<PairwiseHash> =
            (0..5).map(|_| PairwiseHash::draw(&mut coins, 64)).collect();
        let mut scratch = Vec::new();
        for x in [0, 1, 12345, MERSENNE_61 - 1, MERSENNE_61, u64::MAX] {
            PairwiseHash::hash_row_batch(&hashes, x, &mut scratch);
            let per_row: Vec<usize> = hashes.iter().map(|h| h.hash(x)).collect();
            assert_eq!(scratch, per_row, "x={x}");
        }
    }

    #[test]
    fn reduced_hash_matches_full_hash() {
        let mut coins = CoinFlips::from_seed(7);
        let h = PairwiseHash::draw(&mut coins, 100);
        for x in [0u64, 5, MERSENNE_61 - 1, MERSENNE_61 + 3, u64::MAX] {
            assert_eq!(h.hash_reduced(PairwiseHash::reduce(x)), h.hash(x), "x={x}");
        }
    }

    #[test]
    fn pairwise_collision_rate_near_1_over_w() {
        // Empirical collision probability across random pairs should be
        // ~1/w for a universal family.
        let mut coins = CoinFlips::from_seed(5);
        let w = 64u64;
        let trials = 200;
        let mut collisions = 0;
        for _ in 0..trials {
            let h = PairwiseHash::draw(&mut coins, w);
            let x = coins.next_u64() % 1_000_000;
            let y = x + 1 + coins.next_below(1_000_000);
            if h.hash(x) == h.hash(y) {
                collisions += 1;
            }
        }
        // Expected ~ trials / w ≈ 3.1; allow generous slack.
        assert!(collisions <= 15, "too many collisions: {collisions}");
    }
}
