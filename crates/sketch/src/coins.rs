//! The coin-flip vector `c̄ ∈ Ω^∞` (paper §2.2), made concrete.
//!
//! A randomized algorithm `A` is a probability distribution over
//! deterministic algorithms `{A(c̄)}`, one per coin-flip vector. Here a
//! [`CoinFlips`] value *is* the (lazily materialized) vector `c̄`: a
//! deterministic stream of 64-bit words derived from a seed by the
//! SplitMix64 generator. Constructing a sketch from a `CoinFlips`
//! yields the deterministic algorithm `A(c̄)`; equal seeds give equal
//! algorithms, which is what lets tests compare a concurrent execution
//! against the sequential specification `CM(c̄)` *with the same coins*
//! (Definition 3 quantifies over a common linearization for every
//! `c̄`; we instantiate it at the sampled one).
//!
//! SplitMix64 is implemented from scratch (no `rand` dependency here)
//! so the mapping seed → `c̄` is stable across platforms and `rand`
//! versions.

/// A deterministic, seedable stream of coin flips: the explicit `c̄`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CoinFlips {
    state: u64,
    /// Index of the next flip (`c_i`).
    drawn: u64,
}

impl CoinFlips {
    /// Materializes the coin-flip vector determined by `seed`.
    pub fn from_seed(seed: u64) -> Self {
        CoinFlips {
            state: seed,
            drawn: 0,
        }
    }

    /// Draws the next coin flip `c_i` as a 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.drawn += 1;
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Draws a flip uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Draws a flip uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli flip with success probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// How many flips have been drawn so far (the index `i` into
    /// `c̄`).
    pub fn flips_drawn(&self) -> u64 {
        self.drawn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_vector() {
        let mut a = CoinFlips::from_seed(7);
        let mut b = CoinFlips::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = CoinFlips::from_seed(1);
        let mut b = CoinFlips::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_splitmix_values() {
        // Reference values for seed 0 from the canonical SplitMix64.
        let mut c = CoinFlips::from_seed(0);
        assert_eq!(c.next_u64(), 0xE220A8397B1DCDAF);
        assert_eq!(c.next_u64(), 0x6E789E6AA1B965F4);
        assert_eq!(c.next_u64(), 0x06C45D188009454F);
    }

    #[test]
    fn bounded_draws_in_range() {
        let mut c = CoinFlips::from_seed(3);
        for _ in 0..1000 {
            assert!(c.next_below(10) < 10);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut c = CoinFlips::from_seed(4);
        for _ in 0..1000 {
            let x = c.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_rate_roughly_matches() {
        let mut c = CoinFlips::from_seed(5);
        let hits = (0..10_000).filter(|_| c.next_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn flip_count_advances() {
        let mut c = CoinFlips::from_seed(6);
        assert_eq!(c.flips_drawn(), 0);
        c.next_u64();
        c.next_f64();
        assert_eq!(c.flips_drawn(), 2);
    }
}
