//! The KLL quantiles sketch (Karnin–Lang–Liberty, FOCS 2016) — the
//! modern *mergeable* quantiles summary behind the Apache DataSketches
//! library the paper's introduction cites \[10\].
//!
//! A hierarchy of *compactors*: level `l` holds items each
//! representing `2^l` stream items. When a compactor fills, it sorts
//! itself and promotes a random half (odd- or even-indexed items,
//! chosen by a coin flip) to level `l+1` — each surviving item now
//! stands for twice the weight, and the rank error introduced is
//! unbiased. With capacity `k` the sketch stores `O(k log(n/k))`
//! items and answers rank queries within `εn` for `ε = O(1/k)` with
//! constant probability (per-query error concentrates by the
//! martingale argument of the paper; we validate empirically).
//!
//! Like every randomized sketch in this crate, a KLL instance is the
//! deterministic algorithm `KLL(c̄)` once its [`CoinFlips`] are fixed.

use crate::coins::CoinFlips;

/// A KLL quantiles sketch over `u64` values.
#[derive(Clone, Debug)]
pub struct KllSketch {
    k: usize,
    /// `levels[l]` holds items of weight `2^l`; kept unsorted until
    /// compaction/query.
    levels: Vec<Vec<u64>>,
    count: u64,
    coins: CoinFlips,
}

impl KllSketch {
    /// Creates a sketch with compactor capacity `k` (larger = more
    /// accurate; `ε ≈ 1.5/k`), drawing compaction coins from `coins`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 8`.
    pub fn new(k: usize, coins: CoinFlips) -> Self {
        assert!(k >= 8, "capacity must be at least 8");
        KllSketch {
            k,
            levels: vec![Vec::new()],
            count: 0,
            coins,
        }
    }

    /// The compactor capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of values inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total items currently stored across all levels.
    pub fn stored_items(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Capacity of level `l`: geometrically decreasing from the top,
    /// floor 8 (the standard KLL schedule with ratio 2/3,
    /// approximated by integer thirds).
    fn level_capacity(&self, level: usize, num_levels: usize) -> usize {
        let depth = num_levels - 1 - level;
        let mut cap = self.k;
        for _ in 0..depth {
            cap = cap * 2 / 3;
        }
        cap.max(8)
    }

    /// Inserts one value.
    pub fn insert(&mut self, value: u64) {
        self.count += 1;
        self.levels[0].push(value);
        self.compact();
    }

    fn compact(&mut self) {
        let mut level = 0;
        while level < self.levels.len() {
            let num_levels = self.levels.len();
            let cap = self.level_capacity(level, num_levels);
            if self.levels[level].len() <= cap {
                level += 1;
                continue;
            }
            // Sort, promote a random half, keep nothing.
            self.levels[level].sort_unstable();
            let keep_odd = self.coins.next_bool(0.5);
            let promoted: Vec<u64> = self.levels[level]
                .iter()
                .enumerate()
                .filter(|(i, _)| (i % 2 == 1) == keep_odd)
                .map(|(_, &v)| v)
                .collect();
            self.levels[level].clear();
            if level + 1 == self.levels.len() {
                self.levels.push(Vec::new());
            }
            self.levels[level + 1].extend(promoted);
            level += 1;
        }
    }

    /// Estimated rank of `value`: the weighted count of stored items
    /// `< value` (1-based rank of `value`'s insertion point).
    pub fn rank(&self, value: u64) -> u64 {
        self.levels
            .iter()
            .enumerate()
            .map(|(l, items)| {
                let below = items.iter().filter(|&&v| v < value).count() as u64;
                below << l
            })
            .sum()
    }

    /// A value whose rank is approximately `target_rank` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if the sketch is empty.
    pub fn value_at_rank(&self, target_rank: u64) -> u64 {
        assert!(self.count > 0, "empty sketch");
        // Gather (value, weight), sort by value, walk the prefix.
        let mut items: Vec<(u64, u64)> = self
            .levels
            .iter()
            .enumerate()
            .flat_map(|(l, items)| items.iter().map(move |&v| (v, 1u64 << l)))
            .collect();
        items.sort_unstable();
        let mut acc = 0;
        for (v, w) in &items {
            acc += w;
            if acc >= target_rank {
                return *v;
            }
        }
        items.last().expect("non-empty").0
    }

    /// Approximate `phi`-quantile (`0 ≤ phi ≤ 1`).
    pub fn quantile(&self, phi: f64) -> u64 {
        let rank = ((phi * self.count as f64).ceil() as u64).clamp(1, self.count.max(1));
        self.value_at_rank(rank)
    }

    /// Merges another sketch (level-wise concatenation, then
    /// recompaction) — the mergeability KLL is famous for. The
    /// sketches may use different coins; the merged error bound is
    /// that of a sketch that ingested both streams.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn merge(&mut self, other: &KllSketch) {
        assert_eq!(self.k, other.k, "capacity mismatch");
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
        }
        for (l, items) in other.levels.iter().enumerate() {
            self.levels[l].extend_from_slice(items);
        }
        self.count += other.count;
        self.compact();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rel_rank_err(sketch: &KllSketch, sorted: &[u64], phi: f64) -> f64 {
        let n = sorted.len() as u64;
        let rank = ((phi * n as f64).ceil() as u64).clamp(1, n);
        let v = sketch.value_at_rank(rank);
        let lo = sorted.partition_point(|&x| x < v) as u64 + 1;
        let hi = sorted.partition_point(|&x| x <= v) as u64;
        let err = if rank < lo {
            lo - rank
        } else {
            rank.saturating_sub(hi)
        };
        err as f64 / n as f64
    }

    #[test]
    fn quantiles_accurate_on_random_stream() {
        let mut kll = KllSketch::new(200, CoinFlips::from_seed(1));
        let mut rng = StdRng::seed_from_u64(2);
        let mut values: Vec<u64> = (0..100_000).map(|_| rng.gen_range(0..1_000_000)).collect();
        for &v in &values {
            kll.insert(v);
        }
        values.sort_unstable();
        for phi in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let err = rel_rank_err(&kll, &values, phi);
            assert!(err < 0.02, "phi={phi}: rel rank err {err}");
        }
    }

    #[test]
    fn space_is_sublinear() {
        let mut kll = KllSketch::new(128, CoinFlips::from_seed(3));
        for v in 0..200_000u64 {
            kll.insert(v);
        }
        assert!(
            kll.stored_items() < 3_000,
            "stored {} items for 200k inserts",
            kll.stored_items()
        );
    }

    #[test]
    fn exact_below_capacity() {
        let mut kll = KllSketch::new(64, CoinFlips::from_seed(4));
        for v in [5u64, 1, 9, 3, 7] {
            kll.insert(v);
        }
        assert_eq!(kll.value_at_rank(1), 1);
        assert_eq!(kll.value_at_rank(3), 5);
        assert_eq!(kll.value_at_rank(5), 9);
        assert_eq!(kll.rank(6), 3);
    }

    #[test]
    fn weights_preserve_total_count() {
        let mut kll = KllSketch::new(32, CoinFlips::from_seed(5));
        let n = 50_000u64;
        for v in 0..n {
            kll.insert(v);
        }
        let total_weight: u64 = kll
            .levels
            .iter()
            .enumerate()
            .map(|(l, items)| (items.len() as u64) << l)
            .sum();
        // Compaction promotes exactly half (by weight) of each full
        // compactor, so total weight stays within one compactor's
        // worth of the true count.
        let slack = (kll.capacity() as u64) << kll.levels.len();
        assert!(
            total_weight <= n && n - total_weight <= slack,
            "weight {total_weight} vs count {n}"
        );
    }

    #[test]
    fn merge_accuracy_comparable_to_union() {
        let mut a = KllSketch::new(200, CoinFlips::from_seed(6));
        let mut b = KllSketch::new(200, CoinFlips::from_seed(7));
        let mut rng = StdRng::seed_from_u64(8);
        let mut values: Vec<u64> = Vec::new();
        for _ in 0..50_000 {
            let v = rng.gen_range(0..1_000_000);
            a.insert(v);
            values.push(v);
        }
        for _ in 0..50_000 {
            let v = rng.gen_range(500_000..1_500_000);
            b.insert(v);
            values.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100_000);
        values.sort_unstable();
        for phi in [0.1, 0.5, 0.9] {
            let err = rel_rank_err(&a, &values, phi);
            assert!(err < 0.03, "phi={phi}: post-merge rel err {err}");
        }
    }

    #[test]
    fn deterministic_given_coins() {
        let run = || {
            let mut kll = KllSketch::new(64, CoinFlips::from_seed(9));
            for v in 0..10_000u64 {
                kll.insert((v * 7919) % 65_536);
            }
            (kll.stored_items(), kll.quantile(0.5))
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn merge_rejects_mismatched_capacity() {
        let mut a = KllSketch::new(32, CoinFlips::from_seed(1));
        let b = KllSketch::new(64, CoinFlips::from_seed(1));
        a.merge(&b);
    }
}
