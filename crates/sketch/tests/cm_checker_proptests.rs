//! Checker-equivalence property tests on *CountMin* histories — the
//! object with query arguments, where per-item bounds interact: the
//! monotone fast path must agree with the exact Definition 2 search on
//! generated and perturbed `CM(c̄)` histories.

use ivl_sketch::cm_spec::CountMinSpec;
use ivl_sketch::countmin::{CountMin, CountMinParams};
use ivl_sketch::CoinFlips;
use ivl_spec::gen::{completed_queries, random_linearizable_history, with_query_return, GenConfig};
use ivl_spec::ivl::{check_ivl_exact, check_ivl_monotone};
use ivl_spec::linearize::check_linearizable;
use proptest::prelude::*;
use rand::Rng;

fn spec(seed: u64, width: usize, depth: usize) -> CountMinSpec {
    let mut coins = CoinFlips::from_seed(seed);
    CountMinSpec::new(CountMin::new(CountMinParams { width, depth }, &mut coins))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Atomic CM executions are linearizable and IVL; both checkers
    /// agree.
    #[test]
    fn atomic_cm_histories_pass_everything(
        seed in 0u64..10_000,
        coin_seed in 0u64..1_000,
        width in 2usize..8,
        depth in 1usize..4,
        alphabet in 1u64..6,
    ) {
        let s = spec(coin_seed, width, depth);
        let cfg = GenConfig {
            processes: 3,
            ops_per_process: 2,
            seed,
            ..GenConfig::default()
        };
        let h = random_linearizable_history(
            &s,
            &cfg,
            |r| r.gen_range(0..alphabet),
            |r| r.gen_range(0..alphabet),
        );
        prop_assert!(check_linearizable(std::slice::from_ref(&s), &h).is_linearizable());
        prop_assert!(check_ivl_exact(std::slice::from_ref(&s), &h).is_ivl());
        prop_assert!(check_ivl_monotone(&s, &h).is_ivl());
    }

    /// Perturbing one query's return by an arbitrary offset: the exact
    /// and fast checkers must return the same verdict — on an object
    /// whose queries carry arguments and whose bounds depend on hash
    /// collisions.
    #[test]
    fn cm_checkers_agree_under_perturbation(
        seed in 0u64..10_000,
        coin_seed in 0u64..1_000,
        perturb in -4i64..5,
    ) {
        let s = spec(coin_seed, 4, 2);
        let cfg = GenConfig {
            processes: 3,
            ops_per_process: 2,
            seed,
            ..GenConfig::default()
        };
        let h = random_linearizable_history(
            &s,
            &cfg,
            |r| r.gen_range(0..4u64),
            |r| r.gen_range(0..4u64),
        );
        let queries = completed_queries(&h);
        let h = if let Some(&q) = queries.first() {
            let cur = h
                .operations()
                .iter()
                .find(|o| o.id == q)
                .unwrap()
                .return_value
                .unwrap();
            with_query_return(&h, q, cur.saturating_add_signed(perturb))
        } else {
            h
        };
        let exact = check_ivl_exact(std::slice::from_ref(&s), &h).is_ivl();
        let fast = check_ivl_monotone(&s, &h).is_ivl();
        prop_assert_eq!(exact, fast, "CM checkers disagree on {:?}", h);
    }

    /// Pending updates included: same agreement.
    #[test]
    fn cm_checkers_agree_with_pending_ops(
        seed in 0u64..10_000,
        coin_seed in 0u64..1_000,
    ) {
        let s = spec(coin_seed, 4, 2);
        let cfg = GenConfig {
            processes: 3,
            ops_per_process: 2,
            allow_pending: true,
            seed,
            ..GenConfig::default()
        };
        let h = random_linearizable_history(
            &s,
            &cfg,
            |r| r.gen_range(0..4u64),
            |r| r.gen_range(0..4u64),
        );
        let exact = check_ivl_exact(std::slice::from_ref(&s), &h).is_ivl();
        let fast = check_ivl_monotone(&s, &h).is_ivl();
        prop_assert_eq!(exact, fast);
    }
}
