//! Property tests of the sequential sketches' invariants — the facts
//! the paper's Theorem 6 machinery leans on (one-sided bounds,
//! monotonicity, mergeability, determinism given coins).

use ivl_sketch::countmin::{CountMin, CountMinConservative, CountMinParams};
use ivl_sketch::hash::PairwiseHash;
use ivl_sketch::{CoinFlips, CountSketch, FrequencySketch, GkQuantiles, HyperLogLog, SpaceSaving};
use proptest::prelude::*;
use std::collections::HashMap;

fn truth_of(stream: &[u64]) -> HashMap<u64, u64> {
    let mut t = HashMap::new();
    for &i in stream {
        *t.entry(i).or_default() += 1;
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CountMin never under-estimates, on arbitrary streams and coins.
    #[test]
    fn countmin_never_underestimates(
        stream in proptest::collection::vec(0u64..64, 0..300),
        seed in 0u64..10_000,
        width in 2usize..32,
        depth in 1usize..5,
    ) {
        let mut cm = CountMin::new(
            CountMinParams { width, depth },
            &mut CoinFlips::from_seed(seed),
        );
        for &i in &stream {
            cm.update(i);
        }
        for (&a, &f) in &truth_of(&stream) {
            prop_assert!(cm.estimate(a) >= f);
        }
    }

    /// CountMin estimates never exceed the stream length, and the
    /// monotonicity Lemma 7 relies on holds: adding any update never
    /// lowers any estimate.
    #[test]
    fn countmin_monotone_in_updates(
        stream in proptest::collection::vec(0u64..32, 1..120),
        probe in 0u64..32,
        seed in 0u64..10_000,
    ) {
        let mut cm = CountMin::new(
            CountMinParams { width: 8, depth: 3 },
            &mut CoinFlips::from_seed(seed),
        );
        let mut last = 0;
        for &i in &stream {
            cm.update(i);
            let est = cm.estimate(probe);
            prop_assert!(est >= last, "estimate decreased after an update");
            prop_assert!(est <= cm.stream_len());
            last = est;
        }
    }

    /// Conservative update: sandwiched between the truth and plain
    /// CountMin on every stream.
    #[test]
    fn conservative_update_sandwich(
        stream in proptest::collection::vec(0u64..48, 0..250),
        seed in 0u64..10_000,
    ) {
        let params = CountMinParams { width: 8, depth: 3 };
        let mut plain = CountMin::new(params, &mut CoinFlips::from_seed(seed));
        let mut cu = CountMinConservative::new(params, &mut CoinFlips::from_seed(seed));
        for &i in &stream {
            plain.update(i);
            cu.update(i);
        }
        for (&a, &f) in &truth_of(&stream) {
            prop_assert!(cu.estimate(a) >= f);
            prop_assert!(cu.estimate(a) <= plain.estimate(a));
        }
    }

    /// Merging CountMin sketches equals sketching the concatenation.
    #[test]
    fn countmin_merge_homomorphic(
        s1 in proptest::collection::vec(0u64..32, 0..120),
        s2 in proptest::collection::vec(0u64..32, 0..120),
        seed in 0u64..10_000,
    ) {
        let params = CountMinParams { width: 8, depth: 3 };
        let mk = || CountMin::new(params, &mut CoinFlips::from_seed(seed));
        let (mut a, mut b, mut whole) = (mk(), mk(), mk());
        for &i in &s1 { a.update(i); whole.update(i); }
        for &i in &s2 { b.update(i); whole.update(i); }
        a.merge(&b);
        prop_assert_eq!(a, whole);
    }

    /// SpaceSaving: never under-estimates monitored items; the
    /// over-estimate of any monitored item is bounded by its recorded
    /// error, which is bounded by n/k.
    #[test]
    fn spacesaving_invariants(
        stream in proptest::collection::vec(0u64..64, 0..400),
        k in 1usize..16,
    ) {
        let mut ss = SpaceSaving::new(k);
        for &i in &stream {
            ss.update(i);
        }
        let truth = truth_of(&stream);
        let n = stream.len() as u64;
        for (item, count, error) in ss.top() {
            let f = truth.get(&item).copied().unwrap_or(0);
            prop_assert!(count >= f, "underestimate");
            prop_assert!(count - f <= error, "error bound broken");
            prop_assert!(error <= n / k as u64 + 1, "error above n/k");
        }
        prop_assert!(ss.top().len() <= k);
        prop_assert_eq!(ss.stream_len(), n);
    }

    /// HyperLogLog registers are monotone and merge = union, on
    /// arbitrary streams.
    #[test]
    fn hll_monotone_and_mergeable(
        s1 in proptest::collection::vec(any::<u64>(), 0..200),
        s2 in proptest::collection::vec(any::<u64>(), 0..200),
        seed in 0u64..10_000,
    ) {
        let proto = HyperLogLog::new(4, &mut CoinFlips::from_seed(seed));
        let (mut a, mut b, mut whole) = (proto.clone(), proto.clone(), proto.clone());
        let mut prev = a.registers().to_vec();
        for &i in &s1 {
            a.update(i);
            whole.update(i);
            for (x, y) in a.registers().iter().zip(&prev) {
                prop_assert!(x >= y, "register decreased");
            }
            prev = a.registers().to_vec();
        }
        for &i in &s2 {
            b.update(i);
            whole.update(i);
        }
        a.merge(&b);
        prop_assert_eq!(a, whole);
    }

    /// GK quantiles: every rank query lands within εn of the target
    /// rank, on arbitrary value distributions.
    #[test]
    fn gk_rank_error_bounded(
        values in proptest::collection::vec(0u64..1000, 1..400),
    ) {
        let eps = 0.05;
        let mut gk = GkQuantiles::new(eps);
        for &v in &values {
            gk.insert(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let n = values.len() as u64;
        let allow = (eps * n as f64).ceil() as u64 + 1;
        for rank in [1, n / 4 + 1, n / 2 + 1, (3 * n / 4).max(1), n] {
            let v = gk.query_rank(rank);
            let lo = sorted.partition_point(|&x| x < v) as u64 + 1;
            let hi = sorted.partition_point(|&x| x <= v) as u64;
            let err = if rank < lo { lo - rank } else { rank.saturating_sub(hi) };
            prop_assert!(err <= allow, "rank {rank}: value {v} error {err} > {allow}");
        }
    }

    /// Carter–Wegman hashes stay in range and are deterministic.
    #[test]
    fn pairwise_hash_contract(seed in 0u64..100_000, w in 1u64..1000, x in any::<u64>()) {
        let h1 = PairwiseHash::draw(&mut CoinFlips::from_seed(seed), w);
        let h2 = PairwiseHash::draw(&mut CoinFlips::from_seed(seed), w);
        prop_assert!(h1.hash(x) < w as usize);
        prop_assert_eq!(h1.hash(x), h2.hash(x));
    }

    /// CountSketch estimates of an isolated (collision-free by
    /// construction: alphabet of one) item are exact.
    #[test]
    fn countsketch_exact_without_collisions(count in 0u64..300, seed in 0u64..10_000) {
        let mut cs = CountSketch::new(16, 3, &mut CoinFlips::from_seed(seed));
        for _ in 0..count {
            cs.update(5);
        }
        prop_assert_eq!(cs.estimate(5), count);
    }

    /// CountSketch merge is homomorphic.
    #[test]
    fn countsketch_merge_homomorphic(
        s1 in proptest::collection::vec(0u64..16, 0..100),
        s2 in proptest::collection::vec(0u64..16, 0..100),
        seed in 0u64..10_000,
    ) {
        let mk = || CountSketch::new(8, 3, &mut CoinFlips::from_seed(seed));
        let (mut a, mut b, mut whole) = (mk(), mk(), mk());
        for &i in &s1 { a.update(i); whole.update(i); }
        for &i in &s2 { b.update(i); whole.update(i); }
        a.merge(&b);
        prop_assert_eq!(a, whole);
    }
}
