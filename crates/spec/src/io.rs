//! A plain-text interchange format for histories, so externally
//! recorded executions can be fed to the checkers (see the `ivl-check`
//! binary in `ivl-bench`).
//!
//! One event per line; blank lines and `#` comments ignored:
//!
//! ```text
//! # inv <op> <process> <object> update <arg>
//! # inv <op> <process> <object> query  <arg>
//! # rsp <op> <process> <object> [<return-value>]
//! inv 0 0 0 update 3
//! inv 1 1 0 query 0
//! rsp 0 0 0
//! rsp 1 1 0 2
//! ```
//!
//! Argument and value types are generic over [`FromStr`]/[`Display`],
//! so the same parser serves `u64` counters and `i64`
//! increment/decrement histories. Parsed histories are validated for
//! well-formedness.

use crate::history::{Event, EventKind, History, MalformedHistory, ObjectId, Op, OpId, ProcessId};
use std::fmt::{self, Display};
use std::str::FromStr;

/// Errors from [`parse_history`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseHistoryError {
    /// A line could not be parsed; carries the 1-based line number and
    /// a description.
    BadLine(usize, String),
    /// The parsed events do not form a well-formed history.
    Malformed(MalformedHistory),
}

impl Display for ParseHistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseHistoryError::BadLine(n, msg) => write!(f, "line {n}: {msg}"),
            ParseHistoryError::Malformed(m) => write!(f, "ill-formed history: {m}"),
        }
    }
}

impl std::error::Error for ParseHistoryError {}

impl From<MalformedHistory> for ParseHistoryError {
    fn from(m: MalformedHistory) -> Self {
        ParseHistoryError::Malformed(m)
    }
}

/// Parses the text format into a validated history.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ivl_spec::history::History;
/// use ivl_spec::io::parse_history;
///
/// let text = "\
/// inv 0 0 0 update 3
/// inv 1 1 0 query 0
/// rsp 0 0 0
/// rsp 1 1 0 3
/// ";
/// let h: History<u64, u64, u64> = parse_history(text)?;
/// assert_eq!(h.operations().len(), 2);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`ParseHistoryError`] on syntax errors or ill-formed event
/// sequences.
pub fn parse_history<U, Q, V>(text: &str) -> Result<History<U, Q, V>, ParseHistoryError>
where
    U: FromStr + Clone,
    Q: FromStr + Clone,
    V: FromStr + Clone,
{
    let mut events: Vec<Event<U, Q, V>> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tok = line.split_whitespace();
        let bad = |msg: &str| ParseHistoryError::BadLine(lineno, msg.to_string());
        let kind_tok = tok.next().ok_or_else(|| bad("missing event kind"))?;
        let op: u64 = tok
            .next()
            .ok_or_else(|| bad("missing op id"))?
            .parse()
            .map_err(|_| bad("op id must be an integer"))?;
        let process: u32 = tok
            .next()
            .ok_or_else(|| bad("missing process id"))?
            .parse()
            .map_err(|_| bad("process id must be an integer"))?;
        let object: u32 = tok
            .next()
            .ok_or_else(|| bad("missing object id"))?
            .parse()
            .map_err(|_| bad("object id must be an integer"))?;
        let kind = match kind_tok {
            "inv" => {
                let which = tok.next().ok_or_else(|| bad("missing operation kind"))?;
                match which {
                    "update" => {
                        let arg = tok
                            .next()
                            .ok_or_else(|| bad("missing update argument"))?
                            .parse::<U>()
                            .map_err(|_| bad("unparsable update argument"))?;
                        EventKind::Invoke(Op::Update(arg))
                    }
                    "query" => {
                        let arg = tok
                            .next()
                            .ok_or_else(|| bad("missing query argument"))?
                            .parse::<Q>()
                            .map_err(|_| bad("unparsable query argument"))?;
                        EventKind::Invoke(Op::Query(arg))
                    }
                    other => return Err(bad(&format!("unknown operation kind `{other}`"))),
                }
            }
            "rsp" => match tok.next() {
                Some(v) => EventKind::Respond(Some(
                    v.parse::<V>().map_err(|_| bad("unparsable return value"))?,
                )),
                None => EventKind::Respond(None),
            },
            other => return Err(bad(&format!("unknown event kind `{other}`"))),
        };
        if tok.next().is_some() {
            return Err(bad("trailing tokens"));
        }
        events.push(Event {
            op: OpId(op),
            process: ProcessId(process),
            object: ObjectId(object),
            kind,
        });
    }
    Ok(History::from_events(events)?)
}

/// Serializes a history into the text format parsed by
/// [`parse_history`].
pub fn write_history<U, Q, V>(h: &History<U, Q, V>) -> String
where
    U: Display + Clone,
    Q: Display + Clone,
    V: Display + Clone,
{
    let mut out = String::new();
    for ev in h.events() {
        let (op, p, x) = (ev.op.0, ev.process.0, ev.object.0);
        match &ev.kind {
            EventKind::Invoke(Op::Update(u)) => {
                out.push_str(&format!("inv {op} {p} {x} update {u}\n"));
            }
            EventKind::Invoke(Op::Query(q)) => {
                out.push_str(&format!("inv {op} {p} {x} query {q}\n"));
            }
            EventKind::Respond(Some(v)) => out.push_str(&format!("rsp {op} {p} {x} {v}\n")),
            EventKind::Respond(None) => out.push_str(&format!("rsp {op} {p} {x}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;

    fn sample() -> History<u64, u64, u64> {
        let mut b = HistoryBuilder::new();
        let u = b.invoke_update(ProcessId(0), ObjectId(0), 3);
        let q = b.invoke_query(ProcessId(1), ObjectId(0), 0);
        b.respond_update(u);
        b.respond_query(q, 2);
        b.invoke_update(ProcessId(0), ObjectId(0), 9); // pending
        b.finish()
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let text = write_history(&h);
        let back: History<u64, u64, u64> = parse_history(&text).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# a comment\ninv 0 0 0 update 5  # inline\nrsp 0 0 0\n\n";
        let h: History<u64, u64, u64> = parse_history(text).unwrap();
        assert_eq!(h.operations().len(), 1);
    }

    #[test]
    fn signed_arguments_parse_for_incdec() {
        let text = "inv 0 0 0 update -4\nrsp 0 0 0\ninv 1 1 0 query 0\nrsp 1 1 0 -4\n";
        let h: History<i64, u64, i64> = parse_history(text).unwrap();
        let ops = h.operations();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[1].return_value, Some(-4));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let text = "inv 0 0 0 update 5\nbogus 1 2 3\n";
        let err = parse_history::<u64, u64, u64>(text).unwrap_err();
        assert_eq!(
            err,
            ParseHistoryError::BadLine(2, "unknown event kind `bogus`".into())
        );
    }

    #[test]
    fn malformed_histories_rejected() {
        let text = "rsp 0 0 0\n";
        let err = parse_history::<u64, u64, u64>(text).unwrap_err();
        assert!(matches!(err, ParseHistoryError::Malformed(_)));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let text = "inv 0 0 0 update 5 6\n";
        assert!(parse_history::<u64, u64, u64>(text).is_err());
    }
}
