//! Executable §3.4: comparing IVL with regular-like semantics.
//!
//! Stylianopoulos et al. \[33\] describe their sketch guarantee as "a
//! query takes into account all completed insert operations and
//! possibly a subset of the overlapping ones" — a quantitative
//! generalization of Lamport's regularity. [`check_regular_subset`]
//! implements that condition literally: each completed query's return
//! value must equal the object evaluated over *all updates that
//! precede it* plus *some subset of the updates concurrent with it*.
//!
//! The paper's §3.4 observations, which this module's tests make
//! machine-checked:
//!
//! * for **monotone** objects, subset-regularity implies IVL (the
//!   empty and full subsets bracket every subset);
//! * for **non-monotone** objects it does not (seeing only a
//!   decrement under-runs every linearization);
//! * IVL does **not** imply subset-regularity: IVL additionally allows
//!   *intermediate steps of a single update* to be observed (a batched
//!   `inc(3)` read as `+1`), which no subset reproduces.

use crate::history::{History, Op, OpId};
use crate::spec::ObjectSpec;

/// Verdict of [`check_regular_subset`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RegularVerdict {
    /// Every completed query matches some subset of its concurrent
    /// updates.
    Regular,
    /// The named query's value matches no subset.
    NotRegular(OpId),
}

impl RegularVerdict {
    /// Whether the history satisfies subset-regularity.
    pub fn is_regular(&self) -> bool {
        matches!(self, RegularVerdict::Regular)
    }
}

/// Checks the regular-like condition of §3.4 / \[33\] on a
/// single-object history: each completed query returns the object
/// evaluated over all preceding updates plus some subset of concurrent
/// ones (pending updates overlapping the query count as concurrent).
///
/// Exponential in the number of updates concurrent with any one query
/// (subset enumeration, capped at 20); queries are checked
/// independently — regularity needs no common witness, unlike IVL's
/// common pair of linearizations.
///
/// # Panics
///
/// Panics if the history mentions several objects or a query overlaps
/// more than 20 updates.
pub fn check_regular_subset<S: ObjectSpec>(
    spec: &S,
    h: &History<S::Update, S::Query, S::Value>,
) -> RegularVerdict {
    assert!(
        h.objects().len() <= 1,
        "regularity checker takes single-object histories; project first"
    );
    let ops = h.operations();
    let updates: Vec<_> = ops.iter().filter(|o| o.op.is_update()).collect();

    for q in ops.iter().filter(|o| o.op.is_query() && o.is_complete()) {
        let Op::Query(qarg) = &q.op else {
            unreachable!()
        };
        let actual = q.return_value.as_ref().expect("completed query");
        let preceding: Vec<&S::Update> = updates
            .iter()
            .filter(|u| u.precedes(q))
            .map(|u| match &u.op {
                Op::Update(arg) => arg,
                Op::Query(_) => unreachable!(),
            })
            .collect();
        let concurrent: Vec<&S::Update> = updates
            .iter()
            .filter(|u| !u.precedes(q) && !q.precedes(u))
            .map(|u| match &u.op {
                Op::Update(arg) => arg,
                Op::Query(_) => unreachable!(),
            })
            .collect();
        assert!(
            concurrent.len() <= 20,
            "too many concurrent updates for subset enumeration"
        );
        let mut matched = false;
        for subset in 0u32..(1 << concurrent.len()) {
            let mut state = spec.initial_state();
            for u in &preceding {
                spec.apply_update(&mut state, u);
            }
            for (bit, u) in concurrent.iter().enumerate() {
                if subset & (1 << bit) != 0 {
                    spec.apply_update(&mut state, u);
                }
            }
            if spec.eval_query(&state, qarg) == *actual {
                matched = true;
                break;
            }
        }
        if !matched {
            return RegularVerdict::NotRegular(q.id);
        }
    }
    RegularVerdict::Regular
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HistoryBuilder, ObjectId, ProcessId};
    use crate::ivl::check_ivl_exact;
    use crate::specs::{BatchedCounterSpec, IncDecCounterSpec};

    const X: ObjectId = ObjectId(0);
    const P0: ProcessId = ProcessId(0);
    const P1: ProcessId = ProcessId(1);
    const P2: ProcessId = ProcessId(2);

    #[test]
    fn sees_subset_of_concurrent_updates() {
        // Two concurrent updates 3 and 4; read returns 4 (subset {4}).
        let mut b = HistoryBuilder::<u64, (), u64>::new();
        let q = b.invoke_query(P2, X, ());
        let u1 = b.invoke_update(P0, X, 3);
        let u2 = b.invoke_update(P1, X, 4);
        b.respond_update(u1);
        b.respond_update(u2);
        b.respond_query(q, 4);
        let h = b.finish();
        assert!(check_regular_subset(&BatchedCounterSpec, &h).is_regular());
        assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
    }

    #[test]
    fn missing_completed_update_is_not_regular() {
        let mut b = HistoryBuilder::<u64, (), u64>::new();
        let u = b.invoke_update(P0, X, 3);
        b.respond_update(u);
        let q = b.invoke_query(P2, X, ());
        b.respond_query(q, 0);
        let h = b.finish();
        assert_eq!(
            check_regular_subset(&BatchedCounterSpec, &h),
            RegularVerdict::NotRegular(q)
        );
        assert!(!check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
    }

    #[test]
    fn ivl_does_not_imply_regular() {
        // The §1 headline: inc(3) bumping 7 to 10 read as 8 — IVL, but
        // no subset of {inc(3)} sums to 8 − 7 = 1.
        let mut b = HistoryBuilder::<u64, (), u64>::new();
        let seed = b.invoke_update(P0, X, 7);
        b.respond_update(seed);
        let inc = b.invoke_update(P0, X, 3);
        let q = b.invoke_query(P1, X, ());
        b.respond_query(q, 8);
        b.respond_update(inc);
        let h = b.finish();
        assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
        assert_eq!(
            check_regular_subset(&BatchedCounterSpec, &h),
            RegularVerdict::NotRegular(q)
        );
    }

    #[test]
    fn regular_does_not_imply_ivl_for_nonmonotone() {
        // §3.4 verbatim: query concurrent with inc(1) then dec(1);
        // seeing only the decrement ({dec} is a legal subset) returns
        // −1 — regular, but below every linearization value.
        let mut b = HistoryBuilder::<i64, (), i64>::new();
        let q = b.invoke_query(P2, X, ());
        let inc = b.invoke_update(P0, X, 1);
        b.respond_update(inc);
        let dec = b.invoke_update(P1, X, -1);
        b.respond_update(dec);
        b.respond_query(q, -1);
        let h = b.finish();
        assert!(check_regular_subset(&IncDecCounterSpec, &h).is_regular());
        assert!(!check_ivl_exact(&[IncDecCounterSpec], &h).is_ivl());
    }

    #[test]
    fn pending_updates_count_as_concurrent() {
        let mut b = HistoryBuilder::<u64, (), u64>::new();
        b.invoke_update(P0, X, 5); // pending forever
        let q = b.invoke_query(P1, X, ());
        b.respond_query(q, 5);
        let h = b.finish();
        assert!(check_regular_subset(&BatchedCounterSpec, &h).is_regular());
    }

    #[test]
    fn empty_history_is_regular() {
        let h = HistoryBuilder::<u64, (), u64>::new().finish();
        assert!(check_regular_subset(&BatchedCounterSpec, &h).is_regular());
    }
}
