//! Formal framework for *Intermediate Value Linearizability* (IVL).
//!
//! This crate makes the definitions of Rinberg & Keidar, *"Intermediate
//! Value Linearizability: A Quantitative Correctness Criterion"* (DISC
//! 2020), executable:
//!
//! * [`history`] — invocation/response event sequences, well-formedness,
//!   the `≺_H` precedence partial order, per-object projection and
//!   *skeleton histories* (histories with return values erased, written
//!   `H?` in the paper).
//! * [`spec`] — deterministic sequential specifications of *quantitative
//!   objects* (objects with `update` and totally-ordered-`query`
//!   operations), i.e. the `τ_H` operator that fills in the unique legal
//!   return values of a sequential skeleton.
//! * [`linearize`] — enumeration of linearizations of a skeleton history
//!   and an exact linearizability checker (Wing–Gong style search), plus
//!   computation of the `v_min`/`v_max` bounds of Definition 5.
//! * [`ivl`] — exact IVL checking (Definition 2) by searching for the two
//!   bounding linearizations `H1`, `H2`, and an efficient, provably
//!   equivalent interval-based checker for *monotone* quantitative objects
//!   (the class covering every construction in the paper: batched
//!   counters, CountMin point queries, Morris counters, HyperLogLog).
//! * [`specs`] — built-in sequential specifications used throughout the
//!   workspace: batched counter, increment/decrement counter, max and
//!   min registers, exact multi-item frequencies.
//! * [`bounded`] — Definition 5 as a checkable predicate: the
//!   `v_min − ε ≤ ret ≤ v_max + ε` bracket evaluated per query on
//!   recorded histories.
//! * [`relaxations`] — the §3.4 regular-subset criterion, executable,
//!   for comparing IVL against regularity-style semantics.
//! * [`record`] — a thread-safe history recorder for instrumenting
//!   real concurrent implementations.
//! * [`render`] — ASCII timelines and event listings of histories.
//! * [`io`] — a plain-text interchange format so externally recorded
//!   histories can be checked (see the `ivl_check` CLI in `ivl-bench`).
//! * [`gen`] — random well-formed history generators for property tests:
//!   linearizable histories, IVL-but-not-linearizable histories, and
//!   histories that violate IVL.
//!
//! # Quick example
//!
//! Re-enacting Example 1 of the paper: a batched counter is incremented
//! by 3 concurrently with a query that returns 0.
//!
//! ```
//! use ivl_spec::history::{HistoryBuilder, ProcessId, ObjectId};
//! use ivl_spec::specs::BatchedCounterSpec;
//! use ivl_spec::ivl::check_ivl_exact;
//! use ivl_spec::linearize::check_linearizable;
//!
//! let mut h = HistoryBuilder::new();
//! let p = ProcessId(0);
//! let q = ProcessId(1);
//! let obj = ObjectId(0);
//! let inc = h.invoke_update(p, obj, 3u64);   // inv_p(inc(3))
//! let rd = h.invoke_query(q, obj, ());       // inv_q(query)
//! h.respond_update(inc);                     // rsp_p(inc)
//! h.respond_query(rd, 0u64);                 // rsp_q(query -> 0)
//! let history = h.finish();
//!
//! let spec = BatchedCounterSpec;
//! // 0 is legal under linearizability (query linearized before inc)...
//! assert!(check_linearizable(&[spec.clone()], &history).is_linearizable());
//! // ...and therefore also IVL.
//! assert!(check_ivl_exact(&[spec], &history).is_ivl());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounded;
pub mod gen;
pub mod history;
pub mod io;
pub mod ivl;
pub mod linearize;
pub mod record;
pub mod relaxations;
pub mod render;
pub mod spec;
pub mod specs;

pub use bounded::{epsilon_bounded_report, BoundedReport};
pub use history::{History, HistoryBuilder, ObjectId, OpId, ProcessId};
pub use ivl::{check_ivl_exact, check_ivl_monotone, IvlVerdict, QueryBounds};
pub use linearize::{check_linearizable, LinVerdict};
pub use record::Recorder;
pub use relaxations::{check_regular_subset, RegularVerdict};
pub use render::{render_events, render_timeline};
pub use spec::{MonotoneSpec, ObjectSpec};
