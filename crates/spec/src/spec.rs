//! Sequential specifications of quantitative objects and the `τ`
//! operator.
//!
//! Paper §3.1: a *deterministic quantitative object* supports `update`
//! (mutating, no return value) and `query` (returns a value from a
//! totally ordered domain), and its sequential specification `H`
//! contains exactly one history per sequential skeleton — the one
//! obtained by the operator `τ_H`, which replays the operations in order
//! and fills in the unique return value of each query.
//!
//! A randomized object (paper §2.2, §3.3) is a *distribution* over
//! deterministic specifications, one per coin-flip vector `c̄`. In this
//! crate that is modelled by the spec being a *value*: e.g. a CountMin
//! spec instance carries its sampled hash functions, so `CountMinSpec`
//! constructed from coin flips `c̄` is exactly the deterministic
//! specification `CM(c̄)`.

use crate::history::{EventKind, History, Op, OpId};
use std::collections::HashMap;
use std::fmt::Debug;

/// A deterministic sequential specification of a quantitative object.
///
/// Implementations replay updates against an explicit state and evaluate
/// queries against it; [`tau`] uses this to realize the paper's `τ_H`
/// operator on sequential skeletons.
pub trait ObjectSpec: Clone {
    /// Argument type of `update` operations.
    type Update: Clone + Debug;
    /// Argument type of `query` operations.
    type Query: Clone + Debug;
    /// Return value domain of queries; totally ordered, as required of
    /// quantitative objects.
    type Value: Clone + Ord + Debug;
    /// Replay state.
    type State: Clone;

    /// The object's initial state.
    fn initial_state(&self) -> Self::State;

    /// Applies one update to the state.
    fn apply_update(&self, state: &mut Self::State, update: &Self::Update);

    /// Evaluates one query against the state.
    fn eval_query(&self, state: &Self::State, query: &Self::Query) -> Self::Value;

    /// Evaluates a query after applying `updates` (in order) to the
    /// initial state. Convenience used by checkers and tests.
    fn eval_after<'a, I>(&self, updates: I, query: &Self::Query) -> Self::Value
    where
        I: IntoIterator<Item = &'a Self::Update>,
        Self::Update: 'a,
    {
        let mut st = self.initial_state();
        for u in updates {
            self.apply_update(&mut st, u);
        }
        self.eval_query(&st, query)
    }
}

/// Marker trait for *monotone* quantitative objects.
///
/// An implementation promises two semantic properties (checked by
/// property tests in this crate, not by the compiler):
///
/// 1. **Commutativity**: the state reached from a multiset of updates is
///    independent of their order (so replay order within a
///    linearization does not matter), and
/// 2. **Uniform monotonicity**: applying any additional update moves
///    every query's value in one fixed direction — never decreasing it
///    (*isotone*: counters, CountMin, max registers) or never
///    increasing it (*antitone*: min registers, the key component of
///    the paper's future-work priority queues). Objects where
///    different updates move values in different directions (the §3.4
///    inc/dec counter) must NOT implement this trait.
///
/// Every construction in the paper is monotone: batched counters (only
/// non-negative increments), CountMin point queries (counters only grow,
/// `min` of grown counters grows), Morris counters and HyperLogLog
/// (max-registers). For monotone objects, IVL admits an efficient
/// sound-and-complete interval check
/// ([`crate::ivl::check_ivl_monotone`]).
pub trait MonotoneSpec: ObjectSpec {}

/// The result of applying `τ` to a sequential skeleton: the same
/// sequence of operations with every query's unique return value filled
/// in.
#[derive(Clone, Debug)]
pub struct TauResult<S: ObjectSpec> {
    /// Return value of each completed query, keyed by operation id.
    pub query_returns: HashMap<OpId, S::Value>,
    /// Final replay state.
    pub final_state: S::State,
}

impl<S: ObjectSpec> TauResult<S> {
    /// The return value `ret(Q, τ_H(H))` of query `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a completed query of the replayed skeleton.
    pub fn ret(&self, q: OpId) -> &S::Value {
        &self.query_returns[&q]
    }
}

/// Applies the `τ_H` operator: replays a *sequential* history (or
/// skeleton) of a single object under spec `spec`, returning each
/// query's unique legal return value.
///
/// Return values already present in `h` are ignored; only the order of
/// operations matters, which is exactly the skeleton semantics.
///
/// # Panics
///
/// Panics if `h` is not sequential.
pub fn tau<S: ObjectSpec>(spec: &S, h: &History<S::Update, S::Query, S::Value>) -> TauResult<S> {
    assert!(h.is_sequential(), "tau is defined on sequential histories");
    let mut state = spec.initial_state();
    let mut query_returns = HashMap::new();
    for ev in h.events() {
        if let EventKind::Invoke(op) = &ev.kind {
            match op {
                Op::Update(u) => spec.apply_update(&mut state, u),
                Op::Query(q) => {
                    let v = spec.eval_query(&state, q);
                    query_returns.insert(ev.op, v);
                }
            }
        }
    }
    TauResult {
        query_returns,
        final_state: state,
    }
}

/// One operation of an explicit replay order: its id and the
/// operation (with argument).
pub type OrderedOp<S> = (
    OpId,
    Op<<S as ObjectSpec>::Update, <S as ObjectSpec>::Query>,
);

/// Replays an explicit operation order (ids refer to operations of some
/// history) rather than an event sequence. Used by the linearization
/// search, which manipulates operation orders directly.
pub fn tau_order<S: ObjectSpec>(spec: &S, order: &[OrderedOp<S>]) -> TauResult<S> {
    let mut state = spec.initial_state();
    let mut query_returns = HashMap::new();
    for (id, op) in order {
        match op {
            Op::Update(u) => spec.apply_update(&mut state, u),
            Op::Query(q) => {
                let v = spec.eval_query(&state, q);
                query_returns.insert(*id, v);
            }
        }
    }
    TauResult {
        query_returns,
        final_state: state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HistoryBuilder, ObjectId, ProcessId};
    use crate::specs::BatchedCounterSpec;

    #[test]
    fn tau_fills_unique_returns() {
        let mut b = HistoryBuilder::<u64, (), u64>::new();
        let p = ProcessId(0);
        let x = ObjectId(0);
        let u = b.invoke_update(p, x, 3);
        b.respond_update(u);
        let q1 = b.invoke_query(p, x, ());
        b.respond_query(q1, 999); // value ignored by tau
        let u2 = b.invoke_update(p, x, 4);
        b.respond_update(u2);
        let q2 = b.invoke_query(p, x, ());
        b.respond_query(q2, 999);
        let h = b.finish();
        let t = tau(&BatchedCounterSpec, &h);
        assert_eq!(*t.ret(q1), 3);
        assert_eq!(*t.ret(q2), 7);
        assert_eq!(t.final_state, 7);
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn tau_rejects_concurrent_history() {
        let mut b = HistoryBuilder::<u64, (), u64>::new();
        let u = b.invoke_update(ProcessId(0), ObjectId(0), 3);
        let q = b.invoke_query(ProcessId(1), ObjectId(0), ());
        b.respond_update(u);
        b.respond_query(q, 0);
        tau(&BatchedCounterSpec, &b.finish());
    }

    #[test]
    fn eval_after_matches_manual_replay() {
        let spec = BatchedCounterSpec;
        let updates = [1u64, 2, 3, 4];
        assert_eq!(spec.eval_after(updates.iter(), &()), 10);
    }
}
