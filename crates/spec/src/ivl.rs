//! IVL checkers: exact (Definition 2) and the monotone fast path.
//!
//! **Definition 2 (IVL).** A history `H` is IVL with respect to a
//! sequential specification iff there exist two linearizations `H1`,
//! `H2` of the skeleton `H?` such that for every query `Q` that returns
//! in `H`:
//!
//! ```text
//! ret(Q, τ(H1))  ≤  ret(Q, H)  ≤  ret(Q, τ(H2))
//! ```
//!
//! [`check_ivl_exact`] searches for `H1` and `H2` independently (the two
//! existentials do not interact), via the same pruned DFS as the
//! linearizability checker.
//!
//! [`check_ivl_monotone`] is the efficient decision procedure for
//! [`MonotoneSpec`] objects. For a monotone object with commuting
//! updates the extremal linearizations are the paper's own Lemma 7/10
//! construction:
//!
//! * `H1` places every operation at a point inside its interval with
//!   queries at their **invocation** and updates at their **response**
//!   — so each query sees exactly the updates that *precede* it in
//!   `≺_H`, the least possible set;
//! * `H2` places queries at their **response** and updates at their
//!   **invocation** (pending updates included, i.e. completed) — so
//!   each query sees every update *not after* it, the greatest possible
//!   set.
//!
//! Both are valid linearizations (every operation is collapsed to a
//! point within its own interval, so real-time order is preserved), and
//! by monotonicity and commutativity they simultaneously minimize /
//! maximize every query's value. Hence for monotone objects:
//!
//! ```text
//! H is IVL  ⟺  ∀Q: eval({u : u ≺_H Q}) ≤ ret(Q) ≤ eval({u : ¬(Q ≺_H u)})
//! ```
//!
//! The equivalence of the two checkers is property-tested in this
//! module's test suite and in the crate's proptest suite.

use crate::history::{History, Op, OpId};
use crate::linearize::{search, Prep, ValueConstraint};
use crate::spec::{MonotoneSpec, ObjectSpec};

/// Verdict of an IVL check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IvlVerdict {
    /// The history is IVL.
    Ivl,
    /// No lower-bounding linearization `H1` exists: some query returned
    /// less than every legal linearization value.
    NoLowerLinearization,
    /// No upper-bounding linearization `H2` exists: some query returned
    /// more than every legal linearization value.
    NoUpperLinearization,
}

impl IvlVerdict {
    /// Whether the history was found IVL.
    pub fn is_ivl(&self) -> bool {
        matches!(self, IvlVerdict::Ivl)
    }
}

/// Exact IVL check (Definition 2) by independent DFS for the two
/// bounding linearizations. Exponential; use on small histories
/// (≤ [`crate::linearize::MAX_EXACT_OPS`] operations).
///
/// # Examples
///
/// The paper's headline: an intermediate value of a batched increment
/// is IVL though not linearizable.
///
/// ```
/// use ivl_spec::history::{HistoryBuilder, ObjectId, ProcessId};
/// use ivl_spec::ivl::check_ivl_exact;
/// use ivl_spec::linearize::check_linearizable;
/// use ivl_spec::specs::BatchedCounterSpec;
///
/// let mut b = HistoryBuilder::<u64, (), u64>::new();
/// let seed = b.invoke_update(ProcessId(0), ObjectId(0), 7);
/// b.respond_update(seed);
/// let inc = b.invoke_update(ProcessId(0), ObjectId(0), 3);
/// let read = b.invoke_query(ProcessId(1), ObjectId(0), ());
/// b.respond_query(read, 8); // between the legal 7 and 10
/// b.respond_update(inc);
/// let h = b.finish();
/// assert!(!check_linearizable(&[BatchedCounterSpec], &h).is_linearizable());
/// assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
/// ```
///
/// Multi-object histories are supported: object `x_i` is interpreted
/// under `specs[i]`, and a *single* pair `H1`, `H2` of whole-history
/// linearizations must bound all queries of all objects — the composed
/// definition whose equivalence to per-object checking is Theorem 1
/// (locality).
///
/// # Panics
///
/// Panics if `h` mentions an object id with no spec or exceeds the
/// exact-search size limit.
pub fn check_ivl_exact<S: ObjectSpec>(
    specs: &[S],
    h: &History<S::Update, S::Query, S::Value>,
) -> IvlVerdict {
    let prep = Prep::<S>::new(h);
    if search(specs, &prep, ValueConstraint::AtMostRecorded).is_none() {
        return IvlVerdict::NoLowerLinearization;
    }
    if search(specs, &prep, ValueConstraint::AtLeastRecorded).is_none() {
        return IvlVerdict::NoUpperLinearization;
    }
    IvlVerdict::Ivl
}

/// Per-query outcome of the monotone interval check.
///
/// `lower`/`upper` are the two extremal-linearization values in sorted
/// order: for isotone objects (values grow with updates) the
/// preceding-updates-only evaluation is the lower end; for antitone
/// objects (e.g. a min register, where inserts can only lower the
/// minimum) the roles swap — the checker handles both uniformly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryBounds<V> {
    /// The query's operation id.
    pub id: OpId,
    /// Least legal value across the two extremal linearizations.
    pub lower: V,
    /// Greatest legal value across the two extremal linearizations.
    pub upper: V,
    /// The value the implementation actually returned.
    pub actual: V,
}

impl<V: Ord> QueryBounds<V> {
    /// Whether the actual return value lies in `[lower, upper]`.
    pub fn in_bounds(&self) -> bool {
        self.lower <= self.actual && self.actual <= self.upper
    }
}

/// Computes per-query IVL bounds for a **monotone** object (see module
/// docs for why the interval check is sound and complete for
/// [`MonotoneSpec`]). Runs in `O(ops² · cost(apply))` worst case but
/// `O(ops · cost(apply) + queries · cost(eval))` here thanks to
/// incremental replay, so it scales to recorded executions with
/// millions of events.
///
/// Single-object histories only (project first; by Theorem 1 this loses
/// nothing).
///
/// # Panics
///
/// Panics if `h` mentions more than one object or a completed query
/// lacks a return value.
pub fn monotone_query_bounds<S: MonotoneSpec>(
    spec: &S,
    h: &History<S::Update, S::Query, S::Value>,
) -> Vec<QueryBounds<S::Value>> {
    assert!(
        h.objects().len() <= 1,
        "monotone checker takes single-object histories; project first"
    );
    let ops = h.operations();

    // Completed queries, with invoke/respond indices.
    struct QueryRef<'a, Q, V> {
        id: OpId,
        arg: &'a Q,
        invoke: usize,
        respond: usize,
        actual: &'a V,
    }
    let mut queries: Vec<QueryRef<S::Query, S::Value>> = Vec::new();
    // Updates with (invoke, respond) indices; respond = usize::MAX when
    // pending.
    let mut updates: Vec<(usize, usize, &S::Update)> = Vec::new();
    for op in &ops {
        match &op.op {
            Op::Query(q) => {
                if let Some(r) = op.respond_index {
                    queries.push(QueryRef {
                        id: op.id,
                        arg: q,
                        invoke: op.invoke_index,
                        respond: r,
                        actual: op
                            .return_value
                            .as_ref()
                            .expect("completed query has a return value"),
                    });
                }
            }
            Op::Update(u) => {
                updates.push((op.invoke_index, op.respond_index.unwrap_or(usize::MAX), u));
            }
        }
    }

    let mut out: Vec<QueryBounds<S::Value>> = queries
        .iter()
        .map(|q| QueryBounds {
            id: q.id,
            lower: spec.eval_query(&spec.initial_state(), q.arg), // placeholder
            upper: spec.eval_query(&spec.initial_state(), q.arg), // placeholder
            actual: q.actual.clone(),
        })
        .collect();
    // `lower` temporarily holds the preceding-updates-only value and
    // `upper` the all-non-after value; they are sorted at the end so
    // antitone objects (min registers) are handled too.

    // Lower pass: queries in invocation order; apply updates whose
    // response precedes the query's invocation. Commutativity lets us
    // apply updates in response order incrementally.
    {
        let mut by_resp: Vec<usize> = (0..updates.len())
            .filter(|&i| updates[i].1 != usize::MAX)
            .collect();
        by_resp.sort_by_key(|&i| updates[i].1);
        let mut q_order: Vec<usize> = (0..queries.len()).collect();
        q_order.sort_by_key(|&qi| queries[qi].invoke);
        let mut state = spec.initial_state();
        let mut next = 0;
        for &qi in &q_order {
            while next < by_resp.len() && updates[by_resp[next]].1 < queries[qi].invoke {
                spec.apply_update(&mut state, updates[by_resp[next]].2);
                next += 1;
            }
            out[qi].lower = spec.eval_query(&state, queries[qi].arg);
        }
    }

    // Upper pass: queries in response order; apply updates (pending
    // included) whose invocation precedes the query's response.
    {
        let mut by_inv: Vec<usize> = (0..updates.len()).collect();
        by_inv.sort_by_key(|&i| updates[i].0);
        let mut q_order: Vec<usize> = (0..queries.len()).collect();
        q_order.sort_by_key(|&qi| queries[qi].respond);
        let mut state = spec.initial_state();
        let mut next = 0;
        for &qi in &q_order {
            while next < by_inv.len() && updates[by_inv[next]].0 < queries[qi].respond {
                spec.apply_update(&mut state, updates[by_inv[next]].2);
                next += 1;
            }
            out[qi].upper = spec.eval_query(&state, queries[qi].arg);
        }
    }

    // Sort each interval's endpoints (antitone objects produce them
    // reversed).
    for qb in &mut out {
        if qb.lower > qb.upper {
            std::mem::swap(&mut qb.lower, &mut qb.upper);
        }
    }

    out
}

/// IVL check for monotone objects via the interval criterion; sound and
/// complete for [`MonotoneSpec`] implementations (module docs), and
/// linear-ish in history size. Single-object histories only.
///
/// # Examples
///
/// ```
/// use ivl_spec::history::{HistoryBuilder, ObjectId, ProcessId};
/// use ivl_spec::ivl::check_ivl_monotone;
/// use ivl_spec::specs::BatchedCounterSpec;
///
/// // Figure 2 of the paper: two concurrent updates, one overlapping
/// // read returning a partial sum.
/// let mut b = HistoryBuilder::<u64, (), u64>::new();
/// let read = b.invoke_query(ProcessId(2), ObjectId(0), ());
/// let u1 = b.invoke_update(ProcessId(0), ObjectId(0), 7);
/// let u2 = b.invoke_update(ProcessId(1), ObjectId(0), 3);
/// b.respond_update(u1);
/// b.respond_update(u2);
/// b.respond_query(read, 3); // saw u2, missed u1: intermediate
/// let h = b.finish();
/// assert!(check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl());
/// ```
pub fn check_ivl_monotone<S: MonotoneSpec>(
    spec: &S,
    h: &History<S::Update, S::Query, S::Value>,
) -> IvlVerdict {
    for qb in monotone_query_bounds(spec, h) {
        if qb.actual < qb.lower {
            return IvlVerdict::NoLowerLinearization;
        }
        if qb.actual > qb.upper {
            return IvlVerdict::NoUpperLinearization;
        }
    }
    IvlVerdict::Ivl
}

/// Checks a multi-object history for IVL **via locality** (Theorem 1):
/// projects onto each object and checks each projection with the exact
/// checker. By Theorem 1 this is equivalent to the whole-history check
/// performed by [`check_ivl_exact`].
pub fn check_ivl_by_locality<S: ObjectSpec>(
    specs: &[S],
    h: &History<S::Update, S::Query, S::Value>,
) -> IvlVerdict {
    for obj in h.objects() {
        let sub = h.project(obj);
        let spec = specs[obj.0 as usize].clone();
        // The projected history only mentions `obj`, but the exact
        // checker indexes specs by object id; pass the original slice.
        match check_ivl_exact(specs, &sub) {
            IvlVerdict::Ivl => {}
            bad => {
                let _ = spec;
                return bad;
            }
        }
    }
    IvlVerdict::Ivl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HistoryBuilder, ObjectId, ProcessId};
    use crate::specs::{BatchedCounterSpec, IncDecCounterSpec, MaxRegisterSpec};

    type B = HistoryBuilder<u64, (), u64>;
    const X: ObjectId = ObjectId(0);
    const P0: ProcessId = ProcessId(0);
    const P1: ProcessId = ProcessId(1);

    fn seven_to_ten(read_value: u64) -> crate::history::History<u64, (), u64> {
        let mut b = B::new();
        let u0 = b.invoke_update(P0, X, 7);
        b.respond_update(u0);
        let u = b.invoke_update(P0, X, 3);
        let q = b.invoke_query(P1, X, ());
        b.respond_query(q, read_value);
        b.respond_update(u);
        b.finish()
    }

    #[test]
    fn intermediate_value_is_ivl() {
        // The paper's headline example: 8 is IVL although not
        // linearizable.
        for v in 7..=10 {
            assert!(
                check_ivl_exact(&[BatchedCounterSpec], &seven_to_ten(v)).is_ivl(),
                "{v} should be IVL"
            );
            assert!(
                check_ivl_monotone(&BatchedCounterSpec, &seven_to_ten(v)).is_ivl(),
                "{v} should be IVL (monotone)"
            );
        }
    }

    #[test]
    fn out_of_interval_values_rejected() {
        assert_eq!(
            check_ivl_exact(&[BatchedCounterSpec], &seven_to_ten(6)),
            IvlVerdict::NoLowerLinearization
        );
        assert_eq!(
            check_ivl_exact(&[BatchedCounterSpec], &seven_to_ten(11)),
            IvlVerdict::NoUpperLinearization
        );
        assert_eq!(
            check_ivl_monotone(&BatchedCounterSpec, &seven_to_ten(6)),
            IvlVerdict::NoLowerLinearization
        );
        assert_eq!(
            check_ivl_monotone(&BatchedCounterSpec, &seven_to_ten(11)),
            IvlVerdict::NoUpperLinearization
        );
    }

    #[test]
    fn linearizable_implies_ivl() {
        for v in [7, 10] {
            assert!(check_ivl_exact(&[BatchedCounterSpec], &seven_to_ten(v)).is_ivl());
        }
    }

    #[test]
    fn sequential_ivl_object_not_relaxed() {
        // Paper §3.2: in a sequential execution an IVL object must
        // follow the sequential specification exactly.
        let mut b = B::new();
        let u = b.invoke_update(P0, X, 5);
        b.respond_update(u);
        let q = b.invoke_query(P0, X, ());
        b.respond_query(q, 4);
        let h = b.finish();
        assert!(!check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
        assert!(!check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl());
    }

    #[test]
    fn figure2_reenactment() {
        // Figure 2 of the paper: p1 updates 7, p2 updates 3, p3 reads
        // and returns an intermediate value between 0 (counter at read
        // start) and 10 (counter when read completes).
        for ret in 0..=10 {
            let mut b = B::new();
            let q = b.invoke_query(ProcessId(3), X, ());
            let u1 = b.invoke_update(P0, X, 7);
            let u2 = b.invoke_update(P1, X, 3);
            b.respond_update(u1);
            b.respond_update(u2);
            b.respond_query(q, ret);
            let h = b.finish();
            assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
            assert!(check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl());
        }
    }

    #[test]
    fn pending_update_raises_upper_bound() {
        let mut b = B::new();
        b.invoke_update(P0, X, 5); // never responds
        let q = b.invoke_query(P1, X, ());
        b.respond_query(q, 5);
        let h = b.finish();
        assert!(check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl());
        assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
    }

    #[test]
    fn pending_update_does_not_lower_lower_bound() {
        let mut b = B::new();
        let u = b.invoke_update(P0, X, 5);
        b.respond_update(u);
        b.invoke_update(P0, X, 100); // pending
        let q = b.invoke_query(P1, X, ());
        b.respond_query(q, 4); // below the 5 already completed
        let h = b.finish();
        assert!(!check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl());
        assert!(!check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
    }

    #[test]
    fn monotone_bounds_values() {
        let h = seven_to_ten(8);
        let bounds = monotone_query_bounds(&BatchedCounterSpec, &h);
        assert_eq!(bounds.len(), 1);
        assert_eq!(bounds[0].lower, 7);
        assert_eq!(bounds[0].upper, 10);
        assert_eq!(bounds[0].actual, 8);
        assert!(bounds[0].in_bounds());
    }

    #[test]
    fn section_3_4_nonmonotone_counterexample() {
        // §3.4: query concurrent with inc(1) followed by dec(1). Seeing
        // only the decrement returns -1, smaller than every legal value
        // (0 before both, 1 after inc, 0 after both) — violates IVL.
        let mut b = HistoryBuilder::<i64, (), i64>::new();
        let q = b.invoke_query(P1, X, ());
        let inc = b.invoke_update(P0, X, 1);
        b.respond_update(inc);
        let dec = b.invoke_update(P0, X, -1);
        b.respond_update(dec);
        b.respond_query(q, -1);
        let h = b.finish();
        assert_eq!(
            check_ivl_exact(&[IncDecCounterSpec], &h),
            IvlVerdict::NoLowerLinearization
        );
        // 0 and 1 are fine.
        for ok in [0, 1] {
            let mut b = HistoryBuilder::<i64, (), i64>::new();
            let q = b.invoke_query(P1, X, ());
            let inc = b.invoke_update(P0, X, 1);
            b.respond_update(inc);
            let dec = b.invoke_update(P0, X, -1);
            b.respond_update(dec);
            b.respond_query(q, ok);
            assert!(check_ivl_exact(&[IncDecCounterSpec], &b.finish()).is_ivl());
        }
    }

    #[test]
    fn max_register_monotone_check() {
        let mut b = B::new();
        let q = b.invoke_query(P1, X, ());
        let u = b.invoke_update(P0, X, 9);
        b.respond_update(u);
        b.respond_query(q, 9);
        let h = b.finish();
        assert!(check_ivl_monotone(&MaxRegisterSpec, &h).is_ivl());
        assert!(check_ivl_exact(&[MaxRegisterSpec], &h).is_ivl());
    }

    #[test]
    fn locality_composition() {
        // Two objects, each individually IVL; interleaved composite is
        // IVL by Theorem 1 and by direct whole-history check.
        let mut b = B::new();
        let u0 = b.invoke_update(P0, ObjectId(0), 3);
        let q0 = b.invoke_query(P1, ObjectId(0), ());
        b.respond_query(q0, 2); // intermediate of 0..3? No: bounds [0,3]
        b.respond_update(u0);
        let h0 = b.finish();

        let mut b = HistoryBuilder::<u64, (), u64>::new();
        let u1 = b.invoke_update(ProcessId(2), ObjectId(1), 5);
        let q1 = b.invoke_query(ProcessId(3), ObjectId(1), ());
        b.respond_query(q1, 4);
        b.respond_update(u1);
        let h1 = b.finish();

        let composite = h0.interleave(&h1);
        let specs = [BatchedCounterSpec, BatchedCounterSpec];
        assert!(check_ivl_exact(&specs, &composite).is_ivl());
        assert!(check_ivl_by_locality(&specs, &composite).is_ivl());
    }

    #[test]
    fn locality_detects_single_bad_object() {
        let mut b = B::new();
        let u0 = b.invoke_update(P0, ObjectId(0), 3);
        b.respond_update(u0);
        let q0 = b.invoke_query(P1, ObjectId(0), ());
        b.respond_query(q0, 99); // out of bounds on object 0
        let h0 = b.finish();

        let mut b = HistoryBuilder::<u64, (), u64>::new();
        let u1 = b.invoke_update(ProcessId(2), ObjectId(1), 5);
        b.respond_update(u1);
        let q1 = b.invoke_query(ProcessId(3), ObjectId(1), ());
        b.respond_query(q1, 5);
        let h1 = b.finish();

        let composite = h0.interleave(&h1);
        let specs = [BatchedCounterSpec, BatchedCounterSpec];
        assert!(!check_ivl_exact(&specs, &composite).is_ivl());
        assert!(!check_ivl_by_locality(&specs, &composite).is_ivl());
    }
}
