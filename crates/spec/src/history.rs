//! Histories: sequences of invocation and response events.
//!
//! A *history* (paper §2.1) is the sequence of invoke and response steps
//! of an execution. A *well-formed* history has no concurrent operations
//! by the same process, and every response is preceded by a matching
//! invocation. A *skeleton history* `H?` is a history whose query return
//! values have been erased.
//!
//! Histories here are generic over the update argument type `U`, the
//! query argument type `Q`, and the query return value type `V` of the
//! object(s) they mention, so the same machinery serves batched counters
//! (`U = u64`), CountMin sketches (`U = item`, `Q = item`), and any other
//! quantitative object.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a process (thread) in a history.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ProcessId(pub u32);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a shared object in a (possibly multi-object) history.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Identifier of a single operation instance within one history.
///
/// Returned by [`HistoryBuilder::invoke_update`] /
/// [`HistoryBuilder::invoke_query`] and used to attach the matching
/// response.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct OpId(pub u64);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// The operation named by an invocation: an `update` (mutator, returns
/// nothing) or a `query` (accessor, returns a value from a totally
/// ordered domain). This is the *quantitative object* interface of
/// paper §3.1.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op<U, Q> {
    /// A mutating operation carrying its argument.
    Update(U),
    /// A read-only operation carrying its argument.
    Query(Q),
}

impl<U, Q> Op<U, Q> {
    /// Whether this is an update operation.
    pub fn is_update(&self) -> bool {
        matches!(self, Op::Update(_))
    }

    /// Whether this is a query operation.
    pub fn is_query(&self) -> bool {
        matches!(self, Op::Query(_))
    }
}

/// One event of a history.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EventKind<U, Q, V> {
    /// Invocation step `inv_p(op(arg))`.
    Invoke(Op<U, Q>),
    /// Response step `rsp_p(op) → ret`. The value is `None` for update
    /// responses and for skeleton (`?`) query responses.
    Respond(Option<V>),
}

/// An invocation or response event, tagged with the operation, process
/// and object it belongs to.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Event<U, Q, V> {
    /// The operation instance this event belongs to.
    pub op: OpId,
    /// The invoking process.
    pub process: ProcessId,
    /// The object the operation acts on.
    pub object: ObjectId,
    /// Invocation or response.
    pub kind: EventKind<U, Q, V>,
}

/// A complete record of one operation extracted from a history.
#[derive(Clone, Debug)]
pub struct OperationRecord<U, Q, V> {
    /// The operation instance id.
    pub id: OpId,
    /// The invoking process.
    pub process: ProcessId,
    /// The object acted upon.
    pub object: ObjectId,
    /// The operation and its argument.
    pub op: Op<U, Q>,
    /// Index of the invocation event in the history.
    pub invoke_index: usize,
    /// Index of the response event, or `None` if the operation is
    /// pending (invoked but never responded).
    pub respond_index: Option<usize>,
    /// The returned value for completed queries; `None` for updates and
    /// pending queries.
    pub return_value: Option<V>,
}

impl<U, Q, V> OperationRecord<U, Q, V> {
    /// Whether the operation completed (has a response event).
    pub fn is_complete(&self) -> bool {
        self.respond_index.is_some()
    }

    /// Whether this operation *precedes* `other` in the history's
    /// partial order `≺_H`: its response occurs before `other`'s
    /// invocation.
    pub fn precedes(&self, other: &Self) -> bool {
        match self.respond_index {
            Some(r) => r < other.invoke_index,
            None => false,
        }
    }

    /// Whether this operation is concurrent with `other` (neither
    /// precedes the other).
    pub fn concurrent_with(&self, other: &Self) -> bool {
        !self.precedes(other) && !other.precedes(self)
    }
}

/// Errors detected when validating well-formedness of a history.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MalformedHistory {
    /// A response event appears with no matching prior invocation.
    ResponseWithoutInvocation(OpId),
    /// Two invocations share an [`OpId`].
    DuplicateInvocation(OpId),
    /// Two responses share an [`OpId`].
    DuplicateResponse(OpId),
    /// A process invoked an operation while another of its operations
    /// was still pending.
    OverlappingOpsSameProcess(ProcessId, OpId, OpId),
    /// An update response carries a return value, or a completed query
    /// response carries none.
    ReturnValueMismatch(OpId),
    /// A response names a different process or object than its
    /// invocation.
    InconsistentResponse(OpId),
}

impl fmt::Display for MalformedHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MalformedHistory::ResponseWithoutInvocation(op) => {
                write!(f, "response for {op} has no matching invocation")
            }
            MalformedHistory::DuplicateInvocation(op) => {
                write!(f, "duplicate invocation of {op}")
            }
            MalformedHistory::DuplicateResponse(op) => write!(f, "duplicate response of {op}"),
            MalformedHistory::OverlappingOpsSameProcess(p, a, b) => {
                write!(f, "{p} invoked {b} while {a} was pending")
            }
            MalformedHistory::ReturnValueMismatch(op) => {
                write!(f, "response of {op} carries a wrong-kind return value")
            }
            MalformedHistory::InconsistentResponse(op) => {
                write!(f, "response of {op} names a different process or object")
            }
        }
    }
}

impl std::error::Error for MalformedHistory {}

/// A history: an ordered sequence of invocation and response events.
///
/// Construct one with [`HistoryBuilder`], which guarantees
/// well-formedness, or from raw events with [`History::from_events`],
/// which validates them.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct History<U, Q, V> {
    events: Vec<Event<U, Q, V>>,
}

impl<U: Clone, Q: Clone, V: Clone> History<U, Q, V> {
    /// Builds a history from raw events, validating well-formedness.
    ///
    /// # Errors
    ///
    /// Returns the first [`MalformedHistory`] violation found.
    pub fn from_events(events: Vec<Event<U, Q, V>>) -> Result<Self, MalformedHistory> {
        let h = History { events };
        h.validate()?;
        Ok(h)
    }

    fn validate(&self) -> Result<(), MalformedHistory> {
        let mut invoked: HashMap<OpId, (ProcessId, ObjectId, bool)> = HashMap::new();
        let mut responded: HashMap<OpId, ()> = HashMap::new();
        let mut pending_per_process: HashMap<ProcessId, OpId> = HashMap::new();
        for ev in &self.events {
            match &ev.kind {
                EventKind::Invoke(op) => {
                    if invoked.contains_key(&ev.op) {
                        return Err(MalformedHistory::DuplicateInvocation(ev.op));
                    }
                    if let Some(&prev) = pending_per_process.get(&ev.process) {
                        return Err(MalformedHistory::OverlappingOpsSameProcess(
                            ev.process, prev, ev.op,
                        ));
                    }
                    invoked.insert(ev.op, (ev.process, ev.object, op.is_update()));
                    pending_per_process.insert(ev.process, ev.op);
                }
                EventKind::Respond(val) => {
                    let Some(&(proc, obj, is_update)) = invoked.get(&ev.op) else {
                        return Err(MalformedHistory::ResponseWithoutInvocation(ev.op));
                    };
                    if responded.contains_key(&ev.op) {
                        return Err(MalformedHistory::DuplicateResponse(ev.op));
                    }
                    if proc != ev.process || obj != ev.object {
                        return Err(MalformedHistory::InconsistentResponse(ev.op));
                    }
                    if is_update != val.is_none() {
                        return Err(MalformedHistory::ReturnValueMismatch(ev.op));
                    }
                    responded.insert(ev.op, ());
                    pending_per_process.remove(&ev.process);
                }
            }
        }
        Ok(())
    }

    /// The raw event sequence.
    pub fn events(&self) -> &[Event<U, Q, V>] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Extracts one [`OperationRecord`] per invocation, in invocation
    /// order.
    pub fn operations(&self) -> Vec<OperationRecord<U, Q, V>> {
        let mut ops: Vec<OperationRecord<U, Q, V>> = Vec::new();
        let mut index_of: HashMap<OpId, usize> = HashMap::new();
        for (i, ev) in self.events.iter().enumerate() {
            match &ev.kind {
                EventKind::Invoke(op) => {
                    index_of.insert(ev.op, ops.len());
                    ops.push(OperationRecord {
                        id: ev.op,
                        process: ev.process,
                        object: ev.object,
                        op: op.clone(),
                        invoke_index: i,
                        respond_index: None,
                        return_value: None,
                    });
                }
                EventKind::Respond(val) => {
                    let idx = index_of[&ev.op];
                    ops[idx].respond_index = Some(i);
                    ops[idx].return_value = val.clone();
                }
            }
        }
        ops
    }

    /// The skeleton history `H?`: all query return values replaced by
    /// `?` (represented as `None`).
    pub fn skeleton(&self) -> History<U, Q, V> {
        let events = self
            .events
            .iter()
            .map(|ev| Event {
                op: ev.op,
                process: ev.process,
                object: ev.object,
                kind: match &ev.kind {
                    EventKind::Invoke(op) => EventKind::Invoke(op.clone()),
                    EventKind::Respond(_) => EventKind::Respond(None),
                },
            })
            .collect();
        History { events }
    }

    /// The per-object projection `H|x`: the sub-history of events on
    /// object `x` (paper §2.1).
    pub fn project(&self, object: ObjectId) -> History<U, Q, V> {
        History {
            events: self
                .events
                .iter()
                .filter(|ev| ev.object == object)
                .cloned()
                .collect(),
        }
    }

    /// All distinct object ids mentioned, in first-appearance order.
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut seen = Vec::new();
        for ev in &self.events {
            if !seen.contains(&ev.object) {
                seen.push(ev.object);
            }
        }
        seen
    }

    /// All distinct process ids mentioned, in first-appearance order.
    pub fn processes(&self) -> Vec<ProcessId> {
        let mut seen = Vec::new();
        for ev in &self.events {
            if !seen.contains(&ev.process) {
                seen.push(ev.process);
            }
        }
        seen
    }

    /// Whether the history is *sequential*: an alternating sequence of
    /// invocations and their immediate responses.
    pub fn is_sequential(&self) -> bool {
        let mut expect_response_for: Option<OpId> = None;
        for ev in &self.events {
            match (&ev.kind, expect_response_for) {
                (EventKind::Invoke(_), None) => expect_response_for = Some(ev.op),
                (EventKind::Respond(_), Some(id)) if id == ev.op => expect_response_for = None,
                _ => return false,
            }
        }
        true
    }

    /// Interleaves two histories over disjoint objects and processes
    /// into one, taking events alternately (used by locality tests).
    /// Event order within each input history is preserved. Operation
    /// ids of `other` are shifted past this history's maximum id so that
    /// independently built histories never collide.
    pub fn interleave(&self, other: &History<U, Q, V>) -> History<U, Q, V> {
        let offset = self.events.iter().map(|ev| ev.op.0 + 1).max().unwrap_or(0);
        let mut events = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.events.len() || j < other.events.len() {
            if i < self.events.len() {
                events.push(self.events[i].clone());
                i += 1;
            }
            if j < other.events.len() {
                let mut ev = other.events[j].clone();
                ev.op = OpId(ev.op.0 + offset);
                events.push(ev);
                j += 1;
            }
        }
        History { events }
    }
}

/// Incremental builder producing well-formed histories.
///
/// Operation ids are assigned automatically; the builder panics on
/// ill-formed usage (a process invoking while pending, responding to an
/// unknown or already-completed operation), making misuse loud in tests.
#[derive(Clone, Debug)]
pub struct HistoryBuilder<U, Q, V> {
    events: Vec<Event<U, Q, V>>,
    next_op: u64,
    pending: HashMap<ProcessId, OpId>,
    meta: HashMap<OpId, (ProcessId, ObjectId, bool)>,
}

impl<U: Clone, Q: Clone, V: Clone> Default for HistoryBuilder<U, Q, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<U: Clone, Q: Clone, V: Clone> HistoryBuilder<U, Q, V> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        HistoryBuilder {
            events: Vec::new(),
            next_op: 0,
            pending: HashMap::new(),
            meta: HashMap::new(),
        }
    }

    fn invoke(&mut self, process: ProcessId, object: ObjectId, op: Op<U, Q>) -> OpId {
        assert!(
            !self.pending.contains_key(&process),
            "{process} invoked an operation while another is pending"
        );
        let id = OpId(self.next_op);
        self.next_op += 1;
        self.pending.insert(process, id);
        self.meta.insert(id, (process, object, op.is_update()));
        self.events.push(Event {
            op: id,
            process,
            object,
            kind: EventKind::Invoke(op),
        });
        id
    }

    /// Appends `inv_p(update(arg))`.
    ///
    /// # Panics
    ///
    /// Panics if `process` already has a pending operation.
    pub fn invoke_update(&mut self, process: ProcessId, object: ObjectId, arg: U) -> OpId {
        self.invoke(process, object, Op::Update(arg))
    }

    /// Appends `inv_p(query(arg))`.
    ///
    /// # Panics
    ///
    /// Panics if `process` already has a pending operation.
    pub fn invoke_query(&mut self, process: ProcessId, object: ObjectId, arg: Q) -> OpId {
        self.invoke(process, object, Op::Query(arg))
    }

    fn respond(&mut self, id: OpId, value: Option<V>) {
        let &(process, object, is_update) = self
            .meta
            .get(&id)
            .unwrap_or_else(|| panic!("respond to unknown {id}"));
        assert_eq!(
            self.pending.get(&process),
            Some(&id),
            "{id} is not the pending operation of {process}"
        );
        assert_eq!(
            is_update,
            value.is_none(),
            "return value kind mismatch for {id}"
        );
        self.pending.remove(&process);
        self.events.push(Event {
            op: id,
            process,
            object,
            kind: EventKind::Respond(value),
        });
    }

    /// Appends `rsp_p(update)`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown, already responded, or is a query.
    pub fn respond_update(&mut self, id: OpId) {
        self.respond(id, None);
    }

    /// Appends `rsp_p(query) → value`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown, already responded, or is an update.
    pub fn respond_query(&mut self, id: OpId, value: V) {
        self.respond(id, Some(value));
    }

    /// Finishes the builder, returning the history. Pending operations
    /// remain pending (allowed by well-formedness).
    pub fn finish(self) -> History<U, Q, V> {
        History {
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type H = HistoryBuilder<u64, (), u64>;

    #[test]
    fn builder_produces_wellformed() {
        let mut b = H::new();
        let u = b.invoke_update(ProcessId(0), ObjectId(0), 3);
        let q = b.invoke_query(ProcessId(1), ObjectId(0), ());
        b.respond_update(u);
        b.respond_query(q, 0);
        let h = b.finish();
        assert_eq!(h.len(), 4);
        assert!(History::from_events(h.events().to_vec()).is_ok());
    }

    #[test]
    #[should_panic(expected = "pending")]
    fn builder_rejects_same_process_overlap() {
        let mut b = H::new();
        b.invoke_update(ProcessId(0), ObjectId(0), 1);
        b.invoke_update(ProcessId(0), ObjectId(0), 2);
    }

    #[test]
    fn precedence_and_concurrency() {
        let mut b = H::new();
        let u1 = b.invoke_update(ProcessId(0), ObjectId(0), 1);
        b.respond_update(u1);
        let u2 = b.invoke_update(ProcessId(0), ObjectId(0), 2);
        let q = b.invoke_query(ProcessId(1), ObjectId(0), ());
        b.respond_update(u2);
        b.respond_query(q, 1);
        let h = b.finish();
        let ops = h.operations();
        assert!(ops[0].precedes(&ops[1]));
        assert!(ops[0].precedes(&ops[2]));
        assert!(ops[1].concurrent_with(&ops[2]));
        assert!(!ops[2].precedes(&ops[1]));
    }

    #[test]
    fn skeleton_erases_query_values() {
        let mut b = H::new();
        let q = b.invoke_query(ProcessId(0), ObjectId(0), ());
        b.respond_query(q, 42);
        let h = b.finish();
        let sk = h.skeleton();
        match &sk.events()[1].kind {
            EventKind::Respond(v) => assert!(v.is_none()),
            _ => panic!("expected response"),
        }
    }

    #[test]
    fn projection_splits_objects() {
        let mut b = H::new();
        let a = b.invoke_update(ProcessId(0), ObjectId(0), 1);
        b.respond_update(a);
        let c = b.invoke_update(ProcessId(0), ObjectId(1), 2);
        b.respond_update(c);
        let h = b.finish();
        assert_eq!(h.project(ObjectId(0)).len(), 2);
        assert_eq!(h.project(ObjectId(1)).len(), 2);
        assert_eq!(h.objects(), vec![ObjectId(0), ObjectId(1)]);
    }

    #[test]
    fn sequential_detection() {
        let mut b = H::new();
        let u = b.invoke_update(ProcessId(0), ObjectId(0), 1);
        b.respond_update(u);
        let q = b.invoke_query(ProcessId(1), ObjectId(0), ());
        b.respond_query(q, 1);
        assert!(b.finish().is_sequential());

        let mut b = H::new();
        let u = b.invoke_update(ProcessId(0), ObjectId(0), 1);
        let q = b.invoke_query(ProcessId(1), ObjectId(0), ());
        b.respond_update(u);
        b.respond_query(q, 1);
        assert!(!b.finish().is_sequential());
    }

    #[test]
    fn from_events_rejects_response_without_invocation() {
        let ev = Event::<u64, (), u64> {
            op: OpId(0),
            process: ProcessId(0),
            object: ObjectId(0),
            kind: EventKind::Respond(None),
        };
        assert_eq!(
            History::from_events(vec![ev]).unwrap_err(),
            MalformedHistory::ResponseWithoutInvocation(OpId(0))
        );
    }

    #[test]
    fn from_events_rejects_update_with_return_value() {
        let events = vec![
            Event::<u64, (), u64> {
                op: OpId(0),
                process: ProcessId(0),
                object: ObjectId(0),
                kind: EventKind::Invoke(Op::Update(1)),
            },
            Event {
                op: OpId(0),
                process: ProcessId(0),
                object: ObjectId(0),
                kind: EventKind::Respond(Some(7)),
            },
        ];
        assert_eq!(
            History::from_events(events).unwrap_err(),
            MalformedHistory::ReturnValueMismatch(OpId(0))
        );
    }

    #[test]
    fn pending_operations_allowed() {
        let mut b = H::new();
        b.invoke_update(ProcessId(0), ObjectId(0), 5);
        let h = b.finish();
        let ops = h.operations();
        assert_eq!(ops.len(), 1);
        assert!(!ops[0].is_complete());
    }
}
