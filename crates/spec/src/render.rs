//! Human-readable rendering of histories: an ASCII timeline (one lane
//! per process, `[===]` spans for operation intervals) plus a legend.
//! Used by the examples and by test failure messages when a checker
//! verdict needs eyeballing.

use crate::history::{EventKind, History, Op};
use std::fmt::Debug;
use std::fmt::Write as _;

/// Renders `h` as an ASCII timeline with a legend, e.g.
///
/// ```text
/// p0: .[=======].......
/// p1: ....[========]...
///
/// op0  p0  update(3)
/// op1  p1  query(()) -> 0
/// ```
///
/// Columns are event indices: `[` at the invocation, `]` at the
/// response, `=` while pending, `-` for operations still pending at
/// the end.
pub fn render_timeline<U, Q, V>(h: &History<U, Q, V>) -> String
where
    U: Debug + Clone,
    Q: Debug + Clone,
    V: Debug + Clone,
{
    let processes = h.processes();
    let width = h.len();
    let mut lanes: Vec<Vec<char>> = vec![vec!['.'; width]; processes.len()];
    let lane_of = |p| {
        processes
            .iter()
            .position(|&x| x == p)
            .expect("known process")
    };

    let ops = h.operations();
    for op in &ops {
        let lane = lane_of(op.process);
        match op.respond_index {
            Some(r) => {
                lanes[lane][op.invoke_index] = '[';
                lanes[lane][r] = ']';
                for c in lanes[lane][op.invoke_index + 1..r].iter_mut() {
                    *c = '=';
                }
            }
            None => {
                lanes[lane][op.invoke_index] = '[';
                for c in lanes[lane][op.invoke_index + 1..].iter_mut() {
                    *c = '-';
                }
            }
        }
    }

    let mut out = String::new();
    for (i, p) in processes.iter().enumerate() {
        let _ = writeln!(out, "{p:>4}: {}", lanes[i].iter().collect::<String>());
    }
    out.push('\n');
    for op in &ops {
        let desc = match &op.op {
            Op::Update(u) => format!("update({u:?})"),
            Op::Query(q) => match &op.return_value {
                Some(v) => format!("query({q:?}) -> {v:?}"),
                None => format!("query({q:?}) -> pending"),
            },
        };
        let pending = if op.is_complete() { "" } else { "  [pending]" };
        let _ = writeln!(out, "{:>5}  {:>4}  {desc}{pending}", op.id, op.process);
    }
    out
}

/// Renders `h` as a flat, numbered event list (one line per event).
pub fn render_events<U, Q, V>(h: &History<U, Q, V>) -> String
where
    U: Debug + Clone,
    Q: Debug + Clone,
    V: Debug + Clone,
{
    let mut out = String::new();
    for (i, ev) in h.events().iter().enumerate() {
        let what = match &ev.kind {
            EventKind::Invoke(Op::Update(u)) => format!("inv  update({u:?})"),
            EventKind::Invoke(Op::Query(q)) => format!("inv  query({q:?})"),
            EventKind::Respond(Some(v)) => format!("rsp  -> {v:?}"),
            EventKind::Respond(None) => "rsp".to_string(),
        };
        let _ = writeln!(
            out,
            "{i:>4}  {:>4} {:>3} {:>5}  {what}",
            ev.process, ev.object, ev.op
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HistoryBuilder, ObjectId, ProcessId};

    fn sample() -> History<u64, (), u64> {
        let mut b = HistoryBuilder::new();
        let u = b.invoke_update(ProcessId(0), ObjectId(0), 3);
        let q = b.invoke_query(ProcessId(1), ObjectId(0), ());
        b.respond_update(u);
        b.respond_query(q, 0);
        b.invoke_update(ProcessId(0), ObjectId(0), 9); // pending
        b.finish()
    }

    #[test]
    fn timeline_shows_overlap() {
        let t = render_timeline(&sample());
        assert!(t.contains("p0: [=]"), "got:\n{t}");
        assert!(t.contains("p1: .[=]"), "got:\n{t}");
        assert!(t.contains("update(3)"));
        assert!(t.contains("query(()) -> 0"));
        assert!(t.contains("[pending]"));
    }

    #[test]
    fn timeline_marks_pending_tail() {
        let t = render_timeline(&sample());
        // The pending update opens a bracket at the last column.
        let lane0 = t.lines().next().unwrap();
        assert!(lane0.ends_with('['), "got: {lane0}");
    }

    #[test]
    fn event_list_numbers_all_events() {
        let e = render_events(&sample());
        assert_eq!(e.lines().count(), 5);
        assert!(e.contains("inv  update(3)"));
        assert!(e.contains("rsp  -> 0"));
    }
}
