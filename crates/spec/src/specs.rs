//! Built-in sequential specifications used across the workspace.
//!
//! * [`BatchedCounterSpec`] — the paper's §6 batched counter: `update(v)`
//!   with `v ≥ 0`, `read()` returns the sum of all preceding updates.
//! * [`IncDecCounterSpec`] — the §3.4 non-monotone counterexample: an
//!   object supporting both increments and decrements.
//! * [`MaxRegisterSpec`] — a max register (`update(v)` sets the value to
//!   `max(current, v)`); the monotone core of HyperLogLog registers.
//! * [`MultiCounterSpec`] — a vector of named counters with point
//!   queries; the *ideal specification* `I` of frequency sketches (a
//!   query for item `a` returns the exact frequency `f_a`).

use crate::spec::{MonotoneSpec, ObjectSpec};

/// The paper's batched counter (§6.2): `update(v ≥ 0)` adds `v`; `read`
/// returns the sum of all preceding updates, 0 initially.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct BatchedCounterSpec;

impl ObjectSpec for BatchedCounterSpec {
    type Update = u64;
    type Query = ();
    type Value = u64;
    type State = u64;

    fn initial_state(&self) -> u64 {
        0
    }

    fn apply_update(&self, state: &mut u64, update: &u64) {
        *state += *update;
    }

    fn eval_query(&self, state: &u64, _query: &()) -> u64 {
        *state
    }
}

/// Batched counters are monotone: increments are non-negative and
/// commute, and `read` never decreases as updates are added.
impl MonotoneSpec for BatchedCounterSpec {}

/// A counter supporting increments *and* decrements — the paper's §3.4
/// example of a non-monotone quantitative object, for which regular-like
/// "query sees a subset of concurrent updates" semantics violates IVL.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct IncDecCounterSpec;

impl ObjectSpec for IncDecCounterSpec {
    type Update = i64;
    type Query = ();
    type Value = i64;
    type State = i64;

    fn initial_state(&self) -> i64 {
        0
    }

    fn apply_update(&self, state: &mut i64, update: &i64) {
        *state += *update;
    }

    fn eval_query(&self, state: &i64, _query: &()) -> i64 {
        *state
    }
}

// Deliberately NOT `MonotoneSpec`: decrements can lower a query's value,
// so the interval fast path is unsound for it. The exact checker still
// applies.

/// A max register: `update(v)` raises the stored value to at least `v`;
/// `read` returns the maximum update seen (0 initially).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct MaxRegisterSpec;

impl ObjectSpec for MaxRegisterSpec {
    type Update = u64;
    type Query = ();
    type Value = u64;
    type State = u64;

    fn initial_state(&self) -> u64 {
        0
    }

    fn apply_update(&self, state: &mut u64, update: &u64) {
        *state = (*state).max(*update);
    }

    fn eval_query(&self, state: &u64, _query: &()) -> u64 {
        *state
    }
}

/// Max is commutative and monotone.
impl MonotoneSpec for MaxRegisterSpec {}

/// A min register: `update(v)` lowers the stored value to at most `v`;
/// `read` returns the minimum update seen (`u64::MAX` initially).
///
/// The quantitative core of a priority queue's `peek-min` — the
/// paper's conclusion singles priority queues out as the
/// "semi-quantitative" frontier for IVL; the key component is this
/// *antitone* monotone object, handled by the same interval checker
/// with the endpoint roles swapped.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct MinRegisterSpec;

impl ObjectSpec for MinRegisterSpec {
    type Update = u64;
    type Query = ();
    type Value = u64;
    type State = u64;

    fn initial_state(&self) -> u64 {
        u64::MAX
    }

    fn apply_update(&self, state: &mut u64, update: &u64) {
        *state = (*state).min(*update);
    }

    fn eval_query(&self, state: &u64, _query: &()) -> u64 {
        *state
    }
}

/// Min is commutative and uniformly antitone.
impl MonotoneSpec for MinRegisterSpec {}

/// The ideal specification `I` of a frequency estimator over an alphabet
/// `0..alphabet`: `update(a)` increments item `a`'s exact count;
/// `query(a)` returns it. CountMin is an (ε,δ)-bounded implementation of
/// this spec (paper §5); the spec itself is the error-free reference
/// used by `v_min`/`v_max` (Definition 5) and Corollary 8.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MultiCounterSpec {
    /// Number of distinct items (items are `0..alphabet`).
    pub alphabet: usize,
}

impl MultiCounterSpec {
    /// Creates the ideal frequency spec for items `0..alphabet`.
    pub fn new(alphabet: usize) -> Self {
        MultiCounterSpec { alphabet }
    }
}

impl ObjectSpec for MultiCounterSpec {
    type Update = usize;
    type Query = usize;
    type Value = u64;
    type State = Vec<u64>;

    fn initial_state(&self) -> Vec<u64> {
        vec![0; self.alphabet]
    }

    fn apply_update(&self, state: &mut Vec<u64>, update: &usize) {
        state[*update] += 1;
    }

    fn eval_query(&self, state: &Vec<u64>, query: &usize) -> u64 {
        state[*query]
    }
}

/// Point frequencies only grow and increments commute.
impl MonotoneSpec for MultiCounterSpec {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_counter_sums() {
        let s = BatchedCounterSpec;
        let mut st = s.initial_state();
        s.apply_update(&mut st, &3);
        s.apply_update(&mut st, &4);
        assert_eq!(s.eval_query(&st, &()), 7);
    }

    #[test]
    fn inc_dec_goes_both_ways() {
        let s = IncDecCounterSpec;
        let mut st = s.initial_state();
        s.apply_update(&mut st, &5);
        s.apply_update(&mut st, &-8);
        assert_eq!(s.eval_query(&st, &()), -3);
    }

    #[test]
    fn max_register_takes_max() {
        let s = MaxRegisterSpec;
        let mut st = s.initial_state();
        s.apply_update(&mut st, &5);
        s.apply_update(&mut st, &2);
        assert_eq!(s.eval_query(&st, &()), 5);
    }

    #[test]
    fn min_register_takes_min() {
        let s = MinRegisterSpec;
        let mut st = s.initial_state();
        assert_eq!(s.eval_query(&st, &()), u64::MAX);
        s.apply_update(&mut st, &5);
        s.apply_update(&mut st, &9);
        assert_eq!(s.eval_query(&st, &()), 5);
    }

    #[test]
    fn multi_counter_tracks_frequencies() {
        let s = MultiCounterSpec::new(4);
        let mut st = s.initial_state();
        for a in [0usize, 1, 1, 3, 1] {
            s.apply_update(&mut st, &a);
        }
        assert_eq!(s.eval_query(&st, &0), 1);
        assert_eq!(s.eval_query(&st, &1), 3);
        assert_eq!(s.eval_query(&st, &2), 0);
        assert_eq!(s.eval_query(&st, &3), 1);
    }
}
