//! Definition 5 as a checkable predicate: concurrent (ε,δ)-bounded
//! objects.
//!
//! Definition 5 of the paper says a concurrent randomized algorithm
//! implements an (ε,δ)-bounded `I` object if every query returns at
//! least `v_min − ε` and at most `v_max + ε` with probability
//! `1 − δ/2` each, where `v_min`/`v_max` range over the *ideal*
//! specification `I`'s values across linearizations of the query's
//! interval.
//!
//! [`epsilon_bounded_report`] evaluates the bracket for every
//! completed query of a recorded history against an ideal spec `I`
//! (e.g. [`crate::specs::MultiCounterSpec`] — true frequencies — for a
//! CountMin history), using the monotone fast path for `v_min`/`v_max`.
//! The per-query outcomes feed a violation-rate estimate to compare
//! with δ, which is how Theorem 6's conclusion is validated on real
//! executions in the formal domain (experiment E8, checker flavour).

use crate::history::{History, OpId};
use crate::ivl::monotone_query_bounds;
use crate::spec::MonotoneSpec;

/// One query's outcome under Definition 5.
#[derive(Clone, PartialEq, Debug)]
pub struct BoundedQueryOutcome {
    /// The query's operation id.
    pub id: OpId,
    /// `v_min` under the ideal spec (least value over linearizations).
    pub v_min: f64,
    /// `v_max` under the ideal spec.
    pub v_max: f64,
    /// The value actually returned.
    pub actual: f64,
    /// Whether `v_min − ε ≤ actual` held.
    pub lower_ok: bool,
    /// Whether `actual ≤ v_max + ε` held.
    pub upper_ok: bool,
}

/// Aggregate outcome of a Definition 5 check.
#[derive(Clone, PartialEq, Debug)]
pub struct BoundedReport {
    /// Per-query outcomes, in history order.
    pub queries: Vec<BoundedQueryOutcome>,
    /// The ε used.
    pub epsilon: f64,
}

impl BoundedReport {
    /// Number of queries violating the lower bracket.
    pub fn lower_violations(&self) -> usize {
        self.queries.iter().filter(|q| !q.lower_ok).count()
    }

    /// Number of queries violating the upper bracket.
    pub fn upper_violations(&self) -> usize {
        self.queries.iter().filter(|q| !q.upper_ok).count()
    }

    /// Fraction of queries violating either side — compare with δ.
    pub fn violation_rate(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .filter(|q| !q.lower_ok || !q.upper_ok)
            .count() as f64
            / self.queries.len() as f64
    }

    /// Whether every query satisfied both brackets (the δ = 0 case).
    pub fn all_within(&self) -> bool {
        self.queries.iter().all(|q| q.lower_ok && q.upper_ok)
    }
}

/// Checks Definition 5 on a recorded history against a **monotone
/// ideal** specification `ideal`, with additive slack `epsilon`.
///
/// The history's recorded return values are the *implementation's*
/// answers (e.g. a CountMin estimate); `ideal` defines the exact
/// quantity (e.g. true frequencies). `v_min`/`v_max` are computed with
/// the extremal-linearization fast path, exact for monotone ideals.
///
/// `to_f64` converts values for the ε comparison (quantities and ε
/// need not be integers, and `u64` has no lossless `Into<f64>`).
pub fn epsilon_bounded_report<S>(
    ideal: &S,
    h: &History<S::Update, S::Query, S::Value>,
    epsilon: f64,
    to_f64: impl Fn(&S::Value) -> f64,
) -> BoundedReport
where
    S: MonotoneSpec,
{
    let queries = monotone_query_bounds(ideal, h)
        .into_iter()
        .map(|qb| {
            let v_min: f64 = to_f64(&qb.lower);
            let v_max: f64 = to_f64(&qb.upper);
            let actual: f64 = to_f64(&qb.actual);
            BoundedQueryOutcome {
                id: qb.id,
                v_min,
                v_max,
                actual,
                lower_ok: actual >= v_min - epsilon,
                upper_ok: actual <= v_max + epsilon,
            }
        })
        .collect();
    BoundedReport { queries, epsilon }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HistoryBuilder, ObjectId, ProcessId};
    use crate::specs::MultiCounterSpec;

    /// A small exact-frequency ideal spec for the tests.
    #[derive(Clone, Copy, Debug)]
    struct SmallFreqSpec {
        alphabet: usize,
    }

    impl crate::spec::ObjectSpec for SmallFreqSpec {
        type Update = usize;
        type Query = usize;
        type Value = u32;
        type State = Vec<u32>;

        fn initial_state(&self) -> Vec<u32> {
            vec![0; self.alphabet]
        }

        fn apply_update(&self, state: &mut Vec<u32>, update: &usize) {
            state[*update] += 1;
        }

        fn eval_query(&self, state: &Vec<u32>, query: &usize) -> u32 {
            state[*query]
        }
    }

    impl MonotoneSpec for SmallFreqSpec {}

    #[test]
    fn overestimate_within_epsilon_accepted() {
        // Ideal frequency of item 0 is 2; the sketch answered 3.
        let spec = SmallFreqSpec { alphabet: 2 };
        let mut b = HistoryBuilder::<usize, usize, u32>::new();
        let p = ProcessId(0);
        let x = ObjectId(0);
        for _ in 0..2 {
            let u = b.invoke_update(p, x, 0);
            b.respond_update(u);
        }
        let q = b.invoke_query(ProcessId(1), x, 0);
        b.respond_query(q, 3);
        let h = b.finish();
        let r = epsilon_bounded_report(&spec, &h, 1.0, |v| *v as f64);
        assert!(r.all_within());
        let r = epsilon_bounded_report(&spec, &h, 0.5, |v| *v as f64);
        assert_eq!(r.upper_violations(), 1);
        assert_eq!(r.lower_violations(), 0);
        assert!((r.violation_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_window_widens_the_bracket() {
        // An update concurrent with the query raises v_max, so a
        // higher answer is accepted without ε.
        let spec = SmallFreqSpec { alphabet: 2 };
        let mut b = HistoryBuilder::<usize, usize, u32>::new();
        let p = ProcessId(0);
        let x = ObjectId(0);
        let u0 = b.invoke_update(p, x, 0);
        b.respond_update(u0);
        let u1 = b.invoke_update(p, x, 0); // concurrent with the query
        let q = b.invoke_query(ProcessId(1), x, 0);
        b.respond_query(q, 2);
        b.respond_update(u1);
        let h = b.finish();
        let r = epsilon_bounded_report(&spec, &h, 0.0, |v| *v as f64);
        assert!(r.all_within(), "{r:?}");
        assert_eq!(r.queries[0].v_min, 1.0);
        assert_eq!(r.queries[0].v_max, 2.0);
    }

    #[test]
    fn underestimate_below_vmin_minus_eps_rejected() {
        let spec = SmallFreqSpec { alphabet: 2 };
        let mut b = HistoryBuilder::<usize, usize, u32>::new();
        let p = ProcessId(0);
        let x = ObjectId(0);
        for _ in 0..5 {
            let u = b.invoke_update(p, x, 0);
            b.respond_update(u);
        }
        let q = b.invoke_query(ProcessId(1), x, 0);
        b.respond_query(q, 1);
        let h = b.finish();
        let r = epsilon_bounded_report(&spec, &h, 2.0, |v| *v as f64);
        assert_eq!(r.lower_violations(), 1);
    }

    #[test]
    fn multi_counter_spec_is_the_documented_ideal() {
        // Compile-time pairing claimed by the module docs.
        let _ideal = MultiCounterSpec::new(4);
    }
}
