//! Linearization enumeration and the linearizability checker.
//!
//! A *linearization* of a history `H` (paper §2.1) is a sequential
//! history `H'` that (1) contains the same invocations and responses as
//! a completion of `H` (some pending operations removed, others
//! completed), and (2) preserves the precedence partial order `≺_H`.
//!
//! This module searches over linear extensions of `≺_H`:
//!
//! * [`check_linearizable`] — is there a linearization whose `τ` return
//!   values equal the recorded ones? (Wing–Gong style DFS with pruning.)
//! * [`query_value_bounds`] — the `v_min`/`v_max` of Definition 5: the
//!   minimum/maximum value each query may return across *all*
//!   linearizations of the skeleton.
//! * [`count_linearizations`] — number of linear extensions (used by
//!   tests and diagnostics).
//!
//! The search is exponential in the worst case; it is intended for the
//! small histories exercised in tests (≤ [`MAX_EXACT_OPS`] operations).
//! Large recorded executions are checked with the monotone fast path in
//! [`crate::ivl`].

use crate::history::{History, Op, OpId, OperationRecord};
use crate::spec::ObjectSpec;
use std::collections::HashMap;

/// Maximum number of operations accepted by the exact (exponential)
/// search routines.
pub const MAX_EXACT_OPS: usize = 40;

/// Verdict of [`check_linearizable`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LinVerdict {
    /// A linearization matching all recorded return values exists; the
    /// witness lists operation ids in linearization order.
    Linearizable {
        /// Operations in the order of the witnessing linearization.
        witness: Vec<OpId>,
    },
    /// No linearization matches the recorded return values.
    NotLinearizable,
}

impl LinVerdict {
    /// Whether the history was found linearizable.
    pub fn is_linearizable(&self) -> bool {
        matches!(self, LinVerdict::Linearizable { .. })
    }
}

/// Internal: preprocessed operations of a history for the searches.
pub(crate) struct Prep<S: ObjectSpec> {
    /// All operations participating in the search. Completed operations
    /// are mandatory; pending updates are optional; pending queries are
    /// dropped (they never returned, so no return value constrains them).
    pub ops: Vec<OperationRecord<S::Update, S::Query, S::Value>>,
    /// `preds[i]` = indices `j` with `ops[j] ≺_H ops[i]`.
    pub preds: Vec<Vec<usize>>,
    /// Whether `ops[i]` is mandatory (completed).
    pub mandatory: Vec<bool>,
}

impl<S: ObjectSpec> Prep<S> {
    pub(crate) fn new(h: &History<S::Update, S::Query, S::Value>) -> Self {
        let ops: Vec<_> = h
            .operations()
            .into_iter()
            .filter(|o| o.is_complete() || o.op.is_update())
            .collect();
        assert!(
            ops.len() <= MAX_EXACT_OPS,
            "exact search supports at most {MAX_EXACT_OPS} operations, got {}",
            ops.len()
        );
        let mandatory: Vec<bool> = ops.iter().map(|o| o.is_complete()).collect();
        let mut preds = vec![Vec::new(); ops.len()];
        for (i, a) in ops.iter().enumerate() {
            for (j, b) in ops.iter().enumerate() {
                if i != j && b.precedes(a) {
                    preds[i].push(j);
                }
            }
        }
        Prep {
            ops,
            preds,
            mandatory,
        }
    }

    /// Whether operation `i` may be placed next given the set of already
    /// placed operations (`placed` bitmask): all its `≺_H` predecessors
    /// must already be placed. (Optional operations that were *skipped*
    /// are never predecessors, because pending operations have no
    /// response and thus precede nothing.)
    fn available(&self, i: usize, placed: u64) -> bool {
        self.preds[i].iter().all(|&j| placed & (1 << j) != 0)
    }
}

/// How a query's τ-value must relate to its recorded return value for a
/// branch of the search to stay alive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ValueConstraint {
    /// τ-value must equal the recorded value (linearizability).
    Equal,
    /// τ-value must be ≤ the recorded value (the `H1` search of IVL).
    AtMostRecorded,
    /// τ-value must be ≥ the recorded value (the `H2` search of IVL).
    AtLeastRecorded,
}

/// DFS over linear extensions. Returns a witness order if a completion
/// satisfying `constraint` on every completed query exists.
#[allow(clippy::too_many_arguments)] // the DFS threads explicit search state
pub(crate) fn search<S: ObjectSpec>(
    specs: &[S],
    prep: &Prep<S>,
    constraint: ValueConstraint,
) -> Option<Vec<OpId>> {
    let n = prep.ops.len();
    let full_mandatory: u64 = prep
        .mandatory
        .iter()
        .enumerate()
        .filter(|(_, &m)| m)
        .fold(0u64, |acc, (i, _)| acc | (1 << i));
    let mut states: Vec<S::State> = specs.iter().map(|s| s.initial_state()).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);

    #[allow(clippy::too_many_arguments)] // explicit DFS state
    fn rec<S: ObjectSpec>(
        specs: &[S],
        prep: &Prep<S>,
        constraint: ValueConstraint,
        placed: u64,
        skipped: u64,
        full_mandatory: u64,
        states: &mut Vec<S::State>,
        order: &mut Vec<usize>,
    ) -> bool {
        if placed & full_mandatory == full_mandatory {
            return true;
        }
        for i in 0..prep.ops.len() {
            let bit = 1u64 << i;
            if placed & bit != 0 || skipped & bit != 0 {
                continue;
            }
            if !prep.available(i, placed) {
                continue;
            }
            let rec_op = &prep.ops[i];
            let obj = rec_op.object.0 as usize;
            assert!(
                obj < specs.len(),
                "history mentions object x{obj} but only {} specs were given",
                specs.len()
            );
            match &rec_op.op {
                Op::Update(u) => {
                    let saved = states[obj].clone();
                    specs[obj].apply_update(&mut states[obj], u);
                    order.push(i);
                    if rec(
                        specs,
                        prep,
                        constraint,
                        placed | bit,
                        skipped,
                        full_mandatory,
                        states,
                        order,
                    ) {
                        return true;
                    }
                    order.pop();
                    states[obj] = saved;
                    // An optional (pending) update may also be skipped
                    // entirely; since it precedes nothing, skipping it
                    // never blocks other operations.
                    if !prep.mandatory[i]
                        && rec(
                            specs,
                            prep,
                            constraint,
                            placed,
                            skipped | bit,
                            full_mandatory,
                            states,
                            order,
                        )
                    {
                        return true;
                    }
                }
                Op::Query(q) => {
                    let v = specs[obj].eval_query(&states[obj], q);
                    let recorded = rec_op
                        .return_value
                        .as_ref()
                        .expect("completed query has a return value");
                    let ok = match constraint {
                        ValueConstraint::Equal => v == *recorded,
                        ValueConstraint::AtMostRecorded => v <= *recorded,
                        ValueConstraint::AtLeastRecorded => v >= *recorded,
                    };
                    if ok {
                        order.push(i);
                        if rec(
                            specs,
                            prep,
                            constraint,
                            placed | bit,
                            skipped,
                            full_mandatory,
                            states,
                            order,
                        ) {
                            return true;
                        }
                        order.pop();
                    }
                }
            }
        }
        false
    }

    if rec(
        specs,
        prep,
        constraint,
        0,
        0,
        full_mandatory,
        &mut states,
        &mut order,
    ) {
        Some(order.iter().map(|&i| prep.ops[i].id).collect())
    } else {
        None
    }
}

/// Checks whether `h` is linearizable with respect to the per-object
/// specifications `specs` (object `x_i` uses `specs[i]`).
///
/// Pending updates may be completed or dropped; pending queries are
/// dropped. Exact but exponential; see [`MAX_EXACT_OPS`].
///
/// # Examples
///
/// A read overlapping an increment may return the old or new value,
/// but nothing in between:
///
/// ```
/// use ivl_spec::history::{HistoryBuilder, ObjectId, ProcessId};
/// use ivl_spec::linearize::check_linearizable;
/// use ivl_spec::specs::BatchedCounterSpec;
///
/// let mut b = HistoryBuilder::<u64, (), u64>::new();
/// let inc = b.invoke_update(ProcessId(0), ObjectId(0), 3);
/// let read = b.invoke_query(ProcessId(1), ObjectId(0), ());
/// b.respond_query(read, 3); // saw the concurrent increment: legal
/// b.respond_update(inc);
/// let h = b.finish();
/// assert!(check_linearizable(&[BatchedCounterSpec], &h).is_linearizable());
/// ```
///
/// # Panics
///
/// Panics if `h` mentions an object id with no corresponding spec, or
/// has more than [`MAX_EXACT_OPS`] operations.
pub fn check_linearizable<S: ObjectSpec>(
    specs: &[S],
    h: &History<S::Update, S::Query, S::Value>,
) -> LinVerdict {
    let prep = Prep::<S>::new(h);
    match search(specs, &prep, ValueConstraint::Equal) {
        Some(witness) => LinVerdict::Linearizable { witness },
        None => LinVerdict::NotLinearizable,
    }
}

/// The `v_min`/`v_max` interval of one query across all linearizations
/// of a skeleton (Definition 5).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValueInterval<V> {
    /// `v_min(H, Q)`: minimum return value across linearizations.
    pub min: V,
    /// `v_max(H, Q)`: maximum return value across linearizations.
    pub max: V,
}

/// Computes, for every completed query of `h`, the minimum and maximum
/// value it returns across **all** linearizations of the skeleton `H?`
/// (the `v_min^I`/`v_max^I` of Definition 5, with `specs` playing the
/// ideal specification `I`).
///
/// Full enumeration — exponential; use only on small histories.
///
/// # Panics
///
/// Panics on missing specs or oversized histories (see
/// [`MAX_EXACT_OPS`]).
pub fn query_value_bounds<S: ObjectSpec>(
    specs: &[S],
    h: &History<S::Update, S::Query, S::Value>,
) -> HashMap<OpId, ValueInterval<S::Value>> {
    let prep = Prep::<S>::new(h);
    let mut states: Vec<S::State> = specs.iter().map(|s| s.initial_state()).collect();
    let mut bounds: HashMap<OpId, ValueInterval<S::Value>> = HashMap::new();
    let full_mandatory: u64 = prep
        .mandatory
        .iter()
        .enumerate()
        .filter(|(_, &m)| m)
        .fold(0u64, |acc, (i, _)| acc | (1 << i));

    // Record τ-values along every root-to-complete path. Values are
    // recorded when a query is placed; a path "completes" when all
    // mandatory operations are placed. Because recording happens at
    // placement time, we only fold values into `bounds` on paths that
    // reach completion (tracked via a pending stack).
    #[allow(clippy::too_many_arguments)] // explicit DFS state
    fn rec<S: ObjectSpec>(
        specs: &[S],
        prep: &Prep<S>,
        placed: u64,
        skipped: u64,
        full_mandatory: u64,
        states: &mut Vec<S::State>,
        path_vals: &mut Vec<(OpId, S::Value)>,
        bounds: &mut HashMap<OpId, ValueInterval<S::Value>>,
    ) {
        if placed & full_mandatory == full_mandatory {
            for (id, v) in path_vals.iter() {
                bounds
                    .entry(*id)
                    .and_modify(|iv| {
                        if *v < iv.min {
                            iv.min = v.clone();
                        }
                        if *v > iv.max {
                            iv.max = v.clone();
                        }
                    })
                    .or_insert_with(|| ValueInterval {
                        min: v.clone(),
                        max: v.clone(),
                    });
            }
            return;
        }
        for i in 0..prep.ops.len() {
            let bit = 1u64 << i;
            if placed & bit != 0 || skipped & bit != 0 || !prep.available(i, placed) {
                continue;
            }
            let rec_op = &prep.ops[i];
            let obj = rec_op.object.0 as usize;
            match &rec_op.op {
                Op::Update(u) => {
                    let saved = states[obj].clone();
                    specs[obj].apply_update(&mut states[obj], u);
                    rec(
                        specs,
                        prep,
                        placed | bit,
                        skipped,
                        full_mandatory,
                        states,
                        path_vals,
                        bounds,
                    );
                    states[obj] = saved;
                    if !prep.mandatory[i] {
                        rec(
                            specs,
                            prep,
                            placed,
                            skipped | bit,
                            full_mandatory,
                            states,
                            path_vals,
                            bounds,
                        );
                    }
                }
                Op::Query(q) => {
                    let v = specs[obj].eval_query(&states[obj], q);
                    path_vals.push((rec_op.id, v));
                    rec(
                        specs,
                        prep,
                        placed | bit,
                        skipped,
                        full_mandatory,
                        states,
                        path_vals,
                        bounds,
                    );
                    path_vals.pop();
                }
            }
        }
    }

    let mut path_vals = Vec::new();
    rec(
        specs,
        &prep,
        0,
        0,
        full_mandatory,
        &mut states,
        &mut path_vals,
        &mut bounds,
    );
    bounds
}

/// Counts the linearizations of `h`'s skeleton (completions included:
/// each pending update may be placed anywhere legal or dropped).
///
/// # Panics
///
/// Panics on oversized histories (see [`MAX_EXACT_OPS`]).
pub fn count_linearizations<S: ObjectSpec>(
    _specs: &[S],
    h: &History<S::Update, S::Query, S::Value>,
) -> u64 {
    let prep = Prep::<S>::new(h);
    let optional: Vec<usize> = (0..prep.ops.len())
        .filter(|&i| !prep.mandatory[i])
        .collect();
    assert!(
        optional.len() <= 20,
        "too many pending updates to enumerate completions"
    );

    // Counts linear extensions of exactly the operations in `include`.
    fn extensions<S: ObjectSpec>(prep: &Prep<S>, include: u64, placed: u64) -> u64 {
        if placed == include {
            return 1;
        }
        let mut total = 0;
        for i in 0..prep.ops.len() {
            let bit = 1u64 << i;
            if include & bit == 0 || placed & bit != 0 || !prep.available(i, placed) {
                continue;
            }
            total += extensions(prep, include, placed | bit);
        }
        total
    }

    let mandatory_mask: u64 = prep
        .mandatory
        .iter()
        .enumerate()
        .filter(|(_, &m)| m)
        .fold(0u64, |acc, (i, _)| acc | (1 << i));
    let mut total = 0;
    for subset in 0u64..(1 << optional.len()) {
        let mut include = mandatory_mask;
        for (bit_pos, &op_idx) in optional.iter().enumerate() {
            if subset & (1 << bit_pos) != 0 {
                include |= 1 << op_idx;
            }
        }
        total += extensions(&prep, include, 0);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HistoryBuilder, ObjectId, ProcessId};
    use crate::specs::BatchedCounterSpec;

    type B = HistoryBuilder<u64, (), u64>;
    const X: ObjectId = ObjectId(0);
    const P0: ProcessId = ProcessId(0);
    const P1: ProcessId = ProcessId(1);

    /// The paper's §1 example: an update bumps a batched counter from 7
    /// to 10; a concurrent read may return 7 or 10 under
    /// linearizability, but not 8.
    fn seven_to_ten(read_value: u64) -> crate::history::History<u64, (), u64> {
        let mut b = B::new();
        let u0 = b.invoke_update(P0, X, 7);
        b.respond_update(u0);
        let u = b.invoke_update(P0, X, 3);
        let q = b.invoke_query(P1, X, ());
        b.respond_query(q, read_value);
        b.respond_update(u);
        b.finish()
    }

    #[test]
    fn overlapping_read_may_return_old_value() {
        assert!(check_linearizable(&[BatchedCounterSpec], &seven_to_ten(7)).is_linearizable());
    }

    #[test]
    fn overlapping_read_may_return_new_value() {
        assert!(check_linearizable(&[BatchedCounterSpec], &seven_to_ten(10)).is_linearizable());
    }

    #[test]
    fn intermediate_value_not_linearizable() {
        assert_eq!(
            check_linearizable(&[BatchedCounterSpec], &seven_to_ten(8)),
            LinVerdict::NotLinearizable
        );
    }

    #[test]
    fn sequential_wrong_value_rejected() {
        let mut b = B::new();
        let u = b.invoke_update(P0, X, 5);
        b.respond_update(u);
        let q = b.invoke_query(P0, X, ());
        b.respond_query(q, 4);
        assert!(!check_linearizable(&[BatchedCounterSpec], &b.finish()).is_linearizable());
    }

    #[test]
    fn pending_update_may_be_included() {
        // Update never responds, but a later read sees its effect: legal,
        // the pending update is completed in the linearization.
        let mut b = B::new();
        b.invoke_update(P0, X, 5);
        let q = b.invoke_query(P1, X, ());
        b.respond_query(q, 5);
        assert!(check_linearizable(&[BatchedCounterSpec], &b.finish()).is_linearizable());
    }

    #[test]
    fn pending_update_may_be_dropped() {
        let mut b = B::new();
        b.invoke_update(P0, X, 5);
        let q = b.invoke_query(P1, X, ());
        b.respond_query(q, 0);
        assert!(check_linearizable(&[BatchedCounterSpec], &b.finish()).is_linearizable());
    }

    #[test]
    fn value_bounds_of_overlapping_read() {
        let h = seven_to_ten(8);
        let bounds = query_value_bounds(&[BatchedCounterSpec], &h);
        let q = h
            .operations()
            .into_iter()
            .find(|o| o.op.is_query())
            .unwrap();
        let iv = &bounds[&q.id];
        assert_eq!(iv.min, 7);
        assert_eq!(iv.max, 10);
    }

    #[test]
    fn counting_small_history() {
        // Two concurrent completed updates: 2 orders; no queries.
        let mut b = B::new();
        let u1 = b.invoke_update(P0, X, 1);
        let u2 = b.invoke_update(P1, X, 2);
        b.respond_update(u1);
        b.respond_update(u2);
        assert_eq!(count_linearizations(&[BatchedCounterSpec], &b.finish()), 2);
    }

    #[test]
    fn witness_respects_precedence() {
        let mut b = B::new();
        let u1 = b.invoke_update(P0, X, 1);
        b.respond_update(u1);
        let u2 = b.invoke_update(P0, X, 2);
        b.respond_update(u2);
        let LinVerdict::Linearizable { witness } =
            check_linearizable(&[BatchedCounterSpec], &b.finish())
        else {
            panic!("sequential history must be linearizable");
        };
        assert_eq!(witness, vec![u1, u2]);
    }

    #[test]
    fn program_order_enforced() {
        // Same process: q1 then q2. q1 sees the concurrent update, q2
        // does not. Under linearizability this is impossible (program
        // order preserved).
        let mut b = B::new();
        let u = b.invoke_update(P0, X, 5);
        let q1 = b.invoke_query(P1, X, ());
        b.respond_query(q1, 5);
        let q2 = b.invoke_query(P1, X, ());
        b.respond_query(q2, 0);
        b.respond_update(u);
        assert!(!check_linearizable(&[BatchedCounterSpec], &b.finish()).is_linearizable());
    }
}
