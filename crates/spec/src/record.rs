//! Thread-safe history recording for real concurrent executions.
//!
//! A [`Recorder`] is a [`HistoryBuilder`] usable from many threads: an
//! implementation under test calls [`Recorder::invoke_update`] /
//! [`Recorder::invoke_query`] immediately *before* starting an
//! operation and the matching respond method immediately *after* it
//! finishes. The recorded event order is the order threads entered the
//! recorder, which is a legal serialization of the instrumentation
//! points: an invocation is recorded before the operation's first
//! shared access and a response after its last, so every precedence
//! `op1 ≺_H op2` in the recorded history is real (op1's response
//! instrumentation happened-before op2's invocation instrumentation).
//! The recorded windows are supersets of the true operation intervals;
//! widening windows only *weakens* precedence, so any history that
//! fails the IVL/linearizability checkers on the recorded windows
//! would also fail on the true ones — recording never masks a
//! violation of a *detected* kind (it can only make borderline
//! violations look concurrent, the usual caveat of black-box
//! monitoring).
//!
//! The internal mutex is held only for the few nanoseconds of pushing
//! an event; operations themselves run fully concurrently between the
//! instrumentation points.

use crate::history::{History, HistoryBuilder, ObjectId, OpId, ProcessId};
use std::fmt::Debug;
use std::sync::Mutex;

/// A concurrent, internally synchronized [`HistoryBuilder`].
#[derive(Debug)]
pub struct Recorder<U, Q, V> {
    inner: Mutex<HistoryBuilder<U, Q, V>>,
}

impl<U: Clone + Debug, Q: Clone + Debug, V: Clone + Debug> Default for Recorder<U, Q, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<U: Clone + Debug, Q: Clone + Debug, V: Clone + Debug> Recorder<U, Q, V> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder {
            inner: Mutex::new(HistoryBuilder::new()),
        }
    }

    /// Records `inv_p(update(arg))`; call immediately before the
    /// update's first step.
    pub fn invoke_update(&self, process: ProcessId, object: ObjectId, arg: U) -> OpId {
        self.inner
            .lock()
            .expect("recorder poisoned")
            .invoke_update(process, object, arg)
    }

    /// Records `inv_p(query(arg))`; call immediately before the
    /// query's first step.
    pub fn invoke_query(&self, process: ProcessId, object: ObjectId, arg: Q) -> OpId {
        self.inner
            .lock()
            .expect("recorder poisoned")
            .invoke_query(process, object, arg)
    }

    /// Records `rsp_p(update)`; call immediately after the update's
    /// last step.
    pub fn respond_update(&self, id: OpId) {
        self.inner
            .lock()
            .expect("recorder poisoned")
            .respond_update(id);
    }

    /// Records `rsp_p(query) → value`; call immediately after the
    /// query's last step.
    pub fn respond_query(&self, id: OpId, value: V) {
        self.inner
            .lock()
            .expect("recorder poisoned")
            .respond_query(id, value);
    }

    /// Extracts the recorded history.
    pub fn finish(self) -> History<U, Q, V> {
        self.inner.into_inner().expect("recorder poisoned").finish()
    }

    /// A consistent copy of the history recorded *so far*, without
    /// consuming the recorder — operations still running appear as
    /// pending. This is what online analysis (the happens-before
    /// summary behind `ivl_check --hb`, periodic monitoring) reads
    /// while the workload keeps going.
    pub fn snapshot(&self) -> History<U, Q, V> {
        self.inner
            .lock()
            .expect("recorder poisoned")
            .clone()
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivl::check_ivl_monotone;
    use crate::specs::BatchedCounterSpec;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn records_across_threads() {
        let rec = Arc::new(Recorder::<u64, (), u64>::new());
        let counter = Arc::new(AtomicU64::new(0));
        let obj = ObjectId(0);
        let mut joins = Vec::new();
        for t in 0..4u32 {
            let rec = Arc::clone(&rec);
            let counter = Arc::clone(&counter);
            joins.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let id = rec.invoke_update(ProcessId(t), obj, 1);
                    counter.fetch_add(1, Ordering::Relaxed);
                    rec.respond_update(id);
                }
            }));
        }
        {
            let id = rec.invoke_query(ProcessId(9), obj, ());
            let v = counter.load(Ordering::Relaxed);
            rec.respond_query(id, v);
        }
        for j in joins {
            j.join().unwrap();
        }
        let h = Arc::try_unwrap(rec).unwrap().finish();
        assert_eq!(
            h.operations().iter().filter(|o| o.op.is_update()).count(),
            400
        );
        assert!(check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl());
    }

    #[test]
    fn per_process_program_order_enforced() {
        let rec = Recorder::<u64, (), u64>::new();
        let id = rec.invoke_update(ProcessId(0), ObjectId(0), 1);
        rec.respond_update(id);
        let id2 = rec.invoke_update(ProcessId(0), ObjectId(0), 2);
        rec.respond_update(id2);
        let h = rec.finish();
        let ops = h.operations();
        assert!(ops[0].precedes(&ops[1]));
    }
}
