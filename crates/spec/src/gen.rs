//! Random history generators for tests and property-based checking.
//!
//! [`random_linearizable_history`] simulates an atomic object under a
//! random schedule: every operation takes effect at one instant inside
//! its interval, so the produced history is linearizable by
//! construction. From it, tests derive IVL-but-not-linearizable
//! histories (perturbing query returns within their monotone bounds)
//! and IVL-violating histories (perturbing outside them).

use crate::history::{History, HistoryBuilder, ObjectId, OpId, ProcessId};
use crate::ivl::monotone_query_bounds;
use crate::spec::{MonotoneSpec, ObjectSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for random history generation.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of concurrent processes.
    pub processes: u32,
    /// Operations each process performs.
    pub ops_per_process: u32,
    /// Probability an operation is a query (vs. an update).
    pub query_ratio: f64,
    /// Probability, per tick, that a pending op takes effect.
    pub commit_prob: f64,
    /// Probability, per tick, that a committed op responds.
    pub respond_prob: f64,
    /// Whether the final ops may be left pending (invoked, no
    /// response) when generation stops.
    pub allow_pending: bool,
    /// RNG seed; identical configs produce identical histories.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            processes: 3,
            ops_per_process: 3,
            query_ratio: 0.4,
            commit_prob: 0.5,
            respond_prob: 0.5,
            allow_pending: false,
            seed: 0,
        }
    }
}

enum Phase<V> {
    Idle,
    /// Invoked, effect not yet taken.
    Pending(OpId, bool /* is_query */),
    /// Effect taken; queries carry their computed return value.
    Committed(OpId, Option<V>),
    Done,
}

enum PendingOp<U, Q> {
    Update(U),
    Query(Q),
}

/// Simulates an atomic (linearizable) object on a random schedule and
/// returns the recorded history. Each operation's effect (update
/// applied / query evaluated) happens at one instant between its
/// invocation and response, so the result is linearizable by
/// construction.
///
/// `update_gen` and `query_gen` draw operation arguments.
pub fn random_linearizable_history<S, FU, FQ>(
    spec: &S,
    cfg: &GenConfig,
    mut update_gen: FU,
    mut query_gen: FQ,
) -> History<S::Update, S::Query, S::Value>
where
    S: ObjectSpec,
    FU: FnMut(&mut StdRng) -> S::Update,
    FQ: FnMut(&mut StdRng) -> S::Query,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = HistoryBuilder::<S::Update, S::Query, S::Value>::new();
    let mut state = spec.initial_state();
    let obj = ObjectId(0);

    let mut phases: Vec<Phase<S::Value>> = (0..cfg.processes).map(|_| Phase::Idle).collect();
    let mut remaining: Vec<u32> = vec![cfg.ops_per_process; cfg.processes as usize];
    let mut pending_args: Vec<Option<PendingOp<S::Update, S::Query>>> =
        (0..cfg.processes).map(|_| None).collect();

    loop {
        let all_done = phases.iter().all(|p| matches!(p, Phase::Done));
        if all_done {
            break;
        }
        // Pick a random non-done process and advance it one step.
        let alive: Vec<usize> = phases
            .iter()
            .enumerate()
            .filter(|(_, p)| !matches!(p, Phase::Done))
            .map(|(i, _)| i)
            .collect();
        let pi = alive[rng.gen_range(0..alive.len())];
        let p = ProcessId(pi as u32);
        match &phases[pi] {
            Phase::Idle => {
                if remaining[pi] == 0 {
                    phases[pi] = Phase::Done;
                    continue;
                }
                remaining[pi] -= 1;
                if rng.gen_bool(cfg.query_ratio) {
                    let q = query_gen(&mut rng);
                    let id = b.invoke_query(p, obj, q.clone());
                    pending_args[pi] = Some(PendingOp::Query(q));
                    phases[pi] = Phase::Pending(id, true);
                } else {
                    let u = update_gen(&mut rng);
                    let id = b.invoke_update(p, obj, u.clone());
                    pending_args[pi] = Some(PendingOp::Update(u));
                    phases[pi] = Phase::Pending(id, false);
                }
            }
            Phase::Pending(id, is_query) => {
                let (id, is_query) = (*id, *is_query);
                if rng.gen_bool(cfg.commit_prob) {
                    let val = match pending_args[pi].take().expect("pending op has args") {
                        PendingOp::Update(u) => {
                            spec.apply_update(&mut state, &u);
                            None
                        }
                        PendingOp::Query(q) => Some(spec.eval_query(&state, &q)),
                    };
                    debug_assert_eq!(is_query, val.is_some());
                    phases[pi] = Phase::Committed(id, val);
                }
            }
            Phase::Committed(id, val) => {
                if rng.gen_bool(cfg.respond_prob) {
                    match val {
                        Some(v) => b.respond_query(*id, v.clone()),
                        None => b.respond_update(*id),
                    }
                    phases[pi] = Phase::Idle;
                }
            }
            Phase::Done => unreachable!(),
        }
    }

    // Optionally leave some trailing updates pending: invoke extra
    // updates that never respond.
    if cfg.allow_pending {
        for pi in 0..cfg.processes as usize {
            if rng.gen_bool(0.3) {
                let u = update_gen(&mut rng);
                b.invoke_update(ProcessId(pi as u32), obj, u);
            }
        }
    }

    b.finish()
}

/// Rewrites the return value of query `target` to `new_value`, leaving
/// everything else intact. Used to manufacture IVL-but-not-linearizable
/// and IVL-violating histories from linearizable ones.
pub fn with_query_return<U: Clone, Q: Clone, V: Clone>(
    h: &History<U, Q, V>,
    target: OpId,
    new_value: V,
) -> History<U, Q, V> {
    use crate::history::{Event, EventKind};
    let events = h
        .events()
        .iter()
        .map(|ev| match &ev.kind {
            EventKind::Respond(Some(_)) if ev.op == target => Event {
                op: ev.op,
                process: ev.process,
                object: ev.object,
                kind: EventKind::Respond(Some(new_value.clone())),
            },
            _ => ev.clone(),
        })
        .collect();
    History::from_events(events).expect("rewriting a return value preserves well-formedness")
}

/// The completed queries of `h`, in invocation order.
pub fn completed_queries<U: Clone, Q: Clone, V: Clone>(h: &History<U, Q, V>) -> Vec<OpId> {
    h.operations()
        .into_iter()
        .filter(|o| o.op.is_query() && o.is_complete())
        .map(|o| o.id)
        .collect()
}

/// For a monotone spec, derives from a linearizable history a new
/// history in which each query returns a uniformly random value inside
/// its IVL interval — IVL by construction, usually not linearizable.
pub fn randomize_within_ivl_bounds<S>(
    spec: &S,
    h: &History<S::Update, S::Query, u64>,
    seed: u64,
) -> History<S::Update, S::Query, u64>
where
    S: MonotoneSpec<Value = u64>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let bounds = monotone_query_bounds(spec, h);
    let mut out = h.clone();
    for qb in bounds {
        let v = rng.gen_range(qb.lower..=qb.upper);
        out = with_query_return(&out, qb.id, v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivl::{check_ivl_exact, check_ivl_monotone};
    use crate::linearize::check_linearizable;
    use crate::specs::BatchedCounterSpec;

    fn small_cfg(seed: u64) -> GenConfig {
        GenConfig {
            processes: 3,
            ops_per_process: 2,
            seed,
            ..GenConfig::default()
        }
    }

    #[test]
    fn generated_histories_are_linearizable() {
        for seed in 0..30 {
            let h = random_linearizable_history(
                &BatchedCounterSpec,
                &small_cfg(seed),
                |r| r.gen_range(1..=5u64),
                |_| (),
            );
            assert!(
                check_linearizable(&[BatchedCounterSpec], &h).is_linearizable(),
                "seed {seed} produced a non-linearizable history"
            );
        }
    }

    #[test]
    fn generated_histories_are_ivl() {
        for seed in 0..30 {
            let h = random_linearizable_history(
                &BatchedCounterSpec,
                &small_cfg(seed),
                |r| r.gen_range(1..=5u64),
                |_| (),
            );
            assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
            assert!(check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl());
        }
    }

    #[test]
    fn randomized_within_bounds_stays_ivl() {
        for seed in 0..30 {
            let h = random_linearizable_history(
                &BatchedCounterSpec,
                &small_cfg(seed),
                |r| r.gen_range(1..=5u64),
                |_| (),
            );
            let h2 = randomize_within_ivl_bounds(&BatchedCounterSpec, &h, seed ^ 0xabcdef);
            assert!(
                check_ivl_exact(&[BatchedCounterSpec], &h2).is_ivl(),
                "seed {seed}: perturbed history must stay IVL"
            );
        }
    }

    #[test]
    fn value_above_upper_bound_violates_ivl() {
        for seed in 0..20 {
            let h = random_linearizable_history(
                &BatchedCounterSpec,
                &small_cfg(seed),
                |r| r.gen_range(1..=5u64),
                |_| (),
            );
            let bounds = crate::ivl::monotone_query_bounds(&BatchedCounterSpec, &h);
            if let Some(qb) = bounds.first() {
                let bad = with_query_return(&h, qb.id, qb.upper + 1);
                assert!(!check_ivl_exact(&[BatchedCounterSpec], &bad).is_ivl());
                assert!(!check_ivl_monotone(&BatchedCounterSpec, &bad).is_ivl());
            }
        }
    }

    #[test]
    fn pending_ops_supported() {
        let cfg = GenConfig {
            allow_pending: true,
            ..small_cfg(7)
        };
        let h = random_linearizable_history(
            &BatchedCounterSpec,
            &cfg,
            |r| r.gen_range(1..=5u64),
            |_| (),
        );
        assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
    }
}
