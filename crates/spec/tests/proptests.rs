//! Property-based tests of the IVL framework.
//!
//! These validate the load-bearing claims the rest of the workspace
//! relies on:
//!
//! * generated atomic executions are linearizable and IVL;
//! * the monotone interval checker agrees with the exact
//!   linearization-search checker on monotone objects (soundness *and*
//!   completeness of the fast path);
//! * linearizability implies IVL;
//! * locality (Theorem 1): a composite history is IVL iff each
//!   per-object projection is;
//! * `v_min`/`v_max` from full enumeration match the monotone bounds.

use ivl_spec::gen::{
    completed_queries, random_linearizable_history, randomize_within_ivl_bounds, with_query_return,
    GenConfig,
};
use ivl_spec::history::ObjectId;
use ivl_spec::ivl::monotone_query_bounds;
use ivl_spec::ivl::{check_ivl_by_locality, check_ivl_exact, check_ivl_monotone};
use ivl_spec::linearize::{check_linearizable, count_linearizations, query_value_bounds};
use ivl_spec::specs::{BatchedCounterSpec, MaxRegisterSpec};
use proptest::prelude::*;
use rand::Rng;

fn cfg(processes: u32, ops: u32, seed: u64, pending: bool) -> GenConfig {
    GenConfig {
        processes,
        ops_per_process: ops,
        query_ratio: 0.5,
        commit_prob: 0.5,
        respond_prob: 0.5,
        allow_pending: pending,
        seed,
    }
}

fn counter_history(c: &GenConfig) -> ivl_spec::History<u64, (), u64> {
    random_linearizable_history(&BatchedCounterSpec, c, |r| r.gen_range(1..=6u64), |_| ())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn atomic_executions_are_linearizable(seed in 0u64..10_000, procs in 2u32..4, ops in 1u32..3) {
        let h = counter_history(&cfg(procs, ops, seed, false));
        prop_assert!(check_linearizable(&[BatchedCounterSpec], &h).is_linearizable());
    }

    #[test]
    fn linearizable_implies_ivl(seed in 0u64..10_000, procs in 2u32..4, ops in 1u32..3) {
        let h = counter_history(&cfg(procs, ops, seed, false));
        prop_assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
        prop_assert!(check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl());
    }

    #[test]
    fn monotone_and_exact_checkers_agree(
        seed in 0u64..10_000,
        procs in 2u32..4,
        ops in 1u32..3,
        perturb in -3i64..6,
        pending in proptest::bool::ANY,
    ) {
        // Start from a linearizable history and perturb one query's
        // return value by an arbitrary offset; the two checkers must
        // agree on the verdict in every case.
        let h = counter_history(&cfg(procs, ops, seed, pending));
        let queries = completed_queries(&h);
        let h = if let Some(&q) = queries.first() {
            let current = h.operations().iter()
                .find(|o| o.id == q).unwrap().return_value.unwrap();
            let new = current.saturating_add_signed(perturb);
            with_query_return(&h, q, new)
        } else { h };
        let exact = check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl();
        let fast = check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl();
        prop_assert_eq!(exact, fast, "checkers disagree on {:?}", h);
    }

    #[test]
    fn ivl_randomization_stays_ivl(seed in 0u64..10_000, procs in 2u32..4, ops in 1u32..3) {
        let h = counter_history(&cfg(procs, ops, seed, false));
        let h2 = randomize_within_ivl_bounds(&BatchedCounterSpec, &h, seed ^ 0x5eed);
        prop_assert!(check_ivl_exact(&[BatchedCounterSpec], &h2).is_ivl());
    }

    #[test]
    fn locality_theorem(seed_a in 0u64..5_000, seed_b in 0u64..5_000, bad in proptest::bool::ANY) {
        // Build two single-object histories (objects 0 and 1, disjoint
        // process ids via distinct builders -> remap processes by
        // projecting original object ids). Object histories generated
        // independently, then interleaved. Theorem 1: composite IVL iff
        // both projections IVL.
        let ha = counter_history(&cfg(2, 2, seed_a, false));
        let hb_raw = counter_history(&cfg(2, 2, seed_b, false));
        // Move object B's events to ObjectId(1) and processes 10, 11.
        use ivl_spec::history::{Event, History, ProcessId};
        let hb_events: Vec<_> = hb_raw.events().iter().map(|ev| Event {
            op: ev.op,
            process: ProcessId(ev.process.0 + 10),
            object: ObjectId(1),
            kind: ev.kind.clone(),
        }).collect();
        let mut hb = History::from_events(hb_events).unwrap();
        if bad {
            // Break object B: push one query's return above its bound.
            let queries = completed_queries(&hb);
            if let Some(&q) = queries.first() {
                let bounds = monotone_query_bounds(&BatchedCounterSpec, &hb);
                let qb = bounds.iter().find(|b| b.id == q).unwrap();
                hb = with_query_return(&hb, q, qb.upper + 1);
            }
        }
        let composite = ha.interleave(&hb);
        let specs = [BatchedCounterSpec, BatchedCounterSpec];
        let whole = check_ivl_exact(&specs, &composite).is_ivl();
        let per_object = check_ivl_by_locality(&specs, &composite).is_ivl();
        prop_assert_eq!(whole, per_object, "locality violated");
        let b_is_ivl = check_ivl_exact(&specs, &composite.project(ObjectId(1))).is_ivl();
        prop_assert_eq!(whole, b_is_ivl && check_ivl_exact(&specs, &composite.project(ObjectId(0))).is_ivl());
    }

    #[test]
    fn vminmax_matches_monotone_bounds(seed in 0u64..10_000, procs in 2u32..4, ops in 1u32..3) {
        // Definition 5's v_min/v_max computed by full enumeration must
        // coincide with the monotone H1/H2 interval on completed
        // histories of a monotone object.
        let h = counter_history(&cfg(procs, ops, seed, false));
        let enumerated = query_value_bounds(&[BatchedCounterSpec], &h);
        let fast = monotone_query_bounds(&BatchedCounterSpec, &h);
        for qb in fast {
            let iv = &enumerated[&qb.id];
            prop_assert_eq!(iv.min, qb.lower);
            prop_assert_eq!(iv.max, qb.upper);
        }
    }

    #[test]
    fn at_least_one_linearization_exists(seed in 0u64..10_000, procs in 2u32..3, ops in 1u32..3) {
        let h = counter_history(&cfg(procs, ops, seed, true));
        prop_assert!(count_linearizations(&[BatchedCounterSpec], &h) >= 1);
    }

    #[test]
    fn max_register_checkers_agree(seed in 0u64..10_000, perturb in -3i64..6) {
        let c = cfg(3, 2, seed, false);
        let h = random_linearizable_history(&MaxRegisterSpec, &c, |r| r.gen_range(1..=9u64), |_| ());
        let queries = completed_queries(&h);
        let h = if let Some(&q) = queries.first() {
            let current = h.operations().iter()
                .find(|o| o.id == q).unwrap().return_value.unwrap();
            with_query_return(&h, q, current.saturating_add_signed(perturb))
        } else { h };
        let exact = check_ivl_exact(&[MaxRegisterSpec], &h).is_ivl();
        let fast = check_ivl_monotone(&MaxRegisterSpec, &h).is_ivl();
        prop_assert_eq!(exact, fast);
    }

    #[test]
    fn projection_commutes_with_skeleton(seed in 0u64..10_000) {
        let h = counter_history(&cfg(3, 2, seed, true));
        let obj = ObjectId(0);
        prop_assert_eq!(h.skeleton().project(obj), h.project(obj).skeleton());
    }

    /// Antitone case: the generalized interval checker agrees with
    /// the exact checker on min-register histories under arbitrary
    /// perturbations.
    #[test]
    fn min_register_checkers_agree(seed in 0u64..10_000, perturb in -5i64..6) {
        use ivl_spec::specs::MinRegisterSpec;
        let c = cfg(3, 2, seed, false);
        let h = random_linearizable_history(
            &MinRegisterSpec, &c, |r| r.gen_range(1..=20u64), |_| ());
        let queries = completed_queries(&h);
        let h = if let Some(&q) = queries.first() {
            let current = h.operations().iter()
                .find(|o| o.id == q).unwrap().return_value.unwrap();
            with_query_return(&h, q, current.saturating_add_signed(perturb))
        } else { h };
        let exact = check_ivl_exact(&[MinRegisterSpec], &h).is_ivl();
        let fast = check_ivl_monotone(&MinRegisterSpec, &h).is_ivl();
        prop_assert_eq!(exact, fast, "antitone checkers disagree on {:?}", h);
    }

    /// §3.4 direction that DOES hold: for monotone objects,
    /// subset-regularity implies IVL (on generated histories with a
    /// query rewritten to an arbitrary subset-consistent value).
    #[test]
    fn regular_implies_ivl_for_monotone(seed in 0u64..10_000, subset_seed in 0u64..1_000) {
        use ivl_spec::relaxations::check_regular_subset;
        let h = counter_history(&cfg(3, 2, seed, false));
        // Rewrite the first query to the sum of all preceding updates
        // plus a pseudo-random subset of concurrent ones — regular by
        // construction.
        let ops = h.operations();
        let Some(q) = ops.iter().find(|o| o.op.is_query() && o.is_complete()) else {
            return Ok(());
        };
        let mut sum = 0u64;
        let mut bit = subset_seed;
        for u in ops.iter().filter(|o| o.op.is_update()) {
            let ivl_spec::history::Op::Update(v) = &u.op else { unreachable!() };
            if u.precedes(q) {
                sum += v;
            } else if !q.precedes(u) {
                bit = bit.wrapping_mul(6364136223846793005).wrapping_add(1);
                if bit >> 63 == 1 {
                    sum += v;
                }
            }
        }
        let h = with_query_return(&h, q.id, sum);
        prop_assert!(check_regular_subset(&BatchedCounterSpec, &h).is_regular());
        prop_assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl(),
            "regular history not IVL: {:?}", h);
    }
}
