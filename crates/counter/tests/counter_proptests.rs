//! Property tests of the real-thread counters: exactness at
//! quiescence for arbitrary update mixes, IVL of recorded concurrent
//! histories across random shapes, and the envelope invariant.

use ivl_counter::{
    FetchAddCounter, IvlBatchedCounter, MutexBatchedCounter, RecordedCounter, SharedBatchedCounter,
};
use ivl_spec::check_ivl_monotone;
use ivl_spec::specs::BatchedCounterSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every counter implementation agrees with plain arithmetic at
    /// quiescence, for arbitrary per-thread update sequences.
    #[test]
    fn quiescent_totals_exact(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(0u64..100, 0..50),
            1..5,
        ),
    ) {
        let expected: u64 = per_thread.iter().flatten().sum();
        let n = per_thread.len();

        let ivl = IvlBatchedCounter::new(n);
        let fa = FetchAddCounter::new(n);
        let mx = MutexBatchedCounter::new(n);
        crossbeam::scope(|s| {
            for (slot, updates) in per_thread.iter().enumerate() {
                let (ivl, fa, mx) = (&ivl, &fa, &mx);
                s.spawn(move |_| {
                    for &v in updates {
                        ivl.update_slot(slot, v);
                        fa.update_slot(slot, v);
                        mx.update_slot(slot, v);
                    }
                });
            }
        })
        .unwrap();
        prop_assert_eq!(ivl.read(), expected);
        prop_assert_eq!(fa.read(), expected);
        prop_assert_eq!(mx.read(), expected);
    }

    /// Recorded concurrent runs of the IVL counter are IVL, whatever
    /// the workload shape (Lemma 10 as a property).
    #[test]
    fn recorded_ivl_counter_histories_are_ivl(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(1u64..20, 1..30),
            1..4,
        ),
        reads in 1usize..30,
    ) {
        let n = per_thread.len();
        let rec = RecordedCounter::new(IvlBatchedCounter::new(n + 1));
        crossbeam::scope(|s| {
            for (slot, updates) in per_thread.iter().enumerate() {
                let rec = &rec;
                s.spawn(move |_| {
                    for &v in updates {
                        rec.update(slot, v);
                    }
                });
            }
            let rec = &rec;
            s.spawn(move |_| {
                for _ in 0..reads {
                    rec.read_from(n);
                }
            });
        })
        .unwrap();
        let h = rec.finish();
        prop_assert!(check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl());
    }

    /// Reads are monotone when issued by a single reader, for any
    /// number of writer threads (per-slot monotonicity + fixed scan
    /// order).
    #[test]
    fn single_reader_sees_monotone_sums(threads in 1usize..5, per in 100u64..2_000) {
        let c = IvlBatchedCounter::new(threads);
        crossbeam::scope(|s| {
            for slot in 0..threads {
                let c = &c;
                s.spawn(move |_| {
                    for _ in 0..per {
                        c.update_slot(slot, 1);
                    }
                });
            }
            let c = &c;
            let target = per * threads as u64;
            s.spawn(move |_| {
                let mut last = 0;
                loop {
                    let v = c.read();
                    assert!(v >= last);
                    last = v;
                    if v == target {
                        break;
                    }
                }
            });
        })
        .unwrap();
        prop_assert_eq!(c.read(), per * threads as u64);
    }
}
