//! Algorithm 3: a binary snapshot object from a batched counter.
//!
//! Component `i` lives in bit `i` of the counter: flipping `0 → 1`
//! adds `2^i`, flipping `1 → 0` adds `2^n − 2^i` (so the low `n` bits
//! lose `2^i` and a carry accumulates in the high bits — Invariant 1
//! of the paper). A scan reads the counter once and decodes the low
//! `n` bits.
//!
//! Lemma 13: with a **linearizable** counter the snapshot is
//! linearizable. With the **IVL** counter it is not (the read can mix
//! bits from different instants) — the operational content of why the
//! Ω(n) lower bound (Theorem 14) does not constrain the O(1) IVL
//! counter. Integration tests exercise both instantiations.

use crate::SharedBatchedCounter;
use std::sync::atomic::{AtomicU64, Ordering};

/// A binary snapshot object over `counter`'s slots.
///
/// # Examples
///
/// ```
/// use ivl_counter::{BinarySnapshot, FetchAddCounter};
///
/// let bs = BinarySnapshot::new(FetchAddCounter::new(4));
/// bs.update(0, 1);
/// bs.update(2, 1);
/// assert_eq!(bs.scan(), vec![1, 0, 1, 0]);
/// bs.update(0, 0); // flipping down adds 2^n − 2^0: the carry keeps
///                  // the low bits consistent (Invariant 1)
/// assert_eq!(bs.scan_mask(), 0b100);
/// ```
#[derive(Debug)]
pub struct BinarySnapshot<C> {
    counter: C,
    /// Each component's last written value, for the `v_i = v` fast
    /// path (one atomic per component; only the owner writes it).
    last: Vec<AtomicU64>,
}

impl<C: SharedBatchedCounter> BinarySnapshot<C> {
    /// Builds the snapshot over a counter with at most 32 slots.
    ///
    /// # Panics
    ///
    /// Panics if the counter has more than 32 slots (bit-encoding
    /// headroom) or none.
    pub fn new(counter: C) -> Self {
        let n = counter.num_slots();
        assert!(n > 0, "need at least one component");
        assert!(n <= 32, "bit encoding supports at most 32 components");
        BinarySnapshot {
            counter,
            last: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of components.
    pub fn components(&self) -> usize {
        self.last.len()
    }

    /// Sets component `i` to `bit` (0 or 1). Caller contract: at most
    /// one thread updates a given component at a time (the paper's
    /// model: component `i` belongs to process `i`).
    ///
    /// # Panics
    ///
    /// Panics if `bit` is not 0 or 1.
    pub fn update(&self, i: usize, bit: u64) {
        assert!(bit <= 1, "components are binary");
        let n = self.components();
        if self.last[i].load(Ordering::Relaxed) == bit {
            return;
        }
        self.last[i].store(bit, Ordering::Relaxed);
        let delta = if bit == 1 {
            1u64 << i
        } else {
            (1u64 << n) - (1u64 << i)
        };
        self.counter.update_slot(i, delta);
    }

    /// Scans all components.
    pub fn scan(&self) -> Vec<u64> {
        let n = self.components();
        let sum = self.counter.read();
        (0..n).map(|i| (sum >> i) & 1).collect()
    }

    /// Scans all components as a bitmask.
    pub fn scan_mask(&self) -> u64 {
        let n = self.components();
        self.counter.read() & ((1u64 << n) - 1)
    }

    /// The underlying counter.
    pub fn counter(&self) -> &C {
        &self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::FetchAddCounter;
    use crate::ivl_batched::IvlBatchedCounter;

    #[test]
    fn sequential_bits_decode() {
        let bs = BinarySnapshot::new(FetchAddCounter::new(4));
        bs.update(0, 1);
        bs.update(2, 1);
        assert_eq!(bs.scan(), vec![1, 0, 1, 0]);
        bs.update(0, 0);
        assert_eq!(bs.scan_mask(), 0b100);
    }

    #[test]
    fn redundant_updates_do_not_touch_counter() {
        let bs = BinarySnapshot::new(FetchAddCounter::new(2));
        bs.update(1, 1);
        let before = bs.counter().read();
        bs.update(1, 1); // same value: fast path
        assert_eq!(bs.counter().read(), before);
    }

    #[test]
    fn many_flips_accumulate_carries_without_corruption() {
        let bs = BinarySnapshot::new(FetchAddCounter::new(3));
        for round in 0..100u64 {
            let bit = round % 2;
            for i in 0..3 {
                bs.update(i, 1 - bit);
            }
            let expect = if bit == 0 {
                vec![1, 1, 1]
            } else {
                vec![0, 0, 0]
            };
            assert_eq!(bs.scan(), expect, "round {round}");
        }
    }

    #[test]
    fn concurrent_flips_over_linearizable_counter_decode_cleanly() {
        // Each thread owns one component and toggles it; every scan
        // must decode to valid bits (no torn carries).
        let n = 4;
        let bs = BinarySnapshot::new(FetchAddCounter::new(n));
        crossbeam::scope(|s| {
            for i in 0..n {
                let bs = &bs;
                s.spawn(move |_| {
                    for k in 0..1000u64 {
                        bs.update(i, (k + 1) % 2);
                    }
                });
            }
            let bs = &bs;
            s.spawn(move |_| {
                for _ in 0..1000 {
                    let bits = bs.scan();
                    assert!(bits.iter().all(|&b| b <= 1));
                }
            });
        })
        .unwrap();
    }

    #[test]
    fn works_over_ivl_counter_when_quiescent() {
        // Over the IVL counter the snapshot is only guaranteed correct
        // in quiescent states (concurrent scans may mix instants — see
        // the integration tests for the violation).
        let bs = BinarySnapshot::new(IvlBatchedCounter::new(3));
        bs.update(0, 1);
        bs.update(1, 1);
        bs.update(1, 0);
        assert_eq!(bs.scan(), vec![1, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_value_rejected() {
        let bs = BinarySnapshot::new(FetchAddCounter::new(2));
        bs.update(0, 2);
    }
}
