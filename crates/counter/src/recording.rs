//! History-recording wrapper for batched counters.
//!
//! Wraps any [`SharedBatchedCounter`] and records an
//! [`ivl_spec::History`] of its operations, ready for the
//! IVL/linearizability checkers. Threads are identified by the slot
//! they pass (updaters) or an explicit reader id, which must be
//! distinct from all updater slots — the recorded history must be
//! well-formed (no overlapping operations by one process).

use crate::SharedBatchedCounter;
use ivl_spec::history::{History, ObjectId, ProcessId};
use ivl_spec::record::Recorder;

/// A counter wrapper that records invocation/response events.
#[derive(Debug)]
pub struct RecordedCounter<C> {
    inner: C,
    recorder: Recorder<u64, (), u64>,
}

impl<C: SharedBatchedCounter> RecordedCounter<C> {
    /// Wraps `inner`.
    pub fn new(inner: C) -> Self {
        RecordedCounter {
            inner,
            recorder: Recorder::new(),
        }
    }

    /// Recorded `update(v)` through slot `slot` (also the recorded
    /// process id).
    pub fn update(&self, slot: usize, v: u64) {
        let id = self
            .recorder
            .invoke_update(ProcessId(slot as u32), ObjectId(0), v);
        self.inner.update_slot(slot, v);
        self.recorder.respond_update(id);
    }

    /// Recorded `read()` by reader `reader_id` (must not collide with
    /// any updater slot in use).
    pub fn read_from(&self, reader_id: usize) -> u64 {
        let id = self
            .recorder
            .invoke_query(ProcessId(reader_id as u32), ObjectId(0), ());
        let v = self.inner.read();
        self.recorder.respond_query(id, v);
        v
    }

    /// The wrapped counter.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Stops recording and returns the history.
    pub fn finish(self) -> History<u64, (), u64> {
        self.recorder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivl_batched::IvlBatchedCounter;
    use ivl_spec::ivl::check_ivl_monotone;
    use ivl_spec::specs::BatchedCounterSpec;

    #[test]
    fn records_sequential_operations() {
        let c = RecordedCounter::new(IvlBatchedCounter::new(2));
        c.update(0, 5);
        c.update(1, 3);
        assert_eq!(c.read_from(9), 8);
        let h = c.finish();
        assert_eq!(h.operations().len(), 3);
        assert!(h.is_sequential());
        assert!(check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl());
    }

    #[test]
    fn concurrent_recording_is_wellformed() {
        let c = RecordedCounter::new(IvlBatchedCounter::new(4));
        crossbeam::scope(|s| {
            for slot in 0..4 {
                let c = &c;
                s.spawn(move |_| {
                    for _ in 0..50 {
                        c.update(slot, 1);
                    }
                });
            }
        })
        .unwrap();
        let h = c.finish();
        // Re-validating event structure from raw events exercises the
        // well-formedness checker.
        assert!(ivl_spec::History::from_events(h.events().to_vec()).is_ok());
    }
}
