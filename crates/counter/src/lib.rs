//! Real-thread batched counters: Algorithm 2 of the paper and the
//! linearizable baselines it is measured against.
//!
//! A *batched counter* (paper §6) supports `update(v)` with `v ≥ 0`
//! and `read()` returning the sum of all preceding updates. The crate
//! provides:
//!
//! * [`IvlBatchedCounter`] — the paper's Algorithm 2 on cache-padded
//!   per-thread atomics: `update` is one store to the caller's own
//!   slot (O(1), no contention — a NUMA-friendly counter, §6.1),
//!   `read` sums all slots (O(n)). IVL but **not** linearizable.
//! * [`MutexBatchedCounter`] — the simplest linearizable baseline.
//! * [`FetchAddCounter`] — linearizable with O(1) update via a
//!   *read-modify-write* primitive. This does not contradict
//!   Theorem 14: the Ω(n) lower bound is for implementations from SWMR
//!   **registers**; `fetch_add` is a stronger primitive. It is the
//!   honest "what you give up" comparison point: one contended cache
//!   line instead of n uncontended ones.
//! * [`SnapshotBatchedCounter`] — a collect-based linearizable counter
//!   mirroring the simulator's Afek-style construction, whose update
//!   cost grows with the number of slots (the wall-clock face of the
//!   Ω(n) bound; the *model-accurate* step counts live in
//!   `ivl-shmem`).
//! * [`BinarySnapshot`] — Algorithm 3: a binary snapshot object from
//!   any batched counter, linearizable exactly when the counter is.
//! * [`ThresholdMonitor`] — the paper's §1.2 motivating scenario: a
//!   monitor process watching a counter cross a threshold.
//! * [`RecordedCounter`] — wraps any counter, recording an
//!   [`ivl_spec::History`] for the IVL/linearizability checkers.
//!
//! # Example
//!
//! ```
//! use ivl_counter::{IvlBatchedCounter, SharedBatchedCounter};
//!
//! let counter = IvlBatchedCounter::new(4);
//! crossbeam::scope(|s| {
//!     for slot in 0..4 {
//!         let c = &counter;
//!         s.spawn(move |_| {
//!             for _ in 0..1000 {
//!                 c.update_slot(slot, 3);
//!             }
//!         });
//!     }
//! })
//! .unwrap();
//! assert_eq!(counter.read(), 12_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baselines;
pub mod binary_snapshot;
pub mod ivl_batched;
pub mod monitor;
pub mod recording;

pub use baselines::{FetchAddCounter, MutexBatchedCounter, SnapshotBatchedCounter};
pub use binary_snapshot::BinarySnapshot;
pub use ivl_batched::IvlBatchedCounter;
pub use monitor::ThresholdMonitor;
pub use recording::RecordedCounter;

/// A shared batched counter (paper §6.2): `update(v ≥ 0)` adds `v`,
/// `read` returns the sum of preceding updates.
///
/// Updates are slot-addressed: implementations built from single-writer
/// registers (the IVL counter, the snapshot counter) require that **at
/// most one thread at a time uses a given slot**; implementations on
/// stronger primitives ignore the slot. Violating the single-writer
/// discipline on slot-addressed implementations loses updates but is
/// memory-safe (slots are atomics).
pub trait SharedBatchedCounter: Send + Sync {
    /// Number of update slots.
    fn num_slots(&self) -> usize;

    /// Adds `v` on behalf of the owner of `slot`.
    fn update_slot(&self, slot: usize, v: u64);

    /// Returns the sum of all preceding updates (IVL implementations
    /// may return any value between the sums at the read's start and
    /// end).
    fn read(&self) -> u64;
}
