//! The paper's §1.2 motivating scenario: a monitoring process watching
//! a shared counter cross a threshold.
//!
//! "Consider a system where processes count events, and a monitoring
//! process detects when the number of events passes a threshold."
//! IVL is exactly the guarantee the monitor needs: any intermediate
//! value it observes is bounded by the counter's true value at the
//! read's start and end, so (a) it never fires before the true count
//! has at least reached the observed value, and (b) it fires at most
//! one read after the true count passes the threshold.

use crate::SharedBatchedCounter;
use std::sync::atomic::{AtomicBool, Ordering};

/// Watches a batched counter until it reaches a threshold.
///
/// # Examples
///
/// ```
/// use ivl_counter::{IvlBatchedCounter, SharedBatchedCounter, ThresholdMonitor};
/// use ivl_counter::monitor::MonitorOutcome;
///
/// let counter = IvlBatchedCounter::new(2);
/// let monitor = ThresholdMonitor::new(&counter, 100);
/// let outcome = crossbeam::scope(|s| {
///     let watcher = s.spawn(|_| monitor.run());
///     s.spawn(|_| {
///         for _ in 0..200 {
///             counter.update_slot(0, 1);
///         }
///     });
///     watcher.join().unwrap()
/// })
/// .unwrap();
/// match outcome {
///     MonitorOutcome::Fired { observed, .. } => {
///         // IVL: the observed value is a sound lower bound on the
///         // true count when the read returned.
///         assert!((100..=200).contains(&observed));
///     }
///     MonitorOutcome::Stopped { .. } => unreachable!(),
/// }
/// ```
#[derive(Debug)]
pub struct ThresholdMonitor<'a, C> {
    counter: &'a C,
    threshold: u64,
    stop: AtomicBool,
}

/// What a finished monitor observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MonitorOutcome {
    /// The counter reached the threshold; carries the observed value
    /// and how many reads it took.
    Fired {
        /// The first observed value ≥ threshold.
        observed: u64,
        /// Number of reads performed.
        reads: u64,
    },
    /// The monitor was stopped before the threshold was reached;
    /// carries the last observed value.
    Stopped {
        /// The last value read before stopping.
        last: u64,
    },
}

impl<'a, C: SharedBatchedCounter> ThresholdMonitor<'a, C> {
    /// Creates a monitor firing when `counter.read() ≥ threshold`.
    pub fn new(counter: &'a C, threshold: u64) -> Self {
        ThresholdMonitor {
            counter,
            threshold,
            stop: AtomicBool::new(false),
        }
    }

    /// Polls the counter until it reaches the threshold or
    /// [`ThresholdMonitor::stop`] is called (from another thread).
    pub fn run(&self) -> MonitorOutcome {
        let mut reads = 0u64;
        let mut last = 0u64;
        loop {
            if self.stop.load(Ordering::Acquire) {
                return MonitorOutcome::Stopped { last };
            }
            let v = self.counter.read();
            reads += 1;
            last = v;
            if v >= self.threshold {
                return MonitorOutcome::Fired { observed: v, reads };
            }
            std::hint::spin_loop();
        }
    }

    /// Asks a running monitor to stop.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivl_batched::IvlBatchedCounter;

    #[test]
    fn fires_at_or_after_threshold() {
        let n = 4;
        let c = IvlBatchedCounter::new(n);
        let monitor = ThresholdMonitor::new(&c, 1_000);
        let outcome = crossbeam::scope(|s| {
            let handle = s.spawn(|_| monitor.run());
            for slot in 0..n {
                let c = &c;
                s.spawn(move |_| {
                    for _ in 0..1_000 {
                        c.update_slot(slot, 1);
                    }
                });
            }
            handle.join().unwrap()
        })
        .unwrap();
        match outcome {
            MonitorOutcome::Fired { observed, .. } => {
                assert!(observed >= 1_000);
                // IVL upper bound: never beyond the final total.
                assert!(observed <= 4_000);
            }
            MonitorOutcome::Stopped { .. } => panic!("monitor must fire"),
        }
    }

    #[test]
    fn observed_value_is_sound_lower_bound_on_final_count() {
        // Whatever the monitor observed, at least that many events
        // really happened by the end (IVL lower bound + monotone
        // counter).
        let n = 2;
        let c = IvlBatchedCounter::new(n);
        let monitor = ThresholdMonitor::new(&c, 500);
        let outcome = crossbeam::scope(|s| {
            let handle = s.spawn(|_| monitor.run());
            for slot in 0..n {
                let c = &c;
                s.spawn(move |_| {
                    for _ in 0..5_000 {
                        c.update_slot(slot, 1);
                    }
                });
            }
            handle.join().unwrap()
        })
        .unwrap();
        let final_total = c.read();
        if let MonitorOutcome::Fired { observed, .. } = outcome {
            assert!(observed <= final_total);
        }
    }

    #[test]
    fn stop_interrupts() {
        let c = IvlBatchedCounter::new(1);
        let monitor = ThresholdMonitor::new(&c, u64::MAX);
        let outcome = crossbeam::scope(|s| {
            let handle = s.spawn(|_| monitor.run());
            std::thread::sleep(std::time::Duration::from_millis(10));
            monitor.stop();
            handle.join().unwrap()
        })
        .unwrap();
        assert!(matches!(outcome, MonitorOutcome::Stopped { .. }));
    }
}
