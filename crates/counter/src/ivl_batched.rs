//! Algorithm 2 on real threads: the wait-free IVL batched counter.
//!
//! Each slot is one cache-padded atomic; `update_slot` performs a
//! single store of the slot's new cumulative sum (the owner is the
//! only writer, so it may read its own slot without synchronization
//! concerns), and `read` sums the slots in index order. No
//! compare-and-swap, no contention between updaters — the same
//! structure the paper recommends for distributed/NUMA counters
//! (§6.1).
//!
//! Not linearizable: a read overlapping updates on slots it has
//! already passed misses them while seeing later ones (Figure 2). IVL
//! (Lemma 10): each slot read returns a value the slot held at some
//! instant inside the read, slots are monotone, so the sum is bounded
//! by the counter's value at the read's start and end.

use crate::SharedBatchedCounter;
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The IVL batched counter (paper Algorithm 2).
#[derive(Debug)]
pub struct IvlBatchedCounter {
    slots: Vec<CachePadded<AtomicU64>>,
    handles_taken: AtomicBool,
}

impl IvlBatchedCounter {
    /// Creates a counter with `n` single-writer slots.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one slot");
        IvlBatchedCounter {
            slots: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            handles_taken: AtomicBool::new(false),
        }
    }

    /// The current value of one slot (the owner's cumulative updates).
    pub fn slot_value(&self, slot: usize) -> u64 {
        self.slots[slot].load(Ordering::Acquire)
    }

    /// Takes one [`UpdaterHandle`] per slot — the type-safe way to
    /// distribute the single-writer slots across threads (each handle
    /// owns its slot, so two writers on one slot cannot be expressed).
    /// The handle keeps the slot's running sum locally and issues a
    /// single store per update, like the pseudocode's `v[i] ← v[i]+v`.
    ///
    /// # Panics
    ///
    /// Panics if called twice: a second set of handles would alias
    /// the writers.
    pub fn handles(&self) -> Vec<UpdaterHandle<'_>> {
        assert!(
            !self.handles_taken.swap(true, Ordering::AcqRel),
            "handles() may only be called once"
        );
        self.slots
            .iter()
            .map(|slot| UpdaterHandle {
                slot,
                local: slot.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// An owning single-writer updater for one slot of an
/// [`IvlBatchedCounter`].
#[derive(Debug)]
pub struct UpdaterHandle<'a> {
    slot: &'a CachePadded<AtomicU64>,
    /// Local mirror of the slot (this handle is the only writer).
    local: u64,
}

impl UpdaterHandle<'_> {
    /// `v[i] ← v[i] + v`: one store.
    pub fn update(&mut self, v: u64) {
        self.local += v;
        self.slot.store(self.local, Ordering::Release);
    }

    /// The slot's current value (== everything this handle wrote).
    pub fn local_total(&self) -> u64 {
        self.local
    }
}

impl SharedBatchedCounter for IvlBatchedCounter {
    fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// `v[i] ← v[i] + v`: one load of the own slot (no other writer
    /// exists) and one store. O(1), wait-free.
    fn update_slot(&self, slot: usize, v: u64) {
        let cell = &self.slots[slot];
        let current = cell.load(Ordering::Relaxed);
        cell.store(current + v, Ordering::Release);
    }

    /// Sums the slots in index order. O(n), wait-free. The result is
    /// an *intermediate value*: at least the counter's value when the
    /// read started, at most its value (including pending updates)
    /// when it returns.
    fn read(&self) -> u64 {
        self.slots.iter().map(|s| s.load(Ordering::Acquire)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_spec::ivl::check_ivl_monotone;
    use ivl_spec::specs::BatchedCounterSpec;

    #[test]
    fn sequential_sum() {
        let c = IvlBatchedCounter::new(3);
        c.update_slot(0, 5);
        c.update_slot(1, 7);
        c.update_slot(0, 1);
        assert_eq!(c.read(), 13);
        assert_eq!(c.slot_value(0), 6);
    }

    #[test]
    fn concurrent_total_is_exact_after_quiescence() {
        let n = 8;
        let c = IvlBatchedCounter::new(n);
        crossbeam::scope(|s| {
            for slot in 0..n {
                let c = &c;
                s.spawn(move |_| {
                    for k in 0..10_000u64 {
                        c.update_slot(slot, k % 3);
                    }
                });
            }
        })
        .unwrap();
        let expected: u64 = (0..10_000u64).map(|k| k % 3).sum::<u64>() * n as u64;
        assert_eq!(c.read(), expected);
    }

    #[test]
    fn concurrent_reads_are_monotone_and_bounded() {
        // A reader polling concurrently with updaters must see a
        // non-decreasing sequence bounded by the final total
        // (each slot is monotone, and summation order is fixed).
        let n = 4;
        let c = IvlBatchedCounter::new(n);
        let per_thread = 20_000u64;
        crossbeam::scope(|s| {
            for slot in 0..n {
                let c = &c;
                s.spawn(move |_| {
                    for _ in 0..per_thread {
                        c.update_slot(slot, 1);
                    }
                });
            }
            let c = &c;
            s.spawn(move |_| {
                let mut last = 0;
                loop {
                    let v = c.read();
                    assert!(v >= last, "read went backwards: {v} < {last}");
                    last = v;
                    if v == per_thread * n as u64 {
                        break;
                    }
                    std::hint::spin_loop();
                }
            });
        })
        .unwrap();
        assert_eq!(c.read(), per_thread * n as u64);
    }

    #[test]
    fn handles_distribute_slots_safely() {
        let c = IvlBatchedCounter::new(4);
        let handles = c.handles();
        assert_eq!(handles.len(), 4);
        crossbeam::scope(|s| {
            for mut h in handles {
                s.spawn(move |_| {
                    for _ in 0..10_000 {
                        h.update(2);
                    }
                    assert_eq!(h.local_total(), 20_000);
                });
            }
        })
        .unwrap();
        assert_eq!(c.read(), 80_000);
    }

    #[test]
    #[should_panic(expected = "only be called once")]
    fn second_handles_call_rejected() {
        let c = IvlBatchedCounter::new(2);
        let _a = c.handles();
        let _b = c.handles();
    }

    #[test]
    fn recorded_histories_are_ivl() {
        use crate::RecordedCounter;
        for round in 0..5 {
            let c = RecordedCounter::new(IvlBatchedCounter::new(4));
            crossbeam::scope(|s| {
                for slot in 0..3 {
                    let c = &c;
                    s.spawn(move |_| {
                        for _ in 0..200 {
                            c.update(slot, slot as u64 + 1);
                        }
                    });
                }
                let c = &c;
                s.spawn(move |_| {
                    for _ in 0..100 {
                        c.read_from(3);
                    }
                });
            })
            .unwrap();
            let h = c.finish();
            assert!(
                check_ivl_monotone(&BatchedCounterSpec, &h).is_ivl(),
                "round {round}: recorded history violates IVL"
            );
        }
    }
}
