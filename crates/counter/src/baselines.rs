//! Linearizable batched-counter baselines.
//!
//! Three ways to buy linearizability, with three different costs:
//!
//! * [`MutexBatchedCounter`] — one lock around one integer. Trivially
//!   linearizable; updates serialize.
//! * [`FetchAddCounter`] — one atomic integer with `fetch_add`.
//!   Linearizable and O(1) per update, but only because `fetch_add` is
//!   a read-modify-write primitive, *stronger than the SWMR registers*
//!   of Theorem 14's lower bound; all updates contend on one cache
//!   line.
//! * [`SnapshotBatchedCounter`] — the Afek-style snapshot construction
//!   from per-slot cells: every update performs an embedded scan of
//!   all `n` slots before writing its own. This is the real-thread
//!   mirror of the simulator's register-model construction: its
//!   update cost grows linearly with `n`, the wall-clock face of the
//!   Ω(n) bound. Cells are seqlock-free `RwLock`s for the embedded
//!   views (the abstract model's unbounded-size registers); the
//!   model-accurate, lock-free-register version lives in `ivl-shmem`.

use crate::SharedBatchedCounter;
use crossbeam::utils::CachePadded;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-based linearizable batched counter.
#[derive(Debug, Default)]
pub struct MutexBatchedCounter {
    total: Mutex<u64>,
    slots: usize,
}

impl MutexBatchedCounter {
    /// Creates a counter advertised for `n` slots (the slot index is
    /// ignored; it exists for interface parity).
    pub fn new(n: usize) -> Self {
        MutexBatchedCounter {
            total: Mutex::new(0),
            slots: n,
        }
    }
}

impl SharedBatchedCounter for MutexBatchedCounter {
    fn num_slots(&self) -> usize {
        self.slots
    }

    fn update_slot(&self, _slot: usize, v: u64) {
        *self.total.lock() += v;
    }

    fn read(&self) -> u64 {
        *self.total.lock()
    }
}

/// Single-atomic linearizable batched counter (RMW primitive).
#[derive(Debug, Default)]
pub struct FetchAddCounter {
    total: AtomicU64,
    slots: usize,
}

impl FetchAddCounter {
    /// Creates a counter advertised for `n` slots (ignored on update).
    pub fn new(n: usize) -> Self {
        FetchAddCounter {
            total: AtomicU64::new(0),
            slots: n,
        }
    }
}

impl SharedBatchedCounter for FetchAddCounter {
    fn num_slots(&self) -> usize {
        self.slots
    }

    fn update_slot(&self, _slot: usize, v: u64) {
        self.total.fetch_add(v, Ordering::AcqRel);
    }

    fn read(&self) -> u64 {
        self.total.load(Ordering::Acquire)
    }
}

/// One snapshot component: value, write sequence number, and the
/// writer's embedded view.
#[derive(Clone, Debug, Default)]
struct SnapCell {
    value: u64,
    seq: u64,
    view: Vec<u64>,
}

/// Afek-style snapshot-based linearizable batched counter.
#[derive(Debug)]
pub struct SnapshotBatchedCounter {
    cells: Vec<CachePadded<RwLock<SnapCell>>>,
}

impl SnapshotBatchedCounter {
    /// Creates a counter with `n` single-writer components.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one slot");
        SnapshotBatchedCounter {
            cells: (0..n)
                .map(|_| CachePadded::new(RwLock::new(SnapCell::default())))
                .collect(),
        }
    }

    fn collect(&self) -> Vec<SnapCell> {
        self.cells.iter().map(|c| c.read().clone()).collect()
    }

    /// The classic double-collect scan with view borrowing.
    fn scan(&self) -> Vec<u64> {
        let n = self.cells.len();
        let mut moved = vec![false; n];
        loop {
            let a = self.collect();
            let b = self.collect();
            if a.iter().zip(&b).all(|(x, y)| x.seq == y.seq) {
                return b.into_iter().map(|c| c.value).collect();
            }
            for i in 0..n {
                if a[i].seq != b[i].seq {
                    if moved[i] {
                        // The writer completed two updates inside our
                        // scan; its embedded view is a valid snapshot
                        // within our interval.
                        let mut view = b[i].view.clone();
                        view.resize(n, 0);
                        return view;
                    }
                    moved[i] = true;
                }
            }
        }
    }
}

impl SharedBatchedCounter for SnapshotBatchedCounter {
    fn num_slots(&self) -> usize {
        self.cells.len()
    }

    /// Embedded scan, then a write of the slot's new cumulative sum —
    /// Θ(n) even without contention. The embedded view is stored
    /// as-scanned (it represents the state at the scan's linearization
    /// point, *before* this update takes effect).
    fn update_slot(&self, slot: usize, v: u64) {
        let view = self.scan();
        let mut cell = self.cells[slot].write();
        cell.value += v;
        cell.seq += 1;
        cell.view = view;
    }

    fn read(&self) -> u64 {
        self.scan().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recording::RecordedCounter;
    use ivl_spec::linearize::check_linearizable;
    use ivl_spec::specs::BatchedCounterSpec;

    fn exercise<C: SharedBatchedCounter>(c: &C, n: usize, per_thread: u64) -> u64 {
        crossbeam::scope(|s| {
            for slot in 0..n {
                s.spawn(move |_| {
                    for _ in 0..per_thread {
                        c.update_slot(slot, 2);
                    }
                });
            }
        })
        .unwrap();
        c.read()
    }

    #[test]
    fn mutex_counts_exactly() {
        let c = MutexBatchedCounter::new(4);
        assert_eq!(exercise(&c, 4, 5_000), 40_000);
    }

    #[test]
    fn fetch_add_counts_exactly() {
        let c = FetchAddCounter::new(4);
        assert_eq!(exercise(&c, 4, 5_000), 40_000);
    }

    #[test]
    fn snapshot_counts_exactly() {
        let c = SnapshotBatchedCounter::new(4);
        assert_eq!(exercise(&c, 4, 1_000), 8_000);
    }

    #[test]
    fn snapshot_reads_never_regress_under_concurrency() {
        let n = 4;
        let c = SnapshotBatchedCounter::new(n);
        let per_thread = 500u64;
        crossbeam::scope(|s| {
            for slot in 0..n {
                let c = &c;
                s.spawn(move |_| {
                    for _ in 0..per_thread {
                        c.update_slot(slot, 1);
                    }
                });
            }
            let c = &c;
            s.spawn(move |_| {
                let mut last = 0;
                loop {
                    let v = c.read();
                    assert!(v >= last, "linearizable reads regressed: {v} < {last}");
                    last = v;
                    if v == per_thread * n as u64 {
                        break;
                    }
                }
            });
        })
        .unwrap();
    }

    /// Records a small concurrent run and checks linearizability with
    /// the exact checker.
    fn check_recorded_linearizable<C: SharedBatchedCounter>(c: C) {
        let rec = RecordedCounter::new(c);
        crossbeam::scope(|s| {
            for slot in 0..2 {
                let rec = &rec;
                s.spawn(move |_| {
                    for _ in 0..4 {
                        rec.update(slot, 3);
                    }
                });
            }
            let rec = &rec;
            s.spawn(move |_| {
                for _ in 0..4 {
                    rec.read_from(2);
                }
            });
        })
        .unwrap();
        let h = rec.finish();
        assert!(
            check_linearizable(&[BatchedCounterSpec], &h).is_linearizable(),
            "recorded history should linearize: {h:?}"
        );
    }

    #[test]
    fn mutex_recorded_history_linearizable() {
        check_recorded_linearizable(MutexBatchedCounter::new(3));
    }

    #[test]
    fn fetch_add_recorded_history_linearizable() {
        check_recorded_linearizable(FetchAddCounter::new(3));
    }

    #[test]
    fn snapshot_recorded_history_linearizable() {
        check_recorded_linearizable(SnapshotBatchedCounter::new(3));
    }
}
