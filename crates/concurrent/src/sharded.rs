//! A sharded IVL CountMin: per-thread sub-matrices, summed at query
//! time.
//!
//! `PCM` keeps one shared matrix and pays a `fetch_add` (RMW) per cell
//! per update. The sharded variant gives each handle its own matrix of
//! plain atomics written with cheap stores (the handle is the only
//! writer of its shard — the IVL-counter trick applied per cell);
//! a query reads the cell in *every* shard, sums, and takes the row
//! minimum.
//!
//! Because CountMin cells are additive, the summed matrix equals the
//! single-matrix sketch of the union stream, so the estimator — and
//! the (ε,δ) analysis — is unchanged. Cells only grow and updates
//! commute, so the object is monotone and the implementation is IVL
//! by the same Lemma 7 argument; recorded histories are checked
//! against the same [`ivl_sketch::cm_spec::CountMinSpec`].
//!
//! Trade-off: updates avoid RMW contention entirely; queries cost
//! `shards × depth` cell reads instead of `depth` — the CountMin
//! analogue of the paper's O(1)-update / O(n)-read batched counter.

use crate::arena::CellArena;
use crate::batch::{BatchScratch, PREFETCH_DIST};
use crate::{ConcurrentSketch, SketchHandle};
use ivl_sketch::countmin::{CountMin, CountMinParams};
use ivl_sketch::hash::PairwiseHash;
use ivl_sketch::CoinFlips;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Per-shard delta-snapshot metadata, written only by the shard's
/// single writer (the same ownership discipline as the cells): a
/// shard-local update epoch, plus per row the cumulative `[lo, hi)`
/// span of columns ever touched and the epoch of the row's last touch.
///
/// Spans are *cumulative* — they widen and never reset — so a reader
/// diffing against an older epoch over-approximates the dirty set
/// (extra columns resent, never a changed column missed): a column
/// changed after the base epoch was touched by some op, and that op's
/// span widen and row-epoch stamp are ordered before its epoch bump.
/// Writer order per op is cells → spans → row epochs → shard epoch
/// (all stores `Release`); a reader that loads the shard epoch (or a
/// row epoch) with `Acquire` therefore sees every span and cell the
/// ops it observed wrote.
#[derive(Debug)]
struct ShardMeta {
    /// Shard-local op counter; bumped once per update/batch applied.
    epoch: AtomicU64,
    /// Per-row cumulative touched-column span start (inclusive);
    /// starts at `width` (empty span).
    span_lo: Vec<AtomicU32>,
    /// Per-row cumulative touched-column span end (exclusive).
    span_hi: Vec<AtomicU32>,
    /// Per-row shard-local epoch of the last touch (0 = never).
    row_epoch: Vec<AtomicU64>,
}

impl ShardMeta {
    fn new(depth: usize, width: usize) -> Self {
        ShardMeta {
            epoch: AtomicU64::new(0),
            span_lo: (0..depth).map(|_| AtomicU32::new(width as u32)).collect(),
            span_hi: (0..depth).map(|_| AtomicU32::new(0)).collect(),
            row_epoch: (0..depth).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Single-writer: widens `row`'s cumulative span to cover
    /// `[lo, hi)` and stamps the row as touched at `epoch`.
    fn touch_row(&self, row: usize, lo: u32, hi: u32, epoch: u64) {
        if lo < self.span_lo[row].load(Ordering::Relaxed) {
            self.span_lo[row].store(lo, Ordering::Release);
        }
        if hi > self.span_hi[row].load(Ordering::Relaxed) {
            self.span_hi[row].store(hi, Ordering::Release);
        }
        self.row_epoch[row].store(epoch, Ordering::Release);
    }

    /// Single-writer: the epoch the in-progress op will commit as.
    fn next_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed) + 1
    }

    /// Single-writer: publishes the op (ordered after its cell stores
    /// and row touches).
    fn commit(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::Release);
    }
}

/// A sharded concurrent CountMin (one sub-matrix per handle).
///
/// # Examples
///
/// ```
/// use ivl_concurrent::{ConcurrentSketch, ShardedPcm, SketchHandle};
/// use ivl_sketch::countmin::CountMinParams;
/// use ivl_sketch::CoinFlips;
///
/// let mut coins = CoinFlips::from_seed(2);
/// let sketch = ShardedPcm::new(CountMinParams { width: 64, depth: 4 }, 2, &mut coins);
/// crossbeam::scope(|s| {
///     for _ in 0..2 {
///         let mut h = sketch.handle(); // one shard per thread
///         s.spawn(move |_| {
///             for _ in 0..1_000 {
///                 h.update(9);
///             }
///         });
///     }
/// })
/// .unwrap();
/// assert_eq!(sketch.estimate(9), 2_000);
/// ```
#[derive(Debug)]
pub struct ShardedPcm {
    params: CountMinParams,
    hashes: Vec<PairwiseHash>,
    /// One padded [`CellArena`] per shard.
    shards: Vec<CellArena>,
    /// One [`ShardMeta`] per shard (epoch + dirty spans), same
    /// single-writer ownership as the matching arena.
    meta: Vec<ShardMeta>,
    /// Single-writer ownership flags, one per shard. [`handle`]
    /// acquires a shard permanently; [`ShardedPcm::lease`] returns it
    /// on drop so serving layers can recycle shards across
    /// connections.
    ///
    /// [`handle`]: ConcurrentSketch::handle
    in_use: Vec<AtomicBool>,
}

impl ShardedPcm {
    /// Creates a sketch with `shards` sub-matrices, drawing hashes
    /// from `coins`. At most `shards` handles may be live at a time.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn new(params: CountMinParams, shards: usize, coins: &mut CoinFlips) -> Self {
        let proto = CountMin::new(params, coins);
        Self::from_prototype(&proto, shards)
    }

    /// Creates a sharded sketch sharing the hashes of an (empty)
    /// prototype — same coins, same deterministic algorithm.
    ///
    /// # Panics
    ///
    /// Panics if the prototype is non-empty or `shards` is 0.
    pub fn from_prototype(proto: &CountMin, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert_eq!(
            ivl_sketch::FrequencySketch::stream_len(proto),
            0,
            "prototype must be empty"
        );
        let params = proto.params();
        ShardedPcm {
            params,
            hashes: proto.hashes().to_vec(),
            shards: (0..shards)
                .map(|_| CellArena::new(params.depth, params.width))
                .collect(),
            meta: (0..shards)
                .map(|_| ShardMeta::new(params.depth, params.width))
                .collect(),
            in_use: (0..shards).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// The per-row hash functions (`c̄`), shared with the sequential
    /// prototype. Exposed so a buffered ingest layer can memoize row
    /// columns via [`PairwiseHash::hash_row_batch`] and later apply
    /// them through [`ShardLease::apply_rows`].
    pub fn hashes(&self) -> &[PairwiseHash] {
        &self.hashes
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of currently unleased shards. A snapshot — another
    /// thread may win the shard before the caller leases it, so use
    /// it as a wakeup hint, not a reservation.
    pub fn free_shards(&self) -> usize {
        self.in_use
            .iter()
            .filter(|flag| !flag.load(Ordering::Acquire))
            .count()
    }

    /// The sketch dimensions.
    pub fn params(&self) -> CountMinParams {
        self.params
    }

    /// Claims the lowest free shard, or `None` when all are taken.
    fn acquire_free_shard(&self) -> Option<usize> {
        self.in_use
            .iter()
            .position(|flag| !flag.swap(true, Ordering::AcqRel))
    }

    /// Checks out a free shard as a droppable single-writer lease, or
    /// returns `None` when every shard is busy. Unlike
    /// [`ConcurrentSketch::handle`] (which owns its shard forever), a
    /// lease returns the shard to the free pool on drop — the shape a
    /// serving layer needs to hand shards to connections that come and
    /// go. Leases and permanent handles draw from the same pool, so
    /// the single-writer invariant holds across both.
    pub fn lease(&self) -> Option<ShardLease<'_>> {
        self.acquire_free_shard().map(|shard| ShardLease {
            parent: self,
            shard,
            scratch: Vec::with_capacity(self.params.depth),
        })
    }

    /// Estimates `item`'s frequency: per row, sum the cell across all
    /// shards; return the row minimum. The `mod p` reduction of
    /// `item` happens once, not per row.
    pub fn estimate(&self, item: u64) -> u64 {
        let xr = PairwiseHash::reduce(item);
        self.hashes
            .iter()
            .enumerate()
            .map(|(row, h)| {
                let col = h.hash_reduced(xr);
                self.shards
                    .iter()
                    .map(|m| m.cell(row, col).load(Ordering::Acquire))
                    .sum::<u64>()
            })
            .min()
            .expect("depth >= 1")
    }

    /// Total stream weight visible in the sketch: every update adds
    /// its count to exactly one cell of row 0 per shard, so the sum of
    /// row 0 across shards is the applied weight — an IVL read, like
    /// [`Pcm::stream_len_estimate`](crate::Pcm::stream_len_estimate).
    pub fn stream_len_estimate(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|m| m.row(0))
            .map(|cell| cell.load(Ordering::Acquire))
            .sum()
    }

    /// Row-major snapshot of the summed cell matrix (`depth × width`
    /// values, each the per-(row, col) sum across shards). Because
    /// cells are additive and only grow, the returned matrix equals a
    /// single-matrix CountMin over some intermediate mix of the
    /// concurrent streams — an IVL read per cell, exactly what a
    /// replication layer may merge cell-wise into a peer's snapshot
    /// (concatenated-stream semantics of `CountMin::merge`).
    pub fn cells_snapshot(&self) -> Vec<u64> {
        let (depth, width) = (self.params.depth, self.params.width);
        let mut out = vec![0u64; depth * width];
        for shard in &self.shards {
            for row in 0..depth {
                for (col, cell) in shard.row(row).enumerate() {
                    out[row * width + col] += cell.load(Ordering::Acquire);
                }
            }
        }
        out
    }

    /// The sketch's update epoch: the sum of per-shard op counters
    /// (each `Acquire`-loaded). Monotone, and bumped only by ops that
    /// may change cell values — so an unchanged epoch means an
    /// unchanged summed matrix, which is what lets a snapshot server
    /// answer "since epoch e" with a tiny `Unchanged` frame.
    pub fn epoch(&self) -> u64 {
        self.meta
            .iter()
            .map(|m| m.epoch.load(Ordering::Acquire))
            .sum()
    }

    /// Appends the per-shard epoch vector (the decomposition of
    /// [`epoch`](Self::epoch)) to `out`. A snapshot server remembers
    /// this vector per served epoch so a later
    /// [`dirty_spans_since`](Self::dirty_spans_since) can diff per
    /// shard.
    pub fn shard_epochs_into(&self, out: &mut Vec<u64>) {
        out.extend(self.meta.iter().map(|m| m.epoch.load(Ordering::Acquire)));
    }

    /// For each row, the union across shards of the cumulative
    /// touched-column spans of shards whose row was touched after the
    /// per-shard base epoch `base` (as captured by
    /// [`shard_epochs_into`](Self::shard_epochs_into)). Rows clean
    /// since `base` come back with an empty span (`lo >= hi`).
    ///
    /// The answer over-approximates (cumulative spans never narrow)
    /// but never misses: a column changed after `base` was written by
    /// an op whose span widen and row stamp precede its epoch bump,
    /// and that bump is not yet in `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base.len()` differs from the shard count.
    pub fn dirty_spans_since(&self, base: &[u64]) -> Vec<(u32, u32)> {
        assert_eq!(base.len(), self.meta.len(), "one base epoch per shard");
        let (depth, width) = (self.params.depth, self.params.width);
        let mut spans = vec![(width as u32, 0u32); depth];
        for (meta, &since) in self.meta.iter().zip(base) {
            for (row, span) in spans.iter_mut().enumerate() {
                if meta.row_epoch[row].load(Ordering::Acquire) > since {
                    span.0 = span.0.min(meta.span_lo[row].load(Ordering::Acquire));
                    span.1 = span.1.max(meta.span_hi[row].load(Ordering::Acquire));
                }
            }
        }
        spans
    }

    /// Appends the summed (across shards) cell values of `row`'s
    /// columns `[lo, hi)` to `out` — the sparse read backing a delta
    /// snapshot, same per-cell `Acquire` IVL semantics as
    /// [`cells_snapshot`](Self::cells_snapshot).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on an out-of-range row or span.
    pub fn sum_row_range_into(&self, row: usize, lo: usize, hi: usize, out: &mut Vec<u64>) {
        debug_assert!(row < self.params.depth && hi <= self.params.width && lo <= hi);
        let at = out.len();
        out.resize(at + (hi - lo), 0);
        for shard in &self.shards {
            let cells = shard.row_cells(row);
            for (slot, col) in out[at..].iter_mut().zip(lo..hi) {
                *slot += cells.cell(col).load(Ordering::Acquire);
            }
        }
    }
}

/// Single-writer add of `count` at one pre-hashed column per row:
/// plain load + `Release` store per cell — no RMW, the shard has
/// exactly one writer. The shared body of [`ShardHandle::update_by`],
/// [`ShardLease::update_by`] and [`ShardLease::apply_rows`]. Folds the
/// touched columns into the shard's delta metadata (span widen + row
/// stamp per row, one epoch store per call — still store-only).
fn add_at_cols(parent: &ShardedPcm, shard: usize, cols: impl Iterator<Item = usize>, count: u64) {
    let arena = &parent.shards[shard];
    let meta = &parent.meta[shard];
    let epoch = meta.next_epoch();
    for (row, col) in cols.enumerate() {
        let cell = arena.cell(row, col);
        let cur = cell.load(Ordering::Relaxed);
        cell.store(cur + count, Ordering::Release);
        meta.touch_row(row, col as u32, col as u32 + 1, epoch);
    }
    meta.commit(epoch);
}

/// Single-writer updater over one shard.
#[derive(Debug)]
pub struct ShardHandle<'a> {
    parent: &'a ShardedPcm,
    shard: usize,
    /// Reusable row-index buffer for [`PairwiseHash::hash_row_batch`];
    /// lives on the handle so a stream of updates allocates once.
    scratch: Vec<usize>,
}

impl ShardHandle<'_> {
    /// The shard this handle owns.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Batched update: `count` occurrences at once (the paper's
    /// batched updates; one store per row regardless of `count`).
    /// Row indices come from one [`PairwiseHash::hash_row_batch`]
    /// pass into the handle's scratch buffer.
    pub fn update_by(&mut self, item: u64, count: u64) {
        PairwiseHash::hash_row_batch(&self.parent.hashes, item, &mut self.scratch);
        add_at_cols(self.parent, self.shard, self.scratch.iter().copied(), count);
    }
}

impl SketchHandle for ShardHandle<'_> {
    fn update(&mut self, item: u64) {
        self.update_by(item, 1);
    }
}

/// A single-writer shard checkout that returns its shard to the free
/// pool on drop (see [`ShardedPcm::lease`]).
#[derive(Debug)]
pub struct ShardLease<'a> {
    parent: &'a ShardedPcm,
    shard: usize,
    /// Reusable row-index buffer (see [`ShardHandle`]).
    scratch: Vec<usize>,
}

impl ShardLease<'_> {
    /// The shard this lease owns.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Batched update: `count` occurrences at once (one store per row
    /// regardless of `count`). Row indices come from one
    /// [`PairwiseHash::hash_row_batch`] pass into the lease's scratch
    /// buffer.
    pub fn update_by(&mut self, item: u64, count: u64) {
        PairwiseHash::hash_row_batch(&self.parent.hashes, item, &mut self.scratch);
        add_at_cols(self.parent, self.shard, self.scratch.iter().copied(), count);
    }

    /// Applies a whole frame of `(item, count)` pairs to the leased
    /// shard: `scratch` coalesces duplicate keys and memoizes each
    /// distinct key's columns with one
    /// [`PairwiseHash::hash_row_batch`] sweep, then the single-writer
    /// stores run **row-major** with the next
    /// [`PREFETCH_DIST`](crate::batch::PREFETCH_DIST) cells warmed
    /// ahead of the write cursor by a relaxed load. Same load +
    /// `Release` store per cell as [`add_at_cols`] — the shard still
    /// has exactly one writer — so the final state is identical to
    /// per-item [`update_by`](Self::update_by) calls.
    pub fn apply_batch(&mut self, items: &[(u64, u64)], scratch: &mut BatchScratch) {
        let n = scratch.prepare(&self.parent.hashes, items);
        let m = &self.parent.shards[self.shard];
        let meta = &self.parent.meta[self.shard];
        let epoch = meta.next_epoch();
        for row in 0..self.parent.params.depth {
            let cells = m.row_cells(row);
            let cols = scratch.row_cols(row);
            let counts = &scratch.counts()[..n];
            let warm = n.saturating_sub(PREFETCH_DIST);
            for e in 0..warm {
                let _ = cells
                    .cell(cols[e + PREFETCH_DIST] as usize)
                    .load(Ordering::Relaxed);
                let cell = cells.cell(cols[e] as usize);
                let cur = cell.load(Ordering::Relaxed);
                cell.store(cur + counts[e], Ordering::Release);
            }
            for e in warm..n {
                let cell = cells.cell(cols[e] as usize);
                let cur = cell.load(Ordering::Relaxed);
                cell.store(cur + counts[e], Ordering::Release);
            }
            if n > 0 {
                // One span widen per row for the whole frame: the
                // coalesced columns' min/max, folded in after the cell
                // stores so a reader that sees the row stamp sees the
                // cells too.
                let (mut lo, mut hi) = (cols[0], cols[0]);
                for &c in &cols[1..n] {
                    lo = lo.min(c);
                    hi = hi.max(c);
                }
                meta.touch_row(row, lo, hi + 1, epoch);
            }
        }
        if n > 0 {
            meta.commit(epoch);
        }
    }

    /// Adds a peer's full `depth × width` cell matrix (row-major, as
    /// shipped by a snapshot) into the leased shard — the CountMin
    /// absorb path of replication catch-up. Cells are additive, so
    /// adding the peer matrix into any one shard makes the summed
    /// sketch equal the cell-wise merge of the two sketches
    /// (concatenated-stream semantics, like `CountMin::merge`). Same
    /// single-writer discipline as [`update_by`](Self::update_by):
    /// plain load + `Release` store per touched cell, span widen + row
    /// stamp per touched row, one epoch commit for the whole matrix.
    /// Zero cells are skipped (no store, no span widen), so absorbing
    /// a sparse peer keeps deltas sparse.
    ///
    /// # Panics
    ///
    /// Panics if `cells.len()` differs from `depth * width` — callers
    /// gate peer dimensions (and hash fingerprints) before absorbing.
    pub fn absorb_cells(&mut self, cells: &[u64]) {
        let (depth, width) = (self.parent.params.depth, self.parent.params.width);
        assert_eq!(cells.len(), depth * width, "one cell per (row, col)");
        let arena = &self.parent.shards[self.shard];
        let meta = &self.parent.meta[self.shard];
        let epoch = meta.next_epoch();
        let mut touched = false;
        for row in 0..depth {
            let row_cells = arena.row_cells(row);
            let src = &cells[row * width..(row + 1) * width];
            let (mut lo, mut hi) = (width as u32, 0u32);
            for (col, &add) in src.iter().enumerate() {
                if add == 0 {
                    continue;
                }
                let cell = row_cells.cell(col);
                let cur = cell.load(Ordering::Relaxed);
                cell.store(cur + add, Ordering::Release);
                lo = lo.min(col as u32);
                hi = hi.max(col as u32 + 1);
            }
            if lo < hi {
                meta.touch_row(row, lo, hi, epoch);
                touched = true;
            }
        }
        if touched {
            meta.commit(epoch);
        }
    }

    /// Adds `count` at pre-hashed per-row columns (`cols[row]`, one
    /// per row, as memoized by
    /// [`UpdateBuffer`](crate::buffered::UpdateBuffer)): the buffered
    /// flush path, which skips re-hashing entirely.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `cols` has the wrong length or a
    /// column is out of range — callers must memoize with the parent's
    /// [`ShardedPcm::hashes`].
    pub fn apply_rows(&mut self, cols: &[u32], count: u64) {
        debug_assert_eq!(cols.len(), self.parent.params.depth);
        add_at_cols(
            self.parent,
            self.shard,
            cols.iter().map(|&c| c as usize),
            count,
        );
    }
}

impl SketchHandle for ShardLease<'_> {
    fn update(&mut self, item: u64) {
        self.update_by(item, 1);
    }
}

impl Drop for ShardLease<'_> {
    fn drop(&mut self) {
        self.parent.in_use[self.shard].store(false, Ordering::Release);
    }
}

impl ConcurrentSketch for ShardedPcm {
    type Handle<'a> = ShardHandle<'a>;

    /// Hands out the lowest free shard, permanently.
    ///
    /// # Panics
    ///
    /// Panics when more handles are requested than shards exist —
    /// two handles on one shard would break the single-writer cells.
    fn handle(&self) -> ShardHandle<'_> {
        let shard = self.acquire_free_shard().unwrap_or_else(|| {
            panic!("more handles requested than shards ({})", self.shards.len())
        });
        ShardHandle {
            parent: self,
            shard,
            scratch: Vec::with_capacity(self.params.depth),
        }
    }

    fn query(&self, item: u64) -> u64 {
        self.estimate(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_sketch::FrequencySketch;

    fn params() -> CountMinParams {
        CountMinParams {
            width: 64,
            depth: 4,
        }
    }

    #[test]
    fn quiescent_equals_single_matrix_sketch() {
        let mut coins = CoinFlips::from_seed(1);
        let mut cm = CountMin::new(params(), &mut coins);
        let sharded = ShardedPcm::from_prototype(&cm, 4);
        crossbeam::scope(|s| {
            for t in 0..4u64 {
                let mut h = sharded.handle();
                s.spawn(move |_| {
                    for k in 0..10_000u64 {
                        h.update((t * 13 + k) % 101);
                    }
                });
            }
        })
        .unwrap();
        for t in 0..4u64 {
            for k in 0..10_000u64 {
                cm.update((t * 13 + k) % 101);
            }
        }
        for item in 0..101u64 {
            assert_eq!(sharded.estimate(item), cm.estimate(item), "item {item}");
        }
    }

    #[test]
    fn batched_updates_count_in_bulk() {
        let mut coins = CoinFlips::from_seed(2);
        let sharded = ShardedPcm::new(params(), 2, &mut coins);
        let mut h = sharded.handle();
        h.update_by(9, 1_000);
        assert_eq!(sharded.estimate(9), 1_000);
    }

    #[test]
    fn estimates_monotone_under_concurrent_reads() {
        let mut coins = CoinFlips::from_seed(3);
        let sharded = ShardedPcm::new(params(), 2, &mut coins);
        crossbeam::scope(|s| {
            let mut h = sharded.handle();
            let w = s.spawn(move |_| {
                for _ in 0..50_000u64 {
                    h.update(7);
                }
            });
            let sh = &sharded;
            s.spawn(move |_| {
                let mut last = 0;
                loop {
                    let v = sh.estimate(7);
                    assert!(v >= last, "estimate regressed: {v} < {last}");
                    last = v;
                    if v >= 50_000 {
                        break;
                    }
                }
            });
            w.join().unwrap();
        })
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "more handles")]
    fn over_subscription_rejected() {
        let mut coins = CoinFlips::from_seed(4);
        let sharded = ShardedPcm::new(params(), 1, &mut coins);
        let _h1 = sharded.handle();
        let _h2 = sharded.handle();
    }

    #[test]
    fn leases_recycle_shards() {
        let mut coins = CoinFlips::from_seed(6);
        let sharded = ShardedPcm::new(params(), 2, &mut coins);
        {
            let mut a = sharded.lease().expect("shard 0 free");
            let mut b = sharded.lease().expect("shard 1 free");
            assert_ne!(a.shard(), b.shard());
            assert!(sharded.lease().is_none(), "pool exhausted");
            a.update_by(3, 10);
            b.update_by(3, 5);
        }
        // Both leases dropped: the pool refills and writes persist.
        assert_eq!(sharded.estimate(3), 15);
        let c = sharded.lease().expect("returned to pool");
        assert_eq!(c.shard(), 0, "lowest shard first");
    }

    #[test]
    fn leases_and_handles_share_the_pool() {
        let mut coins = CoinFlips::from_seed(7);
        let sharded = ShardedPcm::new(params(), 2, &mut coins);
        let h = sharded.handle();
        let l = sharded.lease().expect("one shard left");
        assert_ne!(h.shard(), l.shard());
        assert!(sharded.lease().is_none());
        drop(l);
        // The handle's shard is permanent; the lease's shard returns.
        assert_eq!(sharded.lease().expect("lease shard free").shard(), 1);
    }

    #[test]
    fn cells_snapshot_matches_sequential_sketch() {
        let mut coins = CoinFlips::from_seed(8);
        let mut cm = CountMin::new(params(), &mut coins);
        let sharded = ShardedPcm::from_prototype(&cm, 3);
        {
            let mut a = sharded.lease().expect("shard free");
            let mut b = sharded.lease().expect("shard free");
            for k in 0..500u64 {
                a.update_by(k % 17, 2);
                b.update_by(k % 5, 1);
            }
        }
        for k in 0..500u64 {
            cm.update_by(k % 17, 2);
            cm.update_by(k % 5, 1);
        }
        assert_eq!(sharded.cells_snapshot(), cm.cells());
    }

    #[test]
    fn epoch_tracks_updates_and_dirty_spans_cover_touches() {
        let mut coins = CoinFlips::from_seed(9);
        let sharded = ShardedPcm::new(params(), 2, &mut coins);
        assert_eq!(sharded.epoch(), 0);
        let mut base = Vec::new();
        sharded.shard_epochs_into(&mut base);
        assert_eq!(base, vec![0, 0]);
        // Nothing written: every span is empty.
        for (lo, hi) in sharded.dirty_spans_since(&base) {
            assert!(lo >= hi, "clean sketch has no dirty span");
        }
        {
            let mut a = sharded.lease().expect("shard free");
            a.update_by(3, 10);
            a.update_by(11, 5);
        }
        assert_eq!(sharded.epoch(), 2, "one epoch bump per update");
        let spans = sharded.dirty_spans_since(&base);
        // Every row was touched; each span must cover both keys' cols.
        for (row, h) in sharded.hashes().iter().enumerate() {
            let (lo, hi) = spans[row];
            for key in [3u64, 11] {
                let col = h.hash_reduced(PairwiseHash::reduce(key)) as u32;
                assert!(lo <= col && col < hi, "row {row} span misses col {col}");
            }
        }
        // The sparse range read agrees with the full snapshot.
        let full = sharded.cells_snapshot();
        for (row, &(lo, hi)) in spans.iter().enumerate() {
            let mut got = Vec::new();
            sharded.sum_row_range_into(row, lo as usize, hi as usize, &mut got);
            assert_eq!(got, full[row * 64 + lo as usize..row * 64 + hi as usize]);
        }
        // Diffing against the current epoch vector reports clean rows.
        let mut now = Vec::new();
        sharded.shard_epochs_into(&mut now);
        for (lo, hi) in sharded.dirty_spans_since(&now) {
            assert!(lo >= hi, "no rows touched since the current epoch");
        }
    }

    #[test]
    fn batch_kernel_folds_spans_and_bumps_epoch_once() {
        let mut coins = CoinFlips::from_seed(10);
        let sharded = ShardedPcm::new(params(), 1, &mut coins);
        let mut base = Vec::new();
        sharded.shard_epochs_into(&mut base);
        let mut scratch = BatchScratch::new(4);
        {
            let mut l = sharded.lease().expect("shard free");
            l.apply_batch(&[(1, 2), (2, 3), (1, 1)], &mut scratch);
        }
        assert_eq!(sharded.epoch(), 1, "one epoch bump per batch frame");
        let spans = sharded.dirty_spans_since(&base);
        for (row, h) in sharded.hashes().iter().enumerate() {
            let (lo, hi) = spans[row];
            for key in [1u64, 2] {
                let col = h.hash_reduced(PairwiseHash::reduce(key)) as u32;
                assert!(lo <= col && col < hi, "row {row} span misses col {col}");
            }
        }
        // An empty frame changes nothing.
        {
            let mut l = sharded.lease().expect("shard free");
            l.apply_batch(&[], &mut scratch);
        }
        assert_eq!(sharded.epoch(), 1, "empty batch must not bump the epoch");
    }

    #[test]
    fn absorb_cells_adds_a_peer_matrix_and_bumps_the_epoch_once() {
        let mut coins = CoinFlips::from_seed(11);
        let sharded = ShardedPcm::new(params(), 2, &mut coins);
        let mut peer_coins = CoinFlips::from_seed(11);
        let peer = ShardedPcm::new(params(), 2, &mut peer_coins);
        {
            let mut l = sharded.lease().expect("shard free");
            l.update_by(3, 10);
        }
        {
            let mut l = peer.lease().expect("shard free");
            l.update_by(3, 4);
            l.update_by(9, 6);
        }
        let mut base = Vec::new();
        sharded.shard_epochs_into(&mut base);
        let peer_cells = peer.cells_snapshot();
        {
            let mut l = sharded.lease().expect("shard free");
            l.absorb_cells(&peer_cells);
        }
        // The absorbed sketch equals the cell-wise merge.
        assert_eq!(sharded.stream_len_estimate(), 20);
        assert!(sharded.estimate(3) >= 14);
        assert!(sharded.estimate(9) >= 6);
        // One epoch bump for the whole matrix; dirty spans cover the
        // absorbed columns so deltas against older bases still work.
        let mut now = Vec::new();
        sharded.shard_epochs_into(&mut now);
        assert_eq!(now.iter().sum::<u64>(), base.iter().sum::<u64>() + 1);
        let spans = sharded.dirty_spans_since(&base);
        for (row, h) in sharded.hashes().iter().enumerate() {
            let (lo, hi) = spans[row];
            for key in [3u64, 9] {
                let col = h.hash_reduced(PairwiseHash::reduce(key)) as u32;
                assert!(lo <= col && col < hi, "row {row} span misses col {col}");
            }
        }
        // An all-zero matrix is a no-op (no epoch bump).
        {
            let mut l = sharded.lease().expect("shard free");
            l.absorb_cells(&vec![0u64; 64 * 4]);
        }
        let mut after = Vec::new();
        sharded.shard_epochs_into(&mut after);
        assert_eq!(after, now, "zero matrix must not bump the epoch");
    }

    #[test]
    fn never_underestimates_at_quiescence() {
        let mut coins = CoinFlips::from_seed(5);
        let sharded = ShardedPcm::new(params(), 3, &mut coins);
        crossbeam::scope(|s| {
            for t in 0..3u64 {
                let mut h = sharded.handle();
                s.spawn(move |_| {
                    for _ in 0..1_000 {
                        h.update(t);
                    }
                });
            }
        })
        .unwrap();
        for t in 0..3u64 {
            assert!(sharded.estimate(t) >= 1_000);
        }
    }
}
