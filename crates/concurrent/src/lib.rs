//! Concurrent sketches: the paper's §5 parallelization of CountMin and
//! the baselines it is compared against.
//!
//! * [`pcm`] — `PCM(c̄)`: the straightforward parallelization of
//!   Algorithm 1 with per-counter atomic increments. **IVL but not
//!   linearizable** (Lemma 7, Example 9); by Theorem 6 it inherits the
//!   sequential CountMin (ε,δ) bound in the `v_min`/`v_max` sense
//!   (Corollary 8).
//! * [`locked`] — linearizable baselines: a global-mutex CountMin and
//!   a snapshot CountMin (queries exclude updates and read a quiescent
//!   matrix — the "take a snapshot of the matrix" cost the paper
//!   attributes to the framework of Rinberg et al. \[32\]).
//! * [`buffered`] — the batched-counter construction (Algorithm 2,
//!   Lemma 10) applied to CountMin: thread-local coalescing buffers
//!   with memoized row hashes, propagated every `b` updates into a
//!   shared padded [`arena`]. Deferred visibility is bounded — the
//!   IVL envelope widens by at most `n·b` — and the serving layer
//!   reports exactly that widening.
//! * [`delegation`] — a buffered, delegation-style sketch in the
//!   spirit of Stylianopoulos et al. \[33\]: updates park in
//!   thread-local buffers and flush in batches. Fast, but an update
//!   can *complete* while still invisible **with no advertised
//!   bound**, so its histories violate even IVL's lower linearization
//!   — the workspace's concrete instance of "regular-like semantics
//!   do not imply IVL" (§3.4). [`buffered`] is the honest version of
//!   the same trick.
//! * [`inc_dec`] — the §3.4 non-monotone counterexample object
//!   (increment/decrement counter) with a per-slot "regular-like"
//!   implementation that violates IVL and a fetch-add implementation
//!   that is linearizable.
//! * [`morris_conc`] / [`hll_conc`] — concurrent Morris and
//!   HyperLogLog: monotone quantitative objects (max-register cores)
//!   parallelized with CAS/fetch-max; their recorded histories are
//!   checked IVL with the interval fast path.
//! * [`recorded`] — a recording wrapper producing
//!   [`ivl_spec::History`] values from real concurrent runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod batch;
pub mod buffered;
pub mod delegation;
pub mod hll_conc;
pub mod inc_dec;
pub mod locked;
pub mod min_register;
pub mod morris_conc;
pub mod pcm;
pub mod rank_conc;
pub mod recorded;
pub mod sharded;

pub use arena::CellArena;
pub use batch::BatchScratch;
pub use buffered::{BufferedPcm, UpdateBuffer};
pub use delegation::DelegatedCountMin;
pub use hll_conc::ConcurrentHll;
pub use inc_dec::{LinearizableIncDec, RegularIncDec};
pub use locked::{MutexCountMin, SnapshotCountMin};
pub use min_register::ConcurrentMinRegister;
pub use morris_conc::ConcurrentMorris;
pub use pcm::Pcm;
pub use rank_conc::ConcurrentHistogram;
pub use recorded::RecordedSketch;
pub use sharded::{ShardLease, ShardedPcm};

/// A concurrent point-frequency sketch usable through per-thread
/// handles.
///
/// `query` takes `&self` and may run concurrently with updates;
/// implementations differ in what guarantee the returned estimate
/// carries (IVL for [`Pcm`], linearizability for the locked sketches,
/// bounded staleness only for [`DelegatedCountMin`]).
pub trait ConcurrentSketch: Send + Sync {
    /// The per-thread updater handle.
    type Handle<'a>: SketchHandle + Send
    where
        Self: 'a;

    /// Creates an updater handle for one thread.
    fn handle(&self) -> Self::Handle<'_>;

    /// Estimates the frequency of `item`.
    fn query(&self, item: u64) -> u64;
}

/// A per-thread updater for a [`ConcurrentSketch`].
pub trait SketchHandle {
    /// Processes one occurrence of `item`.
    fn update(&mut self, item: u64);

    /// Makes all buffered updates visible (no-op for unbuffered
    /// sketches). Called when a thread finishes its stream.
    fn flush(&mut self) {}
}
