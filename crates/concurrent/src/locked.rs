//! Linearizable CountMin baselines.
//!
//! * [`MutexCountMin`] — every operation under one global mutex.
//!   Trivially linearizable (and strongly so: the lock order *is* the
//!   linearization); zero scalability.
//! * [`SnapshotCountMin`] — updates proceed concurrently on atomic
//!   cells under a shared (read) lock; a query takes the exclusive
//!   (write) lock, so it observes a quiescent matrix — an atomic
//!   snapshot of the whole state, the cost the paper attributes to
//!   making a CM query linearizable via the framework of Rinberg et
//!   al. \[32\] ("requires the query to take a strongly linearizable
//!   snapshot of the matrix"). Updates scale; queries stall the world.

use crate::{ConcurrentSketch, SketchHandle};
use ivl_sketch::countmin::{CountMin, CountMinParams};
use ivl_sketch::hash::PairwiseHash;
use ivl_sketch::{CoinFlips, FrequencySketch};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};

/// CountMin under a global mutex: the simplest linearizable
/// parallelization.
#[derive(Debug)]
pub struct MutexCountMin {
    inner: Mutex<CountMin>,
}

impl MutexCountMin {
    /// Wraps a sequential sketch.
    pub fn new(params: CountMinParams, coins: &mut CoinFlips) -> Self {
        MutexCountMin {
            inner: Mutex::new(CountMin::new(params, coins)),
        }
    }

    /// Wraps an existing (empty) prototype.
    pub fn from_prototype(proto: &CountMin) -> Self {
        MutexCountMin {
            inner: Mutex::new(proto.clone()),
        }
    }

    /// Locks and updates.
    pub fn update(&self, item: u64) {
        self.inner.lock().update(item);
    }

    /// Locks and estimates.
    pub fn estimate(&self, item: u64) -> u64 {
        self.inner.lock().estimate(item)
    }

    /// Locks and reads the stream length.
    pub fn stream_len(&self) -> u64 {
        self.inner.lock().stream_len()
    }
}

/// Updater handle for [`MutexCountMin`].
#[derive(Debug)]
pub struct MutexCmHandle<'a> {
    parent: &'a MutexCountMin,
}

impl SketchHandle for MutexCmHandle<'_> {
    fn update(&mut self, item: u64) {
        self.parent.update(item);
    }
}

impl ConcurrentSketch for MutexCountMin {
    type Handle<'a> = MutexCmHandle<'a>;

    fn handle(&self) -> MutexCmHandle<'_> {
        MutexCmHandle { parent: self }
    }

    fn query(&self, item: u64) -> u64 {
        self.estimate(item)
    }
}

/// CountMin whose queries take a whole-matrix snapshot by excluding
/// updates (writer-preference RwLock used inside out: updates share,
/// queries are exclusive).
#[derive(Debug)]
pub struct SnapshotCountMin {
    params: CountMinParams,
    hashes: Vec<PairwiseHash>,
    cells: Vec<AtomicU64>,
    /// Updates hold this shared; queries hold it exclusively.
    gate: RwLock<()>,
}

impl SnapshotCountMin {
    /// Creates the sketch, drawing hashes from `coins`.
    pub fn new(params: CountMinParams, coins: &mut CoinFlips) -> Self {
        let proto = CountMin::new(params, coins);
        SnapshotCountMin {
            params,
            hashes: proto.hashes().to_vec(),
            cells: (0..params.width * params.depth)
                .map(|_| AtomicU64::new(0))
                .collect(),
            gate: RwLock::new(()),
        }
    }

    #[inline]
    fn cell_index(&self, row: usize, item: u64) -> usize {
        row * self.params.width + self.hashes[row].hash(item)
    }

    /// Concurrent update (shared gate + atomic increments).
    pub fn update(&self, item: u64) {
        let _shared = self.gate.read();
        for row in 0..self.params.depth {
            let idx = self.cell_index(row, item);
            self.cells[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot query: excludes all updates, then reads a quiescent
    /// matrix.
    pub fn estimate(&self, item: u64) -> u64 {
        let _exclusive = self.gate.write();
        (0..self.params.depth)
            .map(|row| self.cells[self.cell_index(row, item)].load(Ordering::Relaxed))
            .min()
            .expect("depth >= 1")
    }
}

/// Updater handle for [`SnapshotCountMin`].
#[derive(Debug)]
pub struct SnapshotCmHandle<'a> {
    parent: &'a SnapshotCountMin,
}

impl SketchHandle for SnapshotCmHandle<'_> {
    fn update(&mut self, item: u64) {
        self.parent.update(item);
    }
}

impl ConcurrentSketch for SnapshotCountMin {
    type Handle<'a> = SnapshotCmHandle<'a>;

    fn handle(&self) -> SnapshotCmHandle<'_> {
        SnapshotCmHandle { parent: self }
    }

    fn query(&self, item: u64) -> u64 {
        self.estimate(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CountMinParams {
        CountMinParams {
            width: 32,
            depth: 3,
        }
    }

    #[test]
    fn mutex_cm_counts_exactly_under_concurrency() {
        let cm = MutexCountMin::new(params(), &mut CoinFlips::from_seed(1));
        crossbeam::scope(|s| {
            for _ in 0..4 {
                let cm = &cm;
                s.spawn(move |_| {
                    for _ in 0..5_000 {
                        cm.update(3);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(cm.estimate(3), 20_000);
        assert_eq!(cm.stream_len(), 20_000);
    }

    #[test]
    fn snapshot_cm_counts_exactly_under_concurrency() {
        let cm = SnapshotCountMin::new(params(), &mut CoinFlips::from_seed(2));
        crossbeam::scope(|s| {
            for _ in 0..4 {
                let cm = &cm;
                s.spawn(move |_| {
                    for _ in 0..5_000 {
                        cm.update(3);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(cm.estimate(3), 20_000);
    }

    #[test]
    fn snapshot_queries_see_multiple_of_row_increments() {
        // Because a snapshot query excludes updates, all d cells of an
        // item updated alone advance in lockstep: the estimate equals
        // the exact count at the linearization point, never a mix.
        let cm = SnapshotCountMin::new(params(), &mut CoinFlips::from_seed(3));
        let total = 20_000u64;
        crossbeam::scope(|s| {
            let cm = &cm;
            let w = s.spawn(move |_| {
                for _ in 0..total {
                    cm.update(5);
                }
            });
            s.spawn(move |_| {
                let mut last = 0;
                loop {
                    // Compare min and max across rows under the same
                    // exclusive gate: they must be equal.
                    let _x = cm.gate.write();
                    let vals: Vec<u64> = (0..cm.params.depth)
                        .map(|r| cm.cells[cm.cell_index(r, 5)].load(Ordering::Relaxed))
                        .collect();
                    drop(_x);
                    assert!(
                        vals.iter().all(|&v| v == vals[0]),
                        "snapshot saw torn rows: {vals:?}"
                    );
                    assert!(vals[0] >= last);
                    last = vals[0];
                    if vals[0] == total {
                        break;
                    }
                }
            });
            w.join().unwrap();
        })
        .unwrap();
    }

    #[test]
    fn handles_work_for_both() {
        use crate::{ConcurrentSketch, SketchHandle};
        let m = MutexCountMin::new(params(), &mut CoinFlips::from_seed(4));
        let mut h = m.handle();
        h.update(1);
        assert_eq!(m.query(1), 1);
        let sn = SnapshotCountMin::new(params(), &mut CoinFlips::from_seed(5));
        let mut h = sn.handle();
        h.update(1);
        assert_eq!(sn.query(1), 1);
    }
}
