//! Per-writer scratch for the batch ingest kernels: frame-local key
//! coalescing plus row-major memoized columns, reused across frames so
//! a steady-state batch allocates nothing.
//!
//! A wire batch (`BATCH2`) arrives as `(key, weight)` pairs. The
//! kernels ([`Pcm::update_batch`](crate::Pcm::update_batch),
//! [`ShardLease::apply_batch`](crate::ShardLease::apply_batch),
//! [`BufferedHandle::absorb_batch`](crate::buffered::BufferedHandle::absorb_batch))
//! all start the same way: coalesce duplicate keys within the frame
//! (one table probe per item), then hash each *distinct* key once —
//! one mod-p reduction plus one per-row hash per deduplicated key (the
//! split [`PairwiseHash::hash_row_batch`] makes, inlined so columns
//! land straight in the matrix) instead of that work per occurrence. The
//! memoized columns land **row-major** (`cols[row * stride + e]`), so
//! the apply loops walk one sketch row at a time: all of row 0's cell
//! touches, then row 1's, which keeps each row's [`CellArena`] lines
//! hot instead of cycling through `depth` distant lines per item.
//!
//! Correctness is unchanged from the per-item path: cell adds commute,
//! so adding a key's coalesced weight once per row equals adding its
//! occurrences one at a time; the proptests in
//! `crates/concurrent/tests/batch_props.rs` pin cell-identical state
//! on every kernel. Visibility-wise a batch kernel publishes a frame's
//! updates in one pass — a concurrent query may observe any prefix of
//! the row-major sweep, which is exactly the intermediate-value
//! freedom IVL already grants the per-item loop (Lemma 7's argument
//! does not count how many updates a writer applies between two cell
//! reads). Per-frame coalescing defers visibility *within one frame
//! only* — bounded by the frame size, which the serving layer's
//! advertised `lag = shards·b` write-buffer bound already dominates
//! (DESIGN §13).
//!
//! [`CellArena`]: crate::CellArena

use crate::buffered::mix;
use ivl_sketch::hash::{FastMod, PairwiseHash};

/// How many entries ahead of the write cursor the apply loops warm:
/// one relaxed load of the upcoming cell pulls its cache line while
/// the current `fetch_add`/store retires. Far enough to cover a
/// memory round-trip at a few cells per line, near enough that the
/// line is still resident when the cursor arrives (16 measured best
/// across a 1–16 sweep on the dev box; the win appears once the hot
/// cell set outgrows L1, and the load costs ~2 ns/cell when it
/// doesn't).
pub const PREFETCH_DIST: usize = 16;

/// Free-slot marker in the coalescing table's entry half (a frame can
/// hold at most `MAX_BATCH_ITEMS` ≪ `u32::MAX` distinct keys).
const EMPTY: u32 = u32::MAX;

/// Reusable frame-ingest scratch: a coalescing table over one batch's
/// keys plus the row-major column matrix for the distinct keys.
///
/// One `BatchScratch` lives per writer (per connection thread or per
/// reactor) and is reused frame after frame; all growth happens on the
/// first frame larger than any seen before, so the steady state is
/// allocation-free. None of this state is shared — the scratch is
/// plain memory owned by its writer; only the kernels' cell writes
/// touch atomics.
/// Every per-entry array is pre-sized to `cap` and written by index
/// under one local cursor (`len`), not `Vec::push` — in the hot loop a
/// push's length/capacity bookkeeping lives in the struct that `&mut
/// self` points to, so the compiler must assume every heap store may
/// alias it and reload lengths and data pointers after each write.
/// Disjoint `&mut` slices borrowed once per frame carry a no-alias
/// guarantee, which keeps the probe loop in registers.
#[derive(Debug)]
pub struct BatchScratch {
    depth: usize,
    /// Largest frame size servable without regrowing.
    cap: usize,
    /// Distinct keys in the current frame (`entries` below).
    len: usize,
    /// Open-addressed key → entry table. The key is stored *in* the
    /// slot so a probe is one 16-byte load with no dependent lookup
    /// into `keys`; [`EMPTY`] in the entry half marks a free slot.
    slots: Vec<(u64, u32)>,
    mask: usize,
    /// Distinct keys in first-seen order (first `len` live).
    keys: Vec<u64>,
    /// Coalesced weight per distinct key (first `len` live).
    counts: Vec<u64>,
    /// Table slot each entry landed in — the slots to clear on reset
    /// (exactly one per entry, so no separate dirty list is needed).
    slot_of: Vec<u32>,
    /// Row-major memoized columns: entry `e`'s column in `row` lives
    /// at `cols[row * cap + e]`.
    cols: Vec<u32>,
    /// Per-row strength-reduced `% w` magics, rebuilt (without
    /// allocating — capacity is reserved for `depth` rows) whenever
    /// the hash family changes.
    divs: Vec<FastMod>,
}

impl BatchScratch {
    /// Creates a scratch for a depth-`depth` sketch, pre-sized for
    /// frames of up to `max_items` pairs (larger frames regrow once).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0.
    pub fn with_capacity(depth: usize, max_items: usize) -> Self {
        assert!(depth > 0, "need at least one row");
        let mut scratch = BatchScratch {
            depth,
            cap: 0,
            len: 0,
            slots: Vec::new(),
            mask: 0,
            keys: Vec::new(),
            counts: Vec::new(),
            slot_of: Vec::new(),
            cols: Vec::new(),
            divs: Vec::with_capacity(depth),
        };
        scratch.grow(max_items.max(1));
        scratch
    }

    /// Creates a scratch pre-sized for modest frames (64 pairs).
    pub fn new(depth: usize) -> Self {
        Self::with_capacity(depth, 64)
    }

    /// Resizes every component for frames of `max_items` pairs.
    fn grow(&mut self, max_items: usize) {
        self.cap = max_items.next_power_of_two();
        let slots = self.cap * 2;
        self.slots = vec![(0, EMPTY); slots];
        self.mask = slots - 1;
        self.keys = vec![0; self.cap];
        self.counts = vec![0; self.cap];
        self.slot_of = vec![0; self.cap];
        self.cols = vec![0; self.cap * self.depth];
    }

    /// Keeps the per-row `% w` magics in sync with the hash family.
    /// Steady state is one equality sweep; a rebuild reuses the
    /// reserved capacity, so no allocation either way.
    fn sync_divs(&mut self, hashes: &[PairwiseHash]) {
        let stale = self.divs.len() != hashes.len()
            || self
                .divs
                .iter()
                .zip(hashes)
                .any(|(d, h)| d.divisor() != h.range());
        if stale {
            self.divs.clear();
            self.divs
                .extend(hashes.iter().map(|h| FastMod::new(h.range())));
        }
    }

    /// Readies the scratch for a frame of `items_len` pairs: clears
    /// the previous frame's table slots (only the dirtied ones) and
    /// regrows once if the frame is the largest seen.
    fn begin(&mut self, items_len: usize) {
        for &i in &self.slot_of[..self.len] {
            self.slots[i as usize] = (0, EMPTY);
        }
        self.len = 0;
        if items_len > self.cap {
            self.grow(items_len);
        }
    }

    /// Coalesces one frame: after this, [`len`](Self::len) distinct
    /// keys are enumerable via [`entry`](Self::entry) in first-seen
    /// order, each with the summed weight of its occurrences. One
    /// table probe per pair; no hashing of sketch rows yet.
    pub fn coalesce(&mut self, items: &[(u64, u64)]) {
        self.begin(items.len());
        let mask = self.mask;
        let slots = &mut self.slots[..];
        let keys = &mut self.keys[..];
        let counts = &mut self.counts[..];
        let slot_of = &mut self.slot_of[..];
        let mut len = 0usize;
        for &(key, weight) in items {
            let mut i = mix(key) as usize & mask;
            let e = loop {
                let (k, e) = slots[i];
                // One merged exit test (`|`, not `||`): "stop here" is
                // taken on nearly every first probe, so the only branch
                // in the loop predicts well. Whether the stop was a
                // free slot or a duplicate is resolved *below* by
                // selects, not by a second (data-random) branch.
                if (e == EMPTY) | (k == key) {
                    break e;
                }
                i = (i + 1) & mask;
            };
            let fresh = e == EMPTY;
            let idx = if fresh { len } else { e as usize };
            // Unconditional writes: on a duplicate these rewrite the
            // entry's own key/slot with identical values, which lets
            // the compiler lower the fresh/dup split to conditional
            // moves instead of a 30-70 random branch.
            slots[i] = (key, idx as u32);
            keys[idx] = key;
            slot_of[idx] = i as u32;
            counts[idx] = if fresh { weight } else { counts[idx] + weight };
            len += fresh as usize;
        }
        self.len = len;
    }

    /// Memoizes every distinct key's per-row columns, row-major: each
    /// distinct key is reduced mod p exactly once and then hashed once
    /// per row (the same split [`PairwiseHash::hash_row_batch`] makes,
    /// inlined here so the columns land straight in the matrix) — the
    /// single pass of hashing the batch kernels rely on.
    pub fn hash_rows(&mut self, hashes: &[PairwiseHash]) {
        debug_assert_eq!(hashes.len(), self.depth, "scratch depth mismatch");
        self.sync_divs(hashes);
        for e in 0..self.len {
            let xr = PairwiseHash::reduce(self.keys[e]);
            for (row, (h, d)) in hashes.iter().zip(&self.divs).enumerate() {
                self.cols[row * self.cap + e] = h.hash_reduced_fast(xr, d) as u32;
            }
        }
    }

    /// [`coalesce`](Self::coalesce) + [`hash_rows`](Self::hash_rows),
    /// fused: a key is hashed at the probe that first sees it, so one
    /// pass over the frame fills both the entries and the column
    /// matrix (repeats fold their weight in without re-hashing).
    /// Returns the number of distinct keys.
    pub fn prepare(&mut self, hashes: &[PairwiseHash], items: &[(u64, u64)]) -> usize {
        debug_assert_eq!(hashes.len(), self.depth, "scratch depth mismatch");
        self.sync_divs(hashes);
        self.begin(items.len());
        let cap = self.cap;
        let mask = self.mask;
        let slots = &mut self.slots[..];
        let keys = &mut self.keys[..];
        let counts = &mut self.counts[..];
        let slot_of = &mut self.slot_of[..];
        let cols = &mut self.cols[..];
        let divs = &self.divs[..];
        let mut len = 0usize;
        for &(key, weight) in items {
            let mut i = mix(key) as usize & mask;
            let e = loop {
                let (k, e) = slots[i];
                if (e == EMPTY) | (k == key) {
                    break e;
                }
                i = (i + 1) & mask;
            };
            let fresh = e == EMPTY;
            let idx = if fresh { len } else { e as usize };
            slots[i] = (key, idx as u32);
            keys[idx] = key;
            slot_of[idx] = i as u32;
            counts[idx] = if fresh { weight } else { counts[idx] + weight };
            // Only the hashing itself stays behind a branch — it is
            // heavy enough (one reduction + `depth` row hashes) that a
            // mispredict is noise next to doing it redundantly.
            if fresh {
                let xr = PairwiseHash::reduce(key);
                for (row, (h, d)) in hashes.iter().zip(divs).enumerate() {
                    cols[row * cap + len] = h.hash_reduced_fast(xr, d) as u32;
                }
            }
            len += fresh as usize;
        }
        self.len = len;
        len
    }

    /// Number of distinct keys in the coalesced frame.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the coalesced frame holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entry `e`'s `(key, coalesced_weight)`.
    pub fn entry(&self, e: usize) -> (u64, u64) {
        (self.keys[e], self.counts[e])
    }

    /// The coalesced weights, entry-indexed.
    pub fn counts(&self) -> &[u64] {
        &self.counts[..self.len]
    }

    /// `row`'s memoized columns, entry-indexed (valid after
    /// [`hash_rows`](Self::hash_rows)).
    pub fn row_cols(&self, row: usize) -> &[u32] {
        &self.cols[row * self.cap..row * self.cap + self.len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_sketch::CoinFlips;

    fn hashes(depth: usize, w: u64) -> Vec<PairwiseHash> {
        let mut coins = CoinFlips::from_seed(11);
        (0..depth)
            .map(|_| PairwiseHash::draw(&mut coins, w))
            .collect()
    }

    #[test]
    fn coalesce_sums_duplicate_keys_in_first_seen_order() {
        let mut s = BatchScratch::new(3);
        s.coalesce(&[(7, 1), (9, 2), (7, 3), (11, 1), (9, 1)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.entry(0), (7, 4));
        assert_eq!(s.entry(1), (9, 3));
        assert_eq!(s.entry(2), (11, 1));
    }

    #[test]
    fn reuse_across_frames_leaves_no_residue() {
        let mut s = BatchScratch::new(2);
        s.coalesce(&[(1, 1), (2, 2), (1, 1)]);
        assert_eq!(s.len(), 2);
        s.coalesce(&[(3, 5)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.entry(0), (3, 5));
        s.coalesce(&[]);
        assert!(s.is_empty());
    }

    #[test]
    fn row_cols_match_direct_hashing() {
        let depth = 4;
        let hs = hashes(depth, 64);
        let mut s = BatchScratch::new(depth);
        let frame = [(0u64, 1u64), (42, 1), (u64::MAX, 1), (42, 1)];
        let n = s.prepare(&hs, &frame);
        assert_eq!(n, 3);
        for (e, key) in [0u64, 42, u64::MAX].into_iter().enumerate() {
            for (row, h) in hs.iter().enumerate() {
                assert_eq!(
                    s.row_cols(row)[e] as usize,
                    h.hash(key),
                    "key {key} row {row}"
                );
            }
        }
    }

    #[test]
    fn frames_larger_than_capacity_regrow() {
        let mut s = BatchScratch::with_capacity(2, 4);
        let frame: Vec<(u64, u64)> = (0..500).map(|k| (k, 1)).collect();
        s.coalesce(&frame);
        assert_eq!(s.len(), 500);
        let hs = hashes(2, 32);
        s.hash_rows(&hs);
        assert_eq!(s.row_cols(0).len(), 500);
    }
}
