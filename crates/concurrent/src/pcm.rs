//! `PCM(c̄)`: the paper's concurrent CountMin sketch (§5).
//!
//! The straightforward parallelization of Algorithm 1: the counter
//! matrix becomes a matrix of atomics; `update(a)` atomically
//! increments `c[i][h_i(a)]` for each row, `query(a)` reads
//! `c[i][h_i(a)]` for each row and returns the minimum. No locks, no
//! snapshots, no per-thread replicas.
//!
//! **Lemma 7**: `PCM` is an IVL implementation of `CM(c̄)` — each cell
//! read returns a value the cell held inside the query's interval, and
//! cells only grow, so the returned minimum is bounded by the query's
//! value in the "all concurrent updates excluded" and "all concurrent
//! updates included" linearizations. Because the same hash functions
//! (the same `c̄`) drive both `PCM` and the sequential replay, the
//! recorded histories are checked against `CM(c̄)` exactly
//! (`ivl_sketch::cm_spec::CountMinSpec` + the monotone interval
//! checker).
//!
//! **Example 9**: `PCM` is *not* linearizable — reproduced
//! deterministically in the integration tests.
//!
//! **Corollary 8**: `f_a^start ≤ f̂_a ≤ f_a^end + ε` with probability
//! `1 − δ` — validated empirically by the Theorem-6 harness in
//! `ivl-core`.

use crate::arena::CellArena;
use crate::batch::{BatchScratch, PREFETCH_DIST};
use crate::{ConcurrentSketch, SketchHandle};
use ivl_sketch::countmin::{CountMin, CountMinParams};
use ivl_sketch::hash::PairwiseHash;
use ivl_sketch::CoinFlips;
use std::sync::atomic::Ordering;

/// The concurrent CountMin sketch `PCM(c̄)`.
///
/// # Examples
///
/// ```
/// use ivl_concurrent::Pcm;
/// use ivl_sketch::CoinFlips;
///
/// let mut coins = CoinFlips::from_seed(1);
/// let pcm = Pcm::for_bounds(0.01, 0.01, &mut coins);
/// crossbeam::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|_| {
///             for _ in 0..1_000 {
///                 pcm.update(7);
///             }
///         });
///     }
///     // Queries run concurrently with ingestion and return
///     // intermediate values (IVL).
///     assert!(pcm.estimate(7) <= 4_000);
/// })
/// .unwrap();
/// assert_eq!(pcm.estimate(7), 4_000);
/// ```
#[derive(Debug)]
pub struct Pcm {
    params: CountMinParams,
    hashes: Vec<PairwiseHash>,
    cells: CellArena,
}

impl Pcm {
    /// Creates a `PCM(c̄)` with the given dimensions, drawing hashes
    /// from `coins`. Constructing with equal coins yields the same
    /// deterministic algorithm as [`CountMin::new`] — the pair
    /// (`PCM(c̄)`, `CM(c̄)`) of the paper.
    pub fn new(params: CountMinParams, coins: &mut CoinFlips) -> Self {
        let proto = CountMin::new(params, coins);
        Self::from_prototype(&proto)
    }

    /// Creates a `PCM` sharing the hash functions of an existing
    /// (empty) sequential sketch, so both are `·(c̄)` for the same
    /// `c̄`.
    ///
    /// # Panics
    ///
    /// Panics if the prototype has already ingested updates.
    pub fn from_prototype(proto: &CountMin) -> Self {
        assert_eq!(
            ivl_sketch::FrequencySketch::stream_len(proto),
            0,
            "prototype must be empty"
        );
        let params = proto.params();
        Pcm {
            params,
            hashes: proto.hashes().to_vec(),
            cells: CellArena::new(params.depth, params.width),
        }
    }

    /// Creates a `PCM` sized for relative error `alpha` and failure
    /// probability `delta`.
    pub fn for_bounds(alpha: f64, delta: f64, coins: &mut CoinFlips) -> Self {
        Self::new(CountMinParams::for_bounds(alpha, delta), coins)
    }

    /// The sketch dimensions.
    pub fn params(&self) -> CountMinParams {
        self.params
    }

    /// Atomically increments `item`'s cell in every row (Algorithm 1
    /// line 5, concurrent version).
    pub fn update(&self, item: u64) {
        self.update_by(item, 1);
    }

    /// Batched update: adds `count` occurrences of `item` with one
    /// atomic add per row (the paper's batched updates — exactly the
    /// case where intermediate values appear: a concurrent query may
    /// observe some rows bumped and others not).
    ///
    /// The `mod p` reduction of `item` happens once, not per row
    /// (see [`PairwiseHash::reduce`]).
    pub fn update_by(&self, item: u64, count: u64) {
        let xr = PairwiseHash::reduce(item);
        for (row, h) in self.hashes.iter().enumerate() {
            self.cells
                .cell(row, h.hash_reduced(xr))
                .fetch_add(count, Ordering::Relaxed);
        }
    }

    /// Applies a whole frame of `(item, count)` pairs: `scratch`
    /// coalesces duplicate keys and memoizes each distinct key's
    /// columns with one hashing sweep, then the cell adds run
    /// **row-major** — all of row 0's touches, then row 1's — with the
    /// cell [`PREFETCH_DIST`] entries ahead of the write cursor warmed
    /// by a relaxed load (split off the loop tail, so the hot loop
    /// carries no bounds branch). Cell adds commute, so the final
    /// state is identical to per-item [`update_by`](Self::update_by)
    /// calls; a concurrent query sees some prefix of the sweep, the
    /// same intermediate-value freedom Lemma 7 already covers.
    pub fn update_batch(&self, items: &[(u64, u64)], scratch: &mut BatchScratch) {
        let n = scratch.prepare(&self.hashes, items);
        for row in 0..self.params.depth {
            let cells = self.cells.row_cells(row);
            let cols = scratch.row_cols(row);
            let counts = &scratch.counts()[..n];
            let warm = n.saturating_sub(PREFETCH_DIST);
            for e in 0..warm {
                let _ = cells
                    .cell(cols[e + PREFETCH_DIST] as usize)
                    .load(Ordering::Relaxed);
                cells
                    .cell(cols[e] as usize)
                    .fetch_add(counts[e], Ordering::Relaxed);
            }
            for e in warm..n {
                cells
                    .cell(cols[e] as usize)
                    .fetch_add(counts[e], Ordering::Relaxed);
            }
        }
    }

    /// Reads `item`'s cell in every row and returns the minimum
    /// (Algorithm 1 lines 6–11, concurrent version).
    pub fn estimate(&self, item: u64) -> u64 {
        let xr = PairwiseHash::reduce(item);
        self.hashes
            .iter()
            .enumerate()
            .map(|(row, h)| {
                self.cells
                    .cell(row, h.hash_reduced(xr))
                    .load(Ordering::Relaxed)
            })
            .min()
            .expect("depth >= 1")
    }

    /// A monotone estimate of the stream length: every update
    /// increments exactly one cell of row 0, so row 0's sum equals the
    /// number of (visible) updates. O(width), no extra update cost.
    pub fn stream_len_estimate(&self) -> u64 {
        self.cells.row(0).map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Copies the matrix into a sequential [`CountMin`]-shaped vector
    /// (row-major), for diagnostics.
    pub fn cells_snapshot(&self) -> Vec<u64> {
        self.cells
            .cells()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// Updater handle for [`Pcm`] (stateless; updates go straight to the
/// shared atomics).
#[derive(Debug)]
pub struct PcmHandle<'a> {
    pcm: &'a Pcm,
}

impl SketchHandle for PcmHandle<'_> {
    fn update(&mut self, item: u64) {
        self.pcm.update(item);
    }
}

impl ConcurrentSketch for Pcm {
    type Handle<'a> = PcmHandle<'a>;

    fn handle(&self) -> PcmHandle<'_> {
        PcmHandle { pcm: self }
    }

    fn query(&self, item: u64) -> u64 {
        self.estimate(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_sketch::FrequencySketch;

    fn params() -> CountMinParams {
        CountMinParams {
            width: 64,
            depth: 4,
        }
    }

    #[test]
    fn matches_sequential_sketch_when_single_threaded() {
        let mut coins = CoinFlips::from_seed(1);
        let mut cm = CountMin::new(params(), &mut coins);
        let pcm = Pcm::from_prototype(&cm);
        for x in 0..5_000u64 {
            let item = x % 97;
            cm.update(item);
            pcm.update(item);
        }
        for item in 0..97u64 {
            assert_eq!(pcm.estimate(item), cm.estimate(item), "item {item}");
        }
        assert_eq!(pcm.stream_len_estimate(), cm.stream_len());
    }

    #[test]
    fn concurrent_quiescent_state_equals_sequential() {
        // After all threads quiesce, the matrix equals the sequential
        // sketch fed the concatenated streams (cell increments
        // commute).
        let mut coins = CoinFlips::from_seed(2);
        let mut cm = CountMin::new(params(), &mut coins);
        let pcm = Pcm::from_prototype(&cm);
        let n_threads = 4;
        let per_thread = 10_000u64;
        crossbeam::scope(|s| {
            for t in 0..n_threads {
                let pcm = &pcm;
                s.spawn(move |_| {
                    for k in 0..per_thread {
                        pcm.update((t * per_thread + k) % 61);
                    }
                });
            }
        })
        .unwrap();
        for t in 0..n_threads {
            for k in 0..per_thread {
                cm.update((t * per_thread + k) % 61);
            }
        }
        for item in 0..61u64 {
            assert_eq!(pcm.estimate(item), cm.estimate(item), "item {item}");
        }
    }

    #[test]
    fn never_underestimates_under_concurrent_queries() {
        // The one-sided CountMin guarantee that survives concurrency
        // unconditionally: an estimate is at least the number of
        // *completed* updates of the item at query start.
        let pcm = Pcm::new(params(), &mut CoinFlips::from_seed(3));
        let hot = 7u64;
        let rounds = 20_000u64;
        crossbeam::scope(|s| {
            let pcm = &pcm;
            let writer = s.spawn(move |_| {
                for _ in 0..rounds {
                    pcm.update(hot);
                }
            });
            s.spawn(move |_| {
                let mut last = 0;
                loop {
                    let est = pcm.estimate(hot);
                    assert!(est >= last, "estimate regressed {est} < {last}");
                    last = est;
                    if est >= rounds {
                        break;
                    }
                }
            });
            writer.join().unwrap();
        })
        .unwrap();
        assert!(pcm.estimate(hot) >= rounds);
    }

    #[test]
    fn stream_len_estimate_tracks_updates() {
        let pcm = Pcm::new(params(), &mut CoinFlips::from_seed(4));
        for x in 0..1234u64 {
            pcm.update(x);
        }
        assert_eq!(pcm.stream_len_estimate(), 1234);
    }

    #[test]
    fn handle_updates_are_visible() {
        use crate::{ConcurrentSketch, SketchHandle};
        let pcm = Pcm::new(params(), &mut CoinFlips::from_seed(5));
        let mut h = pcm.handle();
        h.update(9);
        h.update(9);
        assert_eq!(pcm.query(9), 2);
    }
}
