//! A concurrent rank/quantile histogram — "additional sketches" from
//! the paper's conclusion, parallelized the IVL way.
//!
//! Buckets are atomic counters bumped with `fetch_add`; `rank_lower`
//! scans a prefix of buckets exactly like the IVL batched counter's
//! read scans slots. Counters only grow and increments commute, so
//! rank queries are monotone quantitative queries and the Lemma 10
//! argument applies verbatim: a concurrent `rank_lower(x)` returns a
//! value between the rank at the query's start and the rank (with all
//! overlapping inserts applied) at its end. The recorded-history test
//! checks exactly that with the interval checker.

use ivl_sketch::histogram::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};

/// A shared equi-width histogram over `[0, domain)`.
#[derive(Debug)]
pub struct ConcurrentHistogram {
    domain: u64,
    buckets: Vec<AtomicU64>,
}

impl ConcurrentHistogram {
    /// Creates a histogram with `buckets` buckets over `[0, domain)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is 0 or `domain < buckets`.
    pub fn new(domain: u64, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(domain >= buckets as u64, "domain smaller than bucket count");
        ConcurrentHistogram {
            domain,
            buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    fn bucket_of(&self, x: u64) -> usize {
        assert!(x < self.domain, "value outside domain");
        ((x as u128 * self.buckets.len() as u128) / self.domain as u128) as usize
    }

    /// Inserts a value (one `fetch_add`). Wait-free.
    pub fn insert(&self, x: u64) {
        let b = self.bucket_of(x);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Lower rank bound of `x`: prefix scan of buckets below `x`'s —
    /// an intermediate value in the IVL sense under concurrency.
    pub fn rank_lower(&self, x: u64) -> u64 {
        let b = self.bucket_of(x);
        self.buckets[..b]
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .sum()
    }

    /// Upper rank bound of `x` (includes `x`'s bucket).
    pub fn rank_upper(&self, x: u64) -> u64 {
        let b = self.bucket_of(x);
        self.buckets[..=b]
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .sum()
    }

    /// Copies the buckets into a sequential [`Histogram`] for quantile
    /// extraction (the copy itself is an IVL read: each bucket value
    /// is an intermediate of the true bucket trajectory).
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new(self.domain, self.buckets.len());
        for (i, c) in self.buckets.iter().enumerate() {
            let left_edge = (i as u128 * self.domain as u128 / self.buckets.len() as u128) as u64;
            for _ in 0..c.load(Ordering::Acquire) {
                // Representative insertion at the bucket's left edge;
                // count-preserving because buckets are count-only.
                h.insert(left_edge);
            }
        }
        h
    }

    /// Total insertions visible (sum of all buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|c| c.load(Ordering::Acquire)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_spec::history::{ObjectId, ProcessId};
    use ivl_spec::ivl::check_ivl_monotone;
    use ivl_spec::record::Recorder;
    use ivl_spec::spec::{MonotoneSpec, ObjectSpec};

    /// Sequential spec of `rank_lower` queries over the histogram:
    /// update = inserted value, query = probe value, return =
    /// rank_lower. Monotone: inserts only raise ranks.
    #[derive(Clone, Debug)]
    struct RankSpec {
        domain: u64,
        buckets: usize,
    }

    impl ObjectSpec for RankSpec {
        type Update = u64;
        type Query = u64;
        type Value = u64;
        type State = Histogram;

        fn initial_state(&self) -> Histogram {
            Histogram::new(self.domain, self.buckets)
        }

        fn apply_update(&self, state: &mut Histogram, update: &u64) {
            state.insert(*update);
        }

        fn eval_query(&self, state: &Histogram, query: &u64) -> u64 {
            state.rank_lower(*query)
        }
    }

    impl MonotoneSpec for RankSpec {}

    #[test]
    fn quiescent_ranks_match_sequential() {
        let conc = ConcurrentHistogram::new(1_000, 20);
        let mut seq = Histogram::new(1_000, 20);
        crossbeam::scope(|s| {
            for t in 0..4u64 {
                let conc = &conc;
                s.spawn(move |_| {
                    for k in 0..5_000u64 {
                        conc.insert((t * 131 + k * 7) % 1_000);
                    }
                });
            }
        })
        .unwrap();
        for t in 0..4u64 {
            for k in 0..5_000u64 {
                seq.insert((t * 131 + k * 7) % 1_000);
            }
        }
        for probe in [0u64, 100, 500, 999] {
            assert_eq!(conc.rank_lower(probe), seq.rank_lower(probe));
            assert_eq!(conc.rank_upper(probe), seq.rank_upper(probe));
        }
        assert_eq!(conc.count(), 20_000);
    }

    #[test]
    fn recorded_rank_histories_are_ivl() {
        let spec = RankSpec {
            domain: 1_000,
            buckets: 10,
        };
        for round in 0..5 {
            let conc = ConcurrentHistogram::new(1_000, 10);
            let rec = Recorder::<u64, u64, u64>::new();
            crossbeam::scope(|s| {
                for t in 0..3u32 {
                    let conc = &conc;
                    let rec = &rec;
                    s.spawn(move |_| {
                        for k in 0..400u64 {
                            let v = (t as u64 * 613 + k * 31) % 1_000;
                            let id = rec.invoke_update(ProcessId(t), ObjectId(0), v);
                            conc.insert(v);
                            rec.respond_update(id);
                        }
                    });
                }
                let conc = &conc;
                let rec = &rec;
                s.spawn(move |_| {
                    for k in 0..300u64 {
                        let probe = (k * 97) % 1_000;
                        let id = rec.invoke_query(ProcessId(9), ObjectId(0), probe);
                        let v = conc.rank_lower(probe);
                        rec.respond_query(id, v);
                    }
                });
            })
            .unwrap();
            let h = rec.finish();
            assert!(
                check_ivl_monotone(&spec, &h).is_ivl(),
                "round {round}: concurrent rank histogram violated IVL"
            );
        }
    }

    #[test]
    fn rank_queries_monotone_over_time() {
        let conc = ConcurrentHistogram::new(100, 4);
        crossbeam::scope(|s| {
            let conc = &conc;
            let w = s.spawn(move |_| {
                for k in 0..100_000u64 {
                    conc.insert(k % 100);
                }
            });
            s.spawn(move |_| {
                let mut last = 0;
                for _ in 0..20_000 {
                    let r = conc.rank_lower(75);
                    assert!(r >= last, "rank regressed");
                    last = r;
                }
            });
            w.join().unwrap();
        })
        .unwrap();
    }

    #[test]
    fn snapshot_quantiles_reasonable() {
        let conc = ConcurrentHistogram::new(1_000, 100);
        for k in 0..10_000u64 {
            conc.insert(k % 1_000);
        }
        let snap = conc.snapshot();
        let median = snap.quantile(0.5);
        assert!((400..600).contains(&median), "median {median}");
    }
}
