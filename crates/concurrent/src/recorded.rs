//! Recording wrapper for concurrent sketches.
//!
//! Produces [`ivl_spec::History`] values (update arg = item, query arg
//! = item, value = estimate) from real concurrent runs, for the IVL
//! and linearizability checkers. Updater handles receive distinct
//! process ids automatically; query callers pass an explicit reader id
//! that must not collide with updater ids.

use crate::{ConcurrentSketch, SketchHandle};
use ivl_spec::history::{History, ObjectId, ProcessId};
use ivl_spec::record::Recorder;
use std::sync::atomic::{AtomicU32, Ordering};

/// A sketch wrapper that records invocation/response events.
#[derive(Debug)]
pub struct RecordedSketch<S> {
    inner: S,
    recorder: Recorder<u64, u64, u64>,
    next_process: AtomicU32,
}

impl<S: ConcurrentSketch> RecordedSketch<S> {
    /// Wraps `inner`. Updater process ids are assigned from 0 upward;
    /// pick reader ids from a disjoint range (e.g. 1000+).
    pub fn new(inner: S) -> Self {
        RecordedSketch {
            inner,
            recorder: Recorder::new(),
            next_process: AtomicU32::new(0),
        }
    }

    /// Creates a recording updater handle with a fresh process id.
    pub fn handle(&self) -> RecordedHandle<'_, S> {
        RecordedHandle {
            parent: self,
            process: ProcessId(self.next_process.fetch_add(1, Ordering::Relaxed)),
            inner: self.inner.handle(),
        }
    }

    /// Recorded query by `reader` (must not collide with any updater
    /// id).
    pub fn query_from(&self, reader: u32, item: u64) -> u64 {
        let id = self
            .recorder
            .invoke_query(ProcessId(reader), ObjectId(0), item);
        let v = self.inner.query(item);
        self.recorder.respond_query(id, v);
        v
    }

    /// The wrapped sketch.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Stops recording and returns the history.
    pub fn finish(self) -> History<u64, u64, u64> {
        self.recorder.finish()
    }
}

/// A recording updater handle.
#[derive(Debug)]
pub struct RecordedHandle<'a, S: ConcurrentSketch + 'a> {
    parent: &'a RecordedSketch<S>,
    process: ProcessId,
    inner: S::Handle<'a>,
}

impl<S: ConcurrentSketch> RecordedHandle<'_, S> {
    /// This handle's recorded process id.
    pub fn process(&self) -> ProcessId {
        self.process
    }
}

impl<S: ConcurrentSketch> SketchHandle for RecordedHandle<'_, S> {
    /// Recorded update. Note for buffered sketches: the *response* is
    /// recorded when the inner update returns, which for a delegating
    /// sketch is before the effect is visible — precisely the
    /// semantics under test.
    fn update(&mut self, item: u64) {
        let id = self
            .parent
            .recorder
            .invoke_update(self.process, ObjectId(0), item);
        self.inner.update(item);
        self.parent.recorder.respond_update(id);
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcm::Pcm;
    use ivl_sketch::cm_spec::CountMinSpec;
    use ivl_sketch::countmin::{CountMin, CountMinParams};
    use ivl_sketch::CoinFlips;
    use ivl_spec::ivl::check_ivl_monotone;

    #[test]
    fn recorded_pcm_history_is_ivl_under_stress() {
        let params = CountMinParams {
            width: 16,
            depth: 3,
        };
        for seed in 0..5 {
            let mut coins = CoinFlips::from_seed(seed);
            let proto = CountMin::new(params, &mut coins);
            let spec = CountMinSpec::new(proto.clone());
            let rec = RecordedSketch::new(Pcm::from_prototype(&proto));
            crossbeam::scope(|s| {
                for t in 0..3u64 {
                    let mut h = rec.handle();
                    s.spawn(move |_| {
                        for k in 0..500u64 {
                            h.update((t * 7 + k) % 11);
                        }
                    });
                }
                let rec = &rec;
                s.spawn(move |_| {
                    for k in 0..300u64 {
                        rec.query_from(1000, k % 11);
                    }
                });
            })
            .unwrap();
            let h = rec.finish();
            assert!(
                check_ivl_monotone(&spec, &h).is_ivl(),
                "seed {seed}: PCM history violated IVL (Lemma 7 falsified?)"
            );
        }
    }

    #[test]
    fn handles_get_distinct_processes() {
        let mut coins = CoinFlips::from_seed(1);
        let rec = RecordedSketch::new(Pcm::new(CountMinParams { width: 8, depth: 2 }, &mut coins));
        let h1 = rec.handle();
        let h2 = rec.handle();
        assert_ne!(h1.process(), h2.process());
    }
}
