//! A concurrent HyperLogLog: registers as `AtomicU8` with `fetch_max`.
//!
//! HyperLogLog's registers are max-registers — monotone quantitative
//! objects — so the lock-free parallelization (`fetch_max` per
//! update, plain loads per query) is IVL: a query's estimate is
//! bounded between the estimate at its start and the estimate with
//! every overlapping update applied. [`ConcurrentHll::indicator`]
//! exposes a *strictly monotone integer* functional of the register
//! vector used by the formal IVL checks (the corrected estimate of
//! [`ConcurrentHll::estimate`] is monotone too, but float-valued and
//! piecewise, so tests quantize via the indicator instead).

use ivl_sketch::hll::HyperLogLog;
use ivl_sketch::CoinFlips;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// A shared HyperLogLog sketch.
#[derive(Debug)]
pub struct ConcurrentHll {
    /// A sequential prototype holding the routing hash (same coins ⇒
    /// same deterministic algorithm as the sequential sketch).
    proto: HyperLogLog,
    registers: Vec<AtomicU8>,
    /// Update epoch: bumped (`fetch_add`, multi-writer) only by
    /// updates that actually raised a register, so an unchanged epoch
    /// means an unchanged register vector — the `Unchanged` fast path
    /// of delta snapshots. The bump follows the register's
    /// `fetch_max`; a reader that observes the bump (`Acquire`)
    /// therefore sees the raised register.
    epoch: AtomicU64,
    /// Cumulative dirty register range `[lo, hi)`: `fetch_min`/
    /// `fetch_max` widened by raising updates, never narrowed — a
    /// delta reader over-approximates (registers outside the range
    /// still hold their initial 0).
    dirty_lo: AtomicU32,
    dirty_hi: AtomicU32,
}

impl ConcurrentHll {
    /// Creates a sketch with `2^precision` registers, drawing the hash
    /// from `coins`.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is outside `[4, 16]`.
    pub fn new(precision: u32, coins: &mut CoinFlips) -> Self {
        let proto = HyperLogLog::new(precision, coins);
        let m = proto.num_registers();
        ConcurrentHll {
            proto,
            registers: (0..m).map(|_| AtomicU8::new(0)).collect(),
            epoch: AtomicU64::new(0),
            dirty_lo: AtomicU32::new(m as u32),
            dirty_hi: AtomicU32::new(0),
        }
    }

    /// Observes `item`: one `fetch_max` on its register. When the
    /// register actually rises, the dirty range widens over it and the
    /// update epoch is bumped (duplicates stay RMW-free beyond the
    /// `fetch_max` itself).
    pub fn update(&self, item: u64) {
        let (idx, rank) = self.proto.route(item);
        let prev = self.registers[idx].fetch_max(rank, Ordering::AcqRel);
        if prev < rank {
            self.dirty_lo.fetch_min(idx as u32, Ordering::AcqRel);
            self.dirty_hi.fetch_max(idx as u32 + 1, Ordering::AcqRel);
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Absorbs a peer's full register vector — the HLL absorb path of
    /// replication catch-up: register-wise `fetch_max`, i.e. exactly
    /// the union-merge the sequential sketch performs, applied with
    /// the same monotone-merge discipline as [`update`](Self::update).
    /// Registers that actually rise widen the dirty range; the epoch
    /// is bumped once when anything rose (so delta snapshots notice),
    /// and not at all for an absorb that changes nothing.
    ///
    /// # Panics
    ///
    /// Panics if `registers.len()` differs from the register count —
    /// callers gate peer precision (and hash fingerprints) first.
    pub fn absorb(&self, registers: &[u8]) {
        assert_eq!(
            registers.len(),
            self.registers.len(),
            "peer register vector must match this sketch's precision"
        );
        let mut raised: Option<(u32, u32)> = None;
        for (idx, &rank) in registers.iter().enumerate() {
            if rank == 0 {
                continue;
            }
            let prev = self.registers[idx].fetch_max(rank, Ordering::AcqRel);
            if prev < rank {
                let (lo, hi) = raised.unwrap_or((idx as u32, idx as u32 + 1));
                raised = Some((lo.min(idx as u32), hi.max(idx as u32 + 1)));
            }
        }
        if let Some((lo, hi)) = raised {
            self.dirty_lo.fetch_min(lo, Ordering::AcqRel);
            self.dirty_hi.fetch_max(hi, Ordering::AcqRel);
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// The sketch's update epoch (`Acquire`): monotone, equal across
    /// two reads only if the register vector is unchanged between
    /// them.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The cumulative dirty register range `[lo, hi)` (`Acquire`);
    /// `lo >= hi` means no register was ever raised. Registers outside
    /// the range still hold their initial 0.
    pub fn dirty_range(&self) -> (u32, u32) {
        (
            self.dirty_lo.load(Ordering::Acquire),
            self.dirty_hi.load(Ordering::Acquire),
        )
    }

    /// Loads the registers in `[lo, hi)` (`Acquire` each), appending
    /// to `out` — the sparse read backing a delta snapshot.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on an out-of-range span.
    pub fn registers_range_into(&self, lo: usize, hi: usize, out: &mut Vec<u8>) {
        debug_assert!(hi <= self.registers.len() && lo <= hi);
        out.extend(
            self.registers[lo..hi]
                .iter()
                .map(|r| r.load(Ordering::Acquire)),
        );
    }

    /// Loads the register vector.
    pub fn registers_snapshot(&self) -> Vec<u8> {
        self.registers
            .iter()
            .map(|r| r.load(Ordering::Acquire))
            .collect()
    }

    /// The corrected cardinality estimate (same estimator as the
    /// sequential sketch, evaluated on the loaded registers).
    pub fn estimate(&self) -> f64 {
        let mut seq = self.proto.clone();
        // Rebuild a sequential sketch with the loaded registers by
        // merging a snapshot; `merge` takes register-wise max against
        // the all-zero prototype, i.e. installs the snapshot.
        let snap = self.registers_snapshot();
        seq.merge_registers(&snap);
        seq.estimate()
    }

    /// A strictly monotone integer functional of the register vector:
    /// `Σ_j (2^R − 2^(R − M[j]))` with `R = 64`, i.e. larger registers
    /// ⇒ strictly larger indicator. Used as the query value in formal
    /// IVL checks (the paper's quantitative-object query must be
    /// totally ordered; monotone in every register).
    pub fn indicator(&self) -> u128 {
        self.registers
            .iter()
            .map(|r| {
                let m = r.load(Ordering::Acquire) as u32;
                (1u128 << 64) - (1u128 << (64 - m.min(64)))
            })
            .sum()
    }

    /// Number of registers.
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// The routing prototype (for building matched sequential
    /// sketches in tests).
    pub fn prototype(&self) -> &HyperLogLog {
        &self.proto
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_equals_sequential_at_quiescence() {
        let mut coins = CoinFlips::from_seed(1);
        let conc = ConcurrentHll::new(10, &mut coins);
        let mut seq = conc.prototype().clone();
        let n = 50_000u64;
        crossbeam::scope(|s| {
            for t in 0..4u64 {
                let conc = &conc;
                s.spawn(move |_| {
                    for x in (t * n / 4)..((t + 1) * n / 4) {
                        conc.update(x);
                    }
                });
            }
        })
        .unwrap();
        for x in 0..n {
            seq.update(x);
        }
        assert_eq!(conc.registers_snapshot(), seq.registers().to_vec());
        assert_eq!(conc.estimate(), seq.estimate());
    }

    #[test]
    fn estimate_reasonable_under_concurrency() {
        let mut coins = CoinFlips::from_seed(2);
        let hll = ConcurrentHll::new(12, &mut coins);
        let n = 80_000u64;
        crossbeam::scope(|s| {
            for t in 0..8u64 {
                let hll = &hll;
                s.spawn(move |_| {
                    for x in (t * n / 8)..((t + 1) * n / 8) {
                        hll.update(x);
                    }
                });
            }
        })
        .unwrap();
        let est = hll.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.1, "estimate {est} vs {n}");
    }

    #[test]
    fn indicator_is_monotone_under_concurrent_reads() {
        let mut coins = CoinFlips::from_seed(3);
        let hll = ConcurrentHll::new(8, &mut coins);
        crossbeam::scope(|s| {
            let hll = &hll;
            let w = s.spawn(move |_| {
                for x in 0..200_000u64 {
                    hll.update(x);
                }
            });
            s.spawn(move |_| {
                let mut last = 0u128;
                for _ in 0..20_000 {
                    let v = hll.indicator();
                    assert!(v >= last, "indicator regressed");
                    last = v;
                }
            });
            w.join().unwrap();
        })
        .unwrap();
    }

    #[test]
    fn duplicates_do_not_move_indicator() {
        let mut coins = CoinFlips::from_seed(4);
        let hll = ConcurrentHll::new(8, &mut coins);
        for x in 0..100u64 {
            hll.update(x);
        }
        let before = hll.indicator();
        for x in 0..100u64 {
            hll.update(x);
        }
        assert_eq!(hll.indicator(), before);
    }

    #[test]
    fn absorb_takes_register_max_and_bumps_the_epoch_once() {
        let mut coins = CoinFlips::from_seed(6);
        let a = ConcurrentHll::new(8, &mut coins);
        let mut peer_coins = CoinFlips::from_seed(6);
        let b = ConcurrentHll::new(8, &mut peer_coins);
        for x in 0..500u64 {
            a.update(x);
        }
        for x in 300..900u64 {
            b.update(x);
        }
        // The union via absorb equals the sequential union-merge.
        let mut seq = a.prototype().clone();
        seq.merge_registers(&a.registers_snapshot());
        seq.merge_registers(&b.registers_snapshot());
        let e = a.epoch();
        a.absorb(&b.registers_snapshot());
        assert_eq!(a.registers_snapshot(), seq.registers().to_vec());
        assert_eq!(a.epoch(), e + 1, "raising absorb bumps the epoch once");
        // Absorbing the same peer again raises nothing: epoch frozen.
        a.absorb(&b.registers_snapshot());
        assert_eq!(a.epoch(), e + 1, "no-op absorb must not bump the epoch");
        // Dirty range still covers every nonzero register.
        let snap = a.registers_snapshot();
        let (lo, hi) = a.dirty_range();
        for (idx, &r) in snap.iter().enumerate() {
            if r != 0 {
                assert!((lo as usize) <= idx && idx < hi as usize);
            }
        }
    }

    #[test]
    fn epoch_moves_only_on_raising_updates_and_range_covers_them() {
        let mut coins = CoinFlips::from_seed(5);
        let hll = ConcurrentHll::new(8, &mut coins);
        assert_eq!(hll.epoch(), 0);
        let (lo, hi) = hll.dirty_range();
        assert!(lo >= hi, "clean sketch has no dirty range");
        for x in 0..100u64 {
            hll.update(x);
        }
        let e = hll.epoch();
        assert!(e > 0, "raising updates must bump the epoch");
        // Duplicates raise nothing: epoch frozen.
        for x in 0..100u64 {
            hll.update(x);
        }
        assert_eq!(hll.epoch(), e, "duplicate updates must not bump the epoch");
        // Every nonzero register sits inside the dirty range, and the
        // range read matches the full snapshot's slice.
        let snap = hll.registers_snapshot();
        let (lo, hi) = hll.dirty_range();
        for (idx, &r) in snap.iter().enumerate() {
            if r != 0 {
                assert!(
                    (lo as usize) <= idx && idx < hi as usize,
                    "raised register {idx} outside dirty range [{lo}, {hi})"
                );
            }
        }
        let mut ranged = Vec::new();
        hll.registers_range_into(lo as usize, hi as usize, &mut ranged);
        assert_eq!(ranged, snap[lo as usize..hi as usize]);
    }
}
