//! A cache-aware atomic counter arena shared by the CountMin variants.
//!
//! [`Pcm`](crate::Pcm), [`ShardedPcm`](crate::ShardedPcm) and
//! [`BufferedPcm`](crate::BufferedPcm) all keep a `depth × width`
//! matrix of `AtomicU64` cells. Storing it as a plain
//! `Vec<AtomicU64>` gives no alignment guarantee (a row may start
//! mid-cache-line, so a row's hot cells straddle an extra line) and
//! the sharded variant additionally paid a per-row `Vec` indirection.
//! [`CellArena`] fixes both in one place: one contiguous allocation of
//! 128-byte [`CachePadded`] *lines* of 16 cells each, rows padded up
//! to whole lines, so every row starts on a cache-line boundary and
//! flat index math (`line = row · lines_per_row + col / 16`) replaces
//! nested vectors.
//!
//! The arena deliberately exposes bare [`AtomicU64`] references and
//! takes no stance on memory orderings — each sketch picks its own
//! (see `crates/concurrent/ORDERINGS.md`), so the audit table keeps
//! its per-algorithm justifications.

use crossbeam::utils::CachePadded;
use std::sync::atomic::AtomicU64;

/// Cells per padded line. [`CachePadded`] aligns to 128 bytes, so a
/// line of 16 × 8-byte cells is exactly one padding unit: no wasted
/// bytes, and every 16-cell group (hence every row start) is
/// cache-line aligned.
const LINE_CELLS: usize = 16;

/// One 128-byte-aligned block of counter cells.
type Line = CachePadded<[AtomicU64; LINE_CELLS]>;

/// A `depth × width` matrix of `AtomicU64` counters in a single
/// padded allocation, row-major with rows padded to whole cache
/// lines. All cells start at zero.
#[derive(Debug)]
pub struct CellArena {
    depth: usize,
    width: usize,
    lines_per_row: usize,
    lines: Vec<Line>,
}

impl CellArena {
    /// Allocates a zeroed `depth × width` arena.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `width` is 0.
    pub fn new(depth: usize, width: usize) -> Self {
        assert!(depth > 0 && width > 0, "arena dimensions must be positive");
        let lines_per_row = width.div_ceil(LINE_CELLS);
        let lines = (0..depth * lines_per_row)
            .map(|_| CachePadded::new(std::array::from_fn(|_| AtomicU64::new(0))))
            .collect();
        CellArena {
            depth,
            width,
            lines_per_row,
            lines,
        }
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of counters per row (excluding alignment padding).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The cell at (`row`, `col`) — the one place that maps matrix
    /// coordinates to the padded flat layout.
    #[inline]
    pub fn cell(&self, row: usize, col: usize) -> &AtomicU64 {
        debug_assert!(row < self.depth && col < self.width);
        &self.lines[row * self.lines_per_row + col / LINE_CELLS][col % LINE_CELLS]
    }

    /// One row's cells behind a single narrowed line slice. The batch
    /// kernels hoist this outside their per-entry loops, so each cell
    /// access is a shift, a mask and one in-slice index instead of
    /// re-deriving the row base from the full arena.
    #[inline]
    pub fn row_cells(&self, row: usize) -> RowCells<'_> {
        let start = row * self.lines_per_row;
        RowCells {
            lines: &self.lines[start..start + self.lines_per_row],
            width: self.width,
        }
    }

    /// The `width` cells of one row, in column order (padding cells
    /// excluded).
    pub fn row(&self, row: usize) -> impl Iterator<Item = &AtomicU64> {
        let start = row * self.lines_per_row;
        self.lines[start..start + self.lines_per_row]
            .iter()
            .flat_map(|line| line.iter())
            .take(self.width)
    }

    /// All cells in row-major order (padding cells excluded) — the
    /// sequential `CountMin`-shaped view used for snapshots.
    pub fn cells(&self) -> impl Iterator<Item = &AtomicU64> {
        (0..self.depth).flat_map(|r| self.row(r))
    }
}

/// A borrowed view of one arena row (see [`CellArena::row_cells`]).
#[derive(Debug, Clone, Copy)]
pub struct RowCells<'a> {
    lines: &'a [Line],
    width: usize,
}

impl RowCells<'_> {
    /// The cell at `col` of this row.
    #[inline]
    pub fn cell(&self, col: usize) -> &AtomicU64 {
        debug_assert!(col < self.width);
        &self.lines[col / LINE_CELLS][col % LINE_CELLS]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn rows_are_cache_line_aligned() {
        // 16 cells × 8 bytes fills the 128-byte padding unit exactly.
        assert_eq!(std::mem::size_of::<Line>(), 128);
        let arena = CellArena::new(3, 20); // width not a multiple of 16
        for row in 0..3 {
            let addr = arena.cell(row, 0) as *const AtomicU64 as usize;
            assert_eq!(addr % 64, 0, "row {row} start not cache-line aligned");
        }
    }

    #[test]
    fn cell_indexing_is_row_major_and_distinct() {
        let arena = CellArena::new(4, 37);
        for row in 0..4 {
            for col in 0..37 {
                arena
                    .cell(row, col)
                    .store((row * 37 + col) as u64 + 1, Ordering::Relaxed);
            }
        }
        let flat: Vec<u64> = arena.cells().map(|c| c.load(Ordering::Relaxed)).collect();
        let want: Vec<u64> = (1..=4 * 37).collect();
        assert_eq!(flat, want);
    }

    #[test]
    fn row_iterates_exactly_width_cells() {
        let arena = CellArena::new(2, 17);
        arena.cell(0, 16).store(7, Ordering::Relaxed);
        arena.cell(1, 0).store(9, Ordering::Relaxed);
        let row0: Vec<u64> = arena.row(0).map(|c| c.load(Ordering::Relaxed)).collect();
        assert_eq!(row0.len(), 17);
        assert_eq!(row0[16], 7);
        // Row 1's first cell is its own, not row 0 padding.
        assert_eq!(arena.row(1).next().unwrap().load(Ordering::Relaxed), 9);
    }
}
