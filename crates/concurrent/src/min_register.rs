//! A concurrent min register — toward the paper's future-work
//! priority queues.
//!
//! The conclusion of the paper asks how IVL extends to priority queues,
//! whose returns are "semi-quantitative" (a quantitative priority plus
//! a non-quantitative item). The purely quantitative core of
//! `peek-min` is a **min register**: `insert(k)` lowers the stored
//! minimum, `min()` reads it. It is a commutative, uniformly *antitone*
//! object, so the generalized interval checker
//! ([`ivl_spec::check_ivl_monotone`], which sorts the two extremal
//! endpoints) applies: a concurrent `min()` may return any value
//! between the minimum over *all inserts not after it* and the minimum
//! over *exactly the inserts preceding it*.
//!
//! The lock-free implementation is a single `fetch_min`.

use std::sync::atomic::{AtomicU64, Ordering};

/// A shared min register (`u64::MAX` when empty).
///
/// # Examples
///
/// ```
/// use ivl_concurrent::ConcurrentMinRegister;
///
/// let r = ConcurrentMinRegister::new();
/// crossbeam::scope(|s| {
///     s.spawn(|_| r.insert(40));
///     s.spawn(|_| r.insert(7));
/// })
/// .unwrap();
/// assert_eq!(r.min(), 7);
/// ```
#[derive(Debug)]
pub struct ConcurrentMinRegister {
    value: AtomicU64,
    /// Update epoch: bumped only by inserts that actually lowered the
    /// minimum (`fetch_min` returned a larger previous value), so an
    /// unchanged epoch means an unchanged minimum — the `Unchanged`
    /// fast path of delta snapshots. The bump follows the `fetch_min`;
    /// a reader observing it (`Acquire`) sees the lowered value.
    lowerings: AtomicU64,
}

impl Default for ConcurrentMinRegister {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentMinRegister {
    /// Creates an empty register.
    pub fn new() -> Self {
        ConcurrentMinRegister {
            value: AtomicU64::new(u64::MAX),
            lowerings: AtomicU64::new(0),
        }
    }

    /// Lowers the stored minimum to at most `key`. Wait-free, one
    /// atomic `fetch_min` (plus an epoch `fetch_add` when the minimum
    /// actually dropped).
    pub fn insert(&self, key: u64) {
        let prev = self.value.fetch_min(key, Ordering::AcqRel);
        if key < prev {
            self.lowerings.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// The least key inserted so far (`u64::MAX` when none).
    pub fn min(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// The register's update epoch (`Acquire`): monotone, equal across
    /// two reads only if the minimum is unchanged between them.
    pub fn epoch(&self) -> u64 {
        self.lowerings.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_spec::history::{ObjectId, ProcessId};
    use ivl_spec::ivl::check_ivl_monotone;
    use ivl_spec::record::Recorder;
    use ivl_spec::specs::MinRegisterSpec;

    #[test]
    fn sequential_minimum() {
        let r = ConcurrentMinRegister::new();
        assert_eq!(r.min(), u64::MAX);
        r.insert(9);
        r.insert(4);
        r.insert(7);
        assert_eq!(r.min(), 4);
    }

    #[test]
    fn epoch_moves_only_when_the_minimum_drops() {
        let r = ConcurrentMinRegister::new();
        assert_eq!(r.epoch(), 0);
        r.insert(9);
        assert_eq!(r.epoch(), 1);
        r.insert(12); // not a lowering
        r.insert(9); // not a lowering
        assert_eq!(r.epoch(), 1);
        r.insert(4);
        assert_eq!(r.epoch(), 2);
    }

    #[test]
    fn concurrent_minimum_is_exact_at_quiescence() {
        let r = ConcurrentMinRegister::new();
        crossbeam::scope(|s| {
            for t in 0..4u64 {
                let r = &r;
                s.spawn(move |_| {
                    for k in 0..10_000u64 {
                        r.insert(1_000_000 - (t * 10_000 + k));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(r.min(), 1_000_000 - 39_999);
    }

    #[test]
    fn reads_are_antitone_over_time() {
        let r = ConcurrentMinRegister::new();
        crossbeam::scope(|s| {
            let r = &r;
            let w = s.spawn(move |_| {
                for k in (0..100_000u64).rev() {
                    r.insert(k);
                }
            });
            s.spawn(move |_| {
                let mut last = u64::MAX;
                for _ in 0..50_000 {
                    let v = r.min();
                    assert!(v <= last, "minimum increased: {v} > {last}");
                    last = v;
                }
            });
            w.join().unwrap();
        })
        .unwrap();
    }

    #[test]
    fn recorded_histories_are_ivl_antitone() {
        // The generalized (endpoint-sorting) interval checker accepts
        // concurrent min-register histories — the antitone mirror of
        // Lemma 10.
        for round in 0..5 {
            let r = ConcurrentMinRegister::new();
            let rec = Recorder::<u64, (), u64>::new();
            crossbeam::scope(|s| {
                for t in 0..3u32 {
                    let r = &r;
                    let rec = &rec;
                    s.spawn(move |_| {
                        for k in 0..300u64 {
                            let key = (t as u64 * 37 + k * 13) % 10_000;
                            let id = rec.invoke_update(ProcessId(t), ObjectId(0), key);
                            r.insert(key);
                            rec.respond_update(id);
                        }
                    });
                }
                let r = &r;
                let rec = &rec;
                s.spawn(move |_| {
                    for _ in 0..200 {
                        let id = rec.invoke_query(ProcessId(9), ObjectId(0), ());
                        let v = r.min();
                        rec.respond_query(id, v);
                    }
                });
            })
            .unwrap();
            let h = rec.finish();
            assert!(
                check_ivl_monotone(&MinRegisterSpec, &h).is_ivl(),
                "round {round}: concurrent min register violated IVL"
            );
        }
    }
}
