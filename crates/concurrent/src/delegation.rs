//! A delegation-style buffered concurrent CountMin, after
//! Stylianopoulos et al., *Delegation Sketch* (EuroSys 2020) \[33\].
//!
//! Each thread buffers updates locally and flushes them to the shared
//! atomic matrix every `batch` items. Updates are therefore extremely
//! cheap (mostly local), and queries read the shared matrix without
//! locks.
//!
//! The semantic price is the paper's §3.4 point: an `update` *returns*
//! while its effect sits invisible in a local buffer. A query that
//! starts strictly after such an update completes can miss it —
//! violating not only linearizability but the *lower* bound of IVL
//! (the query returns less than every legal linearization value). The
//! `delegation_violates_ivl` integration test exhibits exactly this
//! history and has the exact checker reject it; the error experiment
//! (E8) shows the corresponding `f̂_a < f_a^start` underestimates that
//! IVL forbids.

use crate::{ConcurrentSketch, SketchHandle};
use ivl_sketch::countmin::{CountMin, CountMinParams};
use ivl_sketch::hash::PairwiseHash;
use ivl_sketch::CoinFlips;
use std::sync::atomic::{AtomicU64, Ordering};

/// The shared matrix of a delegation-style CountMin.
#[derive(Debug)]
pub struct DelegatedCountMin {
    params: CountMinParams,
    hashes: Vec<PairwiseHash>,
    cells: Vec<AtomicU64>,
    batch: usize,
}

impl DelegatedCountMin {
    /// Creates the sketch; each handle flushes after `batch` buffered
    /// updates.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is 0.
    pub fn new(params: CountMinParams, batch: usize, coins: &mut CoinFlips) -> Self {
        assert!(batch > 0, "batch must be positive");
        let proto = CountMin::new(params, coins);
        DelegatedCountMin {
            params,
            hashes: proto.hashes().to_vec(),
            cells: (0..params.width * params.depth)
                .map(|_| AtomicU64::new(0))
                .collect(),
            batch,
        }
    }

    /// The flush batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    #[inline]
    fn cell_index(&self, row: usize, item: u64) -> usize {
        row * self.params.width + self.hashes[row].hash(item)
    }

    fn apply(&self, item: u64, count: u64) {
        for row in 0..self.params.depth {
            let idx = self.cell_index(row, item);
            self.cells[idx].fetch_add(count, Ordering::Relaxed);
        }
    }

    /// Estimates from the shared matrix only (buffered updates
    /// invisible).
    pub fn estimate(&self, item: u64) -> u64 {
        (0..self.params.depth)
            .map(|row| self.cells[self.cell_index(row, item)].load(Ordering::Relaxed))
            .min()
            .expect("depth >= 1")
    }
}

/// A per-thread buffering handle. Drop (or [`SketchHandle::flush`])
/// publishes the residue.
#[derive(Debug)]
pub struct DelegateHandle<'a> {
    parent: &'a DelegatedCountMin,
    /// Buffered (item, count) pairs; small linear scan is faster than
    /// hashing at typical batch sizes.
    pending: Vec<(u64, u64)>,
    buffered: usize,
}

impl SketchHandle for DelegateHandle<'_> {
    fn update(&mut self, item: u64) {
        match self.pending.iter_mut().find(|(i, _)| *i == item) {
            Some((_, c)) => *c += 1,
            None => self.pending.push((item, 1)),
        }
        self.buffered += 1;
        if self.buffered >= self.parent.batch {
            self.flush();
        }
    }

    fn flush(&mut self) {
        for (item, count) in self.pending.drain(..) {
            self.parent.apply(item, count);
        }
        self.buffered = 0;
    }
}

impl Drop for DelegateHandle<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl ConcurrentSketch for DelegatedCountMin {
    type Handle<'a> = DelegateHandle<'a>;

    fn handle(&self) -> DelegateHandle<'_> {
        DelegateHandle {
            parent: self,
            pending: Vec::new(),
            buffered: 0,
        }
    }

    fn query(&self, item: u64) -> u64 {
        self.estimate(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CountMinParams {
        CountMinParams {
            width: 64,
            depth: 3,
        }
    }

    #[test]
    fn buffered_updates_invisible_until_flush() {
        let cm = DelegatedCountMin::new(params(), 8, &mut CoinFlips::from_seed(1));
        let mut h = cm.handle();
        for _ in 0..5 {
            h.update(3); // below batch: still buffered
        }
        assert_eq!(
            cm.estimate(3),
            0,
            "completed updates invisible — the §3.4 hazard"
        );
        h.flush();
        assert_eq!(cm.estimate(3), 5);
    }

    #[test]
    fn batch_boundary_auto_flushes() {
        let cm = DelegatedCountMin::new(params(), 4, &mut CoinFlips::from_seed(2));
        let mut h = cm.handle();
        for _ in 0..4 {
            h.update(9);
        }
        assert_eq!(cm.estimate(9), 4);
    }

    #[test]
    fn drop_publishes_residue() {
        let cm = DelegatedCountMin::new(params(), 100, &mut CoinFlips::from_seed(3));
        {
            let mut h = cm.handle();
            for _ in 0..7 {
                h.update(1);
            }
        }
        assert_eq!(cm.estimate(1), 7);
    }

    #[test]
    fn quiescent_totals_exact_after_flush() {
        let cm = DelegatedCountMin::new(params(), 16, &mut CoinFlips::from_seed(4));
        crossbeam::scope(|s| {
            for _ in 0..4 {
                let cm = &cm;
                s.spawn(move |_| {
                    let mut h = cm.handle();
                    for _ in 0..1000 {
                        h.update(2);
                    }
                    h.flush();
                });
            }
        })
        .unwrap();
        assert_eq!(cm.estimate(2), 4000);
    }

    #[test]
    fn mixed_items_aggregate_in_buffer() {
        let cm = DelegatedCountMin::new(params(), 6, &mut CoinFlips::from_seed(5));
        let mut h = cm.handle();
        for item in [1u64, 2, 1, 2, 1, 1] {
            h.update(item); // 6th update triggers flush
        }
        assert_eq!(cm.estimate(1), 4);
        assert_eq!(cm.estimate(2), 2);
    }
}
