//! The §3.4 non-monotone counterexample: an increment/decrement
//! counter.
//!
//! For *monotone* objects, regular-like semantics ("a query sees all
//! completed updates and some subset of concurrent ones") implies IVL.
//! The paper's §3.4 shows this fails for non-monotone objects: if a
//! query concurrent with an increment and an ensuing decrement sees
//! only the decrement, it returns a value *below every* linearization
//! value — violating IVL's lower bound.
//!
//! [`RegularIncDec`] is the per-slot scanning counter (Algorithm 2
//! with signed deltas): each slot read is individually regular, but a
//! scan can catch slot B after its decrement while having passed slot
//! A before its earlier increment. The integration tests exhibit that
//! history and the exact checker rejects it.
//!
//! [`LinearizableIncDec`] (single `fetch_add`) is the always-correct
//! comparison point.

use std::sync::atomic::{AtomicI64, Ordering};

use crossbeam::utils::CachePadded;

/// Per-slot inc/dec counter: the signed analogue of the IVL batched
/// counter. **Not IVL** in general, because the object is not
/// monotone.
#[derive(Debug)]
pub struct RegularIncDec {
    slots: Vec<CachePadded<AtomicI64>>,
}

impl RegularIncDec {
    /// Creates a counter with `n` single-writer slots.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one slot");
        RegularIncDec {
            slots: (0..n)
                .map(|_| CachePadded::new(AtomicI64::new(0)))
                .collect(),
        }
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Adds `delta` (may be negative) on behalf of `slot`'s owner.
    pub fn add(&self, slot: usize, delta: i64) {
        let cell = &self.slots[slot];
        let current = cell.load(Ordering::Relaxed);
        cell.store(current + delta, Ordering::Release);
    }

    /// Reads one slot (exposed so tests can choreograph the §3.4
    /// interleaving explicitly).
    pub fn slot_value(&self, slot: usize) -> i64 {
        self.slots[slot].load(Ordering::Acquire)
    }

    /// Scans all slots in index order and returns the sum.
    pub fn read(&self) -> i64 {
        self.slots.iter().map(|s| s.load(Ordering::Acquire)).sum()
    }
}

/// Linearizable inc/dec counter on a single RMW atomic.
#[derive(Debug, Default)]
pub struct LinearizableIncDec {
    total: AtomicI64,
}

impl LinearizableIncDec {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.total.fetch_add(delta, Ordering::AcqRel);
    }

    /// Reads the exact current value.
    pub fn read(&self) -> i64 {
        self.total.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_spec::history::{HistoryBuilder, ObjectId, ProcessId};
    use ivl_spec::ivl::{check_ivl_exact, IvlVerdict};
    use ivl_spec::specs::IncDecCounterSpec;

    #[test]
    fn sequential_sums_signed() {
        let c = RegularIncDec::new(2);
        c.add(0, 5);
        c.add(1, -3);
        assert_eq!(c.read(), 2);
    }

    #[test]
    fn quiescent_concurrent_total_exact() {
        let n = 4;
        let c = RegularIncDec::new(n);
        crossbeam::scope(|s| {
            for slot in 0..n {
                let c = &c;
                s.spawn(move |_| {
                    for k in 0..10_000i64 {
                        c.add(slot, if k % 2 == 0 { 2 } else { -1 });
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(c.read(), 5_000 * n as i64);
    }

    #[test]
    fn section_3_4_interleaving_violates_ivl() {
        // Choreographed replay of the paper's §3.4 scenario on the real
        // object: the query reads slot 0 *before* its increment and
        // slot 1 *after* its decrement, returning −1, below every
        // linearization value. The exact checker rejects the recorded
        // history.
        let c = RegularIncDec::new(2);
        let mut b = HistoryBuilder::<i64, (), i64>::new();
        let q_proc = ProcessId(2);
        let x = ObjectId(0);

        // Query invoked; reads slot 0 (sees 0).
        let q = b.invoke_query(q_proc, x, ());
        let part0 = c.slot_value(0);

        // inc(1) on slot 0 completes.
        let inc = b.invoke_update(ProcessId(0), x, 1);
        c.add(0, 1);
        b.respond_update(inc);

        // dec(1) on slot 1 completes.
        let dec = b.invoke_update(ProcessId(1), x, -1);
        c.add(1, -1);
        b.respond_update(dec);

        // Query reads slot 1 (sees −1) and returns the sum.
        let part1 = c.slot_value(1);
        let sum = part0 + part1;
        b.respond_query(q, sum);

        assert_eq!(sum, -1, "the query mixed instants");
        let h = b.finish();
        assert_eq!(
            check_ivl_exact(&[IncDecCounterSpec], &h),
            IvlVerdict::NoLowerLinearization,
            "regular-like non-monotone history must violate IVL"
        );
    }

    #[test]
    fn linearizable_inc_dec_never_out_of_envelope() {
        // The fetch_add counter under the same choreography returns a
        // legal value.
        let c = LinearizableIncDec::new();
        let before = c.read();
        c.add(1);
        c.add(-1);
        let after = c.read();
        assert_eq!(before, 0);
        assert_eq!(after, 0);
    }

    #[test]
    fn linearizable_concurrent_reads_stay_in_legal_range() {
        // inc(+1) then dec(−1) repeatedly: the counter only ever holds
        // 0 or 1; every concurrent read must see 0 or 1.
        let c = LinearizableIncDec::new();
        crossbeam::scope(|s| {
            let c = &c;
            let w = s.spawn(move |_| {
                for _ in 0..100_000 {
                    c.add(1);
                    c.add(-1);
                }
            });
            s.spawn(move |_| {
                for _ in 0..100_000 {
                    let v = c.read();
                    assert!(v == 0 || v == 1, "impossible value {v}");
                }
            });
            w.join().unwrap();
        })
        .unwrap();
    }
}
