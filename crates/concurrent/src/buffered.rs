//! A buffered IVL CountMin: thread-local update buffers propagated to
//! the shared matrix every `b` updates — the sketch analogue of the
//! paper's *batched counter* (Algorithm 2, Lemma 10).
//!
//! Each writer accumulates updates in a private [`UpdateBuffer`]: the
//! first occurrence of an item memoizes its per-row columns with one
//! [`PairwiseHash::hash_row_batch`] pass, repeat occurrences coalesce
//! into the existing entry without re-hashing or touching shared
//! memory. Once the buffered weight reaches the batch bound `b`, the
//! buffer *propagates*: each entry's count is added to the shared
//! [`CellArena`] with one `fetch_add` per row (the `PCM` write path —
//! commutative, so flush order across threads is irrelevant). Queries
//! read the shared matrix directly, exactly like [`Pcm`](crate::Pcm).
//!
//! **Correctness (Lemma 10 analogue).** After any prefix of a run, a
//! handle holds strictly less than `b` buffered weight (reaching `b`
//! triggers a flush before `update` returns). A query's cell read
//! therefore sees every update except at most `n·b` weight of
//! *completed-but-buffered* updates across the `n` live handles, and
//! never sees weight that was not added. Per cell, the value read lies
//! in `[v_applied, v_applied + in-flight]` where `v_applied ≥ v_all −
//! n·b`, so the returned minimum `f̂_a` satisfies `f_a^start − n·b ≤
//! f̂_a ≤ f_a^end + ε·len` — the `PCM` IVL envelope of Corollary 8
//! widened on the low side by `n·b`, mirroring Lemma 10's
//! `x − n·b ≤ read ≤ X`. The deferred-visibility history itself is
//! *not* IVL (a completed update may be invisible, like
//! [`delegation`](crate::delegation)); the point of the batched
//! construction is that the *quantitative relaxation* stays tight and
//! explicit: widen the envelope by `n·b` and every answer is covered.
//! The service layer does exactly that (`Envelope::lag`).
//!
//! The proptest in `crates/concurrent/tests/buffered_props.rs` checks
//! the bound per key over arbitrary interleavings; DESIGN.md §9 gives
//! the argument in full.

use crate::arena::CellArena;
use crate::batch::BatchScratch;
use crate::{ConcurrentSketch, SketchHandle};
use ivl_sketch::countmin::{CountMin, CountMinParams};
use ivl_sketch::hash::PairwiseHash;
use ivl_sketch::CoinFlips;
use std::sync::atomic::Ordering;

/// Cap on distinct buffered items per buffer. Past this the buffer
/// flushes early (always safe — the `n·b` bound only shrinks), keeping
/// memory and flush latency bounded for huge `b`.
const MAX_ENTRIES: usize = 1024;

/// SplitMix64 finalizer: spreads item bits for the coalescing table.
/// Only placement in the *local* table depends on it, never sketch
/// contents, so it needs no drawn randomness. Shared with the
/// frame-coalescing table in [`crate::batch`].
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A thread-local coalescing buffer of pending sketch updates with
/// memoized row columns.
///
/// Standalone so serving layers can buffer on top of a
/// [`ShardLease`](crate::ShardLease) (via
/// [`apply_rows`](crate::ShardLease::apply_rows)) with the same
/// accounting [`BufferedPcm`] uses internally.
#[derive(Debug)]
pub struct UpdateBuffer {
    depth: usize,
    /// The batch bound `b` (in update weight).
    capacity: u64,
    /// Open-addressed item → entry index table (`entry + 1`; 0 empty).
    slots: Vec<u32>,
    mask: usize,
    items: Vec<u64>,
    counts: Vec<u64>,
    /// `cols[e * depth..][..depth]`: entry `e`'s memoized row columns.
    cols: Vec<u32>,
    pending: u64,
    flushes: u64,
    scratch: Vec<usize>,
}

impl UpdateBuffer {
    /// Creates a buffer for a depth-`depth` sketch that signals a
    /// flush every `batch` buffered weight (`batch` 0 behaves as 1:
    /// every push is immediately due).
    pub fn new(depth: usize, batch: u64) -> Self {
        let max_entries = (batch.max(1) as usize).min(MAX_ENTRIES);
        let slots = max_entries.next_power_of_two() * 2;
        UpdateBuffer {
            depth,
            capacity: batch.max(1),
            slots: vec![0; slots],
            mask: slots - 1,
            items: Vec::with_capacity(max_entries),
            counts: Vec::with_capacity(max_entries),
            cols: Vec::with_capacity(max_entries * depth),
            pending: 0,
            flushes: 0,
            scratch: Vec::with_capacity(depth),
        }
    }

    /// Buffers `count` occurrences of `item`, memoizing its row
    /// columns (drawn from `hashes` via one
    /// [`PairwiseHash::hash_row_batch`] pass) on first sight and
    /// coalescing repeats. Returns `true` when the buffer is due for
    /// draining (buffered weight reached the batch bound, or the
    /// entry table is full); the owner must then call [`drain`].
    ///
    /// Weight-0 updates still count 1 toward the bound so degenerate
    /// streams cannot grow the buffer unboundedly.
    ///
    /// [`drain`]: UpdateBuffer::drain
    pub fn push(&mut self, hashes: &[PairwiseHash], item: u64, count: u64) -> bool {
        debug_assert_eq!(hashes.len(), self.depth);
        let mut i = mix(item) as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s == 0 {
                PairwiseHash::hash_row_batch(hashes, item, &mut self.scratch);
                self.items.push(item);
                self.counts.push(count);
                self.cols.extend(self.scratch.iter().map(|&c| c as u32));
                self.slots[i] = self.items.len() as u32;
                break;
            }
            let e = (s - 1) as usize;
            if self.items[e] == item {
                self.counts[e] += count;
                break;
            }
            i = (i + 1) & self.mask;
        }
        self.pending = self.pending.saturating_add(count.max(1));
        self.pending >= self.capacity || self.items.len() * 2 > self.slots.len()
    }

    /// Currently buffered (invisible) weight.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// Number of non-empty drains performed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Propagates and clears the buffer: calls `apply(cols, count)`
    /// once per distinct buffered item, where `cols` holds its
    /// memoized column per row. Returns the weight drained.
    pub fn drain(&mut self, mut apply: impl FnMut(&[u32], u64)) -> u64 {
        if self.items.is_empty() {
            return 0;
        }
        for (e, &count) in self.counts.iter().enumerate() {
            apply(&self.cols[e * self.depth..(e + 1) * self.depth], count);
        }
        self.slots.fill(0);
        self.items.clear();
        self.counts.clear();
        self.cols.clear();
        self.flushes += 1;
        std::mem::take(&mut self.pending)
    }
}

/// The buffered concurrent CountMin (batched-counter construction).
///
/// # Examples
///
/// ```
/// use ivl_concurrent::{BufferedPcm, ConcurrentSketch, SketchHandle};
/// use ivl_sketch::countmin::CountMinParams;
/// use ivl_sketch::CoinFlips;
///
/// let mut coins = CoinFlips::from_seed(3);
/// let sketch = BufferedPcm::new(CountMinParams { width: 64, depth: 4 }, 8, &mut coins);
/// let mut h = sketch.handle();
/// for _ in 0..20 {
///     h.update(5);
/// }
/// // Up to b−1 = 7 updates may still be buffered…
/// assert!(sketch.estimate(5) >= 20 - 7);
/// h.flush();
/// // …and flush publishes the rest.
/// assert_eq!(sketch.estimate(5), 20);
/// ```
#[derive(Debug)]
pub struct BufferedPcm {
    params: CountMinParams,
    hashes: Vec<PairwiseHash>,
    cells: CellArena,
    batch: u64,
}

impl BufferedPcm {
    /// Creates a buffered CountMin with batch bound `batch`, drawing
    /// hashes from `coins` (same coins ⇒ same `c̄` as
    /// [`CountMin::new`]).
    pub fn new(params: CountMinParams, batch: u64, coins: &mut CoinFlips) -> Self {
        let proto = CountMin::new(params, coins);
        Self::from_prototype(&proto, batch)
    }

    /// Creates a buffered CountMin sharing the hashes of an (empty)
    /// prototype.
    ///
    /// # Panics
    ///
    /// Panics if the prototype has already ingested updates.
    pub fn from_prototype(proto: &CountMin, batch: u64) -> Self {
        assert_eq!(
            ivl_sketch::FrequencySketch::stream_len(proto),
            0,
            "prototype must be empty"
        );
        let params = proto.params();
        BufferedPcm {
            params,
            hashes: proto.hashes().to_vec(),
            cells: CellArena::new(params.depth, params.width),
            batch: batch.max(1),
        }
    }

    /// The sketch dimensions.
    pub fn params(&self) -> CountMinParams {
        self.params
    }

    /// The batch bound `b`: a handle holds strictly less than `b`
    /// buffered weight between updates.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Estimates `item`'s frequency from the shared matrix (the `PCM`
    /// read path — buffered weight is invisible until propagated).
    pub fn estimate(&self, item: u64) -> u64 {
        let xr = PairwiseHash::reduce(item);
        self.hashes
            .iter()
            .enumerate()
            .map(|(row, h)| {
                self.cells
                    .cell(row, h.hash_reduced(xr))
                    .load(Ordering::Relaxed)
            })
            .min()
            .expect("depth >= 1")
    }
}

/// A writer handle owning one [`UpdateBuffer`]; drops flush, so a
/// finished writer never strands weight.
#[derive(Debug)]
pub struct BufferedHandle<'a> {
    parent: &'a BufferedPcm,
    buf: UpdateBuffer,
}

impl BufferedHandle<'_> {
    /// Buffers `count` occurrences of `item`, propagating the whole
    /// buffer when its weight reaches the batch bound.
    pub fn update_by(&mut self, item: u64, count: u64) {
        if self.buf.push(&self.parent.hashes, item, count) {
            self.propagate();
        }
    }

    /// Absorbs a whole frame of `(item, count)` pairs, coalescing
    /// duplicate keys through `scratch` first so each distinct key
    /// costs one buffer probe (and at most one `hash_row_batch` pass,
    /// on first sight in the buffer). Propagates whenever the batch
    /// bound trips mid-frame, so the buffered weight stays strictly
    /// under `b` on return — the per-handle `n·b` envelope bound is
    /// unchanged by frame absorption.
    pub fn absorb_batch(&mut self, items: &[(u64, u64)], scratch: &mut BatchScratch) {
        scratch.coalesce(items);
        for e in 0..scratch.len() {
            let (item, count) = scratch.entry(e);
            if self.buf.push(&self.parent.hashes, item, count) {
                self.propagate();
            }
        }
    }

    /// Weight buffered but not yet visible to queries.
    pub fn pending(&self) -> u64 {
        self.buf.pending()
    }

    /// Number of propagations performed so far.
    pub fn flushes(&self) -> u64 {
        self.buf.flushes()
    }

    fn propagate(&mut self) {
        let cells = &self.parent.cells;
        self.buf.drain(|cols, count| {
            for (row, &col) in cols.iter().enumerate() {
                cells
                    .cell(row, col as usize)
                    .fetch_add(count, Ordering::Relaxed);
            }
        });
    }
}

impl SketchHandle for BufferedHandle<'_> {
    fn update(&mut self, item: u64) {
        self.update_by(item, 1);
    }

    fn flush(&mut self) {
        self.propagate();
    }
}

impl Drop for BufferedHandle<'_> {
    fn drop(&mut self) {
        self.propagate();
    }
}

impl ConcurrentSketch for BufferedPcm {
    type Handle<'a> = BufferedHandle<'a>;

    fn handle(&self) -> BufferedHandle<'_> {
        BufferedHandle {
            parent: self,
            buf: UpdateBuffer::new(self.params.depth, self.batch),
        }
    }

    fn query(&self, item: u64) -> u64 {
        self.estimate(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_sketch::FrequencySketch;

    fn params() -> CountMinParams {
        CountMinParams {
            width: 64,
            depth: 4,
        }
    }

    #[test]
    fn flushed_state_equals_sequential_sketch() {
        let mut coins = CoinFlips::from_seed(1);
        let mut cm = CountMin::new(params(), &mut coins);
        let buffered = BufferedPcm::from_prototype(&cm, 64);
        {
            let mut h = buffered.handle();
            for x in 0..5_000u64 {
                cm.update(x % 97);
                h.update(x % 97);
            }
        } // drop flushes
        for item in 0..97u64 {
            assert_eq!(buffered.estimate(item), cm.estimate(item), "item {item}");
        }
    }

    #[test]
    fn estimate_lags_by_less_than_b_per_handle() {
        let buffered = BufferedPcm::new(params(), 16, &mut CoinFlips::from_seed(2));
        let mut h = buffered.handle();
        for i in 0..100u64 {
            h.update(7);
            let est = buffered.estimate(7);
            assert!(est <= i + 1, "overcounts: {est} > {}", i + 1);
            assert!(est + 16 > i + 1, "lags by >= b: {est} after {}", i + 1);
        }
    }

    #[test]
    fn weighted_updates_trigger_flush_at_weight_bound() {
        let buffered = BufferedPcm::new(params(), 10, &mut CoinFlips::from_seed(3));
        let mut h = buffered.handle();
        h.update_by(4, 9);
        assert_eq!(buffered.estimate(4), 0, "under the bound: still buffered");
        assert_eq!(h.pending(), 9);
        h.update_by(4, 1);
        assert_eq!(buffered.estimate(4), 10, "bound reached: propagated");
        assert_eq!(h.pending(), 0);
        assert_eq!(h.flushes(), 1);
    }

    #[test]
    fn coalescing_keeps_one_entry_per_item() {
        let mut buf = UpdateBuffer::new(3, 1_000);
        let hashes: Vec<PairwiseHash> = {
            let mut coins = CoinFlips::from_seed(4);
            (0..3).map(|_| PairwiseHash::draw(&mut coins, 32)).collect()
        };
        for _ in 0..50 {
            for item in [1u64, 2, 3] {
                buf.push(&hashes, item, 1);
            }
        }
        let mut applied = Vec::new();
        let drained = buf.drain(|cols, count| applied.push((cols.to_vec(), count)));
        assert_eq!(drained, 150);
        assert_eq!(applied.len(), 3, "one drain call per distinct item");
        for (cols, count) in &applied {
            assert_eq!(*count, 50);
            assert_eq!(cols.len(), 3);
        }
        assert!(buf.is_empty());
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn memoized_columns_match_direct_hashing() {
        let mut coins = CoinFlips::from_seed(5);
        let hashes: Vec<PairwiseHash> =
            (0..4).map(|_| PairwiseHash::draw(&mut coins, 64)).collect();
        let mut buf = UpdateBuffer::new(4, 100);
        for item in [0u64, 42, u64::MAX, 7, 42] {
            buf.push(&hashes, item, 1);
        }
        buf.drain(|cols, _| {
            // Recover which item this entry is by matching columns.
            let direct: Vec<Vec<u32>> = [0u64, 42, u64::MAX, 7]
                .iter()
                .map(|&x| hashes.iter().map(|h| h.hash(x) as u32).collect())
                .collect();
            assert!(
                direct.iter().any(|d| d == cols),
                "memoized columns {cols:?} match no direct hash"
            );
        });
    }

    #[test]
    fn entry_table_overflow_forces_early_drain() {
        // b far above MAX_ENTRIES: distinct items must still flush
        // once the table fills, long before the weight bound.
        let buffered = BufferedPcm::new(params(), u64::MAX / 2, &mut CoinFlips::from_seed(6));
        let mut h = buffered.handle();
        for item in 0..10_000u64 {
            h.update(item);
        }
        assert!(h.flushes() >= 1, "table never flushed");
    }

    #[test]
    fn many_handles_propagate_commutatively() {
        let mut coins = CoinFlips::from_seed(7);
        let mut cm = CountMin::new(params(), &mut coins);
        let buffered = BufferedPcm::from_prototype(&cm, 8);
        crossbeam::scope(|s| {
            for t in 0..4u64 {
                let mut h = buffered.handle();
                s.spawn(move |_| {
                    for k in 0..10_000u64 {
                        h.update((t * 13 + k) % 101);
                    }
                });
            }
        })
        .unwrap();
        for t in 0..4u64 {
            for k in 0..10_000u64 {
                cm.update((t * 13 + k) % 101);
            }
        }
        for item in 0..101u64 {
            assert_eq!(buffered.estimate(item), cm.estimate(item), "item {item}");
        }
    }
}
