//! A concurrent Morris counter: the exponent in one CAS'd atomic.
//!
//! The exponent `X` is a monotone max-like register: updates read `X`,
//! flip a coin with probability `(1+a)^{−X}`, and on heads try to CAS
//! `X → X+1`. A failed CAS means another thread already advanced the
//! exponent; the update completes without retrying (its coin was drawn
//! for an exponent that no longer exists — retrying with the new
//! exponent would require a fresh coin anyway, and dropping the stale
//! increment only biases the estimate *down*, i.e. conservatively,
//! by at most the raced increments).
//!
//! The estimate `((1+a)^X − 1)/a` is monotone in `X` and `X` only
//! grows, so concurrent reads return intermediate values in the IVL
//! sense; the exponent history is checkable against
//! [`ivl_spec::specs::MaxRegisterSpec`]. The full Definition 3 story
//! for Morris (a common linearization for *every* coin vector) is
//! subtle because the coin-consumption order itself depends on the
//! schedule; we validate the (ε,δ) behaviour empirically instead (see
//! the error benches), which is the guarantee a user consumes.

use ivl_sketch::CoinFlips;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};

/// A shared Morris counter.
#[derive(Debug)]
pub struct ConcurrentMorris {
    exponent: AtomicU32,
    a: f64,
    coins: Mutex<CoinFlips>,
}

impl ConcurrentMorris {
    /// Creates a counter with accuracy parameter `a` (see
    /// [`ivl_sketch::MorrisCounter`]).
    ///
    /// # Panics
    ///
    /// Panics unless `a > 0`.
    pub fn new(a: f64, coins: CoinFlips) -> Self {
        assert!(a > 0.0, "accuracy parameter must be positive");
        ConcurrentMorris {
            exponent: AtomicU32::new(0),
            a,
            coins: Mutex::new(coins),
        }
    }

    /// Registers one event.
    pub fn update(&self) {
        let x = self.exponent.load(Ordering::Acquire);
        let p = (1.0 + self.a).powi(-(x as i32));
        let heads = self.coins.lock().next_bool(p);
        if heads {
            // One shot: a failure means someone else advanced X.
            let _ = self
                .exponent
                .compare_exchange(x, x + 1, Ordering::AcqRel, Ordering::Acquire);
        }
    }

    /// Raises the exponent to at least `target` — the Morris absorb
    /// path of replication catch-up, i.e. the exponent-max merge of
    /// the sequential counter. Unlike [`update`](Self::update), whose
    /// one-shot CAS may legitimately drop a raced coin, a merge must
    /// not lose the peer's exponent, so this retries: a failed CAS
    /// reloads and either finds the register already past `target`
    /// (done — max is idempotent) or tries again. The loop is bounded
    /// because the exponent only grows toward `target`.
    pub fn raise_to(&self, target: u32) {
        let mut cur = self.exponent.load(Ordering::Acquire);
        while cur < target {
            match self
                .exponent
                .compare_exchange(cur, target, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The current exponent (monotone).
    pub fn exponent(&self) -> u32 {
        self.exponent.load(Ordering::Acquire)
    }

    /// The estimate `((1+a)^X − 1)/a`.
    pub fn estimate(&self) -> f64 {
        ((1.0 + self.a).powi(self.exponent() as i32) - 1.0) / self.a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_matches_sequential_shape() {
        let m = ConcurrentMorris::new(0.5, CoinFlips::from_seed(1));
        let n = 10_000;
        for _ in 0..n {
            m.update();
        }
        let est = m.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.8, "single-run estimate {est} wildly off {n}");
    }

    #[test]
    fn concurrent_estimate_tracks_total_on_average() {
        let runs = 10;
        let threads = 4;
        let per_thread = 5_000u64;
        let mut total = 0.0;
        for seed in 0..runs {
            let m = ConcurrentMorris::new(0.05, CoinFlips::from_seed(seed));
            crossbeam::scope(|s| {
                for _ in 0..threads {
                    let m = &m;
                    s.spawn(move |_| {
                        for _ in 0..per_thread {
                            m.update();
                        }
                    });
                }
            })
            .unwrap();
            total += m.estimate();
        }
        let n = (threads as u64 * per_thread) as f64;
        let mean = total / runs as f64;
        let rel = (mean - n).abs() / n;
        assert!(rel < 0.15, "mean {mean} vs {n} (rel {rel})");
    }

    #[test]
    fn exponent_is_monotone_under_concurrency() {
        let m = ConcurrentMorris::new(1.0, CoinFlips::from_seed(7));
        crossbeam::scope(|s| {
            for _ in 0..4 {
                let m = &m;
                s.spawn(move |_| {
                    for _ in 0..10_000 {
                        m.update();
                    }
                });
            }
            let m = &m;
            s.spawn(move |_| {
                let mut last = 0;
                for _ in 0..50_000 {
                    let x = m.exponent();
                    assert!(x >= last, "exponent regressed");
                    last = x;
                }
            });
        })
        .unwrap();
    }

    #[test]
    fn raise_to_is_a_max_merge_and_survives_races() {
        let m = ConcurrentMorris::new(0.5, CoinFlips::from_seed(9));
        m.raise_to(7);
        assert_eq!(m.exponent(), 7);
        // Raising to a lower or equal target is a no-op (max merge).
        m.raise_to(3);
        m.raise_to(7);
        assert_eq!(m.exponent(), 7);
        // Under contention the final exponent is the max of all
        // targets and never below any of them mid-flight.
        let m = ConcurrentMorris::new(0.5, CoinFlips::from_seed(10));
        crossbeam::scope(|s| {
            for t in 1..=8u32 {
                let m = &m;
                s.spawn(move |_| {
                    for step in 0..100u32 {
                        m.raise_to(t * 100 + step);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(m.exponent(), 899);
    }

    #[test]
    fn estimate_zero_before_updates() {
        let m = ConcurrentMorris::new(1.0, CoinFlips::from_seed(3));
        assert_eq!(m.estimate(), 0.0);
        assert_eq!(m.exponent(), 0);
    }
}
