//! Property tests of the concurrent sketches: quiescent agreement
//! with the sequential algorithm under the same coins (arbitrary
//! streams, dimensions and thread splits), and IVL of recorded PCM
//! runs across workload shapes.

use ivl_concurrent::{ConcurrentSketch, Pcm, RecordedSketch, ShardedPcm, SketchHandle};
use ivl_sketch::cm_spec::CountMinSpec;
use ivl_sketch::countmin::{CountMin, CountMinParams};
use ivl_sketch::{CoinFlips, FrequencySketch};
use ivl_spec::check_ivl_monotone;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PCM at quiescence equals CM(c̄) on the concatenated stream,
    /// for arbitrary dimensions, coins and thread splits.
    #[test]
    fn pcm_quiescent_equals_sequential(
        streams in proptest::collection::vec(
            proptest::collection::vec(0u64..40, 0..80),
            1..5,
        ),
        seed in 0u64..10_000,
        width in 2usize..32,
        depth in 1usize..5,
    ) {
        let params = CountMinParams { width, depth };
        let mut cm = CountMin::new(params, &mut CoinFlips::from_seed(seed));
        let pcm = Pcm::from_prototype(&cm);
        crossbeam::scope(|s| {
            for stream in &streams {
                let pcm = &pcm;
                s.spawn(move |_| {
                    for &i in stream {
                        pcm.update(i);
                    }
                });
            }
        })
        .unwrap();
        for stream in &streams {
            for &i in stream {
                cm.update(i);
            }
        }
        for item in 0..40u64 {
            prop_assert_eq!(pcm.estimate(item), cm.estimate(item));
        }
        prop_assert_eq!(pcm.stream_len_estimate(), cm.stream_len());
    }

    /// Sharded PCM at quiescence also equals CM(c̄) — sharding is
    /// invisible to the estimator.
    #[test]
    fn sharded_quiescent_equals_sequential(
        streams in proptest::collection::vec(
            proptest::collection::vec(0u64..40, 0..80),
            1..4,
        ),
        seed in 0u64..10_000,
    ) {
        let params = CountMinParams { width: 16, depth: 3 };
        let mut cm = CountMin::new(params, &mut CoinFlips::from_seed(seed));
        let sharded = ShardedPcm::from_prototype(&cm, streams.len());
        crossbeam::scope(|s| {
            for stream in &streams {
                let mut h = sharded.handle();
                s.spawn(move |_| {
                    for &i in stream {
                        h.update(i);
                    }
                });
            }
        })
        .unwrap();
        for stream in &streams {
            for &i in stream {
                cm.update(i);
            }
        }
        for item in 0..40u64 {
            prop_assert_eq!(sharded.estimate(item), cm.estimate(item));
        }
    }

    /// Recorded concurrent PCM runs are IVL for arbitrary small
    /// workload shapes (Lemma 7 as a property over real threads).
    #[test]
    fn recorded_pcm_runs_are_ivl(
        streams in proptest::collection::vec(
            proptest::collection::vec(0u64..12, 1..40),
            1..4,
        ),
        queries in proptest::collection::vec(0u64..12, 1..25),
        seed in 0u64..10_000,
    ) {
        let params = CountMinParams { width: 8, depth: 2 };
        let proto = CountMin::new(params, &mut CoinFlips::from_seed(seed));
        let spec = CountMinSpec::new(proto.clone());
        let rec = RecordedSketch::new(Pcm::from_prototype(&proto));
        crossbeam::scope(|s| {
            for stream in &streams {
                let mut h = rec.handle();
                s.spawn(move |_| {
                    for &i in stream {
                        h.update(i);
                    }
                });
            }
            let rec = &rec;
            let queries = &queries;
            s.spawn(move |_| {
                for &q in queries {
                    rec.query_from(1000, q);
                }
            });
        })
        .unwrap();
        let h = rec.finish();
        prop_assert!(check_ivl_monotone(&spec, &h).is_ivl());
    }
}
