//! Property tests for the batch ingest kernels: each kernel must be
//! cell-identical to the per-item loop it replaces (cell adds commute,
//! so coalescing a frame changes nothing at quiescence), and per-frame
//! coalescing must never widen a served envelope — the strict kernels
//! publish everything before returning, and the buffered kernel keeps
//! the same strictly-under-`b` pending bound the `lag = shards·b`
//! envelope accounting is built on.

use ivl_concurrent::{BatchScratch, BufferedPcm, ConcurrentSketch, Pcm, ShardedPcm, SketchHandle};
use ivl_sketch::countmin::{CountMin, CountMinParams};
use ivl_sketch::{CoinFlips, FrequencySketch};
use proptest::prelude::*;

const WIDTH: usize = 32;
const DEPTH: usize = 4;

fn proto(seed: u64) -> CountMin {
    CountMin::new(
        CountMinParams {
            width: WIDTH,
            depth: DEPTH,
        },
        &mut CoinFlips::from_seed(seed),
    )
}

/// Frames of (key, weight) pairs over a tiny key space, so duplicate
/// keys within a frame are the common case, not the exception.
fn frames() -> impl Strategy<Value = Vec<Vec<(u64, u64)>>> {
    proptest::collection::vec(proptest::collection::vec((0u64..24, 0u64..6), 0..48), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Pcm::update_batch` leaves the exact cell matrix of the
    /// per-item `update_by` loop, for any frame sequence.
    #[test]
    fn pcm_update_batch_is_cell_identical(frames in frames(), seed in 0u64..1_000) {
        let proto = proto(seed);
        let batched = Pcm::from_prototype(&proto);
        let per_item = Pcm::from_prototype(&proto);
        let mut scratch = BatchScratch::new(DEPTH);
        for frame in &frames {
            batched.update_batch(frame, &mut scratch);
            for &(key, weight) in frame {
                per_item.update_by(key, weight);
            }
            // Strict kernel: everything published at return — a query
            // between frames sees identical state, so the per-frame
            // coalescing widened no envelope.
            prop_assert_eq!(batched.cells_snapshot(), per_item.cells_snapshot());
        }
    }

    /// `ShardLease::apply_batch` matches per-item `update_by` on the
    /// same shard, frame by frame.
    #[test]
    fn lease_apply_batch_is_cell_identical(frames in frames(), seed in 0u64..1_000) {
        let proto = proto(seed);
        let batched = ShardedPcm::from_prototype(&proto, 2);
        let per_item = ShardedPcm::from_prototype(&proto, 2);
        let mut scratch = BatchScratch::new(DEPTH);
        let mut bl = batched.lease().expect("free shard");
        let mut pl = per_item.lease().expect("free shard");
        for frame in &frames {
            bl.apply_batch(frame, &mut scratch);
            for &(key, weight) in frame {
                pl.update_by(key, weight);
            }
            prop_assert_eq!(batched.cells_snapshot(), per_item.cells_snapshot());
        }
    }

    /// `BufferedHandle::absorb_batch` + flush matches per-item
    /// `update_by` + flush, and between frames the buffered weight
    /// stays strictly under `b` — absorption trips the same mid-frame
    /// flushes the per-item loop would, so the advertised
    /// `lag = shards·b` bound dominates any per-frame coalescing.
    #[test]
    fn buffered_absorb_batch_is_cell_identical(
        frames in frames(),
        b in 1u64..20,
        seed in 0u64..1_000,
    ) {
        let proto = proto(seed);
        let batched = BufferedPcm::from_prototype(&proto, b);
        let per_item = BufferedPcm::from_prototype(&proto, b);
        let mut scratch = BatchScratch::new(DEPTH);
        let mut bh = batched.handle();
        let mut ph = per_item.handle();
        for frame in &frames {
            bh.absorb_batch(frame, &mut scratch);
            for &(key, weight) in frame {
                ph.update_by(key, weight);
            }
            prop_assert!(bh.pending() < b, "pending {} >= b {}", bh.pending(), b);
        }
        bh.flush();
        ph.flush();
        for key in 0u64..24 {
            prop_assert_eq!(batched.estimate(key), per_item.estimate(key));
        }
    }

    /// At quiescence every kernel agrees with the sequential
    /// `CountMin` fed the concatenated frames — the same `CM(c̄)` the
    /// replay checker replays against, so Theorem 1 locality and the
    /// per-object verdicts are untouched by how frames were applied.
    #[test]
    fn all_kernels_agree_with_sequential_sketch(frames in frames(), seed in 0u64..1_000) {
        let mut cm = proto(seed);
        let pcm = Pcm::from_prototype(&cm);
        let sharded = ShardedPcm::from_prototype(&cm, 2);
        let buffered = BufferedPcm::from_prototype(&cm, 7);
        let mut scratch = BatchScratch::new(DEPTH);
        {
            let mut lease = sharded.lease().expect("free shard");
            let mut bh = buffered.handle();
            for frame in &frames {
                pcm.update_batch(frame, &mut scratch);
                lease.apply_batch(frame, &mut scratch);
                bh.absorb_batch(frame, &mut scratch);
                for &(key, weight) in frame {
                    cm.update_by(key, weight);
                }
            }
            bh.flush();
        }
        for key in 0u64..24 {
            let expect = cm.estimate(key);
            prop_assert_eq!(pcm.estimate(key), expect, "pcm key {}", key);
            prop_assert_eq!(sharded.estimate(key), expect, "sharded key {}", key);
            prop_assert_eq!(buffered.estimate(key), expect, "buffered key {}", key);
        }
    }
}
