//! Property test of the buffered CountMin's quantitative bound
//! (Lemma 10 analogue, DESIGN §9): for *any* interleaving of updates
//! and flushes across `n` handles, every key's buffered estimate
//! stays within `n·b` of the strict (all-updates-applied) estimate —
//! below it by at most the buffered weight, never above it.

use ivl_concurrent::{BufferedPcm, ConcurrentSketch, SketchHandle};
use ivl_sketch::countmin::{CountMin, CountMinParams};
use ivl_sketch::{CoinFlips, FrequencySketch};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drive `n = 3` handles through an arbitrary single-threaded
    /// interleaving (an adversarial schedule: any concurrent
    /// execution's visibility states are a subset of these) and check
    /// after every step, per key:
    /// `strict − n·b ≤ buffered_estimate ≤ strict`, i.e. the strict
    /// estimate lies in `[buffered, buffered + n·b]`.
    #[test]
    fn buffered_estimate_within_nb_of_strict(
        // (handle, item, op): op 0 flushes the handle, 1..=7 is an
        // update of that weight.
        ops in proptest::collection::vec((0usize..3, 0u64..16, 0u64..8), 1..120),
        b in 1u64..20,
        seed in 0u64..10_000,
    ) {
        let params = CountMinParams { width: 16, depth: 3 };
        let mut strict = CountMin::new(params, &mut CoinFlips::from_seed(seed));
        let buffered = BufferedPcm::from_prototype(&strict, b);
        let n = 3u64;
        let mut handles: Vec<_> = (0..n).map(|_| buffered.handle()).collect();
        for &(h, item, op) in &ops {
            if op == 0 {
                handles[h].flush();
            } else {
                handles[h].update_by(item, op);
                strict.update_by(item, op);
            }
            for key in 0..16u64 {
                let be = buffered.estimate(key);
                let se = strict.estimate(key);
                prop_assert!(be <= se, "key {key}: buffered {be} > strict {se}");
                prop_assert!(
                    se <= be + n * b,
                    "key {key}: strict {se} outside [buffered, buffered + n*b] \
                     = [{be}, {}]", be + n * b
                );
            }
        }
        // Quiescence: flushing everything recovers the strict sketch
        // exactly (same hashes, commutative cell adds).
        for h in &mut handles {
            h.flush();
        }
        for key in 0..16u64 {
            prop_assert_eq!(buffered.estimate(key), strict.estimate(key));
        }
    }
}
