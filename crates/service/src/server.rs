//! The sketch server, with two interchangeable backends: blocking
//! thread-per-connection over `std::net` ([`Backend::Threaded`]) and
//! a hand-rolled epoll reactor ([`Backend::EventLoop`], see the
//! `reactor` submodule). Both speak the same wire protocol against
//! the same sketch state and funnel every request through the same
//! execution path, so IVL verdicts and envelopes cannot depend on
//! the backend.
//!
//! An [`ObjectRegistry`] is shared by all connections: every update,
//! query, or batch frame names one registered object by id (v1 frames
//! implicitly name object 0, always a CountMin), and both backends
//! route it through the object's [`ServedObject`] interface. For the
//! CountMin that preserves the original discipline — in the threaded
//! backend, the first update a connection sends checks out a
//! per-(object, shard) lease (a single-writer sub-matrix) and keeps it
//! until the connection closes; in the event-loop backend each reactor
//! thread leases once for all its connections. Either way the ingest
//! hot path stays plain stores with no RMW instruction and no lock,
//! and the lease pool is the backpressure bound: when every shard of
//! the target CountMin is leased, further *updating* connections get a
//! `busy` error (queries always proceed — they only read). The
//! lock-free objects (HLL, Morris, min register) are wait-free and
//! never refuse. Each object tracks its own acknowledged stream
//! weight, read IVL-style at query time to size its envelope.
//!
//! Shutdown is graceful: a `SHUTDOWN` frame (or
//! [`ServerHandle::shutdown`]) stops the accept loop; connections
//! already open keep being served until their clients hang up, and
//! [`ServerHandle::join`] waits for the drain before returning final
//! stats and (optionally) the recorded history of every operation the
//! server performed — replayable per object projection through the
//! workspace's IVL checkers ([`JoinedServer::verdicts`], Theorem 1's
//! locality made operational).

use crate::metrics::{Metrics, StatsReport};
use crate::objects::{ObjectConfig, ObjectKind, ObjectRegistry, ObjectVerdict, ObjectWriter};
use crate::protocol::{self, ErrorCode, FrameDecoder, Request, Response};
use crate::wspec::WeightedCmSpec;
use ivl_concurrent::ShardedPcm;
use ivl_sketch::countmin::CountMinParams;
use ivl_spec::history::{History, ObjectId, ProcessId};
use ivl_spec::record::Recorder;
use polling::Poller;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

mod reactor;

/// Which serving backend executes connections. Both speak the same
/// wire protocol against the same sketch state; the choice is purely a
/// scheduling/perf decision, so IVL verdicts and envelopes are
/// identical across backends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// One OS thread per connection, blocking I/O (the original
    /// backend; robust, but threads cap concurrent connections).
    #[default]
    Threaded,
    /// `shards` reactor threads over a hand-rolled epoll event loop:
    /// nonblocking sockets, edge-triggered readiness, resumable frame
    /// decoding, vectored writes. Each reactor owns one shard lease
    /// for all its connections.
    EventLoop,
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threaded" => Ok(Backend::Threaded),
            "event-loop" | "event_loop" | "eventloop" => Ok(Backend::EventLoop),
            other => Err(format!(
                "unknown backend {other:?} (want \"threaded\" or \"event-loop\")"
            )),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Threaded => "threaded",
            Backend::EventLoop => "event-loop",
        })
    }
}

/// Configuration of one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Serving backend (see [`Backend`]).
    pub backend: Backend,
    /// Number of sketch shards == maximum concurrent *updating*
    /// connections (threaded backend) or reactor threads (event-loop
    /// backend).
    pub shards: usize,
    /// CountMin relative error (ε = α·n).
    pub alpha: f64,
    /// CountMin failure probability.
    pub delta: f64,
    /// Maximum concurrent connections; beyond it the accept gate
    /// answers `busy` and closes.
    pub max_connections: usize,
    /// Largest accepted frame payload in bytes.
    pub max_frame_len: u32,
    /// Record every operation into an [`ivl_spec::History`] for
    /// offline IVL checking (adds one short mutex hold per op).
    pub record: bool,
    /// Seed for the objects' coin flips (hash functions).
    pub seed: u64,
    /// The objects to register, in id order. Object 0 must be a
    /// CountMin (the target of v1, object-id-less frames); CountMin
    /// entries take their `(alpha, delta)`, `shards`, and
    /// `write_buffer` from this config.
    pub objects: Vec<ObjectConfig>,
    /// Write-buffer batch size `b` (0 disables buffering). When set,
    /// each writer (connection thread / reactor) coalesces updates in
    /// a local [`UpdateBuffer`] and propagates to the shared sketch
    /// every `b` acknowledged weight — the paper's batched-counter
    /// construction (Lemma 10, DESIGN §9). Queries stay direct reads;
    /// the served envelope carries `lag = shards·b` so clients see the
    /// widened bound. Buffers flush when a writer's lease returns
    /// (connection close / reactor drain), so a graceful shutdown
    /// loses nothing. Note: with buffering on, a *recorded* history is
    /// generally **not** IVL — an update is acknowledged before it is
    /// visible — which is exactly the `n·b` relaxation the envelope
    /// advertises; strict history checks only apply at `b = 0`.
    pub write_buffer: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            backend: Backend::Threaded,
            shards: 8,
            alpha: 0.005,
            delta: 0.01,
            max_connections: 64,
            max_frame_len: protocol::DEFAULT_MAX_FRAME_LEN,
            record: false,
            seed: 1,
            write_buffer: 0,
            objects: vec![ObjectConfig::new("cm", ObjectKind::CountMin)],
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    cfg: ServerConfig,
    /// The served objects, routed by the object id in each frame.
    registry: ObjectRegistry,
    metrics: Metrics,
    recorder: Option<Recorder<(u64, u64), u64, u64>>,
    shutdown: AtomicBool,
    /// Condvar pair signalled by [`begin_shutdown`](Self::begin_shutdown)
    /// so [`ServerHandle::wait_for_shutdown`] can block without polling.
    shutdown_signal: (Mutex<bool>, Condvar),
    /// Pollers to wake on shutdown (event-loop backend; empty when
    /// threaded).
    wakers: Mutex<Vec<Arc<Poller>>>,
    /// Generation counter bumped whenever a shard lease returns to the
    /// pool, so [`ServerHandle::wait_for_free_shard`] can block on a
    /// condvar instead of sleep-polling the pool.
    lease_returned: (Mutex<u64>, Condvar),
    addr: SocketAddr,
}

impl Shared {
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::AcqRel) {
            let wakers = self.wakers.lock().expect("wakers lock");
            if wakers.is_empty() {
                // Threaded backend: unblock the blocking accept loop
                // with a throwaway connection; it re-checks the flag
                // before serving anything.
                let _ = TcpStream::connect(self.addr);
            } else {
                // Event-loop backend: wake every poller; accept loop
                // and reactors re-check the flag and drain.
                for poller in wakers.iter() {
                    let _ = poller.notify();
                }
            }
            drop(wakers);
            let (lock, cv) = &self.shutdown_signal;
            *lock.lock().expect("shutdown signal lock") = true;
            cv.notify_all();
        }
    }

    fn wait_for_shutdown(&self) {
        let (lock, cv) = &self.shutdown_signal;
        let mut requested = lock.lock().expect("shutdown signal lock");
        while !*requested {
            requested = cv.wait(requested).expect("shutdown signal wait");
        }
    }

    /// Registers a poller to be notified by [`begin_shutdown`]
    /// (event-loop backend startup).
    ///
    /// [`begin_shutdown`]: Self::begin_shutdown
    fn register_waker(&self, poller: Arc<Poller>) {
        self.wakers.lock().expect("wakers lock").push(poller);
    }

    /// Announces that a shard lease went back to the pool.
    fn note_lease_returned(&self) {
        let (lock, cv) = &self.lease_returned;
        *lock.lock().expect("lease signal lock") += 1;
        cv.notify_all();
    }
}

/// One writer thread's update state across every registered object:
/// per-object [`ObjectWriter`]s created lazily on the object's first
/// update. A connection thread is one writer in the threaded backend;
/// a reactor thread is one writer for all its connections in the
/// event-loop backend — either way at most `shards` concurrent writers
/// exist per CountMin (the lease pool gates them), which is what makes
/// the advertised `shards·b` lag a sound Lemma 10 bound.
struct WriterSet<'a> {
    shared: &'a Shared,
    writers: Vec<Option<Box<dyn ObjectWriter + 'a>>>,
}

impl<'a> WriterSet<'a> {
    fn new(shared: &'a Shared) -> Self {
        WriterSet {
            shared,
            writers: (0..shared.registry.len()).map(|_| None).collect(),
        }
    }

    /// This thread's writer for `object` (a validated registry index),
    /// created on first use.
    fn writer(&mut self, object: u32) -> &mut (dyn ObjectWriter + 'a) {
        let shared = self.shared;
        self.writers[object as usize]
            .get_or_insert_with(|| {
                shared
                    .registry
                    .get(object)
                    .expect("object id validated by caller")
                    .writer(&shared.metrics)
            })
            .as_mut()
    }

    /// Flushes every writer, returns leases to their pools, and wakes
    /// lease waiters. The flush-before-release order is the
    /// flush-on-drain guarantee: once a writer's lease is back in the
    /// pool, none of its acknowledged updates are still invisible.
    fn release(&mut self) {
        for slot in &mut self.writers {
            if let Some(mut w) = slot.take() {
                if w.release() {
                    self.shared.note_lease_returned();
                }
            }
        }
    }
}

impl std::fmt::Debug for WriterSet<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriterSet")
            .field("objects", &self.writers.len())
            .finish_non_exhaustive()
    }
}

/// A running server; dropping it initiates shutdown without draining.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    /// `Some` until [`join`](Self::join) consumes it (the handle has a
    /// `Drop` impl, so fields move out via `Option::take`).
    shared: Option<Arc<Shared>>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("cfg", &self.cfg)
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// Everything a drained server leaves behind.
#[derive(Debug)]
pub struct JoinedServer {
    /// Final metrics snapshot (including per-object rows).
    pub stats: StatsReport,
    /// The recorded history (when `record` was set): every update as
    /// `(key, weight)`, every query with its served envelope's
    /// checkable value, tagged with the object id it addressed —
    /// window supersets of the true operation intervals.
    pub history: Option<History<(u64, u64), u64, u64>>,
    /// The drained registry: every served object with its final state
    /// (every writer flushed before its lease returned — the
    /// flush-on-drain guarantee).
    pub registry: ObjectRegistry,
}

impl JoinedServer {
    /// The sequential spec of object 0's CountMin (carries the sampled
    /// hashes); feed it with `history` to `check_ivl_monotone` /
    /// `check_ivl_exact`.
    pub fn spec(&self) -> WeightedCmSpec {
        self.cm0().spec()
    }

    /// Object 0's drained sharded sketch.
    pub fn sketch(&self) -> &ShardedPcm {
        self.cm0().sketch()
    }

    fn cm0(&self) -> &crate::objects::ServedCountMin {
        self.registry.cm(0).expect("object 0 is always a CountMin")
    }

    /// Per-object verdicts for the recorded history (Theorem 1's
    /// locality as a table); `None` when recording was off.
    pub fn verdicts(&self) -> Option<Vec<ObjectVerdict>> {
        self.history.as_ref().map(|h| self.registry.verdicts(h))
    }
}

/// Binds `addr` and starts serving in background threads.
pub fn serve(addr: impl ToSocketAddrs, cfg: ServerConfig) -> io::Result<ServerHandle> {
    assert!(cfg.shards > 0, "need at least one shard");
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let registry = ObjectRegistry::build(
        &cfg.objects,
        cfg.alpha,
        cfg.delta,
        cfg.shards,
        cfg.write_buffer,
        cfg.seed,
    );
    let shared = Arc::new(Shared {
        registry,
        metrics: Metrics::new(),
        recorder: cfg.record.then(Recorder::new),
        shutdown: AtomicBool::new(false),
        shutdown_signal: (Mutex::new(false), Condvar::new()),
        wakers: Mutex::new(Vec::new()),
        lease_returned: (Mutex::new(0), Condvar::new()),
        addr: local,
        cfg,
    });
    let accept_shared = Arc::clone(&shared);
    let accept = match shared.cfg.backend {
        Backend::Threaded => thread::Builder::new()
            .name("ivl-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?,
        Backend::EventLoop => reactor::spawn(listener, accept_shared)?,
    };
    Ok(ServerHandle {
        addr: local,
        shared: Some(shared),
        accept: Some(accept),
    })
}

impl ServerHandle {
    fn shared(&self) -> &Shared {
        self.shared.as_ref().expect("present until join")
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The sketch dimensions of object 0's CountMin.
    pub fn params(&self) -> CountMinParams {
        self.shared()
            .registry
            .cm(0)
            .expect("object 0 is always a CountMin")
            .params()
    }

    /// A live metrics snapshot (same data `STATS` serves).
    pub fn stats(&self) -> StatsReport {
        let shared = self.shared();
        shared.metrics.report(
            shared.registry.total_observed(),
            shared.registry.stats_rows(),
        )
    }

    /// Stops accepting new connections; existing ones keep draining.
    pub fn shutdown(&self) {
        self.shared().begin_shutdown();
    }

    /// Blocks until shutdown is requested — by a client's `SHUTDOWN`
    /// frame or [`shutdown`](Self::shutdown). [`join`](Self::join)
    /// initiates shutdown itself; a standalone server that should run
    /// until told to stop waits here first.
    pub fn wait_for_shutdown(&self) {
        self.shared().wait_for_shutdown();
    }

    /// Blocks (condvar wakeup, no polling) until at least one shard is
    /// free to lease or `timeout` elapses; returns whether a shard was
    /// free when it woke. The answer is advisory — another client may
    /// win the shard first — so callers retry their update on `busy`.
    pub fn wait_for_free_shard(&self, timeout: Duration) -> bool {
        let shared = self.shared();
        let deadline = Instant::now() + timeout;
        let (lock, cv) = &shared.lease_returned;
        let mut generation = lock.lock().expect("lease signal lock");
        loop {
            if shared.registry.free_shards() > 0 {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _timed_out) = cv
                .wait_timeout(generation, deadline - now)
                .expect("lease signal wait");
            generation = next;
        }
    }

    /// Initiates shutdown, waits for every connection to drain, and
    /// returns final stats plus the recorded history.
    pub fn join(mut self) -> JoinedServer {
        self.shared().begin_shutdown();
        let conns = self
            .accept
            .take()
            .expect("join called once")
            .join()
            .expect("accept thread never panics");
        for c in conns {
            let _ = c.join();
        }
        let stats = self.stats();
        let shared = Arc::try_unwrap(self.shared.take().expect("present until join"))
            .unwrap_or_else(|_| panic!("all connection threads joined"));
        JoinedServer {
            stats,
            history: shared.recorder.map(Recorder::finish),
            registry: shared.registry,
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let (Some(shared), Some(_)) = (&self.shared, &self.accept) {
            shared.begin_shutdown();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> Vec<JoinHandle<()>> {
    let mut conns = Vec::new();
    let mut next_conn: u32 = 0;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if shared.metrics.active() >= shared.cfg.max_connections {
            shared.metrics.connection_rejected();
            let mut buf = Vec::new();
            Response::Error {
                code: ErrorCode::Busy,
                message: "connection limit reached".into(),
            }
            .encode(&mut buf);
            let mut stream = stream;
            let _ = stream.write_all(&buf);
            continue;
        }
        shared.metrics.connection_accepted();
        let conn = next_conn;
        next_conn = next_conn.wrapping_add(1);
        let conn_shared = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name(format!("ivl-conn-{conn}"))
            .spawn(move || {
                serve_connection(&conn_shared, stream, conn);
                conn_shared.metrics.connection_closed();
            })
            .expect("spawn connection thread");
        conns.push(handle);
    }
    conns
}

/// Per-connection (threaded backend) or per-reactor (event loop)
/// ingest scratch: the batch-frame items vector the fast-path decoder
/// fills in place, plus the response encode buffer the threaded
/// backend reuses across frames. Both grow to their high-water mark
/// once and then serve every further frame allocation-free.
#[derive(Debug, Default)]
struct IngestScratch {
    /// `decode_batch_into` target; capacity is amortized to the
    /// largest batch seen (at most `MAX_BATCH_ITEMS`).
    items: Vec<(u64, u64)>,
    /// Response encode buffer (threaded backend; the reactor pools
    /// outbox buffers per connection instead).
    out: Vec<u8>,
}

fn send(stream: &mut TcpStream, buf: &mut Vec<u8>, rsp: &Response) -> bool {
    buf.clear();
    rsp.encode(buf);
    stream.write_all(buf).is_ok()
}

fn serve_connection(shared: &Shared, stream: TcpStream, conn: u32) {
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = stream;
    let process = ProcessId(conn);
    // The connection's writer state, per object: for a CountMin, a
    // shard lease acquired lazily on first update and held (single
    // writer) until the connection ends, plus the local update buffer
    // when write buffering is on.
    let mut updater = WriterSet::new(shared);
    let mut applied: u64 = 0;
    // Resumable decoder + reusable scratch: the steady-state frame
    // loop below performs no heap allocation — bytes land in the
    // decoder's ring, batch items land in `scratch.items`, responses
    // encode into `scratch.out`.
    let mut decoder = FrameDecoder::new(shared.cfg.max_frame_len);
    let mut scratch = IngestScratch::default();
    'serve: loop {
        // Drain every complete frame already buffered before reading
        // more bytes from the socket.
        loop {
            let payload = match decoder.next_frame() {
                Ok(Some(p)) => p,
                Ok(None) => break,
                Err(e) => {
                    // The stream cannot be resynchronized (oversized
                    // or zero-length prefix). Report and close.
                    shared.metrics.record_protocol_error();
                    let _ = send(
                        &mut writer,
                        &mut scratch.out,
                        &Response::Error {
                            code: ErrorCode::Protocol,
                            message: e.to_string(),
                        },
                    );
                    break 'serve;
                }
            };
            shared.metrics.record_frame();
            // Batch-frame fast path: decode straight into the reusable
            // items vector and apply through the batch kernel, no
            // `Request` materialized. Everything else (including a
            // malformed batch) takes the full decoder.
            let (response, close) = match protocol::decode_batch_into(payload, &mut scratch.items) {
                Ok(Some(object)) => {
                    shared.metrics.record_batch();
                    (
                        apply_updates(
                            shared,
                            &mut updater,
                            &mut applied,
                            process,
                            object,
                            &scratch.items,
                        ),
                        false,
                    )
                }
                _ => match Request::decode(payload) {
                    Ok(request) => {
                        execute_request(shared, &mut updater, &mut applied, process, request)
                    }
                    Err(e) => {
                        // The frame was length-delimited, so the stream
                        // is still in sync: answer and keep serving.
                        shared.metrics.record_protocol_error();
                        (
                            Response::Error {
                                code: ErrorCode::Protocol,
                                message: e.to_string(),
                            },
                            false,
                        )
                    }
                },
            };
            if !send(&mut writer, &mut scratch.out, &response) || close {
                break 'serve;
            }
        }
        match decoder.read_from(&mut reader) {
            Ok(0) => break, // clean EOF
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break, // connection gone
        }
    }
    // Flush any buffered updates, then return leases to their pools.
    updater.release();
    // Half-close, then briefly drain the peer's in-flight bytes so the
    // final response frame is not clobbered by a reset. The timeout
    // bounds the wait when it is the server hanging up first — an
    // unbounded read here would hold the socket open until the peer
    // acted.
    let _ = writer.shutdown(std::net::Shutdown::Write);
    let _ = reader.set_read_timeout(Some(std::time::Duration::from_millis(50)));
    let _ = reader.read(&mut [0u8; 64]);
}

/// The refusal for a frame naming no registered object.
fn unknown_object(shared: &Shared, object: u32) -> Response {
    shared.metrics.record_protocol_error();
    Response::Error {
        code: ErrorCode::UnknownObject,
        message: format!(
            "no object {object} (registry has {})",
            shared.registry.len()
        ),
    }
}

/// Executes one decoded request against the shared registry and
/// returns `(response, close_after_send)`. Both backends funnel every
/// request through here, which is what makes IVL semantics
/// backend-invariant: the recorder calls, the per-object writer
/// discipline, and the envelope construction are literally the same
/// code.
fn execute_request<'a>(
    shared: &'a Shared,
    writers: &mut WriterSet<'a>,
    applied: &mut u64,
    process: ProcessId,
    request: Request,
) -> (Response, bool) {
    match request {
        Request::Update {
            object,
            key,
            weight,
        } => (
            apply_updates(shared, writers, applied, process, object, &[(key, weight)]),
            false,
        ),
        Request::Batch { object, items } => {
            shared.metrics.record_batch();
            (
                apply_updates(shared, writers, applied, process, object, &items),
                false,
            )
        }
        Request::Query { object, key } => {
            let Some(obj) = shared.registry.get(object) else {
                return (unknown_object(shared, object), false);
            };
            let start = Instant::now();
            let op = shared
                .recorder
                .as_ref()
                .map(|r| r.invoke_query(process, ObjectId(object), key));
            let envelope = obj.query(key);
            if let (Some(r), Some(op)) = (shared.recorder.as_ref(), op) {
                r.respond_query(op, envelope.value());
            }
            shared.metrics.record_query(start.elapsed().as_nanos());
            (Response::Envelope(envelope), false)
        }
        Request::Snapshot { object } => {
            // A snapshot is a read like a query (metrics count it as
            // one); it is not recorded into the history — the state it
            // returns is matrix-valued, and the replicated checker
            // works from per-replica histories plus merged projections
            // instead.
            let start = Instant::now();
            let Some(snap) = shared.registry.snapshot(object) else {
                return (unknown_object(shared, object), false);
            };
            shared.metrics.record_query(start.elapsed().as_nanos());
            (Response::Snapshot(snap), false)
        }
        Request::SnapshotSince { object, base_epoch } => {
            // Same read discipline as `Snapshot`: counted as a query,
            // not recorded — the delta is a compressed transport of
            // the same IVL read.
            let start = Instant::now();
            let Some(delta) = shared.registry.snapshot_since(object, base_epoch) else {
                return (unknown_object(shared, object), false);
            };
            shared.metrics.record_query(start.elapsed().as_nanos());
            (Response::SnapshotDelta(delta), false)
        }
        Request::PushState {
            object,
            observed,
            state,
        } => {
            // The anti-entropy write: merge a peer's pushed state into
            // the live served structure under the same single-writer
            // discipline as updates (a CountMin absorb holds a shard
            // lease). Not recorded into the history — the pushed
            // weight summarizes updates already recorded against the
            // peer, so recording the absorb would double-count them;
            // `ivl_check` sees the weight exactly once.
            let Some(obj) = shared.registry.get(object) else {
                return (unknown_object(shared, object), false);
            };
            let writer = writers.writer(object);
            if let Err(busy) = writer.ensure_ready() {
                shared.metrics.record_busy_rejection();
                return (
                    Response::Error {
                        code: ErrorCode::Busy,
                        message: busy.message,
                    },
                    false,
                );
            }
            match writer.absorb(&state, observed) {
                Ok(()) => {
                    shared.metrics.record_absorb();
                    (
                        Response::Absorbed {
                            object,
                            epoch: obj.epoch(),
                            observed,
                        },
                        false,
                    )
                }
                Err(e) => (
                    Response::Error {
                        code: ErrorCode::MergeMismatch,
                        message: format!("object {object}: {e}"),
                    },
                    false,
                ),
            }
        }
        Request::Stats => (
            Response::Stats(shared.metrics.report(
                shared.registry.total_observed(),
                shared.registry.stats_rows(),
            )),
            false,
        ),
        Request::Objects => (Response::Objects(shared.registry.infos()), false),
        Request::Shutdown => {
            shared.begin_shutdown();
            (Response::Goodbye, true)
        }
    }
}

/// Applies updates through this thread's writer for the target object,
/// readying it (for a CountMin: acquiring the shard lease) on first
/// use; answers `busy` when the object's writer pool is exhausted,
/// `unknown-object` when the id names nothing. With write buffering
/// on, CountMin updates coalesce into the writer's local buffer — the
/// acknowledgement (and recorded response) happens while the update
/// may still be invisible, which is the deferred visibility the
/// envelope's `lag` advertises. Each object's ingest counter is bumped
/// immediately either way: stream length counts *acknowledged* weight,
/// keeping error bounds conservative.
fn apply_updates<'a>(
    shared: &'a Shared,
    writers: &mut WriterSet<'a>,
    applied: &mut u64,
    process: ProcessId,
    object: u32,
    items: &[(u64, u64)],
) -> Response {
    if shared.registry.get(object).is_none() {
        return unknown_object(shared, object);
    }
    let writer = writers.writer(object);
    if let Err(busy) = writer.ensure_ready() {
        shared.metrics.record_busy_rejection();
        return Response::Error {
            code: ErrorCode::Busy,
            message: busy.message,
        };
    }
    let start = Instant::now();
    if let Some(recorder) = shared.recorder.as_ref() {
        // Recorded runs stay per-item: each update is its own history
        // operation, so `ivl_check` replays the exact stream the
        // client sent — batching is a transport detail the history
        // never sees.
        for &(key, weight) in items {
            let op = recorder.invoke_update(process, ObjectId(object), (key, weight));
            writer.apply(key, weight);
            recorder.respond_update(op);
        }
    } else if let [(key, weight)] = *items {
        writer.apply(key, weight);
    } else {
        // Batch kernel: coalesced, one hashing sweep, row-major cell
        // touches (per-object override; the default loops `apply`).
        writer.apply_batch(items);
    }
    shared
        .metrics
        .record_updates(items.len() as u64, start.elapsed().as_nanos());
    *applied += items.len() as u64;
    Response::Ack { applied: *applied }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn config(shards: usize, record: bool) -> ServerConfig {
        config_with(Backend::Threaded, shards, record)
    }

    fn config_with(backend: Backend, shards: usize, record: bool) -> ServerConfig {
        ServerConfig {
            backend,
            shards,
            record,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn updates_queries_and_stats_over_the_wire() {
        let h = serve("127.0.0.1:0", config(2, false)).unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        assert_eq!(c.update(7, 3).unwrap(), 1);
        assert_eq!(c.batch(&[(7, 2), (9, 5)]).unwrap(), 3);
        let env = c.query(7).unwrap();
        assert!(env.estimate >= 5, "estimate {} < true 5", env.estimate);
        assert_eq!(env.stream_len, 10);
        assert!(env.alpha > 0.0 && env.delta > 0.0);
        let stats = c.stats().unwrap();
        assert_eq!(stats.updates, 3);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.stream_len, 10);
        drop(c);
        let joined = h.join();
        assert_eq!(joined.stats.updates, 3);
        assert!(joined.history.is_none());
    }

    #[test]
    fn busy_when_all_shards_leased() {
        let h = serve("127.0.0.1:0", config(1, false)).unwrap();
        let mut a = Client::connect(h.addr()).unwrap();
        let mut b = Client::connect(h.addr()).unwrap();
        a.update(1, 1).unwrap();
        let err = b.update(2, 1).unwrap_err();
        assert!(
            matches!(
                &err,
                crate::client::ClientError::Server {
                    code: ErrorCode::Busy,
                    ..
                }
            ),
            "expected busy, got {err:?}"
        );
        // Queries are reads and never need a lease.
        assert!(b.query(1).unwrap().estimate >= 1);
        // Dropping the leasing connection frees the shard for b; the
        // condvar wakes us without polling.
        drop(a);
        assert!(
            h.wait_for_free_shard(Duration::from_secs(5)),
            "shard never freed"
        );
        b.update(2, 1).unwrap();
        assert_eq!(h.stats().busy_rejections, 1);
    }

    #[test]
    fn wait_for_free_shard_times_out_while_leased() {
        let h = serve("127.0.0.1:0", config(1, false)).unwrap();
        let mut a = Client::connect(h.addr()).unwrap();
        a.update(1, 1).unwrap();
        assert!(!h.wait_for_free_shard(Duration::from_millis(50)));
        drop(a);
        assert!(h.wait_for_free_shard(Duration::from_secs(5)));
    }

    #[test]
    fn malformed_frames_get_protocol_errors_not_closure() {
        let h = serve("127.0.0.1:0", config(1, false)).unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        // Unknown opcode in a well-delimited frame.
        s.write_all(&2u32.to_le_bytes()).unwrap();
        s.write_all(&[0x7f, 0x00]).unwrap();
        let payload = protocol::read_frame(&mut s, protocol::DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
            other => panic!("expected error, got {other:?}"),
        }
        // The connection survives: a valid request still works.
        let mut buf = Vec::new();
        Request::Query { object: 0, key: 1 }.encode(&mut buf);
        s.write_all(&buf).unwrap();
        let payload = protocol::read_frame(&mut s, protocol::DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Envelope(_)
        ));
        assert_eq!(h.stats().protocol_errors, 1);
        drop(s); // join drains: the client must hang up first
        h.join();
    }

    fn snapshots_serve_mergeable_state(backend: Backend) {
        use crate::objects::SnapshotState;
        let cfg = ServerConfig {
            objects: vec![
                ObjectConfig::new("cm", ObjectKind::CountMin),
                ObjectConfig::new("hll", ObjectKind::Hll),
            ],
            ..config_with(backend, 2, false)
        };
        let h = serve("127.0.0.1:0", cfg).unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        c.batch(&[(7, 2), (9, 5)]).unwrap();
        let snap = c.snapshot(0).unwrap();
        assert_eq!((snap.object, snap.kind), (0, ObjectKind::CountMin));
        match &snap.state {
            SnapshotState::CountMin { width, cells, .. } => {
                let row0: u64 = cells[..*width as usize].iter().sum();
                assert_eq!(row0, 7, "row 0 holds the whole stream weight");
            }
            other => panic!("wanted CountMin state, got {other:?}"),
        }
        match snap.envelope {
            crate::envelope::ErrorEnvelope::Frequency(env) => assert_eq!(env.stream_len, 7),
            other => panic!("wanted frequency envelope, got {other:?}"),
        }
        let snap = c.snapshot(1).unwrap();
        assert!(matches!(snap.state, SnapshotState::Hll { .. }));
        let err = c.snapshot(9).unwrap_err();
        assert!(
            matches!(
                &err,
                crate::client::ClientError::Server {
                    code: ErrorCode::UnknownObject,
                    ..
                }
            ),
            "expected unknown-object, got {err:?}"
        );
        drop(c);
        h.join();
    }

    #[test]
    fn snapshots_serve_mergeable_state_threaded() {
        snapshots_serve_mergeable_state(Backend::Threaded);
    }

    #[test]
    fn snapshots_serve_mergeable_state_event_loop() {
        snapshots_serve_mergeable_state(Backend::EventLoop);
    }

    fn push_state_absorbs_a_peer_snapshot(backend: Backend) {
        use crate::objects::SnapshotState;
        let objects = || {
            vec![
                ObjectConfig::new("cm", ObjectKind::CountMin),
                ObjectConfig::new("hits", ObjectKind::Hll),
                ObjectConfig::new("events", ObjectKind::Morris),
                ObjectConfig::new("low", ObjectKind::MinRegister),
            ]
        };
        let cfg = |seed| ServerConfig {
            objects: objects(),
            seed,
            ..config_with(backend, 2, false)
        };
        let ha = serve("127.0.0.1:0", cfg(1)).unwrap();
        let hb = serve("127.0.0.1:0", cfg(1)).unwrap();
        let mut a = Client::connect(ha.addr()).unwrap();
        let mut b = Client::connect(hb.addr()).unwrap();
        // Grow the two servers on disjoint streams.
        a.batch(&[(7, 2), (9, 5)]).unwrap();
        b.batch(&[(7, 3)]).unwrap();
        for x in 0..200u64 {
            a.object_id(1).update(x, 1).unwrap();
        }
        for x in 150..300u64 {
            b.object_id(1).update(x, 1).unwrap();
        }
        a.object_id(3).update(17, 1).unwrap();
        b.object_id(3).update(40, 1).unwrap();
        // Absorb every one of A's objects into B: afterward B answers
        // for the union of the two streams.
        for id in 0..4u32 {
            let snap = a.snapshot(id).unwrap();
            let observed = match id {
                0 => 7,
                1 => 200,
                2 => 0,
                _ => 1,
            };
            b.push_state(id, observed, snap.state).unwrap();
        }
        let env = b.query(7).unwrap();
        assert!(
            env.estimate >= 5,
            "union estimate {} < true 5",
            env.estimate
        );
        assert_eq!(env.stream_len, 10, "absorb credits the pushed weight");
        match b.object_id(1).query(0).unwrap() {
            crate::envelope::ErrorEnvelope::Cardinality {
                estimate, observed, ..
            } => {
                assert!(
                    (estimate - 300.0).abs() / 300.0 < 0.15,
                    "union cardinality {estimate} far from 300"
                );
                assert_eq!(observed, 350, "150 own updates plus 200 pushed");
            }
            other => panic!("wanted cardinality envelope, got {other:?}"),
        }
        match b.object_id(3).query(0).unwrap() {
            crate::envelope::ErrorEnvelope::Minimum { minimum, .. } => {
                assert_eq!(minimum, 17, "absorb joins the peer's minimum");
            }
            other => panic!("wanted minimum envelope, got {other:?}"),
        }
        let stats = b.stats().unwrap();
        assert_eq!(stats.absorbs, 4);
        assert_eq!(stats.updates, 152, "absorbs must not count as updates");

        // A peer grown from different coins is refused with a typed
        // merge-mismatch, not merged into nonsense.
        let hc = serve("127.0.0.1:0", cfg(2)).unwrap();
        let mut c = Client::connect(hc.addr()).unwrap();
        c.update(7, 1).unwrap();
        let alien = c.snapshot(0).unwrap();
        let err = b.push_state(0, 1, alien.state).unwrap_err();
        assert!(
            matches!(
                &err,
                crate::client::ClientError::Server {
                    code: ErrorCode::MergeMismatch,
                    ..
                }
            ),
            "expected merge-mismatch, got {err:?}"
        );
        // So is a state of the wrong kind entirely.
        let err = b
            .push_state(1, 0, SnapshotState::Morris { exponent: 3 })
            .unwrap_err();
        assert!(
            matches!(
                &err,
                crate::client::ClientError::Server {
                    code: ErrorCode::MergeMismatch,
                    ..
                }
            ),
            "expected kind mismatch, got {err:?}"
        );
        // And an unknown object id stays unknown-object.
        let err = b
            .push_state(9, 0, SnapshotState::Morris { exponent: 3 })
            .unwrap_err();
        assert!(matches!(
            &err,
            crate::client::ClientError::Server {
                code: ErrorCode::UnknownObject,
                ..
            }
        ));
        let stats = b.stats().unwrap();
        assert_eq!(stats.absorbs, 4, "refused pushes are not absorbed");
        drop((a, b, c));
        ha.join();
        hb.join();
        hc.join();
    }

    #[test]
    fn push_state_absorbs_a_peer_snapshot_threaded() {
        push_state_absorbs_a_peer_snapshot(Backend::Threaded);
    }

    #[test]
    fn push_state_absorbs_a_peer_snapshot_event_loop() {
        push_state_absorbs_a_peer_snapshot(Backend::EventLoop);
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("threaded".parse::<Backend>().unwrap(), Backend::Threaded);
        assert_eq!("event-loop".parse::<Backend>().unwrap(), Backend::EventLoop);
        assert_eq!("event_loop".parse::<Backend>().unwrap(), Backend::EventLoop);
        assert!("fibers".parse::<Backend>().is_err());
        assert_eq!(Backend::EventLoop.to_string(), "event-loop");
        assert_eq!(Backend::default(), Backend::Threaded);
    }

    #[test]
    fn event_loop_updates_queries_and_stats_over_the_wire() {
        let h = serve("127.0.0.1:0", config_with(Backend::EventLoop, 2, false)).unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        assert_eq!(c.update(7, 3).unwrap(), 1);
        assert_eq!(c.batch(&[(7, 2), (9, 5)]).unwrap(), 3);
        let env = c.query(7).unwrap();
        assert!(env.estimate >= 5, "estimate {} < true 5", env.estimate);
        assert_eq!(env.stream_len, 10);
        let stats = c.stats().unwrap();
        assert_eq!(stats.updates, 3);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.stream_len, 10);
        assert!(stats.wakeups > 0, "reactor served without waking?");
        assert!(stats.frames >= 4);
        drop(c);
        let joined = h.join();
        assert_eq!(joined.stats.updates, 3);
    }

    #[test]
    fn event_loop_multiplexes_more_connections_than_reactors() {
        // 2 reactors, 12 concurrent updating clients: every client
        // gets served (no busy — reactors share their lease across
        // connections), and the quiescent totals add up.
        let h = serve("127.0.0.1:0", config_with(Backend::EventLoop, 2, false)).unwrap();
        let addr = h.addr();
        let clients = 12u64;
        let per_client = 50u64;
        let threads: Vec<_> = (0..clients)
            .map(|t| {
                thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    for k in 0..per_client {
                        c.update(t, 1).unwrap();
                        if k % 10 == 0 {
                            let env = c.query(t).unwrap();
                            assert!(env.estimate <= env.stream_len);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = h.stats();
        assert_eq!(stats.updates, clients * per_client);
        assert_eq!(stats.stream_len, clients * per_client);
        assert_eq!(stats.accepted, clients);
        assert_eq!(stats.busy_rejections, 0);
        for t in 0..clients {
            let mut c = Client::connect(addr).unwrap();
            assert!(c.query(t).unwrap().estimate >= per_client, "key {t}");
        }
        h.join();
    }

    #[test]
    fn event_loop_pipelined_burst_exercises_write_backpressure() {
        // One client pipelines far more queries than the reactor's
        // write watermark holds, reading concurrently: the reactor
        // must pause decoding, flush, resume, and answer every frame
        // in order.
        let h = serve("127.0.0.1:0", config_with(Backend::EventLoop, 1, false)).unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        let mut reader = s.try_clone().unwrap();
        const BURST: usize = 10_000;
        let writer = thread::spawn(move || {
            let mut buf = Vec::new();
            for key in 0..BURST as u64 {
                buf.clear();
                Request::Query { object: 0, key }.encode(&mut buf);
                s.write_all(&buf).unwrap();
            }
            s // keep the socket open until responses are drained
        });
        for key in 0..BURST as u64 {
            let payload = protocol::read_frame(&mut reader, protocol::DEFAULT_MAX_FRAME_LEN)
                .unwrap()
                .expect("response per request");
            match Response::decode(&payload).unwrap() {
                Response::Envelope(env) => {
                    assert_eq!(env.frequency().unwrap().key, key, "responses in order")
                }
                other => panic!("expected envelope, got {other:?}"),
            }
        }
        drop(writer.join().unwrap());
        drop(reader);
        assert_eq!(h.stats().queries, BURST as u64);
        h.join();
    }

    #[test]
    fn event_loop_malformed_frames_get_protocol_errors_not_closure() {
        let h = serve("127.0.0.1:0", config_with(Backend::EventLoop, 1, false)).unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        // Unknown opcode in a well-delimited frame.
        s.write_all(&2u32.to_le_bytes()).unwrap();
        s.write_all(&[0x7f, 0x00]).unwrap();
        let payload = protocol::read_frame(&mut s, protocol::DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
            other => panic!("expected error, got {other:?}"),
        }
        // The connection survives: a valid request still works.
        let mut buf = Vec::new();
        Request::Query { object: 0, key: 1 }.encode(&mut buf);
        s.write_all(&buf).unwrap();
        let payload = protocol::read_frame(&mut s, protocol::DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Envelope(_)
        ));
        assert_eq!(h.stats().protocol_errors, 1);
        drop(s);
        h.join();
    }

    #[test]
    fn event_loop_oversized_frame_answers_then_closes() {
        let cfg = ServerConfig {
            max_frame_len: 64,
            ..config_with(Backend::EventLoop, 1, false)
        };
        let h = serve("127.0.0.1:0", cfg).unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        s.write_all(&1_000u32.to_le_bytes()).unwrap();
        let payload = protocol::read_frame(&mut s, protocol::DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
            other => panic!("expected error, got {other:?}"),
        }
        // The server half-closed after the error: reads hit EOF.
        assert_eq!(
            protocol::read_frame(&mut s, protocol::DEFAULT_MAX_FRAME_LEN).unwrap(),
            None
        );
        drop(s);
        h.join();
    }

    #[test]
    fn event_loop_shutdown_frame_drains_and_join_returns_history() {
        let h = serve("127.0.0.1:0", config_with(Backend::EventLoop, 2, true)).unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        c.update(3, 4).unwrap();
        c.query(3).unwrap();
        c.shutdown().unwrap();
        drop(c);
        let joined = h.join();
        let spec = joined.spec();
        let history = joined.history.expect("recording was on");
        let ops = history.operations();
        assert_eq!(ops.iter().filter(|o| o.op.is_update()).count(), 1);
        assert_eq!(ops.iter().filter(|o| !o.op.is_update()).count(), 1);
        assert!(ivl_spec::ivl::check_ivl_monotone(&spec, &history).is_ivl());
    }

    #[test]
    fn event_loop_join_without_connections_returns() {
        let h = serve("127.0.0.1:0", config_with(Backend::EventLoop, 4, false)).unwrap();
        let joined = h.join();
        assert_eq!(joined.stats.accepted, 0);
    }

    #[test]
    fn shutdown_frame_drains_and_join_returns_history() {
        let h = serve("127.0.0.1:0", config(2, true)).unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        c.update(3, 4).unwrap();
        c.query(3).unwrap();
        c.shutdown().unwrap();
        drop(c);
        let joined = h.join();
        let spec = joined.spec();
        let history = joined.history.expect("recording was on");
        let ops = history.operations();
        assert_eq!(ops.iter().filter(|o| o.op.is_update()).count(), 1);
        assert_eq!(ops.iter().filter(|o| !o.op.is_update()).count(), 1);
        assert!(ivl_spec::ivl::check_ivl_monotone(&spec, &history).is_ivl());
    }

    #[test]
    fn buffered_envelope_carries_lag_and_auto_flushes() {
        let cfg = ServerConfig {
            write_buffer: 4,
            ..config(2, false)
        };
        let h = serve("127.0.0.1:0", cfg).unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        for _ in 0..20 {
            c.update(9, 1).unwrap();
        }
        let env = c.query(9).unwrap();
        // lag = shards * b, independent of what is actually pending.
        assert_eq!(env.lag, 8);
        assert_eq!(env.upper_bound(), env.estimate + 8);
        // One writer holds < 4 weight, so at least 17 of 20 are visible.
        assert!(env.estimate >= 17, "estimate {} too stale", env.estimate);
        assert_eq!(env.stream_len, 20, "stream counts acknowledged weight");
        let stats = c.stats().unwrap();
        assert!(
            stats.flushes >= 5,
            "20 updates at b=4: {} flushes",
            stats.flushes
        );
        assert!(stats.buffered_pending < 4);
        drop(c);
        let joined = h.join();
        // Connection close flushed the remainder.
        assert_eq!(joined.stats.buffered_pending, 0);
        assert_eq!(joined.sketch().estimate(9), 20);
    }

    /// The flush-on-drain guarantee, end to end: a write buffer so
    /// large no auto-flush ever fires, concurrent clients, a graceful
    /// SHUTDOWN — and every acknowledged update is visible in the
    /// drained sketch.
    fn flush_on_drain_loses_nothing(backend: Backend) {
        let cfg = ServerConfig {
            write_buffer: 1 << 40,
            ..config_with(backend, 4, false)
        };
        let h = serve("127.0.0.1:0", cfg).unwrap();
        let addr = h.addr();
        let clients = 4u64;
        let per_client = 25u64;
        let threads: Vec<_> = (0..clients)
            .map(|t| {
                thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    for _ in 0..per_client {
                        c.update(t, 1).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut c = Client::connect(addr).unwrap();
        c.shutdown().unwrap();
        drop(c);
        let joined = h.join();
        assert_eq!(
            joined.stats.buffered_pending, 0,
            "drain must flush every writer buffer"
        );
        assert!(joined.stats.flushes >= 1);
        assert_eq!(
            joined.sketch().stream_len_estimate(),
            clients * per_client,
            "acknowledged weight lost through shutdown"
        );
        for t in 0..clients {
            assert!(
                joined.sketch().estimate(t) >= per_client,
                "key {t}: updates lost through shutdown"
            );
        }
    }

    #[test]
    fn flush_on_drain_loses_nothing_threaded() {
        flush_on_drain_loses_nothing(Backend::Threaded);
    }

    #[test]
    fn flush_on_drain_loses_nothing_event_loop() {
        flush_on_drain_loses_nothing(Backend::EventLoop);
    }
}
