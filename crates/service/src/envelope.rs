//! The IVL error envelope attached to every query response.
//!
//! The server's sketch is the sharded `PCM(c̄)` — IVL but not
//! linearizable. Theorem 6 is what makes a *served* estimate
//! meaningful despite concurrency: an IVL implementation of a
//! sequential (ε,δ)-bounded object is itself (ε,δ)-bounded, with the
//! sequential error bound read against `v_min` (the object's value
//! over completed updates when the query starts) and `v_max` (its
//! value over invoked updates when the query ends). For CountMin that
//! instantiates to
//!
//! * `estimate ≥ f_start` always — CountMin never underestimates, and
//!   by IVL the estimate dominates some state containing every update
//!   completed before the query began;
//! * `estimate ≤ f_end + ε` with probability at least `1 − δ`, where
//!   `ε = α·n` and `n` is the total stream weight at the query's end.
//!
//! With write buffering enabled (Lemma 10's batched-counter
//! construction, DESIGN §9) the server additionally widens the
//! envelope by a deterministic `lag ≤ n_writers·b`: an acknowledged
//! update may sit invisible in a writer's local buffer, so the lower
//! guarantee relaxes to `estimate ≥ f_start − lag`, equivalently
//! `f_start ≤ estimate + lag`. Queries on an unbuffered server carry
//! `lag = 0` and recover the strict envelope exactly.
//!
//! The envelope ships `(estimate, ε, δ, n, lag)` so the client can
//! reconstruct exactly that guarantee without knowing the sketch's
//! dimensions.

/// A frequency estimate together with its Theorem 6 (ε,δ) bound,
/// widened by the deferred-visibility `lag` when write buffering is
/// enabled (Lemma 10, DESIGN §9).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Envelope {
    /// The queried item.
    pub key: u64,
    /// The served point estimate.
    pub estimate: u64,
    /// Absolute error bound `⌈α·n⌉` at the query's stream length.
    pub epsilon: u64,
    /// Failure probability of the upper bound.
    pub delta: f64,
    /// Total stream weight observed by the server (an IVL read of the
    /// ingest counter, so itself an intermediate value).
    pub stream_len: u64,
    /// The sketch's relative-error parameter `α` (`ε = α·n`).
    pub alpha: f64,
    /// Deferred-visibility bound: at most this much acknowledged
    /// weight may still be invisible in writer-local buffers
    /// (`n_writers·b`; 0 when write buffering is off).
    pub lag: u64,
}

impl Envelope {
    /// Builds the envelope for `estimate` of `key` at stream length
    /// `stream_len`, under sketch parameters `(alpha, delta)`, with a
    /// deferred-visibility bound of `lag` (0 when the server applies
    /// every update before acknowledging it).
    pub fn new(key: u64, estimate: u64, stream_len: u64, alpha: f64, delta: f64, lag: u64) -> Self {
        Envelope {
            key,
            estimate,
            epsilon: (alpha * stream_len as f64).ceil() as u64,
            delta,
            stream_len,
            alpha,
            lag,
        }
    }

    /// Smallest true frequency compatible with the envelope's upper
    /// bound: `max(0, estimate − ε)`.
    pub fn lower_bound(&self) -> u64 {
        self.estimate.saturating_sub(self.epsilon)
    }

    /// Largest completed frequency compatible with the envelope:
    /// `estimate + lag`. Without buffering this is the estimate itself
    /// — CountMin never underestimates; with buffering, up to `lag`
    /// acknowledged weight may still be pending in writer buffers.
    pub fn upper_bound(&self) -> u64 {
        self.estimate + self.lag
    }

    /// The Theorem 6 check for a concurrent query: `f_start` is the
    /// key's true frequency over updates *completed* before the query
    /// was invoked, `f_end` over updates *invoked* before it returned.
    /// Deterministically `estimate ≥ f_start − lag` (Lemma 10 widens
    /// the lower guarantee by the buffered weight; `lag = 0` recovers
    /// `estimate ≥ f_start`); with probability `1 − δ`,
    /// `estimate ≤ f_end + ε`. Returns whether the served envelope
    /// satisfies both.
    pub fn covers(&self, f_start: u64, f_end: u64) -> bool {
        f_start <= self.estimate + self.lag && self.estimate <= f_end + self.epsilon
    }
}

/// The per-kind error envelope attached to every query response.
///
/// Each registered object kind answers queries with its own guarantee
/// form: the CountMin keeps the Theorem 6 [`Envelope`] unchanged; the
/// HLL, Morris, and min-register objects carry the bound shapes their
/// estimators actually admit. Every variant exposes `observed` — the
/// object's acknowledged update weight, itself an IVL read — and a
/// monotone `value()` used when recording histories, so each
/// projection stays checkable against a sequential spec (Theorem 1
/// locality, per object).
#[derive(Clone, Debug, PartialEq)]
pub enum ErrorEnvelope {
    /// CountMin frequency estimate with the (ε,δ) Theorem 6 bound.
    Frequency(Envelope),
    /// HLL cardinality estimate. `rel_std_err` is the estimator's
    /// relative standard error (`≈ 1.04/√registers`); `register_sum`
    /// is the monotone register-sum indicator the verdict checks.
    Cardinality {
        /// Bias-corrected cardinality estimate.
        estimate: f64,
        /// Relative standard error of the estimator.
        rel_std_err: f64,
        /// Number of registers backing the estimate.
        registers: u64,
        /// Sum of all register values at the served snapshot — the
        /// monotone functional recorded for IVL checking.
        register_sum: u64,
        /// Acknowledged update weight at the served snapshot.
        observed: u64,
    },
    /// Morris approximate count. The estimate derives from the
    /// monotone `exponent` via `((1+a)^x − 1)/a`; the coin flips live
    /// server-side, so the recorded checkable value is `observed`.
    ApproxCount {
        /// Unbiased count estimate derived from the exponent.
        estimate: f64,
        /// The counter's accuracy parameter `a`.
        a: f64,
        /// The monotone Morris exponent at the served snapshot.
        exponent: u32,
        /// Acknowledged update weight at the served snapshot.
        observed: u64,
    },
    /// Minimum key inserted so far (`u64::MAX` when empty) — exact
    /// but antitone, checked by the endpoint-sorting interval checker.
    Minimum {
        /// Smallest inserted key, `u64::MAX` when none.
        minimum: u64,
        /// Acknowledged update weight at the served snapshot.
        observed: u64,
    },
}

impl ErrorEnvelope {
    /// The object's acknowledged update weight at the served snapshot
    /// (the CountMin's `stream_len`).
    pub fn observed(&self) -> u64 {
        match self {
            ErrorEnvelope::Frequency(env) => env.stream_len,
            ErrorEnvelope::Cardinality { observed, .. }
            | ErrorEnvelope::ApproxCount { observed, .. }
            | ErrorEnvelope::Minimum { observed, .. } => *observed,
        }
    }

    /// The value recorded into query histories: a monotone (or, for
    /// the min register, antitone) integer functional of the object's
    /// update set, so every projection is checkable by the interval
    /// checker. Frequency → estimate, cardinality → register sum,
    /// approximate count → acknowledged weight (the exponent's coin
    /// flips live server-side, so the weight counter is the checkable
    /// functional), minimum → the minimum.
    pub fn value(&self) -> u64 {
        match self {
            ErrorEnvelope::Frequency(env) => env.estimate,
            ErrorEnvelope::Cardinality { register_sum, .. } => *register_sum,
            ErrorEnvelope::ApproxCount { observed, .. } => *observed,
            ErrorEnvelope::Minimum { minimum, .. } => *minimum,
        }
    }

    /// The Theorem 6 frequency envelope, when this is one.
    pub fn frequency(&self) -> Option<&Envelope> {
        match self {
            ErrorEnvelope::Frequency(env) => Some(env),
            _ => None,
        }
    }

    /// Composes per-replica envelopes of *partitioned* substreams into
    /// one envelope covering their union — the replication layer's
    /// merged answer ships this instead of inventing a bound.
    ///
    /// Soundness per kind, with every part's guarantee over its own
    /// substream:
    ///
    /// * **Frequency** — merged CountMin cells are cell-wise sums, so
    ///   the merged estimate is at most the sum of part estimates and
    ///   at least the union frequency. Summing `epsilon` terms is the
    ///   union bound over the parts' (ε,δ) events
    ///   (`⌈αΣnᵢ⌉ ≤ Σ⌈αnᵢ⌉`), `delta` adds (capped at 1), and
    ///   `stream_len`/`lag` add because the substreams and writer sets
    ///   are disjoint. Parts must agree on `key` and `alpha`.
    /// * **Cardinality** — register-wise max merging only grows
    ///   registers, so the max of part `register_sum`s (and of the
    ///   monotone-in-registers raw estimates) lower-bounds the merged
    ///   sketch; the caller re-estimates from merged registers for the
    ///   served value. Parts must agree on `registers` (same
    ///   precision) and `rel_std_err`.
    /// * **ApproxCount** — estimates add (each part counted a disjoint
    ///   substream); the composed `exponent` keeps the max as the
    ///   monotone indicator. Parts must agree on `a`.
    /// * **Minimum** — the union minimum is the min of part minima,
    ///   exactly.
    ///
    /// `observed` always sums: acknowledged weight over disjoint
    /// substreams is additive.
    ///
    /// # Errors
    ///
    /// [`ComposeError::Empty`] on an empty slice,
    /// [`ComposeError::KindMismatch`] when parts are different
    /// envelope kinds, [`ComposeError::ParamMismatch`] when parts
    /// disagree on a parameter that must be shared (key, alpha,
    /// register count, `a`).
    pub fn compose(parts: &[ErrorEnvelope]) -> Result<ErrorEnvelope, ComposeError> {
        let (first, rest) = parts.split_first().ok_or(ComposeError::Empty)?;
        match first {
            ErrorEnvelope::Frequency(head) => {
                let mut acc = *head;
                for part in rest {
                    let env = match part {
                        ErrorEnvelope::Frequency(env) => env,
                        _ => return Err(ComposeError::KindMismatch),
                    };
                    if env.key != acc.key {
                        return Err(ComposeError::ParamMismatch("key"));
                    }
                    if env.alpha != acc.alpha {
                        return Err(ComposeError::ParamMismatch("alpha"));
                    }
                    acc.estimate += env.estimate;
                    acc.epsilon += env.epsilon;
                    acc.delta = (acc.delta + env.delta).min(1.0);
                    acc.stream_len += env.stream_len;
                    acc.lag += env.lag;
                }
                Ok(ErrorEnvelope::Frequency(acc))
            }
            ErrorEnvelope::Cardinality {
                estimate,
                rel_std_err,
                registers,
                register_sum,
                observed,
            } => {
                let (mut est, mut sum, mut obs) = (*estimate, *register_sum, *observed);
                for part in rest {
                    let ErrorEnvelope::Cardinality {
                        estimate,
                        rel_std_err: rse,
                        registers: regs,
                        register_sum,
                        observed,
                    } = part
                    else {
                        return Err(ComposeError::KindMismatch);
                    };
                    if regs != registers {
                        return Err(ComposeError::ParamMismatch("registers"));
                    }
                    if rse != rel_std_err {
                        return Err(ComposeError::ParamMismatch("rel_std_err"));
                    }
                    est = est.max(*estimate);
                    sum = sum.max(*register_sum);
                    obs += observed;
                }
                Ok(ErrorEnvelope::Cardinality {
                    estimate: est,
                    rel_std_err: *rel_std_err,
                    registers: *registers,
                    register_sum: sum,
                    observed: obs,
                })
            }
            ErrorEnvelope::ApproxCount {
                estimate,
                a,
                exponent,
                observed,
            } => {
                let (mut est, mut exp, mut obs) = (*estimate, *exponent, *observed);
                for part in rest {
                    let ErrorEnvelope::ApproxCount {
                        estimate,
                        a: part_a,
                        exponent,
                        observed,
                    } = part
                    else {
                        return Err(ComposeError::KindMismatch);
                    };
                    if part_a != a {
                        return Err(ComposeError::ParamMismatch("a"));
                    }
                    est += estimate;
                    exp = exp.max(*exponent);
                    obs += observed;
                }
                Ok(ErrorEnvelope::ApproxCount {
                    estimate: est,
                    a: *a,
                    exponent: exp,
                    observed: obs,
                })
            }
            ErrorEnvelope::Minimum { minimum, observed } => {
                let (mut min, mut obs) = (*minimum, *observed);
                for part in rest {
                    let ErrorEnvelope::Minimum { minimum, observed } = part else {
                        return Err(ComposeError::KindMismatch);
                    };
                    min = min.min(*minimum);
                    obs += observed;
                }
                Ok(ErrorEnvelope::Minimum {
                    minimum: min,
                    observed: obs,
                })
            }
        }
    }
}

/// Why [`ErrorEnvelope::compose`] refused a part list.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ComposeError {
    /// No parts were given; there is no neutral envelope to return.
    Empty,
    /// Parts are different envelope kinds — their guarantees do not
    /// share a value domain.
    KindMismatch,
    /// Parts disagree on the named parameter that composition needs
    /// shared (same key, same sketch coins/dimensions).
    ParamMismatch(&'static str),
}

impl std::fmt::Display for ComposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComposeError::Empty => write!(f, "cannot compose an empty envelope list"),
            ComposeError::KindMismatch => write!(f, "cannot compose envelopes of different kinds"),
            ComposeError::ParamMismatch(which) => {
                write!(f, "cannot compose envelopes with mismatched {which}")
            }
        }
    }
}

impl std::error::Error for ComposeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_is_ceil_alpha_n() {
        let e = Envelope::new(1, 10, 1_000, 0.005, 0.01, 0);
        assert_eq!(e.epsilon, 5);
        let e = Envelope::new(1, 10, 1_001, 0.005, 0.01, 0);
        assert_eq!(e.epsilon, 6); // 5.005 rounds up
        let e = Envelope::new(1, 10, 0, 0.005, 0.01, 0);
        assert_eq!(e.epsilon, 0);
    }

    #[test]
    fn covers_matches_theorem6_window() {
        let e = Envelope::new(1, 10, 1_000, 0.005, 0.01, 0); // epsilon 5
        assert!(e.covers(10, 10)); // exact
        assert!(e.covers(5, 5)); // within +epsilon of f_end
        assert!(e.covers(10, 20)); // concurrent updates still arriving
        assert!(!e.covers(11, 20)); // would underestimate a completed update
        assert!(!e.covers(0, 4)); // overestimates beyond epsilon
    }

    #[test]
    fn lag_widens_only_the_lower_guarantee() {
        // Same parameters as above but lag 4: a completed update may
        // still be buffered, so f_start up to estimate + lag is fine.
        let e = Envelope::new(1, 10, 1_000, 0.005, 0.01, 4); // epsilon 5
        assert!(e.covers(14, 14)); // within the widened window
        assert!(!e.covers(15, 20)); // beyond estimate + lag
        assert!(!e.covers(0, 4)); // epsilon side is unchanged
        assert_eq!(e.upper_bound(), 14);
        assert_eq!(e.lower_bound(), 5); // lower bound is lag-independent
    }

    #[test]
    fn zero_lag_recovers_strict_upper_bound() {
        let strict = Envelope::new(1, 10, 1_000, 0.005, 0.01, 0);
        assert_eq!(strict.upper_bound(), strict.estimate);
    }

    #[test]
    fn bounds_are_ordered_and_saturating() {
        let e = Envelope::new(1, 3, 10_000, 0.005, 0.01, 0); // epsilon 50 > estimate
        assert_eq!(e.lower_bound(), 0);
        assert!(e.lower_bound() <= e.upper_bound());
    }

    #[test]
    fn error_envelope_exposes_observed_value_and_frequency() {
        let freq = ErrorEnvelope::Frequency(Envelope::new(7, 12, 1_000, 0.005, 0.01, 0));
        assert_eq!(freq.observed(), 1_000);
        assert_eq!(freq.value(), 12);
        assert_eq!(freq.frequency().unwrap().key, 7);

        let card = ErrorEnvelope::Cardinality {
            estimate: 99.5,
            rel_std_err: 0.016,
            registers: 4096,
            register_sum: 88,
            observed: 120,
        };
        assert_eq!((card.observed(), card.value()), (120, 88));
        assert!(card.frequency().is_none());

        let approx = ErrorEnvelope::ApproxCount {
            estimate: 30.0,
            a: 0.5,
            exponent: 9,
            observed: 31,
        };
        assert_eq!((approx.observed(), approx.value()), (31, 31));

        let min = ErrorEnvelope::Minimum {
            minimum: 4,
            observed: 17,
        };
        assert_eq!((min.observed(), min.value()), (17, 4));
    }

    #[test]
    fn compose_frequency_sums_terms_and_caps_delta() {
        let a = ErrorEnvelope::Frequency(Envelope::new(7, 12, 1_000, 0.005, 0.6, 2));
        let b = ErrorEnvelope::Frequency(Envelope::new(7, 5, 401, 0.005, 0.6, 1));
        let ErrorEnvelope::Frequency(c) = ErrorEnvelope::compose(&[a, b]).unwrap() else {
            panic!("kind preserved");
        };
        assert_eq!(c.key, 7);
        assert_eq!(c.estimate, 17);
        assert_eq!(c.epsilon, 5 + 3); // ⌈0.005·1000⌉ + ⌈0.005·401⌉
        assert_eq!(c.stream_len, 1_401);
        assert_eq!(c.lag, 3);
        assert_eq!(c.delta, 1.0); // union bound capped
    }

    #[test]
    fn compose_of_one_is_identity() {
        let env = ErrorEnvelope::Frequency(Envelope::new(3, 9, 100, 0.01, 0.05, 0));
        assert_eq!(
            ErrorEnvelope::compose(std::slice::from_ref(&env)).unwrap(),
            env
        );
    }

    #[test]
    fn compose_cardinality_maxes_monotone_parts_and_sums_observed() {
        let a = ErrorEnvelope::Cardinality {
            estimate: 90.0,
            rel_std_err: 0.016,
            registers: 4096,
            register_sum: 80,
            observed: 100,
        };
        let b = ErrorEnvelope::Cardinality {
            estimate: 120.0,
            rel_std_err: 0.016,
            registers: 4096,
            register_sum: 95,
            observed: 140,
        };
        let c = ErrorEnvelope::compose(&[a, b]).unwrap();
        let ErrorEnvelope::Cardinality {
            estimate,
            register_sum,
            observed,
            ..
        } = c
        else {
            panic!("kind preserved");
        };
        assert_eq!(estimate, 120.0);
        assert_eq!(register_sum, 95);
        assert_eq!(observed, 240);
    }

    #[test]
    fn compose_approx_count_sums_estimates() {
        let a = ErrorEnvelope::ApproxCount {
            estimate: 30.0,
            a: 0.5,
            exponent: 9,
            observed: 31,
        };
        let b = ErrorEnvelope::ApproxCount {
            estimate: 12.0,
            a: 0.5,
            exponent: 7,
            observed: 13,
        };
        let c = ErrorEnvelope::compose(&[a, b]).unwrap();
        assert_eq!(
            c,
            ErrorEnvelope::ApproxCount {
                estimate: 42.0,
                a: 0.5,
                exponent: 9,
                observed: 44,
            }
        );
    }

    #[test]
    fn compose_minimum_takes_the_min() {
        let a = ErrorEnvelope::Minimum {
            minimum: 9,
            observed: 4,
        };
        let b = ErrorEnvelope::Minimum {
            minimum: 3,
            observed: 6,
        };
        assert_eq!(
            ErrorEnvelope::compose(&[a, b]).unwrap(),
            ErrorEnvelope::Minimum {
                minimum: 3,
                observed: 10,
            }
        );
    }

    #[test]
    fn compose_rejects_empty_mixed_kinds_and_mismatched_params() {
        assert_eq!(ErrorEnvelope::compose(&[]), Err(ComposeError::Empty));
        let freq = ErrorEnvelope::Frequency(Envelope::new(1, 1, 10, 0.005, 0.01, 0));
        let min = ErrorEnvelope::Minimum {
            minimum: 1,
            observed: 1,
        };
        assert_eq!(
            ErrorEnvelope::compose(&[freq.clone(), min]),
            Err(ComposeError::KindMismatch)
        );
        let other_key = ErrorEnvelope::Frequency(Envelope::new(2, 1, 10, 0.005, 0.01, 0));
        assert_eq!(
            ErrorEnvelope::compose(&[freq.clone(), other_key]),
            Err(ComposeError::ParamMismatch("key"))
        );
        let other_alpha = ErrorEnvelope::Frequency(Envelope::new(1, 1, 10, 0.01, 0.01, 0));
        assert_eq!(
            ErrorEnvelope::compose(&[freq, other_alpha]),
            Err(ComposeError::ParamMismatch("alpha"))
        );
        let card = |regs: u64| ErrorEnvelope::Cardinality {
            estimate: 1.0,
            rel_std_err: 1.04 / (regs as f64).sqrt(),
            registers: regs,
            register_sum: 1,
            observed: 1,
        };
        assert_eq!(
            ErrorEnvelope::compose(&[card(4096), card(1024)]),
            Err(ComposeError::ParamMismatch("registers"))
        );
    }
}
