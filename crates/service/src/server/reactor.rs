//! The event-loop serving backend: a hand-rolled epoll reactor.
//!
//! Layout: one nonblocking accept thread plus `shards` reactor
//! threads, all driven by the vendored [`polling`] shim
//! (edge-triggered epoll + an eventfd waker). The accept thread
//! drains `accept` until `WouldBlock`, applies the connection-limit
//! gate, and hands sockets round-robin to reactor mailboxes. Each
//! reactor owns a slice of connections as explicit state machines:
//! reads go through the resumable [`FrameDecoder`] (so frames split
//! across arbitrary packet boundaries decode incrementally, zero-copy
//! from a reusable ring buffer), writes drain a backpressure-aware
//! queue with vectored writes.
//!
//! IVL semantics are backend-invariant by construction: every request
//! executes through [`super::execute_request`] — the same code the
//! threaded backend runs — against the same object registry. The
//! single-writer shard invariant holds because a reactor thread is the
//! sole owner of its (lazily acquired) per-object writers: where the
//! threaded backend has one CountMin lease per updating connection,
//! the reactor multiplexes all its connections over one lease per
//! CountMin, which is sound for exactly the reason Lemma 7 allows
//! batching — shard cells only ever see single-threaded
//! read-modify-write-back. With write buffering on, the reactor
//! thread is likewise one *writer*: its local update buffer serves
//! all its connections and is flushed before the lease returns at
//! drain, so graceful shutdown loses no acknowledged update.

use super::{apply_updates, execute_request, IngestScratch, Shared, WriterSet};
use crate::protocol::{self, ErrorCode, FrameDecoder, Request, Response, WireError};
use ivl_spec::history::ProcessId;
use polling::{Event, PollMode, Poller};
use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

/// Stop decoding a connection's requests once this many response
/// bytes are queued; the flush path resumes it as the queue drains.
/// Reads stop too, so the kernel receive window — not server memory —
/// absorbs a peer that outpaces its reads.
const HIGH_WATERMARK: usize = 256 * 1024;

/// Buffers per vectored write.
const MAX_IOVS: usize = 16;

/// Retired response buffers kept per connection for reuse; beyond
/// this they drop. Matches `MAX_IOVS`, the most buffers one flush can
/// retire at once.
const SPARE_RESPONSES: usize = 16;

/// The listener's key in the accept thread's poller.
const LISTENER_KEY: usize = 0;

/// One reactor's cross-thread handoff point.
struct Mailbox {
    poller: Arc<Poller>,
    /// Sockets handed over by the accept thread, with their global
    /// connection ids (= recording `ProcessId`s).
    inbox: Mutex<Vec<(TcpStream, u32)>>,
}

/// Starts the event-loop backend: reactor threads first, then the
/// accept thread, whose join handle yields the reactor handles (the
/// same shape the threaded backend's accept loop returns for its
/// connection threads, so `ServerHandle::join` is backend-agnostic).
pub(super) fn spawn(
    listener: TcpListener,
    shared: Arc<Shared>,
) -> io::Result<JoinHandle<Vec<JoinHandle<()>>>> {
    listener.set_nonblocking(true)?;
    let accept_poller = Arc::new(Poller::new()?);
    accept_poller.add(&listener, Event::readable(LISTENER_KEY), PollMode::Edge)?;
    shared.register_waker(Arc::clone(&accept_poller));
    let reactors = shared.cfg.shards.max(1);
    let mut mailboxes = Vec::with_capacity(reactors);
    let mut threads = Vec::with_capacity(reactors);
    for id in 0..reactors {
        let poller = Arc::new(Poller::new()?);
        shared.register_waker(Arc::clone(&poller));
        let mailbox = Arc::new(Mailbox {
            poller,
            inbox: Mutex::new(Vec::new()),
        });
        let thread_shared = Arc::clone(&shared);
        let thread_mailbox = Arc::clone(&mailbox);
        threads.push(
            thread::Builder::new()
                .name(format!("ivl-reactor-{id}"))
                .spawn(move || reactor_loop(&thread_shared, &thread_mailbox))?,
        );
        mailboxes.push(mailbox);
    }
    thread::Builder::new()
        .name("ivl-accept".into())
        .spawn(move || accept_loop(listener, &shared, &accept_poller, &mailboxes, threads))
}

/// Edge-triggered accept: wait for listener readiness, then accept
/// until `WouldBlock`.
fn accept_loop(
    listener: TcpListener,
    shared: &Shared,
    poller: &Poller,
    mailboxes: &[Arc<Mailbox>],
    threads: Vec<JoinHandle<()>>,
) -> Vec<JoinHandle<()>> {
    let mut events = Vec::new();
    let mut next_reactor = 0usize;
    let mut next_conn: u32 = 0;
    'serve: while !shared.shutdown.load(Ordering::Acquire) {
        events.clear();
        if poller.wait(&mut events, None).is_err() {
            break;
        }
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                break 'serve;
            }
            let stream = match listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => continue,
            };
            if shared.metrics.active() >= shared.cfg.max_connections {
                reject(stream, shared);
                continue;
            }
            shared.metrics.connection_accepted();
            let conn = next_conn;
            next_conn = next_conn.wrapping_add(1);
            let mailbox = &mailboxes[next_reactor % mailboxes.len()];
            next_reactor = next_reactor.wrapping_add(1);
            mailbox
                .inbox
                .lock()
                .expect("reactor inbox")
                .push((stream, conn));
            let _ = mailbox.poller.notify();
        }
    }
    threads
}

/// Turns a connection away at the accept gate (accepted sockets do
/// not inherit the listener's nonblocking mode, so this small write
/// is a plain blocking send).
fn reject(mut stream: TcpStream, shared: &Shared) {
    shared.metrics.connection_rejected();
    let mut buf = Vec::new();
    Response::Error {
        code: ErrorCode::Busy,
        message: "connection limit reached".into(),
    }
    .encode(&mut buf);
    let _ = stream.write_all(&buf);
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded responses awaiting the socket, oldest first.
    outbox: VecDeque<Vec<u8>>,
    /// Bytes of `outbox.front()` already written.
    cursor: usize,
    /// Total queued bytes (the backpressure watermark input).
    queued: usize,
    /// Cumulative applied updates (the `ACK` payload).
    applied: u64,
    process: ProcessId,
    /// Edge-triggered read readiness: set by an event, cleared only
    /// when a read returns `WouldBlock`.
    read_ready: bool,
    /// Edge-triggered write readiness, same discipline.
    write_ready: bool,
    /// Whether the poller registration currently includes writable
    /// interest. Kept readable-only while the outbox is empty: a
    /// request/response server's sockets are writable almost always,
    /// so standing writable interest turns every peer ACK into a
    /// spurious edge wakeup; interest is added only after a write
    /// actually blocks with bytes still queued.
    write_interest: bool,
    /// The peer's write side reached EOF.
    peer_closed: bool,
    /// Stop decoding requests; close once the outbox flushes.
    closing: bool,
    /// Our write side is shut down; discarding peer bytes until EOF
    /// so the final frames are not clobbered by a reset.
    draining: bool,
    /// Retired response buffers (cleared, capacity kept): a
    /// steady-state request/response exchange reuses these instead of
    /// allocating a fresh outbox buffer per response.
    spare: Vec<Vec<u8>>,
}

impl Conn {
    fn new(stream: TcpStream, conn: u32, max_frame_len: u32) -> Self {
        Conn {
            stream,
            decoder: FrameDecoder::new(max_frame_len),
            outbox: VecDeque::new(),
            cursor: 0,
            queued: 0,
            applied: 0,
            process: ProcessId(conn),
            // Bytes (or EOF) may predate registration; the first pump
            // probes both directions and lets `WouldBlock` say no.
            read_ready: true,
            write_ready: true,
            write_interest: false,
            peer_closed: false,
            closing: false,
            draining: false,
            spare: Vec::new(),
        }
    }

    fn enqueue(&mut self, rsp: &Response) {
        let mut buf = self.spare.pop().unwrap_or_default();
        rsp.encode(&mut buf);
        self.queued += buf.len();
        self.outbox.push_back(buf);
    }

    /// Vectored write until the outbox empties or the socket blocks;
    /// returns whether any bytes moved. The iovec array lives on the
    /// stack ([`IoSlice`] is `Copy`), so flushing allocates nothing.
    fn flush(&mut self) -> io::Result<bool> {
        const EMPTY: &[u8] = &[];
        let mut wrote = false;
        while !self.outbox.is_empty() && self.write_ready {
            let mut iovs = [IoSlice::new(EMPTY); MAX_IOVS];
            let mut n_iovs = 0;
            for (i, buf) in self.outbox.iter().take(MAX_IOVS).enumerate() {
                let skip = if i == 0 { self.cursor } else { 0 };
                iovs[i] = IoSlice::new(&buf[skip..]);
                n_iovs = i + 1;
            }
            match self.stream.write_vectored(&iovs[..n_iovs]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.consume(n);
                    wrote = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => self.write_ready = false,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(wrote)
    }

    /// Advances the outbox cursor past `n` written bytes, retiring
    /// fully written buffers into the spare pool for reuse.
    fn consume(&mut self, mut n: usize) {
        self.queued -= n;
        while n > 0 {
            let front_left = self
                .outbox
                .front()
                .expect("written bytes were queued")
                .len()
                - self.cursor;
            if n >= front_left {
                n -= front_left;
                self.cursor = 0;
                let mut buf = self.outbox.pop_front().expect("front exists");
                if self.spare.len() < SPARE_RESPONSES {
                    buf.clear();
                    self.spare.push(buf);
                }
            } else {
                self.cursor += n;
                n = 0;
            }
        }
    }
}

/// One reactor: adopts mailbox connections, then runs each ready
/// connection's state machine until it makes no further progress.
fn reactor_loop(shared: &Shared, mailbox: &Mailbox) {
    // The reactor's writer state: one lazily created writer per
    // registered object (for the CountMin, a shard lease plus the
    // local update buffer when write buffering is on) — held until
    // the reactor drains.
    let mut writer = WriterSet::new(shared);
    // Shared across this reactor's connections: the batch-frame fast
    // path decodes into it, one frame at a time.
    let mut scratch = IngestScratch::default();
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_key = LISTENER_KEY + 1;
    let mut events: Vec<Event> = Vec::new();
    let mut run: Vec<usize> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::Acquire)
            && conns.is_empty()
            && mailbox.inbox.lock().expect("reactor inbox").is_empty()
        {
            break;
        }
        events.clear();
        let ready = match mailbox.poller.wait(&mut events, None) {
            Ok(n) => n,
            Err(_) => break,
        };
        shared.metrics.record_wakeup(ready as u64);
        run.clear();
        let adopted = std::mem::take(&mut *mailbox.inbox.lock().expect("reactor inbox"));
        for (stream, conn) in adopted {
            let key = next_key;
            next_key += 1;
            if stream.set_nonblocking(true).is_err()
                || mailbox
                    .poller
                    .add(&stream, Event::readable(key), PollMode::Edge)
                    .is_err()
            {
                shared.metrics.connection_closed();
                continue;
            }
            let _ = stream.set_nodelay(true);
            conns.insert(key, Conn::new(stream, conn, shared.cfg.max_frame_len));
            run.push(key);
        }
        for ev in &events {
            if let Some(conn) = conns.get_mut(&ev.key) {
                if ev.readable {
                    conn.read_ready = true;
                }
                if ev.writable {
                    conn.write_ready = true;
                }
                run.push(ev.key);
            }
        }
        for &key in &run {
            let alive = match conns.get_mut(&key) {
                Some(conn) => pump(shared, &mut writer, &mut scratch, conn),
                None => continue,
            };
            if !alive {
                let conn = conns.remove(&key).expect("pumped above");
                let _ = mailbox.poller.delete(&conn.stream);
                shared.metrics.connection_closed();
                continue;
            }
            // Writable interest tracks the outbox: subscribe when a
            // blocked write left bytes queued (an edge will resume
            // the flush), drop back to readable-only once drained.
            // `EPOLL_CTL_MOD` re-arms, so readiness gained between
            // the failed write and this modify is still delivered.
            let conn = conns.get_mut(&key).expect("alive above");
            let want = !conn.outbox.is_empty() && !conn.write_ready;
            if want != conn.write_interest {
                conn.write_interest = want;
                let interest = if want {
                    Event::all(key)
                } else {
                    Event::readable(key)
                };
                let _ = mailbox
                    .poller
                    .modify(&conn.stream, interest, PollMode::Edge);
            }
        }
    }
    // Flush any buffered updates, then return the leases to their
    // pools — the event-loop half of the flush-on-drain guarantee.
    writer.release();
}

/// Drives one connection until it makes no further progress; returns
/// whether it stays alive. The cycle is flush → decode/execute →
/// read, repeated, so a response generated this pass still reaches
/// the wire this pass when the socket allows.
fn pump<'a>(
    shared: &'a Shared,
    writer: &mut WriterSet<'a>,
    scratch: &mut IngestScratch,
    conn: &mut Conn,
) -> bool {
    /// One decoded frame: either the batch fast path (items already
    /// in the reactor scratch) or a fully materialized request.
    enum Step {
        Batch(u32),
        Full(Result<Request, WireError>),
    }
    loop {
        let mut progressed = match conn.flush() {
            Ok(wrote) => wrote,
            Err(_) => return false,
        };
        // Decode and execute buffered frames while under the write
        // watermark.
        while !conn.closing && conn.queued < HIGH_WATERMARK {
            let step = match conn.decoder.next_frame() {
                // Batch-frame fast path: decode straight into the
                // reusable items vector, no `Request` materialized.
                // Anything else — including a malformed batch — goes
                // through the full decoder.
                Ok(Some(payload)) => match protocol::decode_batch_into(payload, &mut scratch.items)
                {
                    Ok(Some(object)) => Step::Batch(object),
                    _ => Step::Full(Request::decode(payload)),
                },
                Ok(None) => break,
                Err(e) => {
                    // Oversized or empty prefix: the stream cannot be
                    // resynchronized. Report and close, exactly like
                    // the threaded backend.
                    shared.metrics.record_protocol_error();
                    conn.enqueue(&Response::Error {
                        code: ErrorCode::Protocol,
                        message: e.to_string(),
                    });
                    conn.closing = true;
                    progressed = true;
                    break;
                }
            };
            shared.metrics.record_frame();
            progressed = true;
            match step {
                Step::Batch(object) => {
                    shared.metrics.record_batch();
                    let response = apply_updates(
                        shared,
                        writer,
                        &mut conn.applied,
                        conn.process,
                        object,
                        &scratch.items,
                    );
                    conn.enqueue(&response);
                }
                Step::Full(Ok(request)) => {
                    let (response, close) =
                        execute_request(shared, writer, &mut conn.applied, conn.process, request);
                    conn.enqueue(&response);
                    if close {
                        conn.closing = true;
                    }
                }
                Step::Full(Err(e)) => {
                    // Length-delimited, so still in sync: answer and
                    // keep serving.
                    shared.metrics.record_protocol_error();
                    conn.enqueue(&Response::Error {
                        code: ErrorCode::Protocol,
                        message: e.to_string(),
                    });
                }
            }
        }
        // Pull more bytes when the watermark allows.
        if !conn.closing && !conn.peer_closed && conn.read_ready && conn.queued < HIGH_WATERMARK {
            match conn.decoder.read_from(&mut conn.stream) {
                Ok(0) => {
                    conn.peer_closed = true;
                    conn.read_ready = false;
                    progressed = true;
                }
                Ok(_) => progressed = true,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => conn.read_ready = false,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => progressed = true,
                Err(_) => return false,
            }
        }
        // After a server-initiated half-close, discard peer bytes
        // until its EOF confirms the final frames were received.
        if conn.draining && conn.read_ready && !conn.peer_closed {
            let mut sink = [0u8; 4096];
            loop {
                match conn.stream.read(&mut sink) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break;
                    }
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        conn.read_ready = false;
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return false,
                }
            }
        }
        if !progressed {
            break;
        }
    }
    if conn.closing && conn.outbox.is_empty() && !conn.draining {
        // Everything (including the final GOODBYE or protocol error)
        // is on the wire: half-close and wait for the peer's EOF.
        let _ = conn.stream.shutdown(Shutdown::Write);
        conn.draining = true;
    }
    !(conn.peer_closed && conn.outbox.is_empty())
}
