//! `ivl-service`: serving the paper's sketches over a socket, with the
//! paper's guarantee attached to every answer.
//!
//! This crate turns the workspace's concurrent IVL machinery into a
//! small sharded subsystem:
//!
//! * [`objects`] — the served-object layer: an [`ObjectRegistry`] of
//!   named quantitative objects (CountMin, HyperLogLog, Morris,
//!   min-register), each implementing the [`ServedObject`] trait —
//!   its own write path, its own error-envelope form, its own
//!   per-projection IVL verdict.
//! * [`server`] — a TCP server routing requests through the registry,
//!   with two interchangeable backends ([`server::Backend`]):
//!   thread-per-connection blocking I/O, or a hand-rolled epoll event
//!   loop (`shards` reactor threads, edge-triggered nonblocking
//!   sockets, resumable frame decoding, vectored backpressure-aware
//!   writes). Either way each single-writer CountMin shard has
//!   exactly one writing thread, so ingest is plain atomic stores —
//!   no RMW, no lock — and the lease pool doubles as backpressure.
//! * [`protocol`] — a compact length-prefixed binary wire format.
//!   v1 frames (`UPDATE`/`QUERY`/`BATCH`/`STATS`/`SHUTDOWN`) address
//!   object 0; v2 frames (`UPDATE2`/`QUERY2`/`BATCH2`/`OBJECTS`/
//!   `SNAPSHOT`) carry an explicit object id, and object-0 requests
//!   still encode in v1 form byte for byte, so old clients and
//!   servers interoperate. `SNAPSHOT` serializes an object's
//!   mergeable state for the replication layer (`ivl-replica`), and
//!   `PUSH_STATE` carries a peer's state the other way — the absorb
//!   half of replica catch-up (anti-entropy). State bodies encode and
//!   decode through the [`MergeableState`] trait of `ivl-merge`, so
//!   their byte layout lives in exactly one place.
//! * [`envelope`] — every query answer carries an **IVL error
//!   envelope** ([`ErrorEnvelope`]): for the CountMin,
//!   `(estimate, ε, δ, n, lag)` with `ε = α·n`, the Theorem 6
//!   transfer of the sequential (ε,δ) bound to the concurrent serving
//!   setting; the other kinds carry the bound shapes their estimators
//!   admit.
//! * [`metrics`] — wait-free op counters and `log₂` latency
//!   histograms, themselves read IVL-style by `STATS`, now with
//!   per-object operation rows.
//! * [`wspec`] — the sequential specification of the default served
//!   object (weighted CountMin), so a recorded serving run can be
//!   replayed through [`ivl_spec`]'s IVL checkers.
//! * [`client`] — a blocking client library used by the `ivl_client`
//!   binary and the load generator in `ivl-bench`;
//!   [`Client::object`] resolves named handles to non-default
//!   objects.
//!
//! The point of the subsystem is the paper's thesis made operational:
//! because the backing sketches are IVL (not linearizable — no
//! synchronization on the update path), the server can promise clients
//! a *quantitative* bound instead of an ordering guarantee, and that
//! promise is mechanically checkable: run with
//! [`ServerConfig::record`], then project the returned history per
//! [`ivl_spec::history::ObjectId`] and check each projection against
//! its own spec ([`JoinedServer::verdicts`]) — Theorem 1's locality,
//! operationally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod envelope;
pub mod metrics;
pub mod objects;
pub mod protocol;
pub mod server;
pub mod wspec;

pub use client::{Client, ClientError, ObjectHandle};
pub use envelope::{ComposeError, Envelope, ErrorEnvelope};
// The mergeable-state layer (`ivl-merge`) this service serves over the
// wire: re-exported whole so servers, replicas, and tools name one
// vocabulary for kind-tagged state, merging, and absorption.
pub use ivl_merge::{
    merge_states, AbsorbSink, MergeError, MergePolicy, MergeableState, StatePatch,
};
pub use metrics::{Metrics, ObjectStats, StatsReport};
pub use objects::{
    cm_hash_fingerprint, hll_hash_fingerprint, slot_coins, CellRun, DeltaChange, ObjectConfig,
    ObjectInfo, ObjectKind, ObjectRegistry, ObjectSnapshot, ObjectVerdict, ServedObject,
    SnapshotDelta, SnapshotState,
};
pub use protocol::{ErrorCode, Request, Response, WireError};
pub use server::{serve, Backend, JoinedServer, ServerConfig, ServerHandle};
pub use wspec::WeightedCmSpec;
