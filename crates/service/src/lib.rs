//! `ivl-service`: serving the paper's sketches over a socket, with the
//! paper's guarantee attached to every answer.
//!
//! This crate turns the workspace's concurrent IVL machinery into a
//! small sharded subsystem:
//!
//! * [`server`] — a TCP server over a single
//!   [`ivl_concurrent::ShardedPcm`], with two interchangeable
//!   backends ([`server::Backend`]): thread-per-connection blocking
//!   I/O, or a hand-rolled epoll event loop (`shards` reactor
//!   threads, edge-triggered nonblocking sockets, resumable frame
//!   decoding, vectored backpressure-aware writes). Either way each
//!   single-writer shard has exactly one writing thread, so ingest is
//!   plain atomic stores — no RMW, no lock — and the lease pool
//!   doubles as backpressure.
//! * [`protocol`] — a compact length-prefixed binary wire format
//!   (`UPDATE`/`QUERY`/`BATCH`/`STATS`/`SHUTDOWN`).
//! * [`envelope`] — every query answer carries an **IVL error
//!   envelope**: `(estimate, ε, δ, n)` with `ε = α·n`, the Theorem 6
//!   transfer of CountMin's sequential (ε,δ) bound to the concurrent
//!   serving setting.
//! * [`metrics`] — wait-free op counters and `log₂` latency
//!   histograms, themselves read IVL-style by `STATS`.
//! * [`wspec`] — the sequential specification of the served object
//!   (weighted CountMin), so a recorded serving run can be replayed
//!   through [`ivl_spec`]'s IVL checkers.
//! * [`client`] — a blocking client library used by the `ivl_client`
//!   binary and the load generator in `ivl-bench`.
//!
//! The point of the subsystem is the paper's thesis made operational:
//! because the backing sketch is IVL (not linearizable — no
//! synchronization on the update path), the server can promise clients
//! a *quantitative* bound instead of an ordering guarantee, and that
//! promise is mechanically checkable: run with
//! [`ServerConfig::record`], then feed the returned history and spec
//! to [`ivl_spec::ivl::check_ivl_monotone`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod envelope;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod wspec;

pub use client::{Client, ClientError};
pub use envelope::Envelope;
pub use metrics::{Metrics, StatsReport};
pub use protocol::{ErrorCode, Request, Response, WireError};
pub use server::{serve, Backend, JoinedServer, ServerConfig, ServerHandle};
pub use wspec::WeightedCmSpec;
