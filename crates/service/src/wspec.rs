//! Sequential specification of the *served* object: a weighted
//! CountMin.
//!
//! The service's update is `(key, weight)` — `weight` occurrences
//! folded in at once (the paper's batched updates). This spec is
//! `CM(c̄)` lifted to that argument type: replaying a recorded server
//! history against it computes `τ` exactly, which is what
//! [`ivl_spec::ivl::check_ivl_monotone`] and
//! [`ivl_spec::ivl::check_ivl_exact`] need to verify a live serving
//! run. Weights are non-negative, cells only grow and batched updates
//! commute (they are cell additions), so the object is monotone and
//! the interval fast path applies.

use ivl_sketch::countmin::CountMin;
use ivl_sketch::FrequencySketch;
use ivl_spec::spec::{MonotoneSpec, ObjectSpec};

/// Sequential spec `CM(c̄)` with weighted updates `(key, weight)`.
#[derive(Clone, Debug)]
pub struct WeightedCmSpec {
    proto: CountMin,
}

impl WeightedCmSpec {
    /// Wraps an (empty) prototype sketch as the sequential spec.
    ///
    /// # Panics
    ///
    /// Panics if the prototype has ingested updates.
    pub fn new(proto: CountMin) -> Self {
        assert_eq!(proto.stream_len(), 0, "prototype must be empty");
        WeightedCmSpec { proto }
    }

    /// The prototype (empty) sketch.
    pub fn prototype(&self) -> &CountMin {
        &self.proto
    }
}

impl ObjectSpec for WeightedCmSpec {
    type Update = (u64, u64);
    type Query = u64;
    type Value = u64;
    type State = CountMin;

    fn initial_state(&self) -> CountMin {
        self.proto.clone()
    }

    fn apply_update(&self, state: &mut CountMin, &(key, weight): &(u64, u64)) {
        state.update_by(key, weight);
    }

    fn eval_query(&self, state: &CountMin, query: &u64) -> u64 {
        state.estimate(*query)
    }
}

impl MonotoneSpec for WeightedCmSpec {}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_sketch::countmin::CountMinParams;
    use ivl_sketch::CoinFlips;
    use ivl_spec::history::{HistoryBuilder, ObjectId, ProcessId};
    use ivl_spec::ivl::check_ivl_monotone;
    use ivl_spec::spec::tau;

    fn spec(seed: u64) -> WeightedCmSpec {
        let mut coins = CoinFlips::from_seed(seed);
        WeightedCmSpec::new(CountMin::new(
            CountMinParams {
                width: 16,
                depth: 2,
            },
            &mut coins,
        ))
    }

    #[test]
    fn weighted_update_equals_repeated_unit_updates() {
        let s = spec(1);
        let mut weighted = s.initial_state();
        s.apply_update(&mut weighted, &(7, 5));
        let mut unit = s.initial_state();
        for _ in 0..5 {
            unit.update(7);
        }
        assert_eq!(weighted.estimate(7), unit.estimate(7));
        assert_eq!(weighted.stream_len(), unit.stream_len());
    }

    #[test]
    fn sequential_weighted_history_is_ivl() {
        let s = spec(2);
        let mut replay = s.initial_state();
        let mut b = HistoryBuilder::<(u64, u64), u64, u64>::new();
        let p = ProcessId(0);
        let x = ObjectId(0);
        for up in [(1u64, 3u64), (2, 1), (1, 2)] {
            let u = b.invoke_update(p, x, up);
            b.respond_update(u);
            replay.update_by(up.0, up.1);
        }
        let q = b.invoke_query(p, x, 1);
        b.respond_query(q, replay.estimate(1));
        let h = b.finish();
        assert!(check_ivl_monotone(&s, &h).is_ivl());
        let t = tau(&s, &h);
        assert_eq!(*t.ret(q), replay.estimate(1));
    }
}
