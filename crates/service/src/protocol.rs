//! The wire protocol: compact length-prefixed binary frames.
//!
//! Every frame is a `u32` little-endian payload length followed by the
//! payload; the payload's first byte is the opcode, the rest the body.
//! All integers are little-endian, floats travel as IEEE-754 bit
//! patterns. The length prefix makes the stream self-delimiting, so a
//! malformed *body* never desynchronizes the connection: the server
//! answers with an [`ErrorCode::Protocol`] response and keeps reading
//! at the next frame boundary. Only a corrupted length prefix
//! (truncated or oversized) forces the connection closed.
//!
//! Two request generations share the stream (see README for the frame
//! tables). **v1** opcodes carry no object id and always address
//! object 0: `UPDATE` 0x01, `QUERY` 0x02, `BATCH` 0x03, `STATS` 0x04,
//! `SHUTDOWN` 0x05. **v2** opcodes lead their body with a `u32` object
//! id (a registry index): `OBJECTS` 0x06, `UPDATE2` 0x11, `QUERY2`
//! 0x12, `BATCH2` 0x13, `SNAPSHOT` 0x14, `SNAPSHOT_SINCE` 0x15,
//! `PUSH_STATE` 0x16. Encoding picks the generation by object id —
//! object 0 emits the v1 form byte-for-byte, so a registry-unaware
//! peer sees exactly the old protocol; decoding accepts both.
//! (`SNAPSHOT`, `SNAPSHOT_SINCE`, and `PUSH_STATE` are v2-only: the
//! replication layer that needs them always speaks v2.)
//! Response opcodes: `ACK` 0x81, `ENVELOPE` 0x82 (the legacy CountMin
//! frequency body), `ENVELOPE2` 0x83 (object-kind-tagged envelope
//! bodies for the other kinds), `STATS` 0x84, `GOODBYE` 0x85,
//! `OBJECTS` 0x86, `SNAPSHOT` 0x87 (an object's mergeable state — a
//! kind-tagged body carrying the raw cells/registers plus the object's
//! current envelope), `SNAPSHOT_DELTA` 0x88, `ABSORBED` 0x89 (a
//! `PUSH_STATE` was merged into the served object), `ERROR` 0xEE.
//!
//! Mergeable-state bodies (the kind-tagged cells/registers payloads of
//! `SNAPSHOT`/`SNAPSHOT_DELTA`/`PUSH_STATE`) are encoded and decoded
//! by the [`ivl_merge::MergeableState`] trait itself — the wire layer
//! only frames them, so a state's byte layout is defined exactly once.

use crate::envelope::{Envelope, ErrorEnvelope};
use crate::metrics::{ObjectStats, StatsReport};
use crate::objects::{
    CellRun, DeltaChange, ObjectInfo, ObjectKind, ObjectSnapshot, SnapshotDelta, SnapshotState,
};
use ivl_merge::MergeableState;
use std::fmt;
use std::io::{self, Read};

/// Frames larger than this are rejected by default (see
/// [`read_frame`]'s `max_len` parameter).
pub const DEFAULT_MAX_FRAME_LEN: u32 = 1 << 20;

/// A `BATCH` frame may carry at most this many `(key, weight)` pairs —
/// the protocol's bounded-queue knob: a client cannot enqueue
/// unbounded work with a single frame.
pub const MAX_BATCH_ITEMS: u32 = 4096;

/// Errors raised while framing or parsing the wire format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended in the middle of a length prefix or payload.
    Truncated,
    /// The length prefix announced more than `max` bytes.
    Oversized {
        /// Announced payload length.
        len: u32,
        /// The limit in force.
        max: u32,
    },
    /// The payload's first byte is not a known opcode.
    UnknownOpcode(u8),
    /// The body does not parse under its opcode's schema.
    Malformed(&'static str),
    /// An underlying I/O error (by kind; the connection is gone).
    Io(io::ErrorKind),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated mid-prefix or mid-payload"),
            WireError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            WireError::Malformed(why) => write!(f, "malformed frame body: {why}"),
            WireError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.kind())
        }
    }
}

/// Why the server refused a request (body of an error response).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// All sketch shards are leased to other connections; retry later.
    Busy,
    /// The request frame did not parse (see [`WireError`]).
    Protocol,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The frame's object id names no registered object.
    UnknownObject,
    /// Replica states cannot be merged: the peers disagree on sketch
    /// dimensions or hash coins (merging such sketches would be
    /// meaningless, so the refusal is typed instead of a panic).
    MergeMismatch,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Busy => 1,
            ErrorCode::Protocol => 2,
            ErrorCode::ShuttingDown => 3,
            ErrorCode::UnknownObject => 4,
            ErrorCode::MergeMismatch => 5,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            1 => Ok(ErrorCode::Busy),
            2 => Ok(ErrorCode::Protocol),
            3 => Ok(ErrorCode::ShuttingDown),
            4 => Ok(ErrorCode::UnknownObject),
            5 => Ok(ErrorCode::MergeMismatch),
            _ => Err(WireError::Malformed("unknown error code")),
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::Busy => write!(f, "busy"),
            ErrorCode::Protocol => write!(f, "protocol"),
            ErrorCode::ShuttingDown => write!(f, "shutting-down"),
            ErrorCode::UnknownObject => write!(f, "unknown-object"),
            ErrorCode::MergeMismatch => write!(f, "merge-mismatch"),
        }
    }
}

/// A client-to-server frame. Update, query, and batch requests address
/// one registered object by id; id 0 (always a CountMin) is the v1
/// compatibility target and encodes in the object-id-less v1 form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Ingest `weight` occurrences of `key` into `object`.
    Update {
        /// Target object id (registry index).
        object: u32,
        /// Item to count.
        key: u64,
        /// Occurrence count folded in by this update.
        weight: u64,
    },
    /// Ask `object` for `key`'s estimate with its IVL error envelope.
    Query {
        /// Target object id (registry index).
        object: u32,
        /// Item to estimate.
        key: u64,
    },
    /// Ingest many `(key, weight)` pairs into `object` under one frame
    /// (at most [`MAX_BATCH_ITEMS`]).
    Batch {
        /// Target object id (registry index).
        object: u32,
        /// The `(key, weight)` pairs to ingest, in order.
        items: Vec<(u64, u64)>,
    },
    /// Ask `object` for a mergeable snapshot of its state (raw
    /// cells/registers) together with its current error envelope —
    /// the replication layer's read primitive.
    Snapshot {
        /// Target object id (registry index).
        object: u32,
    },
    /// Ask `object` what changed since the client's cached epoch —
    /// answered by a `SNAPSHOT_DELTA_REPLY` carrying `Unchanged`, a
    /// sparse delta, or a full state. `u64::MAX` is the conventional
    /// no-cache base (never a real epoch, always answered full).
    SnapshotSince {
        /// Target object id (registry index).
        object: u32,
        /// The epoch of the client's cached state.
        base_epoch: u64,
    },
    /// Push a peer's mergeable state into `object` — the anti-entropy
    /// write primitive of replica catch-up: the server merges the
    /// carried state into the live served structure (cells add,
    /// registers max, scalars join) and credits `observed` toward the
    /// object's observed-weight counter. Answered by `ABSORBED`, or a
    /// typed [`ErrorCode::MergeMismatch`] refusal when the peer's
    /// dimensions or hash coins disagree. Not idempotent for additive
    /// kinds: a resent `PUSH_STATE` double-counts.
    PushState {
        /// Target object id (registry index).
        object: u32,
        /// Total observed weight the pushed state summarizes.
        observed: u64,
        /// The kind-tagged mergeable state to absorb.
        state: SnapshotState,
    },
    /// Ask for the server's operation counters and latency quantiles.
    Stats,
    /// Ask for the registry listing (id, kind, name per object).
    Objects,
    /// Stop accepting connections and drain.
    Shutdown,
}

/// A server-to-client frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// An update or batch was applied; `applied` is the connection's
    /// cumulative number of applied update operations.
    Ack {
        /// Updates applied on this connection so far.
        applied: u64,
    },
    /// Answer to a query: the estimate wrapped in the queried object's
    /// error envelope (frequency envelopes travel in the legacy v1
    /// frame, other kinds in the kind-tagged v2 frame).
    Envelope(ErrorEnvelope),
    /// Answer to a snapshot request: the object's mergeable state
    /// plus its current envelope.
    Snapshot(ObjectSnapshot),
    /// Answer to a snapshot-since request: the change against the
    /// client's base epoch plus the envelope in force.
    SnapshotDelta(SnapshotDelta),
    /// Answer to a push-state request: the pushed state was merged
    /// into the served object.
    Absorbed {
        /// The object that absorbed the state.
        object: u32,
        /// The object's epoch after the merge (a raising absorb moves
        /// it, so cached snapshots notice).
        epoch: u64,
        /// The observed weight credited by this absorb.
        observed: u64,
    },
    /// Answer to a stats request.
    Stats(StatsReport),
    /// Answer to an objects request: the registry listing.
    Objects(Vec<ObjectInfo>),
    /// Acknowledges a shutdown request; the connection closes after.
    Goodbye,
    /// The request was refused.
    Error {
        /// Machine-readable refusal class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

const OP_UPDATE: u8 = 0x01;
const OP_QUERY: u8 = 0x02;
const OP_BATCH: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_SHUTDOWN: u8 = 0x05;
const OP_OBJECTS: u8 = 0x06;
const OP_UPDATE2: u8 = 0x11;
const OP_QUERY2: u8 = 0x12;
const OP_BATCH2: u8 = 0x13;
const OP_SNAPSHOT: u8 = 0x14;
const OP_SNAPSHOT_SINCE: u8 = 0x15;
const OP_PUSH_STATE: u8 = 0x16;
const OP_ACK: u8 = 0x81;
const OP_ENVELOPE: u8 = 0x82;
const OP_ENVELOPE2: u8 = 0x83;
const OP_STATS_REPLY: u8 = 0x84;
const OP_GOODBYE: u8 = 0x85;
const OP_OBJECTS_REPLY: u8 = 0x86;
const OP_SNAPSHOT_REPLY: u8 = 0x87;
const OP_SNAPSHOT_DELTA_REPLY: u8 = 0x88;
const OP_ABSORBED: u8 = 0x89;
const OP_ERROR: u8 = 0xEE;

/// Change tags of the `SNAPSHOT_DELTA_REPLY` body (one per
/// [`DeltaChange`] variant; which sparse tag is legal depends on the
/// reply's object kind — CountMin runs for CountMin, a register range
/// for HLL, and epoch-only objects only ever ship `Unchanged`/full).
const DELTA_UNCHANGED: u8 = 0;
const DELTA_CM_RUNS: u8 = 1;
const DELTA_HLL_RANGE: u8 = 2;
const DELTA_FULL: u8 = 3;

/// Kind tags of the kind-tagged envelope body shared by `ENVELOPE2`
/// and the `SNAPSHOT` reply (one per [`ErrorEnvelope`] variant; an
/// *encoded* `ENVELOPE2` never carries `ENV_FREQUENCY` — frequency
/// rides the legacy `ENVELOPE` — but decoding accepts it anywhere the
/// tagged body appears).
const ENV_FREQUENCY: u8 = 0;
const ENV_CARDINALITY: u8 = 1;
const ENV_APPROX_COUNT: u8 = 2;
const ENV_MINIMUM: u8 = 3;

/// Sequential reader over a frame body with schema-error reporting.
struct Body<'a> {
    rest: &'a [u8],
}

impl<'a> Body<'a> {
    fn new(rest: &'a [u8]) -> Self {
        Body { rest }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let (&b, rest) = self
            .rest
            .split_first()
            .ok_or(WireError::Malformed("body shorter than its schema"))?;
        self.rest = rest;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        if self.rest.len() < 4 {
            return Err(WireError::Malformed("body shorter than its schema"));
        }
        let (head, rest) = self.rest.split_at(4);
        self.rest = rest;
        Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        if self.rest.len() < 8 {
            return Err(WireError::Malformed("body shorter than its schema"));
        }
        let (head, rest) = self.rest.split_at(8);
        self.rest = rest;
        Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after body"))
        }
    }
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// The legacy `ENVELOPE` body field order (also the `ENV_FREQUENCY`
/// tagged-body payload).
fn push_frequency_body(buf: &mut Vec<u8>, env: &Envelope) {
    push_u64(buf, env.key);
    push_u64(buf, env.estimate);
    push_u64(buf, env.epsilon);
    push_u64(buf, env.stream_len);
    push_u64(buf, env.alpha.to_bits());
    push_u64(buf, env.delta.to_bits());
    push_u64(buf, env.lag);
}

fn read_frequency_body(b: &mut Body<'_>) -> Result<Envelope, WireError> {
    Ok(Envelope {
        key: b.u64()?,
        estimate: b.u64()?,
        epsilon: b.u64()?,
        stream_len: b.u64()?,
        alpha: b.f64()?,
        delta: b.f64()?,
        lag: b.u64()?,
    })
}

/// Appends a kind-tagged envelope body (`ENV_*` tag byte + fields) —
/// the shared sub-encoding of `ENVELOPE2` and the `SNAPSHOT` reply.
fn push_envelope(buf: &mut Vec<u8>, env: &ErrorEnvelope) {
    match env {
        ErrorEnvelope::Frequency(env) => {
            buf.push(ENV_FREQUENCY);
            push_frequency_body(buf, env);
        }
        ErrorEnvelope::Cardinality {
            estimate,
            rel_std_err,
            registers,
            register_sum,
            observed,
        } => {
            buf.push(ENV_CARDINALITY);
            push_u64(buf, estimate.to_bits());
            push_u64(buf, rel_std_err.to_bits());
            push_u64(buf, *registers);
            push_u64(buf, *register_sum);
            push_u64(buf, *observed);
        }
        ErrorEnvelope::ApproxCount {
            estimate,
            a,
            exponent,
            observed,
        } => {
            buf.push(ENV_APPROX_COUNT);
            push_u64(buf, estimate.to_bits());
            push_u64(buf, a.to_bits());
            push_u32(buf, *exponent);
            push_u64(buf, *observed);
        }
        ErrorEnvelope::Minimum { minimum, observed } => {
            buf.push(ENV_MINIMUM);
            push_u64(buf, *minimum);
            push_u64(buf, *observed);
        }
    }
}

/// Reads a kind-tagged envelope body written by [`push_envelope`].
fn read_envelope(b: &mut Body<'_>) -> Result<ErrorEnvelope, WireError> {
    Ok(match b.u8()? {
        ENV_FREQUENCY => ErrorEnvelope::Frequency(read_frequency_body(b)?),
        ENV_CARDINALITY => ErrorEnvelope::Cardinality {
            estimate: b.f64()?,
            rel_std_err: b.f64()?,
            registers: b.u64()?,
            register_sum: b.u64()?,
            observed: b.u64()?,
        },
        ENV_APPROX_COUNT => ErrorEnvelope::ApproxCount {
            estimate: b.f64()?,
            a: b.f64()?,
            exponent: b.u32()?,
            observed: b.u64()?,
        },
        ENV_MINIMUM => ErrorEnvelope::Minimum {
            minimum: b.u64()?,
            observed: b.u64()?,
        },
        _ => return Err(WireError::Malformed("unknown envelope kind tag")),
    })
}

/// Appends one whole frame (prefix + opcode + body) built by `body` to
/// `buf`.
fn frame(buf: &mut Vec<u8>, opcode: u8, body: impl FnOnce(&mut Vec<u8>)) {
    let prefix_at = buf.len();
    push_u32(buf, 0); // patched below
    buf.push(opcode);
    body(buf);
    let payload_len = (buf.len() - prefix_at - 4) as u32;
    buf[prefix_at..prefix_at + 4].copy_from_slice(&payload_len.to_le_bytes());
}

impl Request {
    /// Appends this request as one frame to `buf`. Requests addressing
    /// object 0 emit the v1 (object-id-less) opcodes byte-for-byte;
    /// any other object id emits the v2 opcode with the id leading the
    /// body.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Update {
                object: 0,
                key,
                weight,
            } => frame(buf, OP_UPDATE, |b| {
                push_u64(b, *key);
                push_u64(b, *weight);
            }),
            Request::Update {
                object,
                key,
                weight,
            } => frame(buf, OP_UPDATE2, |b| {
                push_u32(b, *object);
                push_u64(b, *key);
                push_u64(b, *weight);
            }),
            Request::Query { object: 0, key } => frame(buf, OP_QUERY, |b| push_u64(b, *key)),
            Request::Query { object, key } => frame(buf, OP_QUERY2, |b| {
                push_u32(b, *object);
                push_u64(b, *key);
            }),
            Request::Batch { object, items } => {
                let (op, object) = if *object == 0 {
                    (OP_BATCH, None)
                } else {
                    (OP_BATCH2, Some(*object))
                };
                frame(buf, op, |b| {
                    if let Some(id) = object {
                        push_u32(b, id);
                    }
                    push_u32(b, items.len() as u32);
                    for (k, w) in items {
                        push_u64(b, *k);
                        push_u64(b, *w);
                    }
                })
            }
            Request::Snapshot { object } => frame(buf, OP_SNAPSHOT, |b| push_u32(b, *object)),
            Request::SnapshotSince { object, base_epoch } => frame(buf, OP_SNAPSHOT_SINCE, |b| {
                push_u32(b, *object);
                push_u64(b, *base_epoch);
            }),
            Request::PushState {
                object,
                observed,
                state,
            } => frame(buf, OP_PUSH_STATE, |b| {
                push_u32(b, *object);
                b.push(state.kind().to_u8());
                push_u64(b, *observed);
                push_snapshot_state(b, state);
            }),
            Request::Stats => frame(buf, OP_STATS, |_| {}),
            Request::Objects => frame(buf, OP_OBJECTS, |_| {}),
            Request::Shutdown => frame(buf, OP_SHUTDOWN, |_| {}),
        }
    }

    /// Parses a request from a frame payload (opcode + body). v1
    /// opcodes decode with `object: 0`.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut b = Body::new(payload);
        let req = match b.u8()? {
            OP_UPDATE => Request::Update {
                object: 0,
                key: b.u64()?,
                weight: b.u64()?,
            },
            OP_UPDATE2 => Request::Update {
                object: b.u32()?,
                key: b.u64()?,
                weight: b.u64()?,
            },
            OP_QUERY => Request::Query {
                object: 0,
                key: b.u64()?,
            },
            OP_QUERY2 => Request::Query {
                object: b.u32()?,
                key: b.u64()?,
            },
            op @ (OP_BATCH | OP_BATCH2) => {
                let object = if op == OP_BATCH2 { b.u32()? } else { 0 };
                let count = b.u32()?;
                if count > MAX_BATCH_ITEMS {
                    return Err(WireError::Malformed("batch exceeds MAX_BATCH_ITEMS"));
                }
                // Cap the pre-allocation: `count` is validated against
                // MAX_BATCH_ITEMS above, but a hostile length should
                // never size an allocation before the body bytes back
                // it up (same pattern as the objects-list decode).
                let mut items = Vec::with_capacity((count as usize).min(1024));
                for _ in 0..count {
                    items.push((b.u64()?, b.u64()?));
                }
                Request::Batch { object, items }
            }
            OP_SNAPSHOT => Request::Snapshot { object: b.u32()? },
            OP_SNAPSHOT_SINCE => Request::SnapshotSince {
                object: b.u32()?,
                base_epoch: b.u64()?,
            },
            OP_PUSH_STATE => {
                let object = b.u32()?;
                let kind = ObjectKind::from_u8(b.u8()?)
                    .ok_or(WireError::Malformed("unknown object kind tag"))?;
                let observed = b.u64()?;
                let state = read_snapshot_state(&mut b, kind)?;
                Request::PushState {
                    object,
                    observed,
                    state,
                }
            }
            OP_STATS => Request::Stats,
            OP_OBJECTS => Request::Objects,
            OP_SHUTDOWN => Request::Shutdown,
            op => return Err(WireError::UnknownOpcode(op)),
        };
        b.finish()?;
        Ok(req)
    }

    /// The object id this request addresses, when it addresses one.
    pub fn object(&self) -> Option<u32> {
        match self {
            Request::Update { object, .. }
            | Request::Query { object, .. }
            | Request::Batch { object, .. }
            | Request::Snapshot { object }
            | Request::SnapshotSince { object, .. }
            | Request::PushState { object, .. } => Some(*object),
            Request::Stats | Request::Objects | Request::Shutdown => None,
        }
    }
}

/// Batch-frame fast path: decodes a `BATCH`/`BATCH2` payload into a
/// caller-owned items vector instead of a fresh [`Request::Batch`]
/// allocation per frame. Returns `Ok(Some(object))` on a batch frame
/// (with `items` cleared and refilled), `Ok(None)` when the payload is
/// some other opcode (untouched — route it through
/// [`Request::decode`]), and the same [`WireError`]s as the full
/// decoder on a malformed batch. Growth of `items` is amortized: after
/// one maximum-size frame (`MAX_BATCH_ITEMS`), steady-state decoding
/// allocates nothing.
pub fn decode_batch_into(
    payload: &[u8],
    items: &mut Vec<(u64, u64)>,
) -> Result<Option<u32>, WireError> {
    let mut b = Body::new(payload);
    let op = b.u8()?;
    if op != OP_BATCH && op != OP_BATCH2 {
        return Ok(None);
    }
    let object = if op == OP_BATCH2 { b.u32()? } else { 0 };
    let count = b.u32()?;
    if count > MAX_BATCH_ITEMS {
        return Err(WireError::Malformed("batch exceeds MAX_BATCH_ITEMS"));
    }
    items.clear();
    items.reserve((count as usize).min(1024));
    for _ in 0..count {
        items.push((b.u64()?, b.u64()?));
    }
    b.finish()?;
    Ok(Some(object))
}

/// Writes the kind-implied snapshot state body shared by the
/// `SNAPSHOT_REPLY` frame, the full-change arm of the
/// `SNAPSHOT_DELTA_REPLY` frame, and the `PUSH_STATE` request — a
/// framing shim over [`MergeableState::encode_into`], which owns the
/// byte layout.
fn push_snapshot_state(b: &mut Vec<u8>, state: &SnapshotState) {
    state.encode_into(b);
}

/// Reads a snapshot state body for `kind` (the inverse of
/// [`push_snapshot_state`]) — a framing shim over
/// [`MergeableState::decode_from`], which guards every allocation
/// against lying dimension headers.
fn read_snapshot_state(b: &mut Body<'_>, kind: ObjectKind) -> Result<SnapshotState, WireError> {
    let mut rest = b.rest;
    let state = SnapshotState::decode_from(kind, &mut rest).map_err(WireError::Malformed)?;
    b.rest = rest;
    Ok(state)
}

impl Response {
    /// Appends this response as one frame to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Ack { applied } => frame(buf, OP_ACK, |b| push_u64(b, *applied)),
            // Frequency keeps the legacy untagged `ENVELOPE` frame so
            // v1 peers see byte-identical responses; every other kind
            // (and the snapshot reply) uses the kind-tagged body.
            Response::Envelope(ErrorEnvelope::Frequency(env)) => {
                frame(buf, OP_ENVELOPE, |b| push_frequency_body(b, env))
            }
            Response::Envelope(env) => frame(buf, OP_ENVELOPE2, |b| push_envelope(b, env)),
            Response::Snapshot(snap) => frame(buf, OP_SNAPSHOT_REPLY, |b| {
                push_u32(b, snap.object);
                b.push(snap.kind.to_u8());
                push_snapshot_state(b, &snap.state);
                push_envelope(b, &snap.envelope);
            }),
            Response::SnapshotDelta(delta) => frame(buf, OP_SNAPSHOT_DELTA_REPLY, |b| {
                push_u32(b, delta.object);
                b.push(delta.kind.to_u8());
                push_u64(b, delta.epoch);
                match &delta.change {
                    DeltaChange::Unchanged => b.push(DELTA_UNCHANGED),
                    DeltaChange::CmRuns { base_epoch, runs } => {
                        b.push(DELTA_CM_RUNS);
                        push_u64(b, *base_epoch);
                        push_u32(b, runs.len() as u32);
                        for run in runs {
                            push_u32(b, run.row);
                            push_u32(b, run.lo);
                            push_u32(b, run.values.len() as u32);
                            for v in &run.values {
                                push_u64(b, *v);
                            }
                        }
                    }
                    DeltaChange::HllRange {
                        base_epoch,
                        lo,
                        registers,
                    } => {
                        b.push(DELTA_HLL_RANGE);
                        push_u64(b, *base_epoch);
                        push_u32(b, *lo);
                        push_u32(b, registers.len() as u32);
                        b.extend_from_slice(registers);
                    }
                    DeltaChange::Full(state) => {
                        b.push(DELTA_FULL);
                        push_snapshot_state(b, state);
                    }
                }
                push_envelope(b, &delta.envelope);
            }),
            Response::Absorbed {
                object,
                epoch,
                observed,
            } => frame(buf, OP_ABSORBED, |b| {
                push_u32(b, *object);
                push_u64(b, *epoch);
                push_u64(b, *observed);
            }),
            Response::Stats(report) => frame(buf, OP_STATS_REPLY, |b| {
                for field in report.as_fields() {
                    push_u64(b, field);
                }
                push_u32(b, report.objects.len() as u32);
                for row in &report.objects {
                    push_u32(b, row.id);
                    push_u64(b, row.updates);
                    push_u64(b, row.queries);
                    push_u64(b, row.observed);
                }
            }),
            Response::Objects(infos) => frame(buf, OP_OBJECTS_REPLY, |b| {
                push_u32(b, infos.len() as u32);
                for info in infos {
                    push_u32(b, info.id);
                    b.push(info.kind.to_u8());
                    push_u32(b, info.name.len() as u32);
                    b.extend_from_slice(info.name.as_bytes());
                }
            }),
            Response::Goodbye => frame(buf, OP_GOODBYE, |_| {}),
            Response::Error { code, message } => frame(buf, OP_ERROR, |b| {
                b.push(code.to_u8());
                push_u32(b, message.len() as u32);
                b.extend_from_slice(message.as_bytes());
            }),
        }
    }

    /// Parses a response from a frame payload (opcode + body).
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut b = Body::new(payload);
        let rsp = match b.u8()? {
            OP_ACK => Response::Ack { applied: b.u64()? },
            OP_ENVELOPE => {
                Response::Envelope(ErrorEnvelope::Frequency(read_frequency_body(&mut b)?))
            }
            OP_ENVELOPE2 => Response::Envelope(read_envelope(&mut b)?),
            OP_SNAPSHOT_REPLY => {
                let object = b.u32()?;
                let kind = ObjectKind::from_u8(b.u8()?)
                    .ok_or(WireError::Malformed("unknown object kind tag"))?;
                let state = read_snapshot_state(&mut b, kind)?;
                let envelope = read_envelope(&mut b)?;
                Response::Snapshot(ObjectSnapshot {
                    object,
                    kind,
                    state,
                    envelope,
                })
            }
            OP_SNAPSHOT_DELTA_REPLY => {
                let object = b.u32()?;
                let kind = ObjectKind::from_u8(b.u8()?)
                    .ok_or(WireError::Malformed("unknown object kind tag"))?;
                let epoch = b.u64()?;
                let change = match b.u8()? {
                    DELTA_UNCHANGED => DeltaChange::Unchanged,
                    DELTA_CM_RUNS => {
                        if kind != ObjectKind::CountMin {
                            return Err(WireError::Malformed(
                                "cell runs on a non-CountMin delta reply",
                            ));
                        }
                        let base_epoch = b.u64()?;
                        let count = b.u32()?;
                        let mut runs = Vec::with_capacity(count.min(1024) as usize);
                        for _ in 0..count {
                            let row = b.u32()?;
                            let lo = b.u32()?;
                            let len = b.u32()? as u64;
                            // Guard the allocation against a lying
                            // header: the cells must be buffered.
                            if len > (b.rest.len() / 8) as u64 {
                                return Err(WireError::Malformed("body shorter than its schema"));
                            }
                            let mut values = Vec::with_capacity(len as usize);
                            for _ in 0..len {
                                values.push(b.u64()?);
                            }
                            runs.push(CellRun { row, lo, values });
                        }
                        DeltaChange::CmRuns { base_epoch, runs }
                    }
                    DELTA_HLL_RANGE => {
                        if kind != ObjectKind::Hll {
                            return Err(WireError::Malformed(
                                "register range on a non-HLL delta reply",
                            ));
                        }
                        let base_epoch = b.u64()?;
                        let lo = b.u32()?;
                        let len = b.u32()? as usize;
                        if b.rest.len() < len {
                            return Err(WireError::Malformed("body shorter than its schema"));
                        }
                        let (raw, rest) = b.rest.split_at(len);
                        b.rest = rest;
                        DeltaChange::HllRange {
                            base_epoch,
                            lo,
                            registers: raw.to_vec(),
                        }
                    }
                    DELTA_FULL => DeltaChange::Full(read_snapshot_state(&mut b, kind)?),
                    _ => return Err(WireError::Malformed("unknown delta change tag")),
                };
                let envelope = read_envelope(&mut b)?;
                Response::SnapshotDelta(SnapshotDelta {
                    object,
                    kind,
                    epoch,
                    change,
                    envelope,
                })
            }
            OP_ABSORBED => Response::Absorbed {
                object: b.u32()?,
                epoch: b.u64()?,
                observed: b.u64()?,
            },
            OP_STATS_REPLY => {
                let mut fields = [0u64; StatsReport::NUM_FIELDS];
                for f in &mut fields {
                    *f = b.u64()?;
                }
                let mut report = StatsReport::from_fields(fields);
                let rows = b.u32()?;
                for _ in 0..rows {
                    report.objects.push(ObjectStats {
                        id: b.u32()?,
                        updates: b.u64()?,
                        queries: b.u64()?,
                        observed: b.u64()?,
                    });
                }
                Response::Stats(report)
            }
            OP_OBJECTS_REPLY => {
                let count = b.u32()?;
                let mut infos = Vec::with_capacity(count.min(1024) as usize);
                for _ in 0..count {
                    let id = b.u32()?;
                    let kind = ObjectKind::from_u8(b.u8()?)
                        .ok_or(WireError::Malformed("unknown object kind tag"))?;
                    let len = b.u32()? as usize;
                    if b.rest.len() < len {
                        return Err(WireError::Malformed("body shorter than its schema"));
                    }
                    let (raw, rest) = b.rest.split_at(len);
                    b.rest = rest;
                    let name = std::str::from_utf8(raw)
                        .map_err(|_| WireError::Malformed("object name is not UTF-8"))?
                        .to_owned();
                    infos.push(ObjectInfo { id, kind, name });
                }
                Response::Objects(infos)
            }
            OP_GOODBYE => Response::Goodbye,
            OP_ERROR => {
                let code = ErrorCode::from_u8(b.u8()?)?;
                let len = b.u32()? as usize;
                if b.rest.len() < len {
                    return Err(WireError::Malformed("body shorter than its schema"));
                }
                let (msg, rest) = b.rest.split_at(len);
                b.rest = rest;
                let message = std::str::from_utf8(msg)
                    .map_err(|_| WireError::Malformed("error message is not UTF-8"))?
                    .to_owned();
                Response::Error { code, message }
            }
            op => return Err(WireError::UnknownOpcode(op)),
        };
        b.finish()?;
        Ok(rsp)
    }
}

/// A resumable, incremental frame decoder over a reusable buffer.
///
/// [`read_frame`] blocks in `read_exact` until a whole frame is
/// present — fine for one thread per connection, useless for an event
/// loop where a readiness notification may deliver half a header.
/// `FrameDecoder` instead accumulates whatever bytes the socket has
/// ([`read_from`] / [`feed`]) and hands out complete payloads
/// ([`next_frame`]) as zero-copy slices into its buffer; partial
/// prefixes and partial payloads simply stay buffered until more
/// bytes arrive. Feeding a stream byte-by-byte yields exactly the
/// frames of one-shot decoding (property-tested against
/// [`read_frame`]).
///
/// The buffer is reused ring-style: consumed bytes are reclaimed by
/// sliding the live window to the front once the read cursor passes
/// half the buffer, so steady-state decoding allocates nothing.
///
/// [`read_from`]: FrameDecoder::read_from
/// [`feed`]: FrameDecoder::feed
/// [`next_frame`]: FrameDecoder::next_frame
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes before `head` are consumed frames awaiting reclamation.
    head: usize,
    max_len: u32,
}

/// How many bytes [`FrameDecoder::read_from`] asks the socket for at
/// a time (grown to the announced frame length when one is pending).
const READ_CHUNK: usize = 16 * 1024;

impl FrameDecoder {
    /// Creates a decoder enforcing `max_len` (see [`read_frame`]).
    pub fn new(max_len: u32) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            head: 0,
            max_len,
        }
    }

    /// Appends raw stream bytes to the buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.reclaim();
        self.buf.extend_from_slice(bytes);
    }

    /// Performs **one** `read` into the buffer's tail, returning how
    /// many bytes arrived (`Ok(0)` is end-of-stream). `WouldBlock`
    /// and `Interrupted` are the caller's to handle — an edge-driven
    /// caller loops until `WouldBlock`.
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> io::Result<usize> {
        self.reclaim();
        let len = self.buf.len();
        // If a frame header is already buffered, size the read to
        // finish that frame; otherwise read a chunk.
        let want = READ_CHUNK.max(self.pending_frame_len().saturating_sub(len - self.head));
        self.buf.resize(len + want, 0);
        let got = match r.read(&mut self.buf[len..]) {
            Ok(n) => n,
            Err(e) => {
                self.buf.truncate(len);
                return Err(e);
            }
        };
        self.buf.truncate(len + got);
        Ok(got)
    }

    /// Total length (prefix + payload) of the frame announced by a
    /// buffered header, or 0 when no complete header is buffered.
    fn pending_frame_len(&self) -> usize {
        match self.buf[self.head..] {
            [a, b, c, d, ..] => 4 + u32::from_le_bytes([a, b, c, d]) as usize,
            _ => 0,
        }
    }

    /// Extracts the next complete frame payload, or `None` when more
    /// bytes are needed. Errors ([`WireError::Oversized`], empty
    /// frames) are unrecoverable: the prefix cannot be trusted, so
    /// the connection must close.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        let avail = self.buf.len() - self.head;
        if avail < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            self.buf[self.head..self.head + 4]
                .try_into()
                .expect("4 bytes"),
        );
        if len == 0 {
            return Err(WireError::Malformed("empty frame"));
        }
        if len > self.max_len {
            return Err(WireError::Oversized {
                len,
                max: self.max_len,
            });
        }
        if avail < 4 + len as usize {
            return Ok(None);
        }
        let start = self.head + 4;
        self.head = start + len as usize;
        Ok(Some(&self.buf[start..self.head]))
    }

    /// Whether bytes of an incomplete frame are buffered — EOF now
    /// means [`WireError::Truncated`], not a clean close.
    pub fn mid_frame(&self) -> bool {
        self.head < self.buf.len()
    }

    /// Number of not-yet-consumed buffered bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Slides the live window back to the buffer's front once the
    /// consumed prefix dominates, bounding memory without reallocating.
    fn reclaim(&mut self) {
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        } else if self.head >= READ_CHUNK.max(self.buf.len() / 2) {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

/// Reads one frame payload off `r`.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF exactly at a frame
/// boundary), [`WireError::Truncated`] on EOF inside a frame, and
/// [`WireError::Oversized`] when the prefix announces more than
/// `max_len` bytes (the caller must close the connection: the payload
/// has not been consumed, so the stream cannot be resynchronized).
pub fn read_frame<R: Read>(r: &mut R, max_len: u32) -> Result<Option<Vec<u8>>, WireError> {
    let mut prefix = [0u8; 4];
    // Distinguish clean EOF (zero bytes of the next frame) from a
    // truncated prefix.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(WireError::Truncated)
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len == 0 {
        return Err(WireError::Malformed("empty frame"));
    }
    if len > max_len {
        return Err(WireError::Oversized { len, max: max_len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request) -> Request {
        let mut buf = Vec::new();
        req.encode(&mut buf);
        let payload = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        Request::decode(&payload).unwrap()
    }

    #[test]
    fn request_roundtrips() {
        for req in [
            Request::Update {
                object: 0,
                key: 7,
                weight: 3,
            },
            Request::Update {
                object: 3,
                key: 7,
                weight: 3,
            },
            Request::Query {
                object: 0,
                key: u64::MAX,
            },
            Request::Query {
                object: u32::MAX,
                key: 4,
            },
            Request::Batch {
                object: 0,
                items: vec![(1, 2), (3, 4)],
            },
            Request::Batch {
                object: 2,
                items: vec![],
            },
            Request::Snapshot { object: 0 },
            Request::Snapshot { object: 5 },
            Request::SnapshotSince {
                object: 0,
                base_epoch: 0,
            },
            Request::SnapshotSince {
                object: 3,
                base_epoch: u64::MAX,
            },
            Request::Stats,
            Request::Objects,
            Request::Shutdown,
        ] {
            assert_eq!(roundtrip_request(&req), req);
        }
    }

    #[test]
    fn push_state_requests_roundtrip_every_kind() {
        for state in [
            SnapshotState::CountMin {
                width: 3,
                depth: 2,
                hash_fp: 0xDEAD_BEEF,
                cells: vec![1, 2, 3, 4, 5, 6],
            },
            SnapshotState::Hll {
                hash_fp: 42,
                registers: vec![0, 7, 1, 0],
            },
            SnapshotState::Morris { exponent: 9 },
            SnapshotState::MinRegister { minimum: 3 },
        ] {
            let req = Request::PushState {
                object: 2,
                observed: 501,
                state,
            };
            assert_eq!(roundtrip_request(&req), req);
            assert_eq!(req.object(), Some(2));
        }
        // Push-state is v2-only: object 0 still leads the body with
        // its id.
        let mut buf = Vec::new();
        Request::PushState {
            object: 0,
            observed: 1,
            state: SnapshotState::Morris { exponent: 1 },
        }
        .encode(&mut buf);
        assert_eq!(buf[4], OP_PUSH_STATE);
        assert_eq!(buf.len(), 4 + 1 + 4 + 1 + 8 + 4);

        // A lying CountMin header inside the push body is refused
        // before allocating (the shared state decoder guards it).
        let mut payload = vec![OP_PUSH_STATE];
        payload.extend_from_slice(&0u32.to_le_bytes()); // object
        payload.push(ObjectKind::CountMin.to_u8());
        payload.extend_from_slice(&9u64.to_le_bytes()); // observed
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // width
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // depth
        payload.extend_from_slice(&7u64.to_le_bytes()); // hash_fp
        assert_eq!(
            Request::decode(&payload).unwrap_err(),
            WireError::Malformed("body shorter than its schema")
        );
        // An unknown kind tag is refused.
        let payload = [OP_PUSH_STATE, 0, 0, 0, 0, 0x7f];
        assert_eq!(
            Request::decode(&payload).unwrap_err(),
            WireError::Malformed("unknown object kind tag")
        );
    }

    #[test]
    fn snapshot_request_is_v2_even_for_object_zero() {
        // Unlike update/query/batch there is no v1 form to fall back
        // to: the body always leads with the object id.
        let mut buf = Vec::new();
        Request::Snapshot { object: 0 }.encode(&mut buf);
        assert_eq!(buf[4], OP_SNAPSHOT);
        assert_eq!(buf.len(), 4 + 1 + 4);

        // Snapshot-since likewise: object id then base epoch.
        buf.clear();
        Request::SnapshotSince {
            object: 0,
            base_epoch: 9,
        }
        .encode(&mut buf);
        assert_eq!(buf[4], OP_SNAPSHOT_SINCE);
        assert_eq!(buf.len(), 4 + 1 + 4 + 8);
    }

    #[test]
    fn object_zero_requests_emit_v1_frames() {
        // Byte-for-byte the pre-registry encoding: v1 opcode, no
        // object id in the body.
        let mut buf = Vec::new();
        Request::Update {
            object: 0,
            key: 7,
            weight: 3,
        }
        .encode(&mut buf);
        let mut expect = Vec::new();
        push_u32(&mut expect, 17);
        expect.push(OP_UPDATE);
        push_u64(&mut expect, 7);
        push_u64(&mut expect, 3);
        assert_eq!(buf, expect);

        buf.clear();
        Request::Query { object: 0, key: 9 }.encode(&mut buf);
        assert_eq!(buf[4], OP_QUERY);
        assert_eq!(buf.len(), 4 + 1 + 8);

        buf.clear();
        Request::Batch {
            object: 0,
            items: vec![(1, 1)],
        }
        .encode(&mut buf);
        assert_eq!(buf[4], OP_BATCH);

        buf.clear();
        Request::Update {
            object: 1,
            key: 7,
            weight: 3,
        }
        .encode(&mut buf);
        assert_eq!(buf[4], OP_UPDATE2);
    }

    #[test]
    fn response_roundtrips() {
        let env = crate::envelope::Envelope {
            key: 5,
            estimate: 100,
            epsilon: 3,
            stream_len: 500,
            alpha: 0.005,
            delta: 0.01,
            lag: 128,
        };
        let mut stats = StatsReport::default();
        stats.objects.push(ObjectStats {
            id: 1,
            updates: 10,
            queries: 2,
            observed: 30,
        });
        for rsp in [
            Response::Ack { applied: 9 },
            Response::Absorbed {
                object: 2,
                epoch: 17,
                observed: 501,
            },
            Response::Envelope(ErrorEnvelope::Frequency(env)),
            Response::Envelope(ErrorEnvelope::Cardinality {
                estimate: 812.5,
                rel_std_err: 0.016,
                registers: 4096,
                register_sum: 777,
                observed: 900,
            }),
            Response::Envelope(ErrorEnvelope::ApproxCount {
                estimate: 14.0,
                a: 0.5,
                exponent: 4,
                observed: 15,
            }),
            Response::Envelope(ErrorEnvelope::Minimum {
                minimum: 3,
                observed: 44,
            }),
            Response::Stats(stats),
            Response::Objects(vec![
                ObjectInfo {
                    id: 0,
                    kind: ObjectKind::CountMin,
                    name: "cm".into(),
                },
                ObjectInfo {
                    id: 1,
                    kind: ObjectKind::Hll,
                    name: "uniques".into(),
                },
            ]),
            Response::Goodbye,
            Response::Error {
                code: ErrorCode::Busy,
                message: "all shards leased".into(),
            },
            Response::Error {
                code: ErrorCode::UnknownObject,
                message: "no object 9".into(),
            },
        ] {
            let mut buf = Vec::new();
            rsp.encode(&mut buf);
            let payload = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_LEN)
                .unwrap()
                .unwrap();
            assert_eq!(Response::decode(&payload).unwrap(), rsp);
        }
    }

    #[test]
    fn snapshot_responses_roundtrip() {
        let freq = ErrorEnvelope::Frequency(crate::envelope::Envelope {
            key: 5,
            estimate: 100,
            epsilon: 3,
            stream_len: 500,
            alpha: 0.005,
            delta: 0.01,
            lag: 128,
        });
        for rsp in [
            Response::Snapshot(ObjectSnapshot {
                object: 0,
                kind: ObjectKind::CountMin,
                state: SnapshotState::CountMin {
                    width: 3,
                    depth: 2,
                    hash_fp: 0xDEAD_BEEF,
                    cells: vec![1, 2, 3, 4, 5, 6],
                },
                envelope: freq,
            }),
            Response::Snapshot(ObjectSnapshot {
                object: 1,
                kind: ObjectKind::Hll,
                state: SnapshotState::Hll {
                    hash_fp: 42,
                    registers: vec![0, 7, 1, 0],
                },
                envelope: ErrorEnvelope::Cardinality {
                    estimate: 812.5,
                    rel_std_err: 0.016,
                    registers: 4,
                    register_sum: 8,
                    observed: 900,
                },
            }),
            Response::Snapshot(ObjectSnapshot {
                object: 2,
                kind: ObjectKind::Morris,
                state: SnapshotState::Morris { exponent: 9 },
                envelope: ErrorEnvelope::ApproxCount {
                    estimate: 14.0,
                    a: 0.5,
                    exponent: 9,
                    observed: 15,
                },
            }),
            Response::Snapshot(ObjectSnapshot {
                object: 3,
                kind: ObjectKind::MinRegister,
                state: SnapshotState::MinRegister { minimum: 3 },
                envelope: ErrorEnvelope::Minimum {
                    minimum: 3,
                    observed: 44,
                },
            }),
        ] {
            let mut buf = Vec::new();
            rsp.encode(&mut buf);
            let payload = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_LEN)
                .unwrap()
                .unwrap();
            assert_eq!(Response::decode(&payload).unwrap(), rsp);
        }
    }

    #[test]
    fn snapshot_delta_responses_roundtrip() {
        let freq = ErrorEnvelope::Frequency(crate::envelope::Envelope {
            key: 0,
            estimate: 0,
            epsilon: 3,
            stream_len: 500,
            alpha: 0.005,
            delta: 0.01,
            lag: 128,
        });
        let card = ErrorEnvelope::Cardinality {
            estimate: 812.5,
            rel_std_err: 0.016,
            registers: 4,
            register_sum: 8,
            observed: 900,
        };
        for rsp in [
            // The tiny `Unchanged` frame — the fast path under test.
            Response::SnapshotDelta(SnapshotDelta {
                object: 0,
                kind: ObjectKind::CountMin,
                epoch: 17,
                change: DeltaChange::Unchanged,
                envelope: freq.clone(),
            }),
            Response::SnapshotDelta(SnapshotDelta {
                object: 0,
                kind: ObjectKind::CountMin,
                epoch: 21,
                change: DeltaChange::CmRuns {
                    base_epoch: 17,
                    runs: vec![
                        CellRun {
                            row: 0,
                            lo: 3,
                            values: vec![5, 0, 9],
                        },
                        CellRun {
                            row: 2,
                            lo: 7,
                            values: vec![1],
                        },
                    ],
                },
                envelope: freq.clone(),
            }),
            Response::SnapshotDelta(SnapshotDelta {
                object: 1,
                kind: ObjectKind::Hll,
                epoch: 4,
                change: DeltaChange::HllRange {
                    base_epoch: 2,
                    lo: 9,
                    registers: vec![3, 0, 7],
                },
                envelope: card.clone(),
            }),
            Response::SnapshotDelta(SnapshotDelta {
                object: 1,
                kind: ObjectKind::Hll,
                epoch: 4,
                change: DeltaChange::Full(SnapshotState::Hll {
                    hash_fp: 42,
                    registers: vec![0, 7, 1, 0],
                }),
                envelope: card,
            }),
            Response::SnapshotDelta(SnapshotDelta {
                object: 2,
                kind: ObjectKind::Morris,
                epoch: 9,
                change: DeltaChange::Full(SnapshotState::Morris { exponent: 9 }),
                envelope: ErrorEnvelope::ApproxCount {
                    estimate: 14.0,
                    a: 0.5,
                    exponent: 9,
                    observed: 15,
                },
            }),
            Response::SnapshotDelta(SnapshotDelta {
                object: 3,
                kind: ObjectKind::MinRegister,
                epoch: 2,
                change: DeltaChange::Full(SnapshotState::MinRegister { minimum: 3 }),
                envelope: ErrorEnvelope::Minimum {
                    minimum: 3,
                    observed: 44,
                },
            }),
        ] {
            let mut buf = Vec::new();
            rsp.encode(&mut buf);
            let payload = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_LEN)
                .unwrap()
                .unwrap();
            assert_eq!(Response::decode(&payload).unwrap(), rsp);
        }
    }

    #[test]
    fn unchanged_delta_frame_is_small() {
        // The whole point of the fast path: an `Unchanged` CountMin
        // reply must be a few dozen bytes, not width×depth×8.
        let mut buf = Vec::new();
        Response::SnapshotDelta(SnapshotDelta {
            object: 0,
            kind: ObjectKind::CountMin,
            epoch: u64::MAX,
            change: DeltaChange::Unchanged,
            envelope: ErrorEnvelope::Frequency(crate::envelope::Envelope {
                key: 0,
                estimate: 0,
                epsilon: 3,
                stream_len: 500,
                alpha: 0.005,
                delta: 0.01,
                lag: 128,
            }),
        })
        .encode(&mut buf);
        assert!(buf.len() < 96, "unchanged frame is {} bytes", buf.len());
    }

    #[test]
    fn snapshot_delta_with_lying_or_mismatched_body_rejected() {
        // A run announcing more cells than the body carries must fail
        // cleanly before allocating.
        let mut payload = vec![OP_SNAPSHOT_DELTA_REPLY];
        payload.extend_from_slice(&0u32.to_le_bytes()); // object
        payload.push(ObjectKind::CountMin.to_u8());
        payload.extend_from_slice(&9u64.to_le_bytes()); // epoch
        payload.push(DELTA_CM_RUNS);
        payload.extend_from_slice(&7u64.to_le_bytes()); // base epoch
        payload.extend_from_slice(&1u32.to_le_bytes()); // one run
        payload.extend_from_slice(&0u32.to_le_bytes()); // row
        payload.extend_from_slice(&0u32.to_le_bytes()); // lo
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // len (lie)
        assert_eq!(
            Response::decode(&payload).unwrap_err(),
            WireError::Malformed("body shorter than its schema")
        );

        // Cell runs are only legal on a CountMin reply.
        let mut payload = vec![OP_SNAPSHOT_DELTA_REPLY];
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.push(ObjectKind::Hll.to_u8());
        payload.extend_from_slice(&9u64.to_le_bytes());
        payload.push(DELTA_CM_RUNS);
        assert_eq!(
            Response::decode(&payload).unwrap_err(),
            WireError::Malformed("cell runs on a non-CountMin delta reply")
        );

        // A register range is only legal on an HLL reply.
        let mut payload = vec![OP_SNAPSHOT_DELTA_REPLY];
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.push(ObjectKind::Morris.to_u8());
        payload.extend_from_slice(&9u64.to_le_bytes());
        payload.push(DELTA_HLL_RANGE);
        assert_eq!(
            Response::decode(&payload).unwrap_err(),
            WireError::Malformed("register range on a non-HLL delta reply")
        );

        // Unknown change tag.
        let mut payload = vec![OP_SNAPSHOT_DELTA_REPLY];
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.push(ObjectKind::CountMin.to_u8());
        payload.extend_from_slice(&9u64.to_le_bytes());
        payload.push(0x7f);
        assert_eq!(
            Response::decode(&payload).unwrap_err(),
            WireError::Malformed("unknown delta change tag")
        );
    }

    #[test]
    fn snapshot_reply_with_lying_dimensions_rejected() {
        // A CountMin snapshot header announcing more cells than the
        // body carries must fail cleanly before allocating.
        let mut payload = vec![OP_SNAPSHOT_REPLY];
        payload.extend_from_slice(&0u32.to_le_bytes()); // object
        payload.push(ObjectKind::CountMin.to_u8());
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // width
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // depth
        payload.extend_from_slice(&7u64.to_le_bytes()); // hash_fp
        assert_eq!(
            Response::decode(&payload).unwrap_err(),
            WireError::Malformed("body shorter than its schema")
        );

        // Unknown kind tag in the snapshot reply.
        let payload = [OP_SNAPSHOT_REPLY, 0, 0, 0, 0, 0x7f];
        assert_eq!(
            Response::decode(&payload).unwrap_err(),
            WireError::Malformed("unknown object kind tag")
        );
    }

    #[test]
    fn envelope2_with_unknown_kind_tag_rejected() {
        let payload = [OP_ENVELOPE2, 0x7u8];
        assert_eq!(
            Response::decode(&payload).unwrap_err(),
            WireError::Malformed("unknown envelope kind tag")
        );
    }

    #[test]
    fn clean_eof_is_none_truncated_prefix_is_error() {
        assert_eq!(read_frame(&mut [].as_slice(), 64).unwrap(), None);
        assert_eq!(
            read_frame(&mut [3u8, 0].as_slice(), 64).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn truncated_payload_is_error() {
        let mut buf = Vec::new();
        Request::Query { object: 0, key: 1 }.encode(&mut buf);
        buf.truncate(buf.len() - 2);
        assert_eq!(
            read_frame(&mut buf.as_slice(), 64).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        push_u32(&mut buf, 1 << 30);
        buf.push(OP_STATS);
        assert_eq!(
            read_frame(&mut buf.as_slice(), 64).unwrap_err(),
            WireError::Oversized {
                len: 1 << 30,
                max: 64
            }
        );
    }

    #[test]
    fn unknown_opcode_and_bad_bodies_rejected() {
        assert_eq!(
            Request::decode(&[0x7f]).unwrap_err(),
            WireError::UnknownOpcode(0x7f)
        );
        assert_eq!(
            Request::decode(&[OP_UPDATE, 1, 2]).unwrap_err(),
            WireError::Malformed("body shorter than its schema")
        );
        // Batch announcing more items than it carries.
        let mut bad = vec![OP_BATCH];
        bad.extend_from_slice(&5u32.to_le_bytes());
        assert!(matches!(
            Request::decode(&bad).unwrap_err(),
            WireError::Malformed(_)
        ));
        // Trailing garbage after a well-formed body.
        let mut buf = Vec::new();
        Request::Query { object: 0, key: 1 }.encode(&mut buf);
        let mut payload = read_frame(&mut buf.as_slice(), 64).unwrap().unwrap();
        payload.push(0xAA);
        assert_eq!(
            Request::decode(&payload).unwrap_err(),
            WireError::Malformed("trailing bytes after body")
        );
    }

    #[test]
    fn oversized_batch_count_rejected() {
        let mut payload = vec![OP_BATCH];
        payload.extend_from_slice(&(MAX_BATCH_ITEMS + 1).to_le_bytes());
        assert_eq!(
            Request::decode(&payload).unwrap_err(),
            WireError::Malformed("batch exceeds MAX_BATCH_ITEMS")
        );
        // The bound binds v2 batches identically.
        let mut payload = vec![OP_BATCH2];
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&(MAX_BATCH_ITEMS + 1).to_le_bytes());
        assert_eq!(
            Request::decode(&payload).unwrap_err(),
            WireError::Malformed("batch exceeds MAX_BATCH_ITEMS")
        );
        // …and the in-place fast path rejects it too.
        let mut items = Vec::new();
        assert_eq!(
            decode_batch_into(&payload, &mut items).unwrap_err(),
            WireError::Malformed("batch exceeds MAX_BATCH_ITEMS")
        );
    }

    #[test]
    fn decode_batch_into_agrees_with_full_decoder() {
        for object in [0u32, 9] {
            let req = Request::Batch {
                object,
                items: vec![(7, 3), (7, 1), (42, 2)],
            };
            let mut buf = Vec::new();
            req.encode(&mut buf);
            let payload = read_frame(&mut buf.as_slice(), 1 << 16).unwrap().unwrap();
            let mut items = vec![(99u64, 99u64)]; // stale residue must be cleared
            assert_eq!(
                decode_batch_into(&payload, &mut items).unwrap(),
                Some(object)
            );
            assert_eq!(items, vec![(7, 3), (7, 1), (42, 2)]);
            assert_eq!(
                Request::decode(&payload).unwrap(),
                Request::Batch { object, items }
            );
        }
        // Non-batch opcodes pass through untouched.
        let mut buf = Vec::new();
        Request::Query { object: 0, key: 5 }.encode(&mut buf);
        let payload = read_frame(&mut buf.as_slice(), 64).unwrap().unwrap();
        let mut items = vec![(1u64, 1u64)];
        assert_eq!(decode_batch_into(&payload, &mut items).unwrap(), None);
        assert_eq!(
            items,
            vec![(1, 1)],
            "non-batch payload must not clobber items"
        );
        // Truncated batch body still errors.
        let mut bad = vec![OP_BATCH];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&1u64.to_le_bytes());
        assert!(matches!(
            decode_batch_into(&bad, &mut items).unwrap_err(),
            WireError::Truncated | WireError::Malformed(_)
        ));
    }

    /// Every wire opcode, exercised end-to-end: encode a
    /// representative frame, pin its opcode byte to the named
    /// constant, and decode it back to the original value. This is
    /// the conformance floor the analyzer's frame-docs lint enforces —
    /// an opcode constant that appears in no round-trip test here is
    /// a lint failure, so a new frame cannot ship untested.
    #[test]
    fn every_opcode_byte_matches_its_constant_and_roundtrips() {
        let freq = crate::envelope::Envelope {
            key: 5,
            estimate: 100,
            epsilon: 3,
            stream_len: 500,
            alpha: 0.005,
            delta: 0.01,
            lag: 128,
        };
        let requests: Vec<(u8, Request)> = vec![
            (
                OP_UPDATE,
                Request::Update {
                    object: 0,
                    key: 7,
                    weight: 3,
                },
            ),
            (
                OP_UPDATE2,
                Request::Update {
                    object: 1,
                    key: 7,
                    weight: 3,
                },
            ),
            (OP_QUERY, Request::Query { object: 0, key: 9 }),
            (OP_QUERY2, Request::Query { object: 1, key: 9 }),
            (
                OP_BATCH,
                Request::Batch {
                    object: 0,
                    items: vec![(1, 1)],
                },
            ),
            (
                OP_BATCH2,
                Request::Batch {
                    object: 1,
                    items: vec![(1, 1)],
                },
            ),
            (OP_STATS, Request::Stats),
            (OP_OBJECTS, Request::Objects),
            (OP_SHUTDOWN, Request::Shutdown),
            (OP_SNAPSHOT, Request::Snapshot { object: 1 }),
            (
                OP_SNAPSHOT_SINCE,
                Request::SnapshotSince {
                    object: 1,
                    base_epoch: 4,
                },
            ),
            (
                OP_PUSH_STATE,
                Request::PushState {
                    object: 1,
                    observed: 8,
                    state: SnapshotState::Morris { exponent: 2 },
                },
            ),
        ];
        for (opcode, req) in requests {
            let mut buf = Vec::new();
            req.encode(&mut buf);
            assert_eq!(buf[4], opcode, "request {req:?} wears the wrong opcode");
            assert_eq!(roundtrip_request(&req), req);
        }
        let responses: Vec<(u8, Response)> = vec![
            (OP_ACK, Response::Ack { applied: 9 }),
            (
                OP_ENVELOPE,
                Response::Envelope(ErrorEnvelope::Frequency(freq)),
            ),
            (
                OP_ENVELOPE2,
                Response::Envelope(ErrorEnvelope::Minimum {
                    minimum: 3,
                    observed: 44,
                }),
            ),
            (OP_STATS_REPLY, Response::Stats(StatsReport::default())),
            (OP_GOODBYE, Response::Goodbye),
            (
                OP_OBJECTS_REPLY,
                Response::Objects(vec![ObjectInfo {
                    id: 0,
                    kind: ObjectKind::CountMin,
                    name: "cm".into(),
                }]),
            ),
            (
                OP_SNAPSHOT_REPLY,
                Response::Snapshot(ObjectSnapshot {
                    object: 2,
                    kind: ObjectKind::Morris,
                    state: SnapshotState::Morris { exponent: 9 },
                    envelope: ErrorEnvelope::ApproxCount {
                        estimate: 14.0,
                        a: 0.5,
                        exponent: 9,
                        observed: 15,
                    },
                }),
            ),
            (
                OP_SNAPSHOT_DELTA_REPLY,
                Response::SnapshotDelta(SnapshotDelta {
                    object: 0,
                    kind: ObjectKind::CountMin,
                    epoch: 17,
                    change: DeltaChange::Unchanged,
                    envelope: ErrorEnvelope::Frequency(freq),
                }),
            ),
            (
                OP_ABSORBED,
                Response::Absorbed {
                    object: 1,
                    epoch: 4,
                    observed: 8,
                },
            ),
            (
                OP_ERROR,
                Response::Error {
                    code: ErrorCode::MergeMismatch,
                    message: "coins disagree".into(),
                },
            ),
        ];
        for (opcode, rsp) in responses {
            let mut buf = Vec::new();
            rsp.encode(&mut buf);
            assert_eq!(buf[4], opcode, "response {rsp:?} wears the wrong opcode");
            let payload = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_LEN)
                .unwrap()
                .unwrap();
            assert_eq!(Response::decode(&payload).unwrap(), rsp);
        }
    }
}
