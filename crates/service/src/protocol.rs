//! The wire protocol: compact length-prefixed binary frames.
//!
//! Every frame is a `u32` little-endian payload length followed by the
//! payload; the payload's first byte is the opcode, the rest the body.
//! All integers are little-endian, floats travel as IEEE-754 bit
//! patterns. The length prefix makes the stream self-delimiting, so a
//! malformed *body* never desynchronizes the connection: the server
//! answers with an [`ErrorCode::Protocol`] response and keeps reading
//! at the next frame boundary. Only a corrupted length prefix
//! (truncated or oversized) forces the connection closed.
//!
//! Request opcodes: `UPDATE` 0x01, `QUERY` 0x02, `BATCH` 0x03, `STATS`
//! 0x04, `SHUTDOWN` 0x05. Response opcodes: `ACK` 0x81, `ENVELOPE`
//! 0x82, `STATS` 0x84, `GOODBYE` 0x85, `ERROR` 0xEE.

use crate::envelope::Envelope;
use crate::metrics::StatsReport;
use std::fmt;
use std::io::{self, Read};

/// Frames larger than this are rejected by default (see
/// [`read_frame`]'s `max_len` parameter).
pub const DEFAULT_MAX_FRAME_LEN: u32 = 1 << 20;

/// A `BATCH` frame may carry at most this many `(key, weight)` pairs —
/// the protocol's bounded-queue knob: a client cannot enqueue
/// unbounded work with a single frame.
pub const MAX_BATCH_ITEMS: u32 = 4096;

/// Errors raised while framing or parsing the wire format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended in the middle of a length prefix or payload.
    Truncated,
    /// The length prefix announced more than `max` bytes.
    Oversized {
        /// Announced payload length.
        len: u32,
        /// The limit in force.
        max: u32,
    },
    /// The payload's first byte is not a known opcode.
    UnknownOpcode(u8),
    /// The body does not parse under its opcode's schema.
    Malformed(&'static str),
    /// An underlying I/O error (by kind; the connection is gone).
    Io(io::ErrorKind),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated mid-prefix or mid-payload"),
            WireError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            WireError::Malformed(why) => write!(f, "malformed frame body: {why}"),
            WireError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.kind())
        }
    }
}

/// Why the server refused a request (body of an error response).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// All sketch shards are leased to other connections; retry later.
    Busy,
    /// The request frame did not parse (see [`WireError`]).
    Protocol,
    /// The server is draining and accepts no new work.
    ShuttingDown,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Busy => 1,
            ErrorCode::Protocol => 2,
            ErrorCode::ShuttingDown => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            1 => Ok(ErrorCode::Busy),
            2 => Ok(ErrorCode::Protocol),
            3 => Ok(ErrorCode::ShuttingDown),
            _ => Err(WireError::Malformed("unknown error code")),
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::Busy => write!(f, "busy"),
            ErrorCode::Protocol => write!(f, "protocol"),
            ErrorCode::ShuttingDown => write!(f, "shutting-down"),
        }
    }
}

/// A client-to-server frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Ingest `weight` occurrences of `key` (the sketch's batched
    /// update).
    Update {
        /// Item to count.
        key: u64,
        /// Occurrence count folded in by this update.
        weight: u64,
    },
    /// Ask for `key`'s frequency estimate with its IVL error envelope.
    Query {
        /// Item to estimate.
        key: u64,
    },
    /// Ingest many `(key, weight)` pairs under one frame (at most
    /// [`MAX_BATCH_ITEMS`]).
    Batch(Vec<(u64, u64)>),
    /// Ask for the server's operation counters and latency quantiles.
    Stats,
    /// Stop accepting connections and drain.
    Shutdown,
}

/// A server-to-client frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// An update or batch was applied; `applied` is the connection's
    /// cumulative number of applied update operations.
    Ack {
        /// Updates applied on this connection so far.
        applied: u64,
    },
    /// Answer to a query: the estimate wrapped in its (ε,δ) envelope.
    Envelope(Envelope),
    /// Answer to a stats request.
    Stats(StatsReport),
    /// Acknowledges a shutdown request; the connection closes after.
    Goodbye,
    /// The request was refused.
    Error {
        /// Machine-readable refusal class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

const OP_UPDATE: u8 = 0x01;
const OP_QUERY: u8 = 0x02;
const OP_BATCH: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_SHUTDOWN: u8 = 0x05;
const OP_ACK: u8 = 0x81;
const OP_ENVELOPE: u8 = 0x82;
const OP_STATS_REPLY: u8 = 0x84;
const OP_GOODBYE: u8 = 0x85;
const OP_ERROR: u8 = 0xEE;

/// Sequential reader over a frame body with schema-error reporting.
struct Body<'a> {
    rest: &'a [u8],
}

impl<'a> Body<'a> {
    fn new(rest: &'a [u8]) -> Self {
        Body { rest }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let (&b, rest) = self
            .rest
            .split_first()
            .ok_or(WireError::Malformed("body shorter than its schema"))?;
        self.rest = rest;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        if self.rest.len() < 4 {
            return Err(WireError::Malformed("body shorter than its schema"));
        }
        let (head, rest) = self.rest.split_at(4);
        self.rest = rest;
        Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        if self.rest.len() < 8 {
            return Err(WireError::Malformed("body shorter than its schema"));
        }
        let (head, rest) = self.rest.split_at(8);
        self.rest = rest;
        Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after body"))
        }
    }
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends one whole frame (prefix + opcode + body) built by `body` to
/// `buf`.
fn frame(buf: &mut Vec<u8>, opcode: u8, body: impl FnOnce(&mut Vec<u8>)) {
    let prefix_at = buf.len();
    push_u32(buf, 0); // patched below
    buf.push(opcode);
    body(buf);
    let payload_len = (buf.len() - prefix_at - 4) as u32;
    buf[prefix_at..prefix_at + 4].copy_from_slice(&payload_len.to_le_bytes());
}

impl Request {
    /// Appends this request as one frame to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Update { key, weight } => frame(buf, OP_UPDATE, |b| {
                push_u64(b, *key);
                push_u64(b, *weight);
            }),
            Request::Query { key } => frame(buf, OP_QUERY, |b| push_u64(b, *key)),
            Request::Batch(items) => frame(buf, OP_BATCH, |b| {
                push_u32(b, items.len() as u32);
                for (k, w) in items {
                    push_u64(b, *k);
                    push_u64(b, *w);
                }
            }),
            Request::Stats => frame(buf, OP_STATS, |_| {}),
            Request::Shutdown => frame(buf, OP_SHUTDOWN, |_| {}),
        }
    }

    /// Parses a request from a frame payload (opcode + body).
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut b = Body::new(payload);
        let req = match b.u8()? {
            OP_UPDATE => Request::Update {
                key: b.u64()?,
                weight: b.u64()?,
            },
            OP_QUERY => Request::Query { key: b.u64()? },
            OP_BATCH => {
                let count = b.u32()?;
                if count > MAX_BATCH_ITEMS {
                    return Err(WireError::Malformed("batch exceeds MAX_BATCH_ITEMS"));
                }
                let mut items = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    items.push((b.u64()?, b.u64()?));
                }
                Request::Batch(items)
            }
            OP_STATS => Request::Stats,
            OP_SHUTDOWN => Request::Shutdown,
            op => return Err(WireError::UnknownOpcode(op)),
        };
        b.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Appends this response as one frame to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Ack { applied } => frame(buf, OP_ACK, |b| push_u64(b, *applied)),
            Response::Envelope(env) => frame(buf, OP_ENVELOPE, |b| {
                push_u64(b, env.key);
                push_u64(b, env.estimate);
                push_u64(b, env.epsilon);
                push_u64(b, env.stream_len);
                push_u64(b, env.alpha.to_bits());
                push_u64(b, env.delta.to_bits());
                push_u64(b, env.lag);
            }),
            Response::Stats(report) => frame(buf, OP_STATS_REPLY, |b| {
                for field in report.as_fields() {
                    push_u64(b, field);
                }
            }),
            Response::Goodbye => frame(buf, OP_GOODBYE, |_| {}),
            Response::Error { code, message } => frame(buf, OP_ERROR, |b| {
                b.push(code.to_u8());
                push_u32(b, message.len() as u32);
                b.extend_from_slice(message.as_bytes());
            }),
        }
    }

    /// Parses a response from a frame payload (opcode + body).
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut b = Body::new(payload);
        let rsp = match b.u8()? {
            OP_ACK => Response::Ack { applied: b.u64()? },
            OP_ENVELOPE => Response::Envelope(Envelope {
                key: b.u64()?,
                estimate: b.u64()?,
                epsilon: b.u64()?,
                stream_len: b.u64()?,
                alpha: b.f64()?,
                delta: b.f64()?,
                lag: b.u64()?,
            }),
            OP_STATS_REPLY => {
                let mut fields = [0u64; StatsReport::NUM_FIELDS];
                for f in &mut fields {
                    *f = b.u64()?;
                }
                Response::Stats(StatsReport::from_fields(fields))
            }
            OP_GOODBYE => Response::Goodbye,
            OP_ERROR => {
                let code = ErrorCode::from_u8(b.u8()?)?;
                let len = b.u32()? as usize;
                if b.rest.len() < len {
                    return Err(WireError::Malformed("body shorter than its schema"));
                }
                let (msg, rest) = b.rest.split_at(len);
                b.rest = rest;
                let message = std::str::from_utf8(msg)
                    .map_err(|_| WireError::Malformed("error message is not UTF-8"))?
                    .to_owned();
                Response::Error { code, message }
            }
            op => return Err(WireError::UnknownOpcode(op)),
        };
        b.finish()?;
        Ok(rsp)
    }
}

/// A resumable, incremental frame decoder over a reusable buffer.
///
/// [`read_frame`] blocks in `read_exact` until a whole frame is
/// present — fine for one thread per connection, useless for an event
/// loop where a readiness notification may deliver half a header.
/// `FrameDecoder` instead accumulates whatever bytes the socket has
/// ([`read_from`] / [`feed`]) and hands out complete payloads
/// ([`next_frame`]) as zero-copy slices into its buffer; partial
/// prefixes and partial payloads simply stay buffered until more
/// bytes arrive. Feeding a stream byte-by-byte yields exactly the
/// frames of one-shot decoding (property-tested against
/// [`read_frame`]).
///
/// The buffer is reused ring-style: consumed bytes are reclaimed by
/// sliding the live window to the front once the read cursor passes
/// half the buffer, so steady-state decoding allocates nothing.
///
/// [`read_from`]: FrameDecoder::read_from
/// [`feed`]: FrameDecoder::feed
/// [`next_frame`]: FrameDecoder::next_frame
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes before `head` are consumed frames awaiting reclamation.
    head: usize,
    max_len: u32,
}

/// How many bytes [`FrameDecoder::read_from`] asks the socket for at
/// a time (grown to the announced frame length when one is pending).
const READ_CHUNK: usize = 16 * 1024;

impl FrameDecoder {
    /// Creates a decoder enforcing `max_len` (see [`read_frame`]).
    pub fn new(max_len: u32) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            head: 0,
            max_len,
        }
    }

    /// Appends raw stream bytes to the buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.reclaim();
        self.buf.extend_from_slice(bytes);
    }

    /// Performs **one** `read` into the buffer's tail, returning how
    /// many bytes arrived (`Ok(0)` is end-of-stream). `WouldBlock`
    /// and `Interrupted` are the caller's to handle — an edge-driven
    /// caller loops until `WouldBlock`.
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> io::Result<usize> {
        self.reclaim();
        let len = self.buf.len();
        // If a frame header is already buffered, size the read to
        // finish that frame; otherwise read a chunk.
        let want = READ_CHUNK.max(self.pending_frame_len().saturating_sub(len - self.head));
        self.buf.resize(len + want, 0);
        let got = match r.read(&mut self.buf[len..]) {
            Ok(n) => n,
            Err(e) => {
                self.buf.truncate(len);
                return Err(e);
            }
        };
        self.buf.truncate(len + got);
        Ok(got)
    }

    /// Total length (prefix + payload) of the frame announced by a
    /// buffered header, or 0 when no complete header is buffered.
    fn pending_frame_len(&self) -> usize {
        match self.buf[self.head..] {
            [a, b, c, d, ..] => 4 + u32::from_le_bytes([a, b, c, d]) as usize,
            _ => 0,
        }
    }

    /// Extracts the next complete frame payload, or `None` when more
    /// bytes are needed. Errors ([`WireError::Oversized`], empty
    /// frames) are unrecoverable: the prefix cannot be trusted, so
    /// the connection must close.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        let avail = self.buf.len() - self.head;
        if avail < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            self.buf[self.head..self.head + 4]
                .try_into()
                .expect("4 bytes"),
        );
        if len == 0 {
            return Err(WireError::Malformed("empty frame"));
        }
        if len > self.max_len {
            return Err(WireError::Oversized {
                len,
                max: self.max_len,
            });
        }
        if avail < 4 + len as usize {
            return Ok(None);
        }
        let start = self.head + 4;
        self.head = start + len as usize;
        Ok(Some(&self.buf[start..self.head]))
    }

    /// Whether bytes of an incomplete frame are buffered — EOF now
    /// means [`WireError::Truncated`], not a clean close.
    pub fn mid_frame(&self) -> bool {
        self.head < self.buf.len()
    }

    /// Number of not-yet-consumed buffered bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Slides the live window back to the buffer's front once the
    /// consumed prefix dominates, bounding memory without reallocating.
    fn reclaim(&mut self) {
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        } else if self.head >= READ_CHUNK.max(self.buf.len() / 2) {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

/// Reads one frame payload off `r`.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF exactly at a frame
/// boundary), [`WireError::Truncated`] on EOF inside a frame, and
/// [`WireError::Oversized`] when the prefix announces more than
/// `max_len` bytes (the caller must close the connection: the payload
/// has not been consumed, so the stream cannot be resynchronized).
pub fn read_frame<R: Read>(r: &mut R, max_len: u32) -> Result<Option<Vec<u8>>, WireError> {
    let mut prefix = [0u8; 4];
    // Distinguish clean EOF (zero bytes of the next frame) from a
    // truncated prefix.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(WireError::Truncated)
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len == 0 {
        return Err(WireError::Malformed("empty frame"));
    }
    if len > max_len {
        return Err(WireError::Oversized { len, max: max_len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request) -> Request {
        let mut buf = Vec::new();
        req.encode(&mut buf);
        let payload = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        Request::decode(&payload).unwrap()
    }

    #[test]
    fn request_roundtrips() {
        for req in [
            Request::Update { key: 7, weight: 3 },
            Request::Query { key: u64::MAX },
            Request::Batch(vec![(1, 2), (3, 4)]),
            Request::Batch(vec![]),
            Request::Stats,
            Request::Shutdown,
        ] {
            assert_eq!(roundtrip_request(&req), req);
        }
    }

    #[test]
    fn response_roundtrips() {
        let env = crate::envelope::Envelope {
            key: 5,
            estimate: 100,
            epsilon: 3,
            stream_len: 500,
            alpha: 0.005,
            delta: 0.01,
            lag: 128,
        };
        for rsp in [
            Response::Ack { applied: 9 },
            Response::Envelope(env),
            Response::Goodbye,
            Response::Error {
                code: ErrorCode::Busy,
                message: "all shards leased".into(),
            },
        ] {
            let mut buf = Vec::new();
            rsp.encode(&mut buf);
            let payload = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_LEN)
                .unwrap()
                .unwrap();
            assert_eq!(Response::decode(&payload).unwrap(), rsp);
        }
    }

    #[test]
    fn clean_eof_is_none_truncated_prefix_is_error() {
        assert_eq!(read_frame(&mut [].as_slice(), 64).unwrap(), None);
        assert_eq!(
            read_frame(&mut [3u8, 0].as_slice(), 64).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn truncated_payload_is_error() {
        let mut buf = Vec::new();
        Request::Query { key: 1 }.encode(&mut buf);
        buf.truncate(buf.len() - 2);
        assert_eq!(
            read_frame(&mut buf.as_slice(), 64).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        push_u32(&mut buf, 1 << 30);
        buf.push(OP_STATS);
        assert_eq!(
            read_frame(&mut buf.as_slice(), 64).unwrap_err(),
            WireError::Oversized {
                len: 1 << 30,
                max: 64
            }
        );
    }

    #[test]
    fn unknown_opcode_and_bad_bodies_rejected() {
        assert_eq!(
            Request::decode(&[0x7f]).unwrap_err(),
            WireError::UnknownOpcode(0x7f)
        );
        assert_eq!(
            Request::decode(&[OP_UPDATE, 1, 2]).unwrap_err(),
            WireError::Malformed("body shorter than its schema")
        );
        // Batch announcing more items than it carries.
        let mut bad = vec![OP_BATCH];
        bad.extend_from_slice(&5u32.to_le_bytes());
        assert!(matches!(
            Request::decode(&bad).unwrap_err(),
            WireError::Malformed(_)
        ));
        // Trailing garbage after a well-formed body.
        let mut buf = Vec::new();
        Request::Query { key: 1 }.encode(&mut buf);
        let mut payload = read_frame(&mut buf.as_slice(), 64).unwrap().unwrap();
        payload.push(0xAA);
        assert_eq!(
            Request::decode(&payload).unwrap_err(),
            WireError::Malformed("trailing bytes after body")
        );
    }

    #[test]
    fn oversized_batch_count_rejected() {
        let mut payload = vec![OP_BATCH];
        payload.extend_from_slice(&(MAX_BATCH_ITEMS + 1).to_le_bytes());
        assert_eq!(
            Request::decode(&payload).unwrap_err(),
            WireError::Malformed("batch exceeds MAX_BATCH_ITEMS")
        );
    }
}
