//! The served-object layer: one trait, many quantitative objects.
//!
//! The paper's Theorem 1 (locality) says a multi-object history is IVL
//! iff every per-object projection is IVL. This module is that theorem
//! made operational for the service: a [`ServedObject`] is any
//! quantitative object the server can route wire requests to, an
//! [`ObjectRegistry`] holds the named instances (object ids are
//! registry indices, carried in every protocol-v2 frame), and each
//! object supplies its own error-envelope form
//! ([`crate::envelope::ErrorEnvelope`]) plus a sequential spec for
//! verifying *its own projection* of a recorded run. The server checks
//! (and `ivl_check` reports) one verdict per object — the history as a
//! whole is IVL exactly when every row of that table is.
//!
//! Four kinds ship ([`ObjectKind`]):
//!
//! * `cm` — the sharded CountMin ([`ServedCountMin`]): single-writer
//!   shard leases, optional write buffering, the Theorem 6 frequency
//!   envelope. Object 0 is always a CountMin so protocol-v1 frames
//!   (which carry no object id) keep their exact old meaning.
//! * `hll` — [`ivl_concurrent::ConcurrentHll`]: `fetch_max` registers,
//!   cardinality envelope with the standard-error bound, and the
//!   monotone register-sum indicator as the checkable query value.
//! * `morris` — [`ivl_concurrent::ConcurrentMorris`]: CAS'd exponent.
//!   Its coin flips live server-side, so a recorded run is not
//!   deterministically replayable against the estimator; the verdict
//!   instead checks the object's acknowledged-weight counter
//!   projection, which *is* deterministic (and exactly the guarantee
//!   the envelope's `observed` field serves).
//! * `min` — [`ivl_concurrent::ConcurrentMinRegister`]: `fetch_min`,
//!   an antitone object; the generalized (endpoint-sorting) interval
//!   checker verifies it directly.
//!
//! Writers are per-(object, writer-thread): each connection thread
//! (threaded backend) or reactor thread (event-loop backend) holds a
//! lazily created [`ObjectWriter`] per object it updates, so the
//! CountMin's per-(object, shard) lease discipline and the lock-free
//! objects' wait-free updates coexist behind one interface.

use crate::envelope::{Envelope, ErrorEnvelope};
use crate::metrics::{Metrics, ObjectStats};
use crate::wspec::WeightedCmSpec;
use ivl_concurrent::{
    BatchScratch, ConcurrentHll, ConcurrentMinRegister, ConcurrentMorris, ShardLease, ShardedPcm,
    UpdateBuffer,
};
use ivl_counter::{IvlBatchedCounter, SharedBatchedCounter};
use ivl_merge::{AbsorbSink, MergeError, MergeableState};
use ivl_sketch::countmin::{CountMin, CountMinParams};
use ivl_sketch::hll::HyperLogLog;
use ivl_sketch::CoinFlips;
use ivl_spec::history::History;
use ivl_spec::ivl::check_ivl_monotone;
use ivl_spec::spec::{MonotoneSpec, ObjectSpec};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Register precision of served HLL objects (`2^12` registers, ~1.6%
/// standard error) — a fixed serving choice, like the CountMin taking
/// its `(α, δ)` from the server config.
pub const HLL_PRECISION: u32 = 12;

/// Accuracy parameter `a` of served Morris counters.
pub const MORRIS_A: f64 = 0.5;

/// A single update may apply at most this many Morris estimator
/// events; larger weights are acknowledged in full (the `observed`
/// counter always gets the whole weight) but clamp the estimator work,
/// bounding per-frame service time against hostile weights.
pub const MORRIS_MAX_EVENTS_PER_UPDATE: u64 = 1 << 16;

// The kind-tagged mergeable-state vocabulary and the coin/fingerprint
// discipline now live in `ivl-merge` (one property-tested home shared
// with the replication layer); re-exported here so the served-object
// API — and every `crate::objects::*` path — is unchanged.
pub use ivl_merge::{
    cm_hash_fingerprint, hll_hash_fingerprint, slot_coins, CellRun, DeltaChange, ObjectKind,
    SnapshotState,
};

/// One named object to register at server start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectConfig {
    /// Registry name (resolved by `Client::object`).
    pub name: String,
    /// Which object kind to instantiate.
    pub kind: ObjectKind,
}

impl ObjectConfig {
    /// A named object of `kind`.
    pub fn new(name: impl Into<String>, kind: ObjectKind) -> Self {
        ObjectConfig {
            name: name.into(),
            kind,
        }
    }
}

impl Default for ObjectConfig {
    /// The default v1-compatible roster entry: a CountMin named "cm".
    fn default() -> Self {
        ObjectConfig::new("cm", ObjectKind::CountMin)
    }
}

impl std::str::FromStr for ObjectConfig {
    type Err = String;

    /// Parses `name=kind`, or a bare `kind` (the kind string doubles
    /// as the name).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, kind) = match s.split_once('=') {
            Some((n, k)) => (n, k),
            None => (s, s),
        };
        if name.is_empty() {
            return Err("object name is empty".into());
        }
        Ok(ObjectConfig::new(name, kind.parse::<ObjectKind>()?))
    }
}

/// A registry row as listed over the wire by `OBJECTS`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectInfo {
    /// Object id (the registry index carried in v2 frames).
    pub id: u32,
    /// Object kind.
    pub kind: ObjectKind,
    /// Registry name.
    pub name: String,
}

/// One object's `SNAPSHOT` reply: its mergeable state plus the error
/// envelope in force at snapshot time.
///
/// The envelope carries the object's error *parameters* and observed
/// update weight; for frequency envelopes the `key`/`estimate` fields
/// are zero sentinels — a snapshot is not a point query, and the
/// consumer re-derives point estimates from the (merged) state.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectSnapshot {
    /// Object id on the serving replica.
    pub object: u32,
    /// Object kind (decides how `state` decodes on the wire).
    pub kind: ObjectKind,
    /// The mergeable state.
    pub state: SnapshotState,
    /// The envelope at snapshot time.
    pub envelope: ErrorEnvelope,
}

/// A `SNAPSHOT_SINCE` reply: the object's current epoch, the change
/// against the client's base, and the envelope in force — the
/// versioned, delta-capable sibling of [`ObjectSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotDelta {
    /// Object id on the serving replica.
    pub object: u32,
    /// Object kind (decides how `change` decodes on the wire).
    pub kind: ObjectKind,
    /// The epoch this reply brings the client up to; the client
    /// records it as the base of its next `SNAPSHOT_SINCE`.
    pub epoch: u64,
    /// The state change since the client's base.
    pub change: DeltaChange,
    /// The envelope at reply time (same sentinel conventions as
    /// [`ObjectSnapshot::envelope`]).
    pub envelope: ErrorEnvelope,
}

/// An update refused by an object's writer (the CountMin's shard pool
/// is exhausted); maps to the protocol's `busy` error.
#[derive(Clone, Debug)]
pub struct ObjectBusy {
    /// Human-readable reason.
    pub message: String,
}

/// One writer thread's per-object update state. A connection thread
/// (threaded backend) or reactor thread (event-loop backend) holds at
/// most one writer per object, created lazily on the object's first
/// update — for the CountMin that writer owns the per-(object, shard)
/// lease and the local write buffer; for the lock-free objects it is
/// stateless.
pub trait ObjectWriter: fmt::Debug {
    /// Acquires whatever the writer needs before updates can apply
    /// (the CountMin's shard lease); wait-free objects always succeed.
    /// Called before every update batch so a previously `busy` writer
    /// retries acquisition.
    fn ensure_ready(&mut self) -> Result<(), ObjectBusy>;

    /// Applies one `(key, weight)` update. Only called after
    /// [`ensure_ready`](Self::ensure_ready) succeeded.
    fn apply(&mut self, key: u64, weight: u64);

    /// Applies a whole batch frame. Only called after
    /// [`ensure_ready`](Self::ensure_ready) succeeded. The default
    /// loops [`apply`](Self::apply); objects with a batch kernel (the
    /// CountMin) override it to coalesce duplicate keys within the
    /// frame and hash each distinct key once. Overrides must leave the
    /// same quiescent state as the per-item loop and must keep any
    /// buffered-weight bound the object's envelope advertises.
    fn apply_batch(&mut self, items: &[(u64, u64)]) {
        for &(key, weight) in items {
            self.apply(key, weight);
        }
    }

    /// Absorbs a peer's pushed snapshot state into the shared object —
    /// the receiving half of replication catch-up (`PUSH_STATE`). Only
    /// called after [`ensure_ready`](Self::ensure_ready) succeeded.
    /// `observed` is the acknowledged update weight the pushed state
    /// covers; on success it is credited to the object's observed
    /// counter so envelopes account for the restored weight. Refuses
    /// with a typed [`MergeError`] (mapping to the wire's
    /// `MergeMismatch`) when the state's kind, dimensions, or hash
    /// fingerprint do not match the served structure.
    fn absorb(&mut self, state: &SnapshotState, observed: u64) -> Result<(), MergeError>;

    /// Propagates any locally buffered weight into the shared object.
    fn flush(&mut self);

    /// Flushes and drops any held shard lease; returns whether a lease
    /// went back to its pool (so the server can wake lease waiters).
    fn release(&mut self) -> bool;
}

/// A quantitative object the server can route requests to.
///
/// Implementations own their shared concurrent state, their per-object
/// operation counters, and their envelope form; the server stays
/// object-agnostic and just routes by id. Every impl must have a row
/// in the "Served objects" table of `crates/concurrent/ORDERINGS.md`
/// (enforced by `ivl_lint`) naming the concurrent core it serves and
/// its verdict discipline.
pub trait ServedObject: Send + Sync + fmt::Debug {
    /// Which kind this object is.
    fn kind(&self) -> ObjectKind;

    /// Creates this object's per-writer update state.
    fn writer<'a>(&'a self, metrics: &'a Metrics) -> Box<dyn ObjectWriter + 'a>;

    /// Answers a query with this object's error envelope.
    fn query(&self, key: u64) -> ErrorEnvelope;

    /// This object's mergeable state plus its current envelope — the
    /// `SNAPSHOT` read primitive of the replication layer. Each piece
    /// of the returned state is an IVL read (an intermediate mix of
    /// the concurrent updates), so merging snapshots composes exactly
    /// like merging sequential summaries.
    fn snapshot(&self) -> (SnapshotState, ErrorEnvelope);

    /// This object's monotone update epoch. Equal epochs across two
    /// reads mean the snapshot state is unchanged between them, so a
    /// client holding state at epoch `e` can be answered `Unchanged`
    /// while the epoch is still `e`.
    fn epoch(&self) -> u64;

    /// Answers `SNAPSHOT_SINCE` against a client base epoch: the
    /// current epoch, the change to apply, and the envelope in force.
    /// The default is epoch-compare only — `Unchanged` when the base
    /// is current, a full replacement otherwise. Objects with sparse
    /// dirty tracking (CountMin, HLL) override with real deltas.
    fn snapshot_since(&self, base: u64) -> (u64, DeltaChange, ErrorEnvelope) {
        let epoch = self.epoch();
        let (state, envelope) = self.snapshot();
        if epoch == base {
            (epoch, DeltaChange::Unchanged, envelope)
        } else {
            (epoch, DeltaChange::Full(state), envelope)
        }
    }

    /// Per-object operation counters (the `STATS` rows).
    fn op_stats(&self) -> ObjectStats;

    /// Free shard-lease slots, for lease-pooled objects (`None` when
    /// the object's updates are wait-free and never refuse).
    fn free_shards(&self) -> Option<usize> {
        None
    }

    /// Downcast hook for the CountMin (tests and the v1 compatibility
    /// surface reach its sketch and spec through this).
    fn as_count_min(&self) -> Option<&ServedCountMin> {
        None
    }

    /// Checks this object's projection of a recorded history against
    /// its sequential spec. Returns the verdict (`None` when the
    /// object has no deterministic strict check) and a note naming
    /// what was checked.
    fn check_projection(
        &self,
        projection: &History<(u64, u64), u64, u64>,
    ) -> (Option<bool>, &'static str);
}

/// The per-object verdict row — Theorem 1 (locality) operationally: a
/// recorded multi-object run is IVL iff every row's `ivl` is not
/// `false`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectVerdict {
    /// Object id.
    pub id: u32,
    /// Registry name.
    pub name: String,
    /// Object kind.
    pub kind: ObjectKind,
    /// Operations in this object's projection.
    pub ops: usize,
    /// Projection verdict; `None` when no deterministic strict check
    /// exists (see `note`).
    pub ivl: Option<bool>,
    /// What the verdict checked.
    pub note: &'static str,
}

/// The named objects one server instance routes to. Object ids are
/// indices into this registry and appear verbatim in v2 frames;
/// object 0 is always a CountMin so v1 (object-id-less) frames keep
/// their original meaning.
pub struct ObjectRegistry {
    entries: Vec<(String, Box<dyn ServedObject>)>,
}

impl fmt::Debug for ObjectRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.entries.iter().map(|(n, o)| (n, o.kind())))
            .finish()
    }
}

impl ObjectRegistry {
    /// Builds a registry from object configs. `seed` feeds each
    /// object's coin flips (perturbed per index so same-kind objects
    /// hash independently); CountMin objects take `(alpha, delta)`,
    /// `shards` and `write_buffer` from the server config.
    ///
    /// # Panics
    ///
    /// Panics if `objects` is empty, if object 0 is not a CountMin, or
    /// if two objects share a name.
    pub fn build(
        objects: &[ObjectConfig],
        alpha: f64,
        delta: f64,
        shards: usize,
        write_buffer: u64,
        seed: u64,
    ) -> Self {
        assert!(!objects.is_empty(), "need at least one served object");
        assert_eq!(
            objects[0].kind,
            ObjectKind::CountMin,
            "object 0 must be a CountMin (the v1 frame target)"
        );
        let mut entries: Vec<(String, Box<dyn ServedObject>)> = Vec::with_capacity(objects.len());
        for (idx, oc) in objects.iter().enumerate() {
            assert!(
                entries.iter().all(|(n, _)| n != &oc.name),
                "duplicate object name {:?}",
                oc.name
            );
            let mut coins = slot_coins(seed, idx as u32);
            let object: Box<dyn ServedObject> = match oc.kind {
                ObjectKind::CountMin => Box::new(ServedCountMin::new(
                    alpha,
                    delta,
                    shards,
                    write_buffer,
                    &mut coins,
                )),
                ObjectKind::Hll => Box::new(ServedHll::new(HLL_PRECISION, &mut coins)),
                ObjectKind::Morris => Box::new(ServedMorris::new(MORRIS_A, coins)),
                ObjectKind::MinRegister => Box::new(ServedMinRegister::new()),
            };
            entries.push((oc.name.clone(), object));
        }
        ObjectRegistry { entries }
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty (never true for a built registry).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The object with id `id`.
    pub fn get(&self, id: u32) -> Option<&dyn ServedObject> {
        self.entries.get(id as usize).map(|(_, o)| o.as_ref())
    }

    /// The object named `name`, with its id.
    pub fn by_name(&self, name: &str) -> Option<(u32, &dyn ServedObject)> {
        self.entries
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| (i as u32, self.entries[i].1.as_ref()))
    }

    /// The CountMin with id `id`, if that object is one.
    pub fn cm(&self, id: u32) -> Option<&ServedCountMin> {
        self.get(id).and_then(ServedObject::as_count_min)
    }

    /// A `SNAPSHOT` reply for object `id` (`None` for unknown ids).
    pub fn snapshot(&self, id: u32) -> Option<ObjectSnapshot> {
        self.get(id).map(|o| {
            let (state, envelope) = o.snapshot();
            ObjectSnapshot {
                object: id,
                kind: o.kind(),
                state,
                envelope,
            }
        })
    }

    /// A `SNAPSHOT_SINCE` reply for object `id` against a client base
    /// epoch (`None` for unknown ids).
    pub fn snapshot_since(&self, id: u32, base: u64) -> Option<SnapshotDelta> {
        self.get(id).map(|o| {
            let (epoch, change, envelope) = o.snapshot_since(base);
            SnapshotDelta {
                object: id,
                kind: o.kind(),
                epoch,
                change,
                envelope,
            }
        })
    }

    /// The wire listing served by `OBJECTS`.
    pub fn infos(&self) -> Vec<ObjectInfo> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, (name, o))| ObjectInfo {
                id: i as u32,
                kind: o.kind(),
                name: name.clone(),
            })
            .collect()
    }

    /// Per-object operation counters, ordered by id (the `STATS` rows).
    pub fn stats_rows(&self) -> Vec<ObjectStats> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, (_, o))| ObjectStats {
                id: i as u32,
                ..o.op_stats()
            })
            .collect()
    }

    /// Total acknowledged update weight across all objects (the
    /// server-wide `stream_len`).
    pub fn total_observed(&self) -> u64 {
        self.entries
            .iter()
            .map(|(_, o)| o.op_stats().observed)
            .sum()
    }

    /// Free shard-lease slots summed over lease-pooled objects.
    pub fn free_shards(&self) -> usize {
        self.entries
            .iter()
            .filter_map(|(_, o)| o.free_shards())
            .sum()
    }

    /// Checks every object's projection of `history` against its own
    /// sequential spec — one [`ObjectVerdict`] per registered object
    /// (Theorem 1's locality, per row).
    pub fn verdicts(&self, history: &History<(u64, u64), u64, u64>) -> Vec<ObjectVerdict> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, (name, o))| {
                let projection = history.project(ivl_spec::history::ObjectId(i as u32));
                let ops = projection.operations().len();
                let (ivl, note) = o.check_projection(&projection);
                ObjectVerdict {
                    id: i as u32,
                    name: name.clone(),
                    kind: o.kind(),
                    ops,
                    ivl,
                    note,
                }
            })
            .collect()
    }
}

/// Per-object operation counters shared by every [`ServedObject`]
/// implementation.
#[derive(Debug, Default)]
struct OpCounters {
    updates: AtomicU64,
    queries: AtomicU64,
    observed: AtomicU64,
}

impl OpCounters {
    fn note_update(&self, weight: u64) {
        self.updates.fetch_add(1, Ordering::Relaxed);
        self.observed.fetch_add(weight, Ordering::Relaxed);
    }

    /// Batch-frame accounting: `n` updates of `weight` total observed
    /// weight in two atomic adds instead of `2n`.
    fn note_updates(&self, n: u64, weight: u64) {
        self.updates.fetch_add(n, Ordering::Relaxed);
        self.observed.fetch_add(weight, Ordering::Relaxed);
    }

    /// Catch-up accounting: absorbed weight raises `observed` (the
    /// envelope's acknowledged-weight field) without counting as an
    /// update operation — the peer already counted those updates.
    fn note_absorbed(&self, weight: u64) {
        self.observed.fetch_add(weight, Ordering::Relaxed);
    }

    fn note_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    fn stats(&self) -> ObjectStats {
        ObjectStats {
            id: 0, // filled by the registry
            updates: self.updates.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            observed: self.observed.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------
// CountMin
// ---------------------------------------------------------------------

/// The sharded CountMin as a served object: everything the pre-registry
/// server kept inline — prototype, [`ShardedPcm`], ingest counter, and
/// the write-buffer discipline — behind the [`ServedObject`] interface.
#[derive(Debug)]
pub struct ServedCountMin {
    /// Empty prototype fixing the coin flips; `sketch` shares its
    /// hashes, and `WeightedCmSpec::new(proto.clone())` is the exact
    /// sequential spec of this object.
    proto: CountMin,
    sketch: ShardedPcm,
    /// Stream-weight counter, one single-writer slot per shard.
    ingest: IvlBatchedCounter,
    write_buffer: u64,
    ops: OpCounters,
    /// Bounded ring of recently served `(sum epoch → per-shard epoch
    /// vector)` decompositions. The wire epoch is the *sum* of the
    /// per-shard epochs, but dirty rows are tracked per shard, so a
    /// delta against a client base needs the base's decomposition
    /// back. Only the snapshot path locks it — never the ingest path.
    ledger: Mutex<VecDeque<(u64, Vec<u64>)>>,
}

/// How many served snapshot epochs [`ServedCountMin`] remembers the
/// per-shard decomposition of. A client more than this many snapshots
/// behind falls back to a full snapshot.
const SNAPSHOT_LEDGER_CAP: usize = 32;

impl ServedCountMin {
    /// Creates a sharded CountMin for `(alpha, delta)` with `shards`
    /// single-writer shards and write-buffer batch `write_buffer`
    /// (0 = strict).
    pub fn new(
        alpha: f64,
        delta: f64,
        shards: usize,
        write_buffer: u64,
        coins: &mut CoinFlips,
    ) -> Self {
        let params = CountMinParams::for_bounds(alpha, delta);
        let proto = CountMin::new(params, coins);
        ServedCountMin {
            sketch: ShardedPcm::from_prototype(&proto, shards),
            ingest: IvlBatchedCounter::new(shards),
            write_buffer,
            ops: OpCounters::default(),
            ledger: Mutex::new(VecDeque::with_capacity(SNAPSHOT_LEDGER_CAP)),
            proto,
        }
    }

    /// Records a served `(sum epoch, per-shard epochs)` decomposition
    /// so later `SNAPSHOT_SINCE` calls can diff against it. Per-shard
    /// epochs are monotone, so a sum epoch decomposes uniquely —
    /// duplicates are skipped, the ring stays bounded.
    fn ledger_remember(&self, epoch: u64, shard_epochs: &[u64]) {
        let mut ring = self.ledger.lock().unwrap();
        if ring.iter().any(|(e, _)| *e == epoch) {
            return;
        }
        if ring.len() == SNAPSHOT_LEDGER_CAP {
            ring.pop_front();
        }
        ring.push_back((epoch, shard_epochs.to_vec()));
    }

    /// The per-shard decomposition of a client base epoch, if still
    /// remembered.
    fn ledger_lookup(&self, epoch: u64) -> Option<Vec<u64>> {
        let ring = self.ledger.lock().unwrap();
        ring.iter()
            .find(|(e, _)| *e == epoch)
            .map(|(_, v)| v.clone())
    }

    /// The frequency envelope served alongside snapshots and deltas
    /// (key/estimate zeroed — the receiver queries the merged state).
    fn snapshot_envelope(&self) -> ErrorEnvelope {
        let stream_len = self.ingest.read();
        let params = self.proto.params();
        ErrorEnvelope::Frequency(Envelope::new(
            0,
            0,
            stream_len,
            params.alpha(),
            params.delta(),
            self.lag_bound(),
        ))
    }

    /// The sketch dimensions in force.
    pub fn params(&self) -> CountMinParams {
        self.proto.params()
    }

    /// The shared sharded sketch (reads are always allowed).
    pub fn sketch(&self) -> &ShardedPcm {
        &self.sketch
    }

    /// This object's acknowledged stream weight (an IVL read).
    pub fn stream_len(&self) -> u64 {
        self.ingest.read()
    }

    /// The exact sequential spec of this object (clones the empty
    /// prototype, so the spec carries the same sampled hashes).
    pub fn spec(&self) -> WeightedCmSpec {
        WeightedCmSpec::new(self.proto.clone())
    }

    /// The deferred-visibility bound advertised in every envelope: at
    /// most `shards` writers each holding `< write_buffer` weight.
    pub fn lag_bound(&self) -> u64 {
        self.write_buffer
            .saturating_mul(self.sketch.num_shards() as u64)
    }
}

impl ServedObject for ServedCountMin {
    fn kind(&self) -> ObjectKind {
        ObjectKind::CountMin
    }

    fn writer<'a>(&'a self, metrics: &'a Metrics) -> Box<dyn ObjectWriter + 'a> {
        Box::new(CmWriter {
            obj: self,
            metrics,
            lease: None,
            buffer: (self.write_buffer > 0)
                .then(|| UpdateBuffer::new(self.proto.params().depth, self.write_buffer)),
            scratch: BatchScratch::with_capacity(
                self.proto.params().depth,
                crate::protocol::MAX_BATCH_ITEMS as usize,
            ),
        })
    }

    fn query(&self, key: u64) -> ErrorEnvelope {
        self.ops.note_query();
        let estimate = self.sketch.estimate(key);
        let stream_len = self.ingest.read();
        let params = self.proto.params();
        ErrorEnvelope::Frequency(Envelope::new(
            key,
            estimate,
            stream_len,
            params.alpha(),
            params.delta(),
            self.lag_bound(),
        ))
    }

    fn snapshot(&self) -> (SnapshotState, ErrorEnvelope) {
        self.ops.note_query();
        let params = self.proto.params();
        // Epochs before cells: the shipped cells are then at least as
        // new as the recorded decomposition, so a later delta against
        // this epoch only ever re-sends (never misses) a write.
        let mut shard_epochs = Vec::with_capacity(self.sketch.num_shards());
        self.sketch.shard_epochs_into(&mut shard_epochs);
        self.ledger_remember(shard_epochs.iter().sum(), &shard_epochs);
        // Cells before stream length, the same read discipline as
        // `query` (cells lead the ingest counter on the write side).
        let cells = self.sketch.cells_snapshot();
        let state = SnapshotState::CountMin {
            width: params.width as u32,
            depth: params.depth as u32,
            hash_fp: cm_hash_fingerprint(self.proto.hashes()),
            cells,
        };
        (state, self.snapshot_envelope())
    }

    fn epoch(&self) -> u64 {
        self.sketch.epoch()
    }

    fn snapshot_since(&self, base: u64) -> (u64, DeltaChange, ErrorEnvelope) {
        self.ops.note_query();
        let mut shard_epochs = Vec::with_capacity(self.sketch.num_shards());
        self.sketch.shard_epochs_into(&mut shard_epochs);
        let epoch: u64 = shard_epochs.iter().sum();
        self.ledger_remember(epoch, &shard_epochs);
        if epoch == base {
            // Per-shard epochs are monotone, so equal sums mean the
            // decomposition (hence every row epoch, hence every cell
            // the client holds) is unchanged.
            return (epoch, DeltaChange::Unchanged, self.snapshot_envelope());
        }
        let params = self.proto.params();
        let change = self
            .ledger_lookup(base)
            .and_then(|base_epochs| {
                let spans = self.sketch.dirty_spans_since(&base_epochs);
                // A run costs 12 bytes of header plus its cells; fall
                // back to the full frame when sparseness does not pay.
                let delta_bytes: usize = spans
                    .iter()
                    .filter(|&&(lo, hi)| lo < hi)
                    .map(|&(lo, hi)| 12 + 8 * (hi - lo) as usize)
                    .sum();
                if delta_bytes >= params.width * params.depth * 8 {
                    return None;
                }
                let mut runs = Vec::new();
                for (row, &(lo, hi)) in spans.iter().enumerate() {
                    if lo >= hi {
                        continue;
                    }
                    let mut values = Vec::with_capacity((hi - lo) as usize);
                    self.sketch
                        .sum_row_range_into(row, lo as usize, hi as usize, &mut values);
                    runs.push(CellRun {
                        row: row as u32,
                        lo,
                        values,
                    });
                }
                Some(DeltaChange::CmRuns {
                    base_epoch: base,
                    runs,
                })
            })
            .unwrap_or_else(|| {
                let cells = self.sketch.cells_snapshot();
                DeltaChange::Full(SnapshotState::CountMin {
                    width: params.width as u32,
                    depth: params.depth as u32,
                    hash_fp: cm_hash_fingerprint(self.proto.hashes()),
                    cells,
                })
            });
        (epoch, change, self.snapshot_envelope())
    }

    fn op_stats(&self) -> ObjectStats {
        ObjectStats {
            observed: self.ingest.read(),
            ..self.ops.stats()
        }
    }

    fn free_shards(&self) -> Option<usize> {
        Some(self.sketch.free_shards())
    }

    fn as_count_min(&self) -> Option<&ServedCountMin> {
        Some(self)
    }

    fn check_projection(
        &self,
        projection: &History<(u64, u64), u64, u64>,
    ) -> (Option<bool>, &'static str) {
        if self.write_buffer > 0 {
            // Acknowledged-before-visible is the advertised relaxation
            // (envelope lag); the strict check would fail by design.
            return (
                None,
                "write-buffered: strict check waived, bound is the envelope lag",
            );
        }
        (
            Some(check_ivl_monotone(&self.spec(), projection).is_ivl()),
            "frequency estimates vs the weighted CountMin spec",
        )
    }
}

/// CountMin per-writer state: the per-(object, shard) lease, the
/// local coalescing buffer, and the batch-frame scratch.
struct CmWriter<'a> {
    obj: &'a ServedCountMin,
    metrics: &'a Metrics,
    lease: Option<ShardLease<'a>>,
    buffer: Option<UpdateBuffer>,
    /// Frame coalescing + row-major column scratch for
    /// [`ObjectWriter::apply_batch`]; reused across frames so a
    /// steady-state batch allocates nothing.
    scratch: BatchScratch,
}

impl fmt::Debug for CmWriter<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CmWriter")
            .field("leased", &self.lease.is_some())
            .finish_non_exhaustive()
    }
}

impl ObjectWriter for CmWriter<'_> {
    fn ensure_ready(&mut self) -> Result<(), ObjectBusy> {
        if self.lease.is_none() {
            self.lease = self.obj.sketch.lease();
        }
        if self.lease.is_some() {
            Ok(())
        } else {
            Err(ObjectBusy {
                message: format!("all {} shards leased", self.obj.sketch.num_shards()),
            })
        }
    }

    fn apply(&mut self, key: u64, weight: u64) {
        let lease = self.lease.as_mut().expect("ensure_ready acquired a lease");
        if let Some(buf) = self.buffer.as_mut() {
            self.metrics.record_buffered(weight.max(1));
            if buf.push(self.obj.sketch.hashes(), key, weight) {
                let flushed = buf.drain(|cols, count| lease.apply_rows(cols, count));
                self.metrics.record_flush(flushed);
            }
        } else {
            lease.update_by(key, weight);
        }
        self.obj.ingest.update_slot(lease.shard(), weight);
        self.obj.ops.note_update(0); // observed comes from `ingest`
    }

    fn apply_batch(&mut self, items: &[(u64, u64)]) {
        let lease = self.lease.as_mut().expect("ensure_ready acquired a lease");
        if let Some(buf) = self.buffer.as_mut() {
            // Coalesce the frame first so each distinct key costs one
            // buffer probe; the buffer still trips its batch bound
            // mid-frame, so the advertised lag is unchanged.
            self.scratch.coalesce(items);
            for e in 0..self.scratch.len() {
                let (key, count) = self.scratch.entry(e);
                self.metrics.record_buffered(count.max(1));
                if buf.push(self.obj.sketch.hashes(), key, count) {
                    let flushed = buf.drain(|cols, count| lease.apply_rows(cols, count));
                    self.metrics.record_flush(flushed);
                }
            }
        } else {
            lease.apply_batch(items, &mut self.scratch);
        }
        let total: u64 = items.iter().map(|&(_, w)| w).sum();
        self.obj.ingest.update_slot(lease.shard(), total);
        self.obj.ops.note_updates(items.len() as u64, 0); // observed comes from `ingest`
    }

    fn absorb(&mut self, state: &SnapshotState, observed: u64) -> Result<(), MergeError> {
        state.absorb_into(self)?;
        // Cells lead the ingest counter, the same discipline as the
        // update path.
        let lease = self.lease.as_ref().expect("ensure_ready acquired a lease");
        self.obj.ingest.update_slot(lease.shard(), observed);
        Ok(())
    }

    fn flush(&mut self) {
        if let (Some(buf), Some(lease)) = (self.buffer.as_mut(), self.lease.as_mut()) {
            if !buf.is_empty() {
                let flushed = buf.drain(|cols, count| lease.apply_rows(cols, count));
                self.metrics.record_flush(flushed);
            }
        }
    }

    fn release(&mut self) -> bool {
        self.flush();
        self.lease.take().is_some()
    }
}

/// The CountMin's absorb sink: peer cells add into the leased shard
/// under the single-writer discipline (plain stores, one epoch commit)
/// after the fingerprint/dimension guard — merging a peer's matrix is
/// the same algebra as applying its substream locally.
impl AbsorbSink for CmWriter<'_> {
    fn absorb_cm(
        &mut self,
        width: u32,
        depth: u32,
        hash_fp: u64,
        cells: &[u64],
    ) -> Result<(), MergeError> {
        let params = self.obj.proto.params();
        if (width as usize, depth as usize) != (params.width, params.depth)
            || cells.len() != params.width * params.depth
            || hash_fp != cm_hash_fingerprint(self.obj.proto.hashes())
        {
            return Err(MergeError::new(
                "peer CountMin dimensions or coins do not match the served object",
            ));
        }
        let lease = self.lease.as_mut().expect("ensure_ready acquired a lease");
        lease.absorb_cells(cells);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// HyperLogLog
// ---------------------------------------------------------------------

/// Sequential spec of the served HLL, with the **register sum** as the
/// query value: registers are max-registers, so the sum is a monotone,
/// commutative functional of the update set — exactly the shape the
/// interval checker needs (the corrected float estimate is monotone
/// too, but piecewise; the integer sum is the checkable projection).
#[derive(Clone, Debug)]
pub struct HllSumSpec {
    proto: HyperLogLog,
}

impl ObjectSpec for HllSumSpec {
    type Update = (u64, u64);
    type Query = u64;
    type Value = u64;
    type State = HyperLogLog;

    fn initial_state(&self) -> HyperLogLog {
        self.proto.clone()
    }

    fn apply_update(&self, state: &mut HyperLogLog, &(key, _weight): &(u64, u64)) {
        state.update(key);
    }

    fn eval_query(&self, state: &HyperLogLog, _q: &u64) -> u64 {
        state.registers().iter().map(|&r| r as u64).sum()
    }
}

impl MonotoneSpec for HllSumSpec {}

/// A concurrent HLL as a served object.
#[derive(Debug)]
pub struct ServedHll {
    hll: ConcurrentHll,
    ops: OpCounters,
}

impl ServedHll {
    /// Creates an HLL with `2^precision` registers.
    pub fn new(precision: u32, coins: &mut CoinFlips) -> Self {
        ServedHll {
            hll: ConcurrentHll::new(precision, coins),
            ops: OpCounters::default(),
        }
    }

    /// The exact sequential spec of this object's register sum.
    pub fn spec(&self) -> HllSumSpec {
        HllSumSpec {
            proto: self.hll.prototype().clone(),
        }
    }
}

impl ServedObject for ServedHll {
    fn kind(&self) -> ObjectKind {
        ObjectKind::Hll
    }

    fn writer<'a>(&'a self, _metrics: &'a Metrics) -> Box<dyn ObjectWriter + 'a> {
        Box::new(AtomicWriter { obj: self })
    }

    fn query(&self, _key: u64) -> ErrorEnvelope {
        self.ops.note_query();
        // One snapshot feeds both the estimate and the checkable sum,
        // so the recorded query value matches the served envelope.
        let snap = self.hll.registers_snapshot();
        let register_sum = snap.iter().map(|&r| r as u64).sum();
        let mut seq = self.hll.prototype().clone();
        seq.merge_registers(&snap);
        ErrorEnvelope::Cardinality {
            estimate: seq.estimate(),
            rel_std_err: seq.standard_error(),
            registers: snap.len() as u64,
            register_sum,
            observed: self.ops.observed.load(Ordering::Relaxed),
        }
    }

    fn snapshot(&self) -> (SnapshotState, ErrorEnvelope) {
        self.ops.note_query();
        // One register snapshot feeds both the shipped state and the
        // envelope, so they describe the same intermediate mix.
        let snap = self.hll.registers_snapshot();
        let register_sum = snap.iter().map(|&r| r as u64).sum();
        let mut seq = self.hll.prototype().clone();
        seq.merge_registers(&snap);
        let envelope = ErrorEnvelope::Cardinality {
            estimate: seq.estimate(),
            rel_std_err: seq.standard_error(),
            registers: snap.len() as u64,
            register_sum,
            observed: self.ops.observed.load(Ordering::Relaxed),
        };
        let state = SnapshotState::Hll {
            hash_fp: hll_hash_fingerprint(self.hll.prototype()),
            registers: snap,
        };
        (state, envelope)
    }

    fn epoch(&self) -> u64 {
        self.hll.epoch()
    }

    fn snapshot_since(&self, base: u64) -> (u64, DeltaChange, ErrorEnvelope) {
        self.ops.note_query();
        // Epoch before registers: the shipped registers are at least
        // as new as the reported epoch (register-wise max makes any
        // over-read harmless on re-apply).
        let epoch = self.hll.epoch();
        let snap = self.hll.registers_snapshot();
        let register_sum = snap.iter().map(|&r| r as u64).sum();
        let mut seq = self.hll.prototype().clone();
        seq.merge_registers(&snap);
        let envelope = ErrorEnvelope::Cardinality {
            estimate: seq.estimate(),
            rel_std_err: seq.standard_error(),
            registers: snap.len() as u64,
            register_sum,
            observed: self.ops.observed.load(Ordering::Relaxed),
        };
        if epoch == base {
            return (epoch, DeltaChange::Unchanged, envelope);
        }
        let (lo, hi) = self.hll.dirty_range();
        let (lo, hi) = if lo < hi {
            (lo as usize, hi as usize)
        } else {
            (0, 0)
        };
        // The dirty range is cumulative (never narrows), so it always
        // covers every register the client's base missed. Ship the
        // full frame when the base is not a real prior epoch (the
        // no-cache sentinel is `u64::MAX`) or when the range is
        // nearly the whole vector.
        let change = if base > epoch || hi - lo + 16 >= snap.len() {
            DeltaChange::Full(SnapshotState::Hll {
                hash_fp: hll_hash_fingerprint(self.hll.prototype()),
                registers: snap,
            })
        } else {
            DeltaChange::HllRange {
                base_epoch: base,
                lo: lo as u32,
                registers: snap[lo..hi].to_vec(),
            }
        };
        (epoch, change, envelope)
    }

    fn op_stats(&self) -> ObjectStats {
        self.ops.stats()
    }

    fn check_projection(
        &self,
        projection: &History<(u64, u64), u64, u64>,
    ) -> (Option<bool>, &'static str) {
        (
            Some(check_ivl_monotone(&self.spec(), projection).is_ivl()),
            "register sums vs the sequential HLL replay",
        )
    }
}

impl AtomicApply for ServedHll {
    fn apply_one(&self, key: u64, weight: u64) {
        // Set semantics: the item is observed once; `weight` only
        // feeds the acknowledged-weight counter.
        self.hll.update(key);
        self.ops.note_update(weight);
    }

    fn absorb_state(&self, state: &SnapshotState) -> Result<(), MergeError> {
        let mut sink = self;
        state.absorb_into(&mut sink)
    }

    fn note_absorbed(&self, weight: u64) {
        self.ops.note_absorbed(weight);
    }
}

/// The HLL's absorb sink: register-wise `fetch_max` into the live
/// vector after the fingerprint guard — a join with the update path,
/// so concurrent updates and an absorb interleave safely.
impl AbsorbSink for &ServedHll {
    fn absorb_hll(&mut self, hash_fp: u64, registers: &[u8]) -> Result<(), MergeError> {
        let proto = self.hll.prototype();
        if hash_fp != hll_hash_fingerprint(proto)
            || registers.len() as u64 != proto.num_registers() as u64
        {
            return Err(MergeError::new(
                "peer HLL precision or coins do not match the served object",
            ));
        }
        self.hll.absorb(registers);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Morris
// ---------------------------------------------------------------------

/// Sequential spec of an object's acknowledged-weight counter: updates
/// add their weight, queries read the total. This is the deterministic
/// projection every served object exposes through its envelope's
/// `observed` field; it is the whole strict story for Morris, whose
/// estimator coins live server-side.
#[derive(Clone, Debug, Default)]
pub struct AckCounterSpec;

impl ObjectSpec for AckCounterSpec {
    type Update = (u64, u64);
    type Query = u64;
    type Value = u64;
    type State = u64;

    fn initial_state(&self) -> u64 {
        0
    }

    fn apply_update(&self, state: &mut u64, &(_key, weight): &(u64, u64)) {
        *state += weight;
    }

    fn eval_query(&self, state: &u64, _q: &u64) -> u64 {
        *state
    }
}

impl MonotoneSpec for AckCounterSpec {}

/// A concurrent Morris counter as a served object.
#[derive(Debug)]
pub struct ServedMorris {
    morris: ConcurrentMorris,
    a: f64,
    ops: OpCounters,
}

impl ServedMorris {
    /// Creates a Morris counter with accuracy parameter `a`.
    pub fn new(a: f64, coins: CoinFlips) -> Self {
        ServedMorris {
            morris: ConcurrentMorris::new(a, coins),
            a,
            ops: OpCounters::default(),
        }
    }
}

impl ServedObject for ServedMorris {
    fn kind(&self) -> ObjectKind {
        ObjectKind::Morris
    }

    fn writer<'a>(&'a self, _metrics: &'a Metrics) -> Box<dyn ObjectWriter + 'a> {
        Box::new(AtomicWriter { obj: self })
    }

    fn query(&self, _key: u64) -> ErrorEnvelope {
        self.ops.note_query();
        // Exponent before estimate: the estimate is derived from the
        // exponent, and reading the monotone value first keeps the
        // recorded value a lower bound of what the envelope shows.
        let exponent = self.morris.exponent();
        ErrorEnvelope::ApproxCount {
            estimate: ((1.0 + self.a).powi(exponent as i32) - 1.0) / self.a,
            a: self.a,
            exponent,
            observed: self.ops.observed.load(Ordering::Relaxed),
        }
    }

    fn snapshot(&self) -> (SnapshotState, ErrorEnvelope) {
        self.ops.note_query();
        let exponent = self.morris.exponent();
        let envelope = ErrorEnvelope::ApproxCount {
            estimate: ((1.0 + self.a).powi(exponent as i32) - 1.0) / self.a,
            a: self.a,
            exponent,
            observed: self.ops.observed.load(Ordering::Relaxed),
        };
        (SnapshotState::Morris { exponent }, envelope)
    }

    fn epoch(&self) -> u64 {
        // The exponent is the whole state and only ever grows: it is
        // its own update epoch.
        self.morris.exponent() as u64
    }

    fn op_stats(&self) -> ObjectStats {
        self.ops.stats()
    }

    fn check_projection(
        &self,
        projection: &History<(u64, u64), u64, u64>,
    ) -> (Option<bool>, &'static str) {
        (
            Some(check_ivl_monotone(&AckCounterSpec, projection).is_ivl()),
            "acknowledged-weight counter (estimator coins are server-side)",
        )
    }
}

impl AtomicApply for ServedMorris {
    fn apply_one(&self, _key: u64, weight: u64) {
        // `weight` events, clamped against hostile frame weights; the
        // acknowledged counter always gets the full weight.
        for _ in 0..weight.min(MORRIS_MAX_EVENTS_PER_UPDATE) {
            self.morris.update();
        }
        self.ops.note_update(weight);
    }

    fn absorb_state(&self, state: &SnapshotState) -> Result<(), MergeError> {
        let mut sink = self;
        state.absorb_into(&mut sink)
    }

    fn note_absorbed(&self, weight: u64) {
        self.ops.note_absorbed(weight);
    }
}

/// The Morris counter's absorb sink: raise the exponent to at least
/// the peer's (exponent max is the Morris merge; no coins are
/// involved, so there is nothing to fingerprint).
impl AbsorbSink for &ServedMorris {
    fn absorb_morris(&mut self, exponent: u32) -> Result<(), MergeError> {
        self.morris.raise_to(exponent);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Min register
// ---------------------------------------------------------------------

/// Sequential spec of the served min register: updates lower the
/// minimum to at most their key (weights ignored), queries read it.
/// Antitone; the endpoint-sorting interval checker handles it.
#[derive(Clone, Debug, Default)]
pub struct ServedMinSpec;

impl ObjectSpec for ServedMinSpec {
    type Update = (u64, u64);
    type Query = u64;
    type Value = u64;
    type State = u64;

    fn initial_state(&self) -> u64 {
        u64::MAX
    }

    fn apply_update(&self, state: &mut u64, &(key, _weight): &(u64, u64)) {
        *state = (*state).min(key);
    }

    fn eval_query(&self, state: &u64, _q: &u64) -> u64 {
        *state
    }
}

impl MonotoneSpec for ServedMinSpec {}

/// A concurrent min register as a served object.
#[derive(Debug, Default)]
pub struct ServedMinRegister {
    reg: ConcurrentMinRegister,
    ops: OpCounters,
}

impl ServedMinRegister {
    /// Creates an empty min register.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ServedObject for ServedMinRegister {
    fn kind(&self) -> ObjectKind {
        ObjectKind::MinRegister
    }

    fn writer<'a>(&'a self, _metrics: &'a Metrics) -> Box<dyn ObjectWriter + 'a> {
        Box::new(AtomicWriter { obj: self })
    }

    fn query(&self, _key: u64) -> ErrorEnvelope {
        self.ops.note_query();
        ErrorEnvelope::Minimum {
            minimum: self.reg.min(),
            observed: self.ops.observed.load(Ordering::Relaxed),
        }
    }

    fn snapshot(&self) -> (SnapshotState, ErrorEnvelope) {
        self.ops.note_query();
        let minimum = self.reg.min();
        let envelope = ErrorEnvelope::Minimum {
            minimum,
            observed: self.ops.observed.load(Ordering::Relaxed),
        };
        (SnapshotState::MinRegister { minimum }, envelope)
    }

    fn epoch(&self) -> u64 {
        self.reg.epoch()
    }

    fn op_stats(&self) -> ObjectStats {
        self.ops.stats()
    }

    fn check_projection(
        &self,
        projection: &History<(u64, u64), u64, u64>,
    ) -> (Option<bool>, &'static str) {
        (
            Some(check_ivl_monotone(&ServedMinSpec, projection).is_ivl()),
            "minima vs the antitone min-register spec",
        )
    }
}

impl AtomicApply for ServedMinRegister {
    fn apply_one(&self, key: u64, weight: u64) {
        self.reg.insert(key);
        self.ops.note_update(weight);
    }

    fn absorb_state(&self, state: &SnapshotState) -> Result<(), MergeError> {
        let mut sink = self;
        state.absorb_into(&mut sink)
    }

    fn note_absorbed(&self, weight: u64) {
        self.ops.note_absorbed(weight);
    }
}

/// The min register's absorb sink: `fetch_min` with the peer's
/// minimum (`u64::MAX` is the empty sentinel and inserting it is a
/// no-op join either way).
impl AbsorbSink for &ServedMinRegister {
    fn absorb_min(&mut self, minimum: u64) -> Result<(), MergeError> {
        self.reg.insert(minimum);
        Ok(())
    }
}

/// Shared writer shape for the wait-free objects: updates go straight
/// to the shared atomics, no lease, no buffer, never busy.
trait AtomicApply: ServedObject {
    /// Applies one update to the shared object.
    fn apply_one(&self, key: u64, weight: u64);

    /// Absorbs a peer's pushed state into the shared object (the
    /// kind dispatch goes through [`ivl_merge::AbsorbSink`]).
    fn absorb_state(&self, state: &SnapshotState) -> Result<(), MergeError>;

    /// Credits absorbed acknowledged weight to the observed counter.
    fn note_absorbed(&self, weight: u64);
}

struct AtomicWriter<'a, T: AtomicApply + ?Sized> {
    obj: &'a T,
}

impl<T: AtomicApply + ?Sized> fmt::Debug for AtomicWriter<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicWriter").finish_non_exhaustive()
    }
}

impl<T: AtomicApply + ?Sized> ObjectWriter for AtomicWriter<'_, T> {
    fn ensure_ready(&mut self) -> Result<(), ObjectBusy> {
        Ok(())
    }

    fn apply(&mut self, key: u64, weight: u64) {
        self.obj.apply_one(key, weight);
    }

    fn absorb(&mut self, state: &SnapshotState, observed: u64) -> Result<(), MergeError> {
        self.obj.absorb_state(state)?;
        self.obj.note_absorbed(observed);
        Ok(())
    }

    fn flush(&mut self) {}

    fn release(&mut self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_spec::history::{HistoryBuilder, ObjectId, ProcessId};

    fn registry() -> ObjectRegistry {
        ObjectRegistry::build(
            &[
                ObjectConfig::new("cm", ObjectKind::CountMin),
                ObjectConfig::new("hll", ObjectKind::Hll),
                ObjectConfig::new("morris", ObjectKind::Morris),
                ObjectConfig::new("low", ObjectKind::MinRegister),
            ],
            0.005,
            0.01,
            2,
            0,
            7,
        )
    }

    #[test]
    fn kinds_roundtrip_through_wire_tags_and_strings() {
        for kind in [
            ObjectKind::CountMin,
            ObjectKind::Hll,
            ObjectKind::Morris,
            ObjectKind::MinRegister,
        ] {
            assert_eq!(ObjectKind::from_u8(kind.to_u8()), Some(kind));
            assert_eq!(kind.to_string().parse::<ObjectKind>().unwrap(), kind);
        }
        assert_eq!(ObjectKind::from_u8(9), None);
        assert!("quartz".parse::<ObjectKind>().is_err());
    }

    #[test]
    fn object_config_parses_named_and_bare_forms() {
        let oc: ObjectConfig = "heavy=cm".parse().unwrap();
        assert_eq!(oc, ObjectConfig::new("heavy", ObjectKind::CountMin));
        let oc: ObjectConfig = "hll".parse().unwrap();
        assert_eq!(oc, ObjectConfig::new("hll", ObjectKind::Hll));
        assert!("=cm".parse::<ObjectConfig>().is_err());
        assert!("x=warp".parse::<ObjectConfig>().is_err());
    }

    #[test]
    fn registry_routes_by_id_and_name() {
        let r = registry();
        assert_eq!(r.len(), 4);
        assert_eq!(r.get(1).unwrap().kind(), ObjectKind::Hll);
        assert_eq!(r.get(9).map(|o| o.kind()), None);
        let (id, obj) = r.by_name("low").unwrap();
        assert_eq!((id, obj.kind()), (3, ObjectKind::MinRegister));
        assert!(r.by_name("nope").is_none());
        assert!(r.cm(0).is_some());
        assert!(r.cm(1).is_none());
        let infos = r.infos();
        assert_eq!(infos[2].name, "morris");
        assert_eq!(infos[2].id, 2);
    }

    #[test]
    #[should_panic(expected = "object 0 must be a CountMin")]
    fn registry_rejects_non_cm_object_zero() {
        ObjectRegistry::build(
            &[ObjectConfig::new("h", ObjectKind::Hll)],
            0.005,
            0.01,
            1,
            0,
            1,
        );
    }

    #[test]
    #[should_panic(expected = "duplicate object name")]
    fn registry_rejects_duplicate_names() {
        ObjectRegistry::build(
            &[
                ObjectConfig::new("x", ObjectKind::CountMin),
                ObjectConfig::new("x", ObjectKind::Hll),
            ],
            0.005,
            0.01,
            1,
            0,
            1,
        );
    }

    #[test]
    fn writers_update_and_envelopes_reflect_state() {
        let metrics = Metrics::new();
        let r = registry();
        for id in 0..4u32 {
            let obj = r.get(id).unwrap();
            let mut w = obj.writer(&metrics);
            w.ensure_ready().unwrap();
            w.apply(41, 3);
            w.apply(100, 2);
            w.release();
        }
        match r.get(0).unwrap().query(41) {
            ErrorEnvelope::Frequency(env) => {
                assert_eq!(env.estimate, 3);
                assert_eq!(env.stream_len, 5);
            }
            other => panic!("wanted frequency envelope, got {other:?}"),
        }
        match r.get(1).unwrap().query(0) {
            ErrorEnvelope::Cardinality {
                register_sum,
                observed,
                registers,
                ..
            } => {
                assert!(register_sum > 0);
                assert_eq!(observed, 5);
                assert_eq!(registers, 1 << HLL_PRECISION);
            }
            other => panic!("wanted cardinality envelope, got {other:?}"),
        }
        match r.get(2).unwrap().query(0) {
            ErrorEnvelope::ApproxCount {
                observed, estimate, ..
            } => {
                assert_eq!(observed, 5);
                assert!(estimate >= 0.0);
            }
            other => panic!("wanted approx-count envelope, got {other:?}"),
        }
        match r.get(3).unwrap().query(0) {
            ErrorEnvelope::Minimum { minimum, observed } => {
                assert_eq!(minimum, 41);
                assert_eq!(observed, 5);
            }
            other => panic!("wanted minimum envelope, got {other:?}"),
        }
        assert_eq!(r.total_observed(), 20);
        let rows = r.stats_rows();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|row| row.updates == 2));
        assert!(rows.iter().all(|row| row.queries == 1));
    }

    #[test]
    fn cm_writer_reports_busy_when_pool_exhausted() {
        let metrics = Metrics::new();
        let r = ObjectRegistry::build(
            &[ObjectConfig::new("cm", ObjectKind::CountMin)],
            0.005,
            0.01,
            1,
            0,
            1,
        );
        let obj = r.get(0).unwrap();
        let mut a = obj.writer(&metrics);
        a.ensure_ready().unwrap();
        let mut b = obj.writer(&metrics);
        assert!(b.ensure_ready().is_err());
        assert_eq!(r.free_shards(), 0);
        assert!(a.release());
        assert!(b.ensure_ready().is_ok());
    }

    #[test]
    fn per_object_verdicts_accept_a_clean_multi_object_history() {
        let r = registry();
        let metrics = Metrics::new();
        let mut b = HistoryBuilder::<(u64, u64), u64, u64>::new();
        let p = ProcessId(0);
        // Drive the real objects and record what they actually served,
        // sequentially — every projection must then be IVL.
        for id in 0..4u32 {
            let obj = r.get(id).unwrap();
            let mut w = obj.writer(&metrics);
            w.ensure_ready().unwrap();
            for k in [5u64, 9, 5] {
                let u = b.invoke_update(p, ObjectId(id), (k, 2));
                w.apply(k, 2);
                b.respond_update(u);
            }
            w.release();
            let q = b.invoke_query(p, ObjectId(id), 5);
            b.respond_query(q, r.get(id).unwrap().query(5).value());
        }
        let h = b.finish();
        let verdicts = r.verdicts(&h);
        assert_eq!(verdicts.len(), 4);
        for v in &verdicts {
            assert_eq!(v.ops, 4, "{}: {} ops", v.name, v.ops);
            assert_eq!(
                v.ivl,
                Some(true),
                "{} projection not IVL: {}",
                v.name,
                v.note
            );
        }
    }

    #[test]
    fn write_buffered_cm_waives_the_strict_check() {
        let r = ObjectRegistry::build(
            &[ObjectConfig::new("cm", ObjectKind::CountMin)],
            0.005,
            0.01,
            1,
            8,
            1,
        );
        let h = HistoryBuilder::<(u64, u64), u64, u64>::new().finish();
        let v = &r.verdicts(&h)[0];
        assert_eq!(v.ivl, None);
        assert!(v.note.contains("write-buffered"));
    }

    #[test]
    fn snapshots_carry_mergeable_state_matching_served_queries() {
        let metrics = Metrics::new();
        let r = registry();
        for id in 0..4u32 {
            let obj = r.get(id).unwrap();
            let mut w = obj.writer(&metrics);
            w.ensure_ready().unwrap();
            w.apply(41, 3);
            w.apply(100, 2);
            w.release();
        }
        let snap = r.snapshot(0).unwrap();
        assert_eq!((snap.object, snap.kind), (0, ObjectKind::CountMin));
        let cm = r.cm(0).unwrap();
        match &snap.state {
            SnapshotState::CountMin {
                width,
                depth,
                hash_fp,
                cells,
            } => {
                let params = cm.params();
                assert_eq!(*width as usize, params.width);
                assert_eq!(*depth as usize, params.depth);
                assert_eq!(*hash_fp, cm_hash_fingerprint(cm.proto.hashes()));
                assert_eq!(cells.len(), params.width * params.depth);
                // Row 0 holds the whole stream weight.
                let row0: u64 = cells[..params.width].iter().sum();
                assert_eq!(row0, 5);
            }
            other => panic!("wanted CountMin state, got {other:?}"),
        }
        match snap.envelope {
            ErrorEnvelope::Frequency(env) => {
                assert_eq!(env.stream_len, 5);
                assert_eq!((env.key, env.estimate), (0, 0));
            }
            other => panic!("wanted frequency envelope, got {other:?}"),
        }

        let snap = r.snapshot(1).unwrap();
        match (&snap.state, &snap.envelope) {
            (
                SnapshotState::Hll { registers, .. },
                ErrorEnvelope::Cardinality { register_sum, .. },
            ) => {
                let sum: u64 = registers.iter().map(|&b| b as u64).sum();
                assert_eq!(sum, *register_sum);
                assert!(sum > 0);
            }
            other => panic!("wanted hll state + cardinality envelope, got {other:?}"),
        }

        match r.snapshot(2).unwrap().state {
            SnapshotState::Morris { .. } => {}
            other => panic!("wanted morris state, got {other:?}"),
        }
        match r.snapshot(3).unwrap().state {
            SnapshotState::MinRegister { minimum } => assert_eq!(minimum, 41),
            other => panic!("wanted min-register state, got {other:?}"),
        }
        assert!(r.snapshot(9).is_none());
    }

    #[test]
    fn delta_snapshots_patch_caches_into_full_snapshot_equality() {
        let metrics = Metrics::new();
        let r = registry();
        let write = |id: u32, key: u64, weight: u64| {
            let obj = r.get(id).unwrap();
            let mut w = obj.writer(&metrics);
            w.ensure_ready().unwrap();
            w.apply(key, weight);
            w.release();
        };
        for id in 0..4u32 {
            write(id, 41, 3);
        }

        // An unknown base (the no-cache sentinel) gets a full state.
        let d0 = r.snapshot_since(0, u64::MAX).unwrap();
        let mut cached = match d0.change {
            DeltaChange::Full(SnapshotState::CountMin { cells, .. }) => cells,
            other => panic!("unknown base must go full, got {other:?}"),
        };

        // A current base is answered `Unchanged` with a live envelope.
        let d1 = r.snapshot_since(0, d0.epoch).unwrap();
        assert_eq!(d1.epoch, d0.epoch);
        assert_eq!(d1.change, DeltaChange::Unchanged);
        match d1.envelope {
            ErrorEnvelope::Frequency(env) => assert_eq!(env.stream_len, 3),
            other => panic!("wanted frequency envelope, got {other:?}"),
        }

        // New writes turn into sparse runs that patch the cache into
        // exactly the fresh full snapshot.
        write(0, 977, 5);
        write(0, 3, 1);
        let d2 = r.snapshot_since(0, d0.epoch).unwrap();
        assert!(d2.epoch > d0.epoch);
        let cm = r.cm(0).unwrap();
        let width = cm.params().width;
        match &d2.change {
            DeltaChange::CmRuns { base_epoch, runs } => {
                assert_eq!(*base_epoch, d0.epoch);
                assert!(!runs.is_empty());
                for run in runs {
                    let at = run.row as usize * width + run.lo as usize;
                    cached[at..at + run.values.len()].copy_from_slice(&run.values);
                }
            }
            other => panic!("wanted sparse runs, got {other:?}"),
        }
        match r.snapshot(0).unwrap().state {
            SnapshotState::CountMin { cells, .. } => {
                assert_eq!(cached, cells, "patched cache must equal a fresh snapshot");
            }
            other => panic!("wanted CountMin state, got {other:?}"),
        }
        // And the new epoch is now `Unchanged`-able.
        assert_eq!(
            r.snapshot_since(0, d2.epoch).unwrap().change,
            DeltaChange::Unchanged
        );

        // HLL: a dirty register range patches the cached vector.
        let h0 = r.snapshot_since(1, u64::MAX).unwrap();
        let mut hcache = match h0.change {
            DeltaChange::Full(SnapshotState::Hll { registers, .. }) => registers,
            other => panic!("unknown base must go full, got {other:?}"),
        };
        write(1, 12345, 1);
        let h1 = r.snapshot_since(1, h0.epoch).unwrap();
        match &h1.change {
            DeltaChange::HllRange { lo, registers, .. } => {
                hcache[*lo as usize..*lo as usize + registers.len()].copy_from_slice(registers);
            }
            DeltaChange::Unchanged => panic!("a raising update must change the epoch"),
            // A near-full dirty range legitimately falls back.
            DeltaChange::Full(SnapshotState::Hll { registers, .. }) => {
                hcache = registers.clone();
            }
            other => panic!("wanted an hll delta, got {other:?}"),
        }
        match r.snapshot(1).unwrap().state {
            SnapshotState::Hll { registers, .. } => assert_eq!(hcache, registers),
            other => panic!("wanted hll state, got {other:?}"),
        }
        assert_eq!(
            r.snapshot_since(1, h1.epoch).unwrap().change,
            DeltaChange::Unchanged
        );

        // Morris and the min register use the epoch-only default:
        // stale base → full state, current base → `Unchanged`.
        for id in [2u32, 3] {
            let f = r.snapshot_since(id, u64::MAX).unwrap();
            assert!(matches!(f.change, DeltaChange::Full(_)));
            assert_eq!(
                r.snapshot_since(id, f.epoch).unwrap().change,
                DeltaChange::Unchanged
            );
        }
        assert!(r.snapshot_since(9, 0).is_none());
    }

    #[test]
    fn cm_delta_falls_back_to_full_when_the_base_left_the_ledger() {
        let metrics = Metrics::new();
        let r = registry();
        let obj = r.get(0).unwrap();
        let base = r.snapshot_since(0, u64::MAX).unwrap().epoch;
        // Push more epochs through the ledger than it remembers.
        for i in 0..(SNAPSHOT_LEDGER_CAP as u64 + 4) {
            let mut w = obj.writer(&metrics);
            w.ensure_ready().unwrap();
            w.apply(i, 1);
            w.release();
            let _ = r.snapshot_since(0, u64::MAX);
        }
        let d = r.snapshot_since(0, base).unwrap();
        assert!(
            matches!(d.change, DeltaChange::Full(_)),
            "evicted base must fall back to a full snapshot, got {:?}",
            d.change
        );
    }

    #[test]
    fn same_seed_same_slot_gives_equal_fingerprints() {
        // The replication precondition: two registries built from the
        // same seed sample the same coins per slot; different seeds
        // (or different slots) fingerprint differently.
        let a = registry();
        let b = registry();
        let fp = |r: &ObjectRegistry, id: u32| match r.snapshot(id).unwrap().state {
            SnapshotState::CountMin { hash_fp, .. } | SnapshotState::Hll { hash_fp, .. } => hash_fp,
            other => panic!("no fingerprint in {other:?}"),
        };
        assert_eq!(fp(&a, 0), fp(&b, 0));
        assert_eq!(fp(&a, 1), fp(&b, 1));
        let other = ObjectRegistry::build(
            &[
                ObjectConfig::new("cm", ObjectKind::CountMin),
                ObjectConfig::new("hll", ObjectKind::Hll),
            ],
            0.005,
            0.01,
            2,
            0,
            8,
        );
        assert_ne!(fp(&a, 0), fp(&other, 0));
        assert_ne!(fp(&a, 1), fp(&other, 1));
    }

    #[test]
    fn absorb_then_snapshot_equals_snapshot_then_merge() {
        use ivl_merge::{merge_states, MergePolicy};
        let metrics = Metrics::new();
        let a = registry();
        let b = registry(); // same seed: merging is legal
        for id in 0..4u32 {
            for (reg, keys) in [(&a, [5u64, 9, 31]), (&b, [9u64, 77, 200])] {
                let obj = reg.get(id).unwrap();
                let mut w = obj.writer(&metrics);
                w.ensure_ready().unwrap();
                for k in keys {
                    w.apply(k, 2);
                }
                w.release();
            }
        }
        for id in 0..4u32 {
            let sa = a.snapshot(id).unwrap();
            let sb = b.snapshot(id).unwrap();
            let merged = merge_states(MergePolicy::Add, &[&sa.state, &sb.state]).unwrap();
            let obj = a.get(id).unwrap();
            let mut w = obj.writer(&metrics);
            w.ensure_ready().unwrap();
            w.absorb(&sb.state, 6).unwrap();
            w.release();
            assert_eq!(
                a.snapshot(id).unwrap().state,
                merged,
                "object {id}: absorb-then-snapshot must equal snapshot-then-merge"
            );
            // The absorbed acknowledged weight is credited once.
            assert_eq!(a.get(id).unwrap().op_stats().observed, 12);
        }
    }

    #[test]
    fn absorb_refuses_mismatched_coins_and_kinds() {
        let metrics = Metrics::new();
        let a = registry();
        let skewed = ObjectRegistry::build(
            &[
                ObjectConfig::new("cm", ObjectKind::CountMin),
                ObjectConfig::new("hll", ObjectKind::Hll),
            ],
            0.005,
            0.01,
            2,
            0,
            8, // different seed: different coins, must be refused
        );
        for id in 0..2u32 {
            let snap = skewed.snapshot(id).unwrap();
            let obj = a.get(id).unwrap();
            let mut w = obj.writer(&metrics);
            w.ensure_ready().unwrap();
            assert!(
                w.absorb(&snap.state, 1).is_err(),
                "object {id}: mismatched coins must be refused"
            );
            // Kind mismatch: push the other kind's state at this writer.
            let other = a.snapshot(1 - id).unwrap();
            assert!(w.absorb(&other.state, 1).is_err());
            w.release();
        }
        // Nothing was credited by refused pushes.
        assert_eq!(a.total_observed(), 0);
    }

    #[test]
    fn morris_clamps_estimator_events_but_acknowledges_all_weight() {
        let metrics = Metrics::new();
        let obj = ServedMorris::new(MORRIS_A, CoinFlips::from_seed(5));
        let mut w = obj.writer(&metrics);
        w.ensure_ready().unwrap();
        w.apply(0, u64::MAX); // must terminate quickly
        match obj.query(0) {
            ErrorEnvelope::ApproxCount { observed, .. } => assert_eq!(observed, u64::MAX),
            other => panic!("wanted approx-count envelope, got {other:?}"),
        }
    }
}
