//! `ivl_serve`: run a sketch server until a client sends `SHUTDOWN`.
//!
//! ```text
//! usage: ivl_serve [addr] [--backend threaded|event-loop] [--shards N]
//!                  [--alpha A] [--delta D] [--max-conns N] [--record]
//!                  [--write-buffer B] [--seed N] [--object NAME=KIND]...
//!   addr           listen address (default 127.0.0.1:7070; port 0 picks one)
//!   --backend      serving backend: "threaded" (default, one thread per
//!                  connection) or "event-loop" (epoll reactor shards)
//!   --shards       sketch shards == max concurrent ingest connections
//!                  (threaded) or reactor threads (event-loop) (8)
//!   --alpha        CountMin relative error (0.005)
//!   --delta        CountMin failure probability (0.01)
//!   --max-conns    connection limit (64)
//!   --record       record the full history; on drain, check each
//!                  object's projection IVL against its own spec
//!   --write-buffer writer-local batch size b (0 = off): coalesce up to
//!                  b update weight per writer before touching the
//!                  shared CountMin; envelopes widen by lag = shards*b
//!   --seed         coin-flip seed for the objects' hash functions (1).
//!                  Replicas that should merge (ivl_replicate) must
//!                  share a seed and an object roster.
//!   --object       register a named object (repeatable). KIND is one
//!                  of cm|hll|morris|min; object 0 must be a cm (the
//!                  default "cm=cm" if the first --object is not one).
//!                  v1 clients always address object 0.
//! ```

use ivl_service::objects::ObjectConfig;
use ivl_service::server::{serve, ServerConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ivl_serve [addr] [--backend threaded|event-loop] [--shards N] \
         [--alpha A] [--delta D] [--max-conns N] [--record] [--write-buffer B] \
         [--seed N] [--object NAME=KIND]..."
    );
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7070".to_owned();
    let mut cfg = ServerConfig::default();
    let mut objects: Vec<ObjectConfig> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("{what} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--backend" => match take("--backend").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.backend = v,
                None => return usage(),
            },
            "--shards" => match take("--shards").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.shards = v,
                None => return usage(),
            },
            "--alpha" => match take("--alpha").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.alpha = v,
                None => return usage(),
            },
            "--delta" => match take("--delta").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.delta = v,
                None => return usage(),
            },
            "--max-conns" => match take("--max-conns").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.max_connections = v,
                None => return usage(),
            },
            "--write-buffer" => match take("--write-buffer").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.write_buffer = v,
                None => return usage(),
            },
            "--seed" => match take("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.seed = v,
                None => return usage(),
            },
            "--object" => match take("--object").map(|v| v.parse()) {
                Some(Ok(v)) => objects.push(v),
                Some(Err(e)) => {
                    eprintln!("--object: {e}");
                    return usage();
                }
                None => return usage(),
            },
            "--record" => cfg.record = true,
            "--help" | "-h" => return usage(),
            other if !other.starts_with('-') => addr = other.to_owned(),
            _ => return usage(),
        }
    }
    if !objects.is_empty() {
        if objects[0].kind != ivl_service::objects::ObjectKind::CountMin {
            // Object 0 anchors v1 compatibility; keep the default
            // CountMin in front when the user leads with another kind.
            objects.insert(0, ObjectConfig::default());
        }
        cfg.objects = objects;
    }
    let backend = cfg.backend;
    let write_buffer = cfg.write_buffer;
    let roster: Vec<String> = cfg
        .objects
        .iter()
        .enumerate()
        .map(|(id, o)| format!("{id}:{}={}", o.name, o.kind))
        .collect();
    let handle = match serve(&addr, cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::from(1);
        }
    };
    let params = handle.params();
    println!(
        "ivl_serve listening on {} [{} backend] (width {}, depth {}, alpha {:.4}, delta {:.4}, \
         write-buffer {}) objects [{}]",
        handle.addr(),
        backend,
        params.width,
        params.depth,
        params.alpha(),
        params.delta(),
        write_buffer,
        roster.join(", ")
    );
    handle.wait_for_shutdown();
    let joined = handle.join();
    let s = &joined.stats;
    println!(
        "drained: {} conns ({} rejected), {} updates, {} queries, {} batches, \
         stream {}, update p50/p99 {}/{} ns, query p50/p99 {}/{} ns",
        s.accepted,
        s.rejected,
        s.updates,
        s.queries,
        s.batches,
        s.stream_len,
        s.update_p50_ns,
        s.update_p99_ns,
        s.query_p50_ns,
        s.query_p99_ns
    );
    if let Some(verdicts) = joined.verdicts() {
        let events = joined
            .history
            .as_ref()
            .map(|h| h.events().len())
            .unwrap_or(0);
        println!("recorded history: {events} events; per-object verdicts (Theorem 1 locality):");
        let mut failed = false;
        for v in &verdicts {
            let shown = match v.ivl {
                Some(true) => "IVL",
                Some(false) => {
                    failed = true;
                    "VIOLATION"
                }
                None => "waived",
            };
            println!(
                "  object {} {:10} [{:6}] {:4} ops: {:9}  ({})",
                v.id, v.name, v.kind, v.ops, shown, v.note
            );
        }
        if failed {
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
