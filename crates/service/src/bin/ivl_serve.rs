//! `ivl_serve`: run a sketch server until a client sends `SHUTDOWN`.
//!
//! ```text
//! usage: ivl_serve [addr] [--backend threaded|event-loop] [--shards N]
//!                  [--alpha A] [--delta D] [--max-conns N] [--record]
//!                  [--write-buffer B]
//!   addr           listen address (default 127.0.0.1:7070; port 0 picks one)
//!   --backend      serving backend: "threaded" (default, one thread per
//!                  connection) or "event-loop" (epoll reactor shards)
//!   --shards       sketch shards == max concurrent ingest connections
//!                  (threaded) or reactor threads (event-loop) (8)
//!   --alpha        CountMin relative error (0.005)
//!   --delta        CountMin failure probability (0.01)
//!   --max-conns    connection limit (64)
//!   --record       record the full history and check it IVL on drain
//!   --write-buffer writer-local batch size b (0 = off): coalesce up to
//!                  b update weight per writer before touching the
//!                  shared sketch; envelopes widen by lag = shards*b
//! ```

use ivl_service::server::{serve, ServerConfig};
use ivl_spec::ivl::check_ivl_monotone;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ivl_serve [addr] [--backend threaded|event-loop] [--shards N] \
         [--alpha A] [--delta D] [--max-conns N] [--record] [--write-buffer B]"
    );
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7070".to_owned();
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("{what} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--backend" => match take("--backend").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.backend = v,
                None => return usage(),
            },
            "--shards" => match take("--shards").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.shards = v,
                None => return usage(),
            },
            "--alpha" => match take("--alpha").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.alpha = v,
                None => return usage(),
            },
            "--delta" => match take("--delta").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.delta = v,
                None => return usage(),
            },
            "--max-conns" => match take("--max-conns").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.max_connections = v,
                None => return usage(),
            },
            "--write-buffer" => match take("--write-buffer").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.write_buffer = v,
                None => return usage(),
            },
            "--record" => cfg.record = true,
            "--help" | "-h" => return usage(),
            other if !other.starts_with('-') => addr = other.to_owned(),
            _ => return usage(),
        }
    }
    let backend = cfg.backend;
    let write_buffer = cfg.write_buffer;
    let handle = match serve(&addr, cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::from(1);
        }
    };
    let params = handle.params();
    println!(
        "ivl_serve listening on {} [{} backend] (width {}, depth {}, alpha {:.4}, delta {:.4}, \
         write-buffer {})",
        handle.addr(),
        backend,
        params.width,
        params.depth,
        params.alpha(),
        params.delta(),
        write_buffer
    );
    handle.wait_for_shutdown();
    let joined = handle.join();
    let s = joined.stats;
    println!(
        "drained: {} conns ({} rejected), {} updates, {} queries, {} batches, \
         stream {}, update p50/p99 {}/{} ns, query p50/p99 {}/{} ns",
        s.accepted,
        s.rejected,
        s.updates,
        s.queries,
        s.batches,
        s.stream_len,
        s.update_p50_ns,
        s.update_p99_ns,
        s.query_p50_ns,
        s.query_p99_ns
    );
    if let Some(history) = joined.history {
        let verdict = check_ivl_monotone(&joined.spec, &history);
        println!(
            "recorded history: {} events, IVL: {}",
            history.events().len(),
            verdict.is_ivl()
        );
        if !verdict.is_ivl() {
            if write_buffer > 0 {
                // Buffered servers acknowledge updates before they are
                // visible, so the strict IVL check can legitimately
                // fail; the envelope's lag = shards*b is the advertised
                // relaxation (DESIGN §9). Informational, not an error.
                println!(
                    "note: strict IVL violation is expected with --write-buffer {write_buffer}; \
                     deferred visibility is bounded by the served envelope lag"
                );
            } else {
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}
