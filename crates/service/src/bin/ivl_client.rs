//! `ivl_client`: one-shot commands against a running `ivl_serve`.
//!
//! ```text
//! usage: ivl_client <addr> <command> [args]
//!   update <key> <weight>     ingest weight occurrences of key
//!   query <key>               estimate + IVL error envelope
//!   batch <key:weight> ...    many updates in one frame
//!   stats                     server counters and latency quantiles
//!   shutdown                  drain the server
//! ```

use ivl_service::client::Client;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ivl_client <addr> <update <key> <weight> | query <key> | \
         batch <key:weight>... | stats | shutdown>"
    );
    ExitCode::from(1)
}

fn run(args: &[String]) -> Result<(), String> {
    let mut client = Client::connect(&args[0]).map_err(|e| e.to_string())?;
    match (args[1].as_str(), &args[2..]) {
        ("update", [key, weight]) => {
            let applied = client
                .update(
                    key.parse().map_err(|_| "bad key")?,
                    weight.parse().map_err(|_| "bad weight")?,
                )
                .map_err(|e| e.to_string())?;
            println!("ack: {applied} updates applied on this connection");
        }
        ("query", [key]) => {
            let env = client
                .query(key.parse().map_err(|_| "bad key")?)
                .map_err(|e| e.to_string())?;
            println!(
                "key {}: estimate {} (true frequency in [{}, {}] w.p. >= {:.3}; \
                 epsilon {} = ceil({:.4} * {}), write-buffer lag {})",
                env.key,
                env.estimate,
                env.lower_bound(),
                env.upper_bound(),
                1.0 - env.delta,
                env.epsilon,
                env.alpha,
                env.stream_len,
                env.lag
            );
        }
        ("batch", items) if !items.is_empty() => {
            let mut pairs = Vec::with_capacity(items.len());
            for item in items {
                let (k, w) = item.split_once(':').ok_or("batch items are key:weight")?;
                pairs.push((
                    k.parse().map_err(|_| "bad key")?,
                    w.parse().map_err(|_| "bad weight")?,
                ));
            }
            let applied = client.batch(&pairs).map_err(|e| e.to_string())?;
            println!("ack: {applied} updates applied on this connection");
        }
        ("stats", []) => {
            let s = client.stats().map_err(|e| e.to_string())?;
            println!(
                "connections: {} accepted, {} rejected, {} active\n\
                 operations : {} updates, {} queries, {} batches, \
                 {} protocol errors, {} busy rejections\n\
                 transport  : {} frames, {} wakeups (ready peak {})\n\
                 stream     : {} total weight\n\
                 buffering  : {} weight pending in writer buffers, {} flushes\n\
                 latency    : update p50/p99 {}/{} ns, query p50/p99 {}/{} ns",
                s.accepted,
                s.rejected,
                s.active,
                s.updates,
                s.queries,
                s.batches,
                s.protocol_errors,
                s.busy_rejections,
                s.frames,
                s.wakeups,
                s.ready_peak,
                s.stream_len,
                s.buffered_pending,
                s.flushes,
                s.update_p50_ns,
                s.update_p99_ns,
                s.query_p50_ns,
                s.query_p99_ns
            );
        }
        ("shutdown", []) => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("server draining");
        }
        _ => return Err("unknown command".into()),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return usage();
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}
