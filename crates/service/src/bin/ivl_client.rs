//! `ivl_client`: one-shot commands against a running `ivl_serve`.
//!
//! ```text
//! usage: ivl_client <addr> [--object NAME] <command> [args]
//!   update <key> <weight>     ingest weight occurrences of key
//!   query <key>               estimate + IVL error envelope
//!   batch <key:weight> ...    many updates in one frame
//!   snapshot [--since EPOCH]  mergeable state summary: kind, epoch,
//!                             envelope, and hash fingerprint; with
//!                             --since, the delta against that epoch
//!   objects                   list the server's registered objects
//!   stats                     server counters, latency quantiles, and
//!                             per-object operation rows
//!   shutdown                  drain the server
//!
//! --object NAME routes update/query/batch to a named registered
//! object (default: object 0, the v1-compatible CountMin).
//! ```

use ivl_service::client::Client;
use ivl_service::envelope::ErrorEnvelope;
use ivl_service::{DeltaChange, MergeableState, SnapshotDelta, SnapshotState};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ivl_client <addr> [--object NAME] <update <key> <weight> | query <key> | \
         batch <key:weight>... | snapshot [--since EPOCH] | objects | stats | shutdown>"
    );
    ExitCode::from(1)
}

fn print_envelope(key: u64, env: &ErrorEnvelope) {
    match env {
        ErrorEnvelope::Frequency(env) => println!(
            "key {}: estimate {} (true frequency in [{}, {}] w.p. >= {:.3}; \
             epsilon {} = ceil({:.4} * {}), write-buffer lag {})",
            env.key,
            env.estimate,
            env.lower_bound(),
            env.upper_bound(),
            1.0 - env.delta,
            env.epsilon,
            env.alpha,
            env.stream_len,
            env.lag
        ),
        ErrorEnvelope::Cardinality {
            estimate,
            rel_std_err,
            registers,
            register_sum,
            observed,
        } => println!(
            "cardinality: estimate {estimate:.1} (rel std err {rel_std_err:.4}, \
             {registers} registers, register sum {register_sum}, observed weight {observed})"
        ),
        ErrorEnvelope::ApproxCount {
            estimate,
            a,
            exponent,
            observed,
        } => println!(
            "approximate count: estimate {estimate:.1} (a {a}, exponent {exponent}, \
             acknowledged weight {observed})"
        ),
        ErrorEnvelope::Minimum { minimum, observed } => {
            if *minimum == u64::MAX {
                println!("minimum: empty (observed weight {observed}); queried key {key}");
            } else {
                println!("minimum: {minimum} (observed weight {observed}); queried key {key}");
            }
        }
    }
}

fn state_fingerprint(state: &SnapshotState) -> String {
    match state.fingerprint() {
        Some(fp) => format!("{fp:#018x}"),
        None => "none".into(),
    }
}

fn print_snapshot(delta: &SnapshotDelta, base: u64) {
    println!(
        "object {} [{}] at epoch {}",
        delta.object, delta.kind, delta.epoch
    );
    match &delta.change {
        DeltaChange::Full(state) => match state {
            SnapshotState::CountMin {
                width,
                depth,
                cells,
                ..
            } => {
                let nonzero = cells.iter().filter(|&&c| c != 0).count();
                println!(
                    "  state: full CountMin {depth}x{width} ({nonzero} nonzero cells, \
                     fingerprint {})",
                    state_fingerprint(state)
                );
            }
            SnapshotState::Hll { registers, .. } => {
                let set = registers.iter().filter(|&&r| r != 0).count();
                println!(
                    "  state: full HLL ({} registers, {set} set, fingerprint {})",
                    registers.len(),
                    state_fingerprint(state)
                );
            }
            SnapshotState::Morris { exponent } => {
                println!("  state: full Morris exponent {exponent} (fingerprint none)");
            }
            SnapshotState::MinRegister { minimum } => {
                if *minimum == u64::MAX {
                    println!("  state: full min register, empty (fingerprint none)");
                } else {
                    println!("  state: full min register, minimum {minimum} (fingerprint none)");
                }
            }
        },
        DeltaChange::Unchanged => println!("  state: unchanged since epoch {base}"),
        DeltaChange::CmRuns { base_epoch, runs } => {
            let cells: usize = runs.iter().map(|r| r.values.len()).sum();
            println!(
                "  state: {} CountMin overwrite runs ({cells} cells) against epoch {base_epoch}",
                runs.len()
            );
        }
        DeltaChange::HllRange {
            base_epoch,
            lo,
            registers,
        } => {
            println!(
                "  state: HLL register overwrite [{lo}, {}) against epoch {base_epoch}",
                *lo as usize + registers.len()
            );
        }
    }
    match &delta.envelope {
        ErrorEnvelope::Frequency(env) => println!(
            "  envelope: epsilon {} = ceil({:.4} * {}) w.p. >= {:.3}, write-buffer lag {}",
            env.epsilon,
            env.alpha,
            env.stream_len,
            1.0 - env.delta,
            env.lag
        ),
        ErrorEnvelope::Cardinality {
            rel_std_err,
            registers,
            register_sum,
            observed,
            ..
        } => println!(
            "  envelope: rel std err {rel_std_err:.4}, {registers} registers \
             (sum {register_sum}), observed weight {observed}"
        ),
        ErrorEnvelope::ApproxCount {
            a,
            exponent,
            observed,
            ..
        } => println!(
            "  envelope: Morris a {a}, exponent {exponent}, acknowledged weight {observed}"
        ),
        ErrorEnvelope::Minimum { minimum, observed } => {
            if *minimum == u64::MAX {
                println!("  envelope: minimum empty, observed weight {observed}");
            } else {
                println!("  envelope: minimum {minimum}, observed weight {observed}");
            }
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut client = Client::connect(&args[0]).map_err(|e| e.to_string())?;
    let mut rest = &args[1..];
    let mut object: Option<&str> = None;
    if let [flag, name, tail @ ..] = rest {
        if flag == "--object" {
            object = Some(name.as_str());
            rest = tail;
        }
    }
    let Some((command, cmd_args)) = rest.split_first() else {
        return Err("missing command".into());
    };
    // Resolve the object roster once; --object addresses by wire id
    // from then on, so the lookup costs one extra roundtrip total.
    let object = match object {
        Some(name) => Some(client.object(name).map_err(|e| e.to_string())?.id()),
        None => None,
    };
    match (command.as_str(), cmd_args) {
        ("update", [key, weight]) => {
            let key = key.parse().map_err(|_| "bad key")?;
            let weight = weight.parse().map_err(|_| "bad weight")?;
            let applied = match object {
                Some(id) => client.object_id(id).update(key, weight),
                None => client.update(key, weight),
            }
            .map_err(|e| e.to_string())?;
            println!("ack: {applied} updates applied on this connection");
        }
        ("query", [key]) => {
            let key = key.parse().map_err(|_| "bad key")?;
            let env = client
                .object_id(object.unwrap_or(0))
                .query(key)
                .map_err(|e| e.to_string())?;
            print_envelope(key, &env);
        }
        ("batch", items) if !items.is_empty() => {
            let mut pairs = Vec::with_capacity(items.len());
            for item in items {
                let (k, w) = item.split_once(':').ok_or("batch items are key:weight")?;
                pairs.push((
                    k.parse().map_err(|_| "bad key")?,
                    w.parse().map_err(|_| "bad weight")?,
                ));
            }
            let applied = match object {
                Some(id) => client.object_id(id).batch(&pairs),
                None => client.batch(&pairs),
            }
            .map_err(|e| e.to_string())?;
            println!("ack: {applied} updates applied on this connection");
        }
        ("snapshot", rest) => {
            let since = match rest {
                [] => u64::MAX,
                [flag, epoch] if flag == "--since" => {
                    epoch.parse().map_err(|_| "bad --since epoch")?
                }
                _ => return Err("snapshot takes no arguments or --since EPOCH".into()),
            };
            // One code path for both shapes: `SNAPSHOT_SINCE` with the
            // never-an-epoch sentinel base always answers a full state
            // and, unlike plain `SNAPSHOT`, carries the object epoch.
            let delta = client
                .snapshot_since(object.unwrap_or(0), since)
                .map_err(|e| e.to_string())?;
            print_snapshot(&delta, since);
        }
        ("objects", []) => {
            let infos = client.objects().map_err(|e| e.to_string())?;
            println!("{} registered objects:", infos.len());
            for info in infos {
                println!("  {} {} [{}]", info.id, info.name, info.kind);
            }
        }
        ("stats", []) => {
            let s = client.stats().map_err(|e| e.to_string())?;
            println!(
                "connections: {} accepted, {} rejected, {} active\n\
                 operations : {} updates, {} queries, {} batches, \
                 {} protocol errors, {} busy rejections\n\
                 transport  : {} frames, {} wakeups (ready peak {})\n\
                 stream     : {} total weight\n\
                 buffering  : {} weight pending in writer buffers, {} flushes\n\
                 latency    : update p50/p99 {}/{} ns, query p50/p99 {}/{} ns",
                s.accepted,
                s.rejected,
                s.active,
                s.updates,
                s.queries,
                s.batches,
                s.protocol_errors,
                s.busy_rejections,
                s.frames,
                s.wakeups,
                s.ready_peak,
                s.stream_len,
                s.buffered_pending,
                s.flushes,
                s.update_p50_ns,
                s.update_p99_ns,
                s.query_p50_ns,
                s.query_p99_ns
            );
            for row in &s.objects {
                println!(
                    "object {}  : {} updates, {} queries, {} observed weight",
                    row.id, row.updates, row.queries, row.observed
                );
            }
        }
        ("shutdown", []) => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("server draining");
        }
        _ => return Err("unknown command".into()),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return usage();
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}
