//! Server metrics: wait-free atomic counters plus latency histograms.
//!
//! The latency histograms reuse the workspace's IVL machinery rather
//! than a lock: each recording is one `fetch_add` into a
//! [`ConcurrentHistogram`] bucket, and a `STATS` snapshot is an IVL
//! read — every counter value it reports was held at some instant
//! inside the snapshot, so totals can be "intermediate" but never
//! invented. Latencies are bucketed by `⌈log₂ ns⌉`, giving ~2× quantile
//! resolution from nanoseconds to seconds in 64 buckets.

use ivl_concurrent::ConcurrentHistogram;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ latency buckets (covers 1 ns to ~2⁶³ ns).
const LAT_BUCKETS: usize = 64;

/// Wait-free operation counters and latency histograms for one server.
#[derive(Debug)]
pub struct Metrics {
    accepted: AtomicU64,
    rejected: AtomicU64,
    active: AtomicU64,
    updates: AtomicU64,
    queries: AtomicU64,
    batches: AtomicU64,
    protocol_errors: AtomicU64,
    busy_rejections: AtomicU64,
    frames: AtomicU64,
    absorbs: AtomicU64,
    wakeups: AtomicU64,
    ready_peak: AtomicU64,
    buffered_total: AtomicU64,
    flushed_total: AtomicU64,
    flushes: AtomicU64,
    update_lat: ConcurrentHistogram,
    query_lat: ConcurrentHistogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

fn log2_bucket(ns: u128) -> u64 {
    // ceil(log2(ns)) clamped to the bucket range; 0 ns lands in
    // bucket 0.
    (128 - ns.leading_zeros()).min(LAT_BUCKETS as u32 - 1) as u64
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Metrics {
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            active: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            absorbs: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            ready_peak: AtomicU64::new(0),
            buffered_total: AtomicU64::new(0),
            flushed_total: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            update_lat: ConcurrentHistogram::new(LAT_BUCKETS as u64, LAT_BUCKETS),
            query_lat: ConcurrentHistogram::new(LAT_BUCKETS as u64, LAT_BUCKETS),
        }
    }

    /// A connection was accepted (and is now active).
    pub fn connection_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection ended.
    pub fn connection_closed(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// A connection was turned away at the accept gate.
    pub fn connection_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of currently active connections.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed) as usize
    }

    /// Records `n` applied updates taking `ns` nanoseconds total.
    pub fn record_updates(&self, n: u64, ns: u128) {
        self.updates.fetch_add(n, Ordering::Relaxed);
        self.update_lat.insert(log2_bucket(ns));
    }

    /// Records one batch frame (its updates go through
    /// [`record_updates`](Self::record_updates)).
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one query taking `ns` nanoseconds.
    pub fn record_query(&self, ns: u128) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.query_lat.insert(log2_bucket(ns));
    }

    /// Records a malformed frame.
    pub fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an update refused because every shard was leased.
    pub fn record_busy_rejection(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one decoded request frame (any opcode, either backend).
    pub fn record_frame(&self) {
        self.frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one absorbed `PUSH_STATE` (a peer's state merged into a
    /// served object during replica catch-up). Absorbs are counted
    /// apart from updates: the weight they carry was already counted
    /// as updates on the pushing peer.
    pub fn record_absorb(&self) {
        self.absorbs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one reactor wakeup that delivered `ready` ready events
    /// (event-loop backend only; the ready-queue depth gauge keeps the
    /// high-water mark).
    pub fn record_wakeup(&self, ready: u64) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        self.ready_peak.fetch_max(ready, Ordering::Relaxed);
    }

    /// Records `weight` update weight acknowledged into a writer-local
    /// buffer without yet touching the shared sketch (write-buffered
    /// servers only).
    pub fn record_buffered(&self, weight: u64) {
        self.buffered_total.fetch_add(weight, Ordering::Relaxed);
    }

    /// Records one buffer flush that propagated `weight` buffered
    /// weight into the shared sketch. Each recorded buffered weight is
    /// flushed exactly once, so `buffered_total − flushed_total` is the
    /// weight currently parked in writer buffers (the `buffered_pending`
    /// gauge — an IVL read: both counters are monotone, so the
    /// difference never exceeds any instantaneous pending total).
    pub fn record_flush(&self, weight: u64) {
        self.flushed_total.fetch_add(weight, Ordering::Relaxed);
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots everything into a [`StatsReport`]; `stream_len` is
    /// supplied by the caller (the registry's total acknowledged
    /// weight, an IVL read), as are the per-object rows.
    pub fn report(&self, stream_len: u64, objects: Vec<ObjectStats>) -> StatsReport {
        let quantiles = |h: &ConcurrentHistogram| {
            let snap = h.snapshot();
            if snap.count() == 0 {
                (0, 0)
            } else {
                (1u64 << snap.quantile(0.50), 1u64 << snap.quantile(0.99))
            }
        };
        let (update_p50_ns, update_p99_ns) = quantiles(&self.update_lat);
        let (query_p50_ns, query_p99_ns) = quantiles(&self.query_lat);
        StatsReport {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            ready_peak: self.ready_peak.load(Ordering::Relaxed),
            stream_len,
            buffered_pending: self
                .buffered_total
                .load(Ordering::Relaxed)
                .saturating_sub(self.flushed_total.load(Ordering::Relaxed)),
            flushes: self.flushes.load(Ordering::Relaxed),
            update_p50_ns,
            update_p99_ns,
            query_p50_ns,
            query_p99_ns,
            absorbs: self.absorbs.load(Ordering::Relaxed),
            objects,
        }
    }
}

/// Per-object operation counters: one `STATS` row per registered
/// object, ordered by object id.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObjectStats {
    /// Object id (registry index).
    pub id: u32,
    /// Update operations applied to this object (batch items count
    /// individually).
    pub updates: u64,
    /// Queries answered by this object.
    pub queries: u64,
    /// Acknowledged update weight (the object's stream length — an
    /// IVL read of its ingest counter).
    pub observed: u64,
}

/// A point-in-time snapshot of a server's [`Metrics`], as served by
/// `STATS`. Latency quantiles are upper edges of `log₂` buckets, so
/// they are ~2× approximations — enough to see orders of magnitude,
/// cheap enough to never perturb the hot path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections turned away at the accept gate.
    pub rejected: u64,
    /// Connections currently being served.
    pub active: u64,
    /// Update operations applied (batch items count individually).
    pub updates: u64,
    /// Queries answered.
    pub queries: u64,
    /// Batch frames applied.
    pub batches: u64,
    /// Malformed frames answered with a protocol error.
    pub protocol_errors: u64,
    /// Updates refused because every shard was leased.
    pub busy_rejections: u64,
    /// Request frames decoded (all opcodes, both backends).
    pub frames: u64,
    /// Reactor `epoll_wait` returns (event-loop backend; 0 threaded).
    pub wakeups: u64,
    /// Most ready events delivered by a single wakeup (gauge).
    pub ready_peak: u64,
    /// Total stream weight ingested (IVL read).
    pub stream_len: u64,
    /// Acknowledged update weight still parked in writer-local buffers
    /// (write-buffered servers; 0 when buffering is off). Bounded by
    /// `n_writers·b` — the envelope's `lag`.
    pub buffered_pending: u64,
    /// Buffer flushes propagated into the shared sketch.
    pub flushes: u64,
    /// Median applied-update latency, rounded up to a power of two ns.
    pub update_p50_ns: u64,
    /// 99th-percentile applied-update latency (power-of-two ns).
    pub update_p99_ns: u64,
    /// Median query latency (power-of-two ns).
    pub query_p50_ns: u64,
    /// 99th-percentile query latency (power-of-two ns).
    pub query_p99_ns: u64,
    /// `PUSH_STATE` frames absorbed (replica catch-up merges; their
    /// weight is not in `updates`).
    pub absorbs: u64,
    /// Per-object counters, one row per registered object, ordered by
    /// object id (travels after the fixed fields on the wire).
    pub objects: Vec<ObjectStats>,
}

impl StatsReport {
    /// Number of fixed `u64` fields on the wire (the per-object rows
    /// travel after them, length-prefixed). Encode/decode and the
    /// stats-reply frame all derive from this constant, so growing the
    /// report means appending to [`as_fields`](Self::as_fields) /
    /// [`from_fields`](Self::from_fields) and bumping it — every other
    /// layer follows.
    pub const NUM_FIELDS: usize = 19;

    /// The fields in wire order.
    pub fn as_fields(&self) -> [u64; Self::NUM_FIELDS] {
        [
            self.accepted,
            self.rejected,
            self.active,
            self.updates,
            self.queries,
            self.batches,
            self.protocol_errors,
            self.busy_rejections,
            self.frames,
            self.wakeups,
            self.ready_peak,
            self.stream_len,
            self.buffered_pending,
            self.flushes,
            self.update_p50_ns,
            self.update_p99_ns,
            self.query_p50_ns,
            self.query_p99_ns,
            self.absorbs,
        ]
    }

    /// Rebuilds a report from wire order.
    pub fn from_fields(f: [u64; Self::NUM_FIELDS]) -> Self {
        StatsReport {
            accepted: f[0],
            rejected: f[1],
            active: f[2],
            updates: f[3],
            queries: f[4],
            batches: f[5],
            protocol_errors: f[6],
            busy_rejections: f[7],
            frames: f[8],
            wakeups: f[9],
            ready_peak: f[10],
            stream_len: f[11],
            buffered_pending: f[12],
            flushes: f[13],
            update_p50_ns: f[14],
            update_p99_ns: f[15],
            query_p50_ns: f[16],
            query_p99_ns: f[17],
            absorbs: f[18],
            objects: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_are_monotone() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(1024), 11);
        assert_eq!(log2_bucket(u128::MAX), LAT_BUCKETS as u64 - 1);
        let mut last = 0;
        for ns in [0u128, 1, 5, 100, 10_000, 1 << 40] {
            let b = log2_bucket(ns);
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn report_reflects_recordings() {
        let m = Metrics::new();
        m.connection_accepted();
        m.record_updates(3, 1_000);
        m.record_query(2_000);
        m.record_query(4_000);
        let r = m.report(42, Vec::new());
        assert_eq!(r.accepted, 1);
        assert_eq!(r.active, 1);
        assert_eq!(r.updates, 3);
        assert_eq!(r.queries, 2);
        assert_eq!(r.stream_len, 42);
        assert!(r.update_p50_ns >= 1_000);
        assert!(r.query_p50_ns >= 2_000);
        assert!(r.query_p50_ns <= r.query_p99_ns);
    }

    #[test]
    fn empty_histograms_report_zero_quantiles() {
        let r = Metrics::new().report(0, Vec::new());
        assert_eq!(r.update_p50_ns, 0);
        assert_eq!(r.query_p99_ns, 0);
    }

    #[test]
    fn wakeup_gauge_keeps_the_peak() {
        let m = Metrics::new();
        m.record_wakeup(3);
        m.record_wakeup(17);
        m.record_wakeup(5);
        m.record_frame();
        m.record_frame();
        let r = m.report(0, Vec::new());
        assert_eq!(r.wakeups, 3);
        assert_eq!(r.ready_peak, 17);
        assert_eq!(r.frames, 2);
    }

    #[test]
    fn buffered_gauge_is_total_minus_flushed() {
        let m = Metrics::new();
        m.record_buffered(10);
        m.record_buffered(7);
        m.record_flush(10);
        let r = m.report(0, Vec::new());
        assert_eq!(r.buffered_pending, 7);
        assert_eq!(r.flushes, 1);
        m.record_flush(7);
        let r = m.report(0, Vec::new());
        assert_eq!(r.buffered_pending, 0);
        assert_eq!(r.flushes, 2);
    }

    #[test]
    fn fields_roundtrip() {
        let m = Metrics::new();
        m.record_updates(7, 123);
        m.record_batch();
        m.record_absorb();
        let r = m.report(9, Vec::new());
        assert_eq!(r.absorbs, 1);
        assert_eq!(r.updates, 7, "absorbs must not count as updates");
        assert_eq!(StatsReport::from_fields(r.as_fields()), r);
    }
}
