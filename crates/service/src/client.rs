//! Blocking client for the sketch service.
//!
//! One request in flight at a time (lockstep request/response); use
//! [`Client::batch`] to amortize round trips, or several clients for
//! concurrency — the server shards per connection.
//!
//! The v1-era methods ([`Client::update`], [`Client::batch`],
//! [`Client::query`]) address object 0 — always the default CountMin
//! — and emit byte-identical v1 frames, so they interoperate with v1
//! servers unchanged. To reach other registered objects, resolve a
//! handle by name with [`Client::object`] (or by id with
//! [`Client::object_id`]) and issue requests through it; handles
//! share the connection, so only one may be in flight at a time.

use crate::envelope::{Envelope, ErrorEnvelope};
use crate::metrics::StatsReport;
use crate::objects::ObjectInfo;
use crate::protocol::{self, ErrorCode, FrameDecoder, Request, Response, WireError};
use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or writing failed.
    Io(io::Error),
    /// The response stream did not parse.
    Wire(WireError),
    /// The server refused the request.
    Server {
        /// Refusal class (retry on [`ErrorCode::Busy`]).
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with a well-formed but unexpected frame.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server refused ({code}): {message}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking connection to an `ivl-service` server.
///
/// Reads go through the same resumable [`FrameDecoder`] the server's
/// event-loop backend uses: response frames are parsed zero-copy from
/// a reusable buffer, so a long-lived client allocates nothing per
/// roundtrip in the steady state.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            decoder: FrameDecoder::new(protocol::DEFAULT_MAX_FRAME_LEN),
            buf: Vec::new(),
        })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.buf.clear();
        req.encode(&mut self.buf);
        self.stream.write_all(&self.buf)?;
        let rsp = loop {
            if let Some(payload) = self.decoder.next_frame()? {
                break Response::decode(payload)?;
            }
            match self.decoder.read_from(&mut self.stream) {
                Ok(0) => return Err(ClientError::Wire(WireError::Truncated)),
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        };
        if let Response::Error { code, message } = rsp {
            return Err(ClientError::Server { code, message });
        }
        Ok(rsp)
    }

    fn update_object(&mut self, object: u32, key: u64, weight: u64) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Update {
            object,
            key,
            weight,
        })? {
            Response::Ack { applied } => Ok(applied),
            _ => Err(ClientError::Unexpected("wanted ACK")),
        }
    }

    fn batch_object(&mut self, object: u32, items: &[(u64, u64)]) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Batch {
            object,
            items: items.to_vec(),
        })? {
            Response::Ack { applied } => Ok(applied),
            _ => Err(ClientError::Unexpected("wanted ACK")),
        }
    }

    fn query_object(&mut self, object: u32, key: u64) -> Result<ErrorEnvelope, ClientError> {
        match self.roundtrip(&Request::Query { object, key })? {
            Response::Envelope(env) => Ok(env),
            _ => Err(ClientError::Unexpected("wanted ENVELOPE")),
        }
    }

    /// Ingests `weight` occurrences of `key` into object 0 (the
    /// default CountMin); returns the connection's cumulative
    /// applied-update count.
    pub fn update(&mut self, key: u64, weight: u64) -> Result<u64, ClientError> {
        self.update_object(0, key, weight)
    }

    /// Ingests many pairs under one frame (at most
    /// [`protocol::MAX_BATCH_ITEMS`]) into object 0; returns the
    /// cumulative applied-update count.
    pub fn batch(&mut self, items: &[(u64, u64)]) -> Result<u64, ClientError> {
        self.batch_object(0, items)
    }

    /// Queries `key`'s frequency on object 0; returns the estimate
    /// inside its IVL error envelope.
    pub fn query(&mut self, key: u64) -> Result<Envelope, ClientError> {
        match self.query_object(0, key)? {
            ErrorEnvelope::Frequency(env) => Ok(env),
            _ => Err(ClientError::Unexpected("wanted a frequency envelope")),
        }
    }

    /// Lists the server's registered objects.
    pub fn objects(&mut self) -> Result<Vec<ObjectInfo>, ClientError> {
        match self.roundtrip(&Request::Objects)? {
            Response::Objects(infos) => Ok(infos),
            _ => Err(ClientError::Unexpected("wanted OBJECTS_REPLY")),
        }
    }

    /// Resolves a registered object by name into a request handle.
    pub fn object(&mut self, name: &str) -> Result<ObjectHandle<'_>, ClientError> {
        let infos = self.objects()?;
        match infos.iter().find(|info| info.name == name) {
            Some(info) => Ok(ObjectHandle {
                object: info.id,
                client: self,
            }),
            None => Err(ClientError::Server {
                code: ErrorCode::UnknownObject,
                message: format!("no object named {name:?} on this server"),
            }),
        }
    }

    /// Addresses a registered object by id without a lookup roundtrip.
    pub fn object_id(&mut self, id: u32) -> ObjectHandle<'_> {
        ObjectHandle {
            object: id,
            client: self,
        }
    }

    /// Fetches the server's metrics snapshot.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            _ => Err(ClientError::Unexpected("wanted STATS")),
        }
    }

    /// Asks the server to stop accepting connections and drain.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Goodbye => Ok(()),
            _ => Err(ClientError::Unexpected("wanted GOODBYE")),
        }
    }
}

/// A request handle bound to one registered object on a [`Client`].
///
/// Borrows the client, so requests remain lockstep: drop the handle
/// (or let it fall out of scope) before issuing object-0 calls on the
/// client directly. Handles for object 0 emit the same v1 frames the
/// bare client methods do.
#[derive(Debug)]
pub struct ObjectHandle<'a> {
    client: &'a mut Client,
    object: u32,
}

impl ObjectHandle<'_> {
    /// The wire object id this handle addresses.
    pub fn id(&self) -> u32 {
        self.object
    }

    /// Ingests `weight` occurrences of `key` into this object;
    /// returns the connection's cumulative applied-update count.
    pub fn update(&mut self, key: u64, weight: u64) -> Result<u64, ClientError> {
        self.client.update_object(self.object, key, weight)
    }

    /// Ingests many pairs under one frame (at most
    /// [`protocol::MAX_BATCH_ITEMS`]); returns the cumulative
    /// applied-update count.
    pub fn batch(&mut self, items: &[(u64, u64)]) -> Result<u64, ClientError> {
        self.client.batch_object(self.object, items)
    }

    /// Queries `key` on this object; returns the object's own error
    /// envelope form.
    pub fn query(&mut self, key: u64) -> Result<ErrorEnvelope, ClientError> {
        self.client.query_object(self.object, key)
    }
}
