//! Blocking client for the sketch service.
//!
//! One request in flight at a time (lockstep request/response); use
//! [`Client::batch`] to amortize round trips, or several clients for
//! concurrency — the server shards per connection.
//!
//! The v1-era methods ([`Client::update`], [`Client::batch`],
//! [`Client::query`]) address object 0 — always the default CountMin
//! — and emit byte-identical v1 frames, so they interoperate with v1
//! servers unchanged. To reach other registered objects, resolve a
//! handle by name with [`Client::object`] (or by id with
//! [`Client::object_id`]) and issue requests through it; handles
//! share the connection, so only one may be in flight at a time.

use crate::envelope::{Envelope, ErrorEnvelope};
use crate::metrics::StatsReport;
use crate::objects::{ObjectInfo, ObjectSnapshot, SnapshotDelta, SnapshotState};
use crate::protocol::{self, ErrorCode, FrameDecoder, Request, Response, WireError};
use std::fmt;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide generation counter: every connection a [`Client`]
/// holds — initial or reconnected — gets a number no other connection
/// in this process ever had, so generation equality implies "same
/// uninterrupted connection" even across client instances.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(0);

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or writing failed.
    Io(io::Error),
    /// The response stream did not parse.
    Wire(WireError),
    /// The server refused the request.
    Server {
        /// Refusal class (retry on [`ErrorCode::Busy`]).
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with a well-formed but unexpected frame.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server refused ({code}): {message}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking connection to an `ivl-service` server.
///
/// Reads go through the same resumable [`FrameDecoder`] the server's
/// event-loop backend uses: response frames are parsed zero-copy from
/// a reusable buffer, so a long-lived client allocates nothing per
/// roundtrip in the steady state.
///
/// **Reconnection.** Read-only requests (query, snapshot, stats,
/// objects) are idempotent, so when the connection dies mid-roundtrip
/// the client transparently reconnects and resends, up to
/// [`reconnect_limit`](Self::set_reconnect_limit) times per call.
/// Updates, batches, and shutdown are **never** silently retried: an
/// update whose connection died may or may not have been applied, and
/// resending it could double-count — the caller gets the error and
/// owns the retry decision.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// The peer address, kept for reconnects.
    addr: SocketAddr,
    decoder: FrameDecoder,
    buf: Vec<u8>,
    /// Reconnect-and-resend attempts allowed per idempotent call.
    reconnect_limit: u32,
    /// Replaced (from [`NEXT_GENERATION`]) on every reconnect.
    /// Snapshot caches keyed to this connection (the replica layer's
    /// delta bases) must be dropped when it moves: a resolved address
    /// can land on a *different* server whose epochs mean something
    /// else entirely, so no delta may ever be applied across a
    /// generation change.
    generation: u64,
    /// Cumulative request bytes written, including frame prefixes.
    bytes_out: u64,
    /// Cumulative response bytes consumed, including frame prefixes.
    bytes_in: u64,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        Ok(Client {
            stream,
            addr,
            decoder: FrameDecoder::new(protocol::DEFAULT_MAX_FRAME_LEN),
            buf: Vec::new(),
            reconnect_limit: 1,
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
            bytes_out: 0,
            bytes_in: 0,
        })
    }

    /// The server address this client (re)connects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sets how many reconnect-and-resend attempts an idempotent call
    /// may make after a dead connection (default 1; 0 disables).
    pub fn set_reconnect_limit(&mut self, limit: u32) {
        self.reconnect_limit = limit;
    }

    /// Replaces the dead connection with a fresh one; any buffered
    /// half-read response bytes are dropped with the old stream.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        self.stream = stream;
        self.decoder = FrameDecoder::new(protocol::DEFAULT_MAX_FRAME_LEN);
        self.generation = NEXT_GENERATION.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The connection generation: unique to this connection across the
    /// whole process, replaced on every reconnect. A snapshot cache
    /// recorded under one generation must not be used as a delta base
    /// under another — equality here is proof the connection never
    /// moved.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Cumulative wire traffic as `(bytes_out, bytes_in)`, frame
    /// prefixes included. Survives reconnects; sample before and after
    /// a call to cost it.
    pub fn wire_bytes(&self) -> (u64, u64) {
        (self.bytes_out, self.bytes_in)
    }

    /// Whether an error means the connection died (as opposed to the
    /// server answering something) — the only case a resend of an
    /// idempotent request can be correct.
    fn connection_died(e: &ClientError) -> bool {
        matches!(
            e,
            ClientError::Io(_) | ClientError::Wire(WireError::Truncated | WireError::Io(_))
        )
    }

    /// Writes one encoded request without waiting for its reply.
    fn send_request(&mut self, req: &Request) -> Result<(), ClientError> {
        self.buf.clear();
        req.encode(&mut self.buf);
        self.stream.write_all(&self.buf)?;
        self.bytes_out += self.buf.len() as u64;
        Ok(())
    }

    /// Reads the next response frame, turning a server `Error` reply
    /// into [`ClientError::Server`].
    fn read_response(&mut self) -> Result<Response, ClientError> {
        let rsp = loop {
            if let Some(payload) = self.decoder.next_frame()? {
                self.bytes_in += payload.len() as u64 + 4;
                break Response::decode(payload)?;
            }
            match self.decoder.read_from(&mut self.stream) {
                Ok(0) => return Err(ClientError::Wire(WireError::Truncated)),
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        };
        if let Response::Error { code, message } = rsp {
            return Err(ClientError::Server { code, message });
        }
        Ok(rsp)
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send_request(req)?;
        self.read_response()
    }

    /// [`roundtrip`](Self::roundtrip) with bounded reconnect-and-resend
    /// — only for requests that are safe to send twice.
    fn roundtrip_idempotent(&mut self, req: &Request) -> Result<Response, ClientError> {
        let mut attempts_left = self.reconnect_limit;
        loop {
            match self.roundtrip(req) {
                Err(e) if Self::connection_died(&e) && attempts_left > 0 => {
                    attempts_left -= 1;
                    self.reconnect()?;
                }
                other => return other,
            }
        }
    }

    fn update_object(&mut self, object: u32, key: u64, weight: u64) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Update {
            object,
            key,
            weight,
        })? {
            Response::Ack { applied } => Ok(applied),
            _ => Err(ClientError::Unexpected("wanted ACK")),
        }
    }

    fn batch_object(&mut self, object: u32, items: &[(u64, u64)]) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Batch {
            object,
            items: items.to_vec(),
        })? {
            Response::Ack { applied } => Ok(applied),
            _ => Err(ClientError::Unexpected("wanted ACK")),
        }
    }

    fn query_object(&mut self, object: u32, key: u64) -> Result<ErrorEnvelope, ClientError> {
        match self.roundtrip_idempotent(&Request::Query { object, key })? {
            Response::Envelope(env) => Ok(env),
            _ => Err(ClientError::Unexpected("wanted ENVELOPE")),
        }
    }

    fn snapshot_object(&mut self, object: u32) -> Result<ObjectSnapshot, ClientError> {
        match self.roundtrip_idempotent(&Request::Snapshot { object })? {
            Response::Snapshot(snap) => Ok(snap),
            _ => Err(ClientError::Unexpected("wanted SNAPSHOT_REPLY")),
        }
    }

    fn snapshot_since_object(
        &mut self,
        object: u32,
        base_epoch: u64,
    ) -> Result<SnapshotDelta, ClientError> {
        match self.roundtrip_idempotent(&Request::SnapshotSince { object, base_epoch })? {
            Response::SnapshotDelta(delta) => Ok(delta),
            _ => Err(ClientError::Unexpected("wanted SNAPSHOT_DELTA_REPLY")),
        }
    }

    /// Ingests `weight` occurrences of `key` into object 0 (the
    /// default CountMin); returns the connection's cumulative
    /// applied-update count.
    pub fn update(&mut self, key: u64, weight: u64) -> Result<u64, ClientError> {
        self.update_object(0, key, weight)
    }

    /// Ingests many pairs under one frame (at most
    /// [`protocol::MAX_BATCH_ITEMS`]) into object 0; returns the
    /// cumulative applied-update count.
    pub fn batch(&mut self, items: &[(u64, u64)]) -> Result<u64, ClientError> {
        self.batch_object(0, items)
    }

    /// Queries `key`'s frequency on object 0; returns the estimate
    /// inside its IVL error envelope.
    pub fn query(&mut self, key: u64) -> Result<Envelope, ClientError> {
        match self.query_object(0, key)? {
            ErrorEnvelope::Frequency(env) => Ok(env),
            _ => Err(ClientError::Unexpected("wanted a frequency envelope")),
        }
    }

    /// Pulls a mergeable snapshot of object `object`'s state plus its
    /// current envelope — the replication layer's read primitive.
    pub fn snapshot(&mut self, object: u32) -> Result<ObjectSnapshot, ClientError> {
        self.snapshot_object(object)
    }

    /// Asks object `object` what changed since `base_epoch` — the
    /// delta-capable snapshot read. Pass `u64::MAX` (never a real
    /// epoch) when holding no cached state; the reply is then a full
    /// state. Beware reconnects: the retry inside is fine (the request
    /// carries the base), but a cache written under an older
    /// [`generation`](Self::generation) must be invalidated *before*
    /// choosing `base_epoch`.
    pub fn snapshot_since(
        &mut self,
        object: u32,
        base_epoch: u64,
    ) -> Result<SnapshotDelta, ClientError> {
        self.snapshot_since_object(object, base_epoch)
    }

    /// Writes a `SNAPSHOT_SINCE` request without waiting for the reply
    /// — the send half of a pipelined fan-out read across several
    /// servers. Pair with exactly one
    /// [`recv_snapshot_delta`](Self::recv_snapshot_delta) per
    /// successful send, in send order. No reconnect handling on either
    /// half: a failure means the caller retries on a fresh connection,
    /// whose moved [`generation`](Self::generation) invalidates any
    /// delta base chosen against this one.
    pub fn send_snapshot_since(&mut self, object: u32, base_epoch: u64) -> Result<(), ClientError> {
        self.send_request(&Request::SnapshotSince { object, base_epoch })
    }

    /// Reads the reply to one pipelined
    /// [`send_snapshot_since`](Self::send_snapshot_since).
    pub fn recv_snapshot_delta(&mut self) -> Result<SnapshotDelta, ClientError> {
        match self.read_response()? {
            Response::SnapshotDelta(delta) => Ok(delta),
            _ => Err(ClientError::Unexpected("wanted SNAPSHOT_DELTA_REPLY")),
        }
    }

    /// Pushes a peer's mergeable state into object `object` for the
    /// server to absorb (merge into its live structure), crediting
    /// `observed` toward the object's stream length — the anti-entropy
    /// write primitive of replica catch-up. Returns the object's epoch
    /// after the merge. **Never silently retried**: absorbing an
    /// additive state (a CountMin cell matrix) twice double-counts, so
    /// like updates, a dead connection mid-roundtrip surfaces as an
    /// error and the caller owns the retry decision.
    pub fn push_state(
        &mut self,
        object: u32,
        observed: u64,
        state: SnapshotState,
    ) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::PushState {
            object,
            observed,
            state,
        })? {
            Response::Absorbed { epoch, .. } => Ok(epoch),
            _ => Err(ClientError::Unexpected("wanted ABSORBED")),
        }
    }

    /// Lists the server's registered objects.
    pub fn objects(&mut self) -> Result<Vec<ObjectInfo>, ClientError> {
        match self.roundtrip_idempotent(&Request::Objects)? {
            Response::Objects(infos) => Ok(infos),
            _ => Err(ClientError::Unexpected("wanted OBJECTS_REPLY")),
        }
    }

    /// Resolves a registered object by name into a request handle.
    pub fn object(&mut self, name: &str) -> Result<ObjectHandle<'_>, ClientError> {
        let infos = self.objects()?;
        match infos.iter().find(|info| info.name == name) {
            Some(info) => Ok(ObjectHandle {
                object: info.id,
                client: self,
            }),
            None => Err(ClientError::Server {
                code: ErrorCode::UnknownObject,
                message: format!("no object named {name:?} on this server"),
            }),
        }
    }

    /// Addresses a registered object by id without a lookup roundtrip.
    pub fn object_id(&mut self, id: u32) -> ObjectHandle<'_> {
        ObjectHandle {
            object: id,
            client: self,
        }
    }

    /// Fetches the server's metrics snapshot.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.roundtrip_idempotent(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            _ => Err(ClientError::Unexpected("wanted STATS")),
        }
    }

    /// Asks the server to stop accepting connections and drain.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Goodbye => Ok(()),
            _ => Err(ClientError::Unexpected("wanted GOODBYE")),
        }
    }
}

/// A request handle bound to one registered object on a [`Client`].
///
/// Borrows the client, so requests remain lockstep: drop the handle
/// (or let it fall out of scope) before issuing object-0 calls on the
/// client directly. Handles for object 0 emit the same v1 frames the
/// bare client methods do.
#[derive(Debug)]
pub struct ObjectHandle<'a> {
    client: &'a mut Client,
    object: u32,
}

impl ObjectHandle<'_> {
    /// The wire object id this handle addresses.
    pub fn id(&self) -> u32 {
        self.object
    }

    /// Ingests `weight` occurrences of `key` into this object;
    /// returns the connection's cumulative applied-update count.
    pub fn update(&mut self, key: u64, weight: u64) -> Result<u64, ClientError> {
        self.client.update_object(self.object, key, weight)
    }

    /// Ingests many pairs under one frame (at most
    /// [`protocol::MAX_BATCH_ITEMS`]); returns the cumulative
    /// applied-update count.
    pub fn batch(&mut self, items: &[(u64, u64)]) -> Result<u64, ClientError> {
        self.client.batch_object(self.object, items)
    }

    /// Queries `key` on this object; returns the object's own error
    /// envelope form.
    pub fn query(&mut self, key: u64) -> Result<ErrorEnvelope, ClientError> {
        self.client.query_object(self.object, key)
    }

    /// Pulls a mergeable snapshot of this object's state.
    pub fn snapshot(&mut self) -> Result<ObjectSnapshot, ClientError> {
        self.client.snapshot_object(self.object)
    }

    /// Asks this object what changed since `base_epoch` (see
    /// [`Client::snapshot_since`]).
    pub fn snapshot_since(&mut self, base_epoch: u64) -> Result<SnapshotDelta, ClientError> {
        self.client.snapshot_since_object(self.object, base_epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::thread;

    /// A half-close fixture: each accepted connection reads exactly
    /// one request frame (counting it), then hangs up without
    /// answering. From the `answer_after` -th connection on, requests
    /// are served properly instead.
    fn half_close_fixture(answer_after: u64) -> (SocketAddr, Arc<AtomicU64>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let frames = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&frames);
        thread::spawn(move || {
            let mut conns = 0u64;
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                conns += 1;
                while let Ok(Some(payload)) =
                    protocol::read_frame(&mut stream, protocol::DEFAULT_MAX_FRAME_LEN)
                {
                    seen.fetch_add(1, Ordering::SeqCst);
                    if conns < answer_after {
                        // Half-close without answering: the client's
                        // pending read sees EOF mid-roundtrip.
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        break;
                    }
                    let rsp = match Request::decode(&payload).unwrap() {
                        Request::Query { key, .. } => {
                            Response::Envelope(ErrorEnvelope::Frequency(Envelope {
                                key,
                                estimate: 7,
                                epsilon: 1,
                                stream_len: 9,
                                alpha: 0.1,
                                delta: 0.1,
                                lag: 0,
                            }))
                        }
                        Request::Update { .. } => Response::Ack { applied: 1 },
                        other => panic!("fixture got {other:?}"),
                    };
                    let mut buf = Vec::new();
                    rsp.encode(&mut buf);
                    stream.write_all(&buf).unwrap();
                }
            }
        });
        (addr, frames)
    }

    #[test]
    fn idempotent_query_survives_a_half_closed_connection() {
        let (addr, frames) = half_close_fixture(2);
        let mut c = Client::connect(addr).unwrap();
        // First attempt dies mid-roundtrip; the client reconnects and
        // resends — two frames reach the fixture, one answer returns.
        let env = c.query(5).unwrap();
        assert_eq!((env.key, env.estimate), (5, 7));
        assert_eq!(frames.load(Ordering::SeqCst), 2);
        // The reconnected stream keeps working without further drops.
        let env = c.query(6).unwrap();
        assert_eq!(env.key, 6);
        assert_eq!(frames.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn generations_are_process_unique_and_move_on_reconnect() {
        let (addr, _) = half_close_fixture(2);
        let mut c = Client::connect(addr).unwrap();
        let g0 = c.generation();
        c.query(5).unwrap(); // first connection half-closes → reconnect
        let g1 = c.generation();
        assert_ne!(g0, g1, "reconnect must move the generation");
        let (out, inn) = c.wire_bytes();
        assert!(out > 0 && inn > 0, "wire accounting: out={out} in={inn}");
        // A brand-new client never reuses a generation some other
        // connection had — equality proves "same connection".
        let (addr2, _) = half_close_fixture(u64::MAX);
        let d = Client::connect(addr2).unwrap();
        assert!(d.generation() != g0 && d.generation() != g1);
    }

    #[test]
    fn updates_are_never_silently_resent() {
        let (addr, frames) = half_close_fixture(u64::MAX);
        let mut c = Client::connect(addr).unwrap();
        let err = c.update(5, 1).unwrap_err();
        assert!(
            Client::connection_died(&err),
            "wanted a dead-connection error, got {err:?}"
        );
        // Exactly one frame ever reached the wire: the failed update
        // was not resent on a fresh connection.
        assert_eq!(frames.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn reconnect_limit_zero_disables_resend() {
        let (addr, frames) = half_close_fixture(u64::MAX);
        let mut c = Client::connect(addr).unwrap();
        c.set_reconnect_limit(0);
        let err = c.query(5).unwrap_err();
        assert!(Client::connection_died(&err), "got {err:?}");
        assert_eq!(frames.load(Ordering::SeqCst), 1);
    }
}
