//! The batch fast path's perf claim, enforced: after warmup, serving a
//! steady-state BATCH2 frame performs **zero heap allocations** on
//! either backend. A counting global allocator wraps the system
//! allocator; the test drives a warmed server through hundreds of
//! batch frames and asserts the process-wide allocation count does not
//! move.
//!
//! The count is process-global, so everything here runs inside ONE
//! `#[test]` (the harness would otherwise interleave other tests'
//! allocations into the measurement window). Warmup covers every
//! amortized one-time cost on the serving path: connection spawn,
//! `FrameDecoder` ring growth, lazy writer/lease/scratch creation, the
//! poller's event-buffer fill, and the reactor's response-buffer pool.

use ivl_service::{Backend, Client, ServerConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting every allocation entry point
/// (frees are irrelevant to the claim).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates straight to `System`; the counter is a relaxed
// atomic bump with no further allocation.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Hand-encodes one BATCH2 frame (opcode 0x13). `Request::encode`
/// emits the v1 opcode for object 0, so the v2 framing is written
/// explicitly: `[len:u32le][0x13][object:u32le][count:u32le][(key,
/// weight):u64le×2]*`. Keys repeat so the frame exercises the
/// coalescing path.
fn encode_batch2(buf: &mut Vec<u8>, object: u32, items: &[(u64, u64)]) {
    buf.clear();
    let payload_len = 1 + 4 + 4 + items.len() * 16;
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
    buf.push(0x13);
    buf.extend_from_slice(&object.to_le_bytes());
    buf.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for &(k, w) in items {
        buf.extend_from_slice(&k.to_le_bytes());
        buf.extend_from_slice(&w.to_le_bytes());
    }
}

/// Reads one length-prefixed response frame into `frame` (reused).
fn read_response(stream: &mut TcpStream, frame: &mut Vec<u8>) {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes).expect("response prefix");
    let len = u32::from_le_bytes(len_bytes) as usize;
    frame.clear();
    frame.resize(len, 0);
    stream.read_exact(frame).expect("response payload");
    assert_eq!(frame[0], 0x81, "expected ACK, got opcode {:#x}", frame[0]);
}

fn drive(backend: Backend, write_buffer: u64) {
    let label = format!("{backend:?}/wb={write_buffer}");
    let server = ivl_service::serve(
        "127.0.0.1:0",
        ServerConfig {
            backend,
            shards: 2,
            write_buffer,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    // A duplicate-heavy frame, the common shape under a skewed
    // workload; one weight-0 item rides along to cover that edge.
    let items: Vec<(u64, u64)> = (0..32u64).map(|i| (i % 11, (i % 3) + 1)).collect();
    let mut frame = Vec::with_capacity(1024);
    let mut rsp = Vec::with_capacity(256);
    encode_batch2(&mut frame, 0, &items);

    // Warmup: ring growth, writer/lease/scratch creation, response
    // pools, poller buffers.
    for _ in 0..64 {
        stream.write_all(&frame).expect("warmup write");
        read_response(&mut stream, &mut rsp);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    // Setup (spawn, registry, warmup growth) must have registered on
    // the counter, or the zero-delta assertion below proves nothing.
    assert!(before > 100, "counter not hooked: {before}");
    for _ in 0..256 {
        stream.write_all(&frame).expect("steady write");
        read_response(&mut stream, &mut rsp);
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    // The server threads are the only other live allocators; the
    // client side of the window reuses its two buffers. Any delta is
    // a per-frame allocation on the serving path.
    assert_eq!(
        delta, 0,
        "{label}: {delta} heap allocations across 256 steady-state batch frames"
    );

    drop(stream);
    // Sanity: the frames actually applied (not silently rejected).
    let client_stats = Client::connect(server.addr()).and_then(|mut c| c.stats());
    server.shutdown();
    let stats = client_stats.expect("stats");
    assert_eq!(stats.batches, 320, "{label}: batch frames served");
    assert_eq!(stats.updates, 320 * 32, "{label}: updates counted");
    server.join();
}

#[test]
fn steady_state_batch_frames_allocate_nothing() {
    for backend in [Backend::Threaded, Backend::EventLoop] {
        for write_buffer in [0u64, 64] {
            drive(backend, write_buffer);
        }
    }
}
