//! Property pin of the absorb/merge commutation the catch-up path
//! rests on: pushing a peer snapshot into a live served object through
//! `ObjectWriter::absorb` leaves exactly the state that merging the two
//! snapshots produces — absorb-then-snapshot equals
//! snapshot-then-merge, per kind, over random streams. This is what
//! makes a `PUSH_STATE` absorb indistinguishable from having served
//! the peer's updates directly, so an absorbed object stays an
//! intermediate mix of real updates (IVL-preserving).

use ivl_service::{merge_states, MergePolicy, Metrics, ObjectConfig, ObjectKind, ObjectRegistry};
use proptest::prelude::*;

fn registry(seed: u64) -> ObjectRegistry {
    ObjectRegistry::build(
        &[
            ObjectConfig::new("cm", ObjectKind::CountMin),
            ObjectConfig::new("hll", ObjectKind::Hll),
            ObjectConfig::new("morris", ObjectKind::Morris),
            ObjectConfig::new("low", ObjectKind::MinRegister),
        ],
        0.005,
        0.01,
        2,
        0,
        seed,
    )
}

fn feed(r: &ObjectRegistry, metrics: &Metrics, id: u32, batch: &[(u64, u64)]) {
    let obj = r.get(id).expect("registered object");
    let mut w = obj.writer(metrics);
    w.ensure_ready().expect("zero-buffer writer acquires");
    for &(k, wt) in batch {
        w.apply(k, wt);
    }
    w.release();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Absorbing a same-seed peer snapshot commutes with snapshot-level
    /// merging for every served kind: the add-absorbed CountMin, the
    /// max-absorbed HLL registers, the raised Morris exponent, and the
    /// lowered min register.
    #[test]
    fn absorb_then_snapshot_equals_snapshot_then_merge(
        own in proptest::collection::vec((0u64..64, 1u64..4), 0..60),
        peer in proptest::collection::vec((0u64..64, 1u64..4), 0..60),
        seed in 0u64..500,
    ) {
        let metrics = Metrics::new();
        let a = registry(seed);
        let b = registry(seed); // same seed: absorbing is legal
        for id in 0..4u32 {
            feed(&a, &metrics, id, &own);
            feed(&b, &metrics, id, &peer);
        }
        let peer_weight: u64 = peer.iter().map(|&(_, wt)| wt).sum();
        for id in 0..4u32 {
            let sa = a.snapshot(id).expect("registered object");
            let sb = b.snapshot(id).expect("registered object");
            // `Add` is the absorb algebra: CountMin cells add, the
            // other kinds' joins ignore the policy (idempotent).
            let merged = match merge_states(MergePolicy::Add, &[&sa.state, &sb.state]) {
                Ok(m) => m,
                Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                    format!("same-seed snapshots must merge: {e}"),
                )),
            };
            let obj = a.get(id).expect("registered object");
            let mut w = obj.writer(&metrics);
            w.ensure_ready().expect("writer acquires");
            if let Err(e) = w.absorb(&sb.state, peer_weight) {
                return Err(proptest::test_runner::TestCaseError::fail(
                    format!("object {id}: same-seed absorb must be accepted: {e}"),
                ));
            }
            w.release();
            prop_assert_eq!(a.snapshot(id).expect("registered object").state, merged);
        }
    }
}
