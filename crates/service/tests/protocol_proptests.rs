//! Property tests for the wire protocol: encode→decode is the
//! identity for every frame type — across both frame generations (v1
//! object-0 frames and v2 object-addressed frames) — and malformed
//! bytes are rejected with a protocol error — never a panic, never a
//! bogus frame.

use ivl_service::envelope::{Envelope, ErrorEnvelope};
use ivl_service::metrics::{ObjectStats, StatsReport};
use ivl_service::objects::{ObjectInfo, ObjectKind};
use ivl_service::protocol::{
    read_frame, FrameDecoder, Request, Response, WireError, DEFAULT_MAX_FRAME_LEN, MAX_BATCH_ITEMS,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Encodes, reframes and decodes one request.
fn request_roundtrip(req: &Request) -> Request {
    let mut buf = Vec::new();
    req.encode(&mut buf);
    let payload = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_LEN)
        .expect("self-encoded frame reads")
        .expect("not eof");
    Request::decode(&payload).expect("self-encoded frame decodes")
}

fn response_roundtrip(rsp: &Response) -> Response {
    let mut buf = Vec::new();
    rsp.encode(&mut buf);
    let payload = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_LEN)
        .expect("self-encoded frame reads")
        .expect("not eof");
    Response::decode(&payload).expect("self-encoded frame decodes")
}

proptest! {
    #[test]
    fn update_frames_roundtrip(object in any::<u32>(), key in any::<u64>(), weight in any::<u64>()) {
        let req = Request::Update { object, key, weight };
        prop_assert_eq!(request_roundtrip(&req), req);
    }

    #[test]
    fn query_frames_roundtrip(object in any::<u32>(), key in any::<u64>()) {
        let req = Request::Query { object, key };
        prop_assert_eq!(request_roundtrip(&req), req);
    }

    #[test]
    fn batch_frames_roundtrip(object in any::<u32>(), items in vec((any::<u64>(), any::<u64>()), 0..50)) {
        let req = Request::Batch { object, items };
        prop_assert_eq!(request_roundtrip(&req), req.clone());
    }

    #[test]
    fn bodyless_frames_roundtrip(pick in 0u8..3) {
        let req = match pick {
            0 => Request::Stats,
            1 => Request::Shutdown,
            _ => Request::Objects,
        };
        prop_assert_eq!(request_roundtrip(&req), req);
    }

    // --- v1 ↔ v2 interop: object 0 always travels as a v1 frame ---

    #[test]
    fn object_zero_updates_encode_as_v1(key in any::<u64>(), weight in any::<u64>()) {
        let mut buf = Vec::new();
        Request::Update { object: 0, key, weight }.encode(&mut buf);
        // 4-byte length prefix + opcode 0x01 + key + weight: exactly
        // the v1 layout, no object id on the wire.
        prop_assert_eq!(buf.len(), 4 + 1 + 8 + 8);
        prop_assert_eq!(buf[4], 0x01);
        let mut v2 = Vec::new();
        Request::Update { object: 1, key, weight }.encode(&mut v2);
        prop_assert_eq!(v2.len(), buf.len() + 4, "v2 adds exactly the object id");
        prop_assert_eq!(v2[4], 0x11);
    }

    #[test]
    fn object_zero_queries_and_batches_encode_as_v1(
        key in any::<u64>(),
        items in vec((any::<u64>(), any::<u64>()), 0..8),
    ) {
        let mut buf = Vec::new();
        Request::Query { object: 0, key }.encode(&mut buf);
        prop_assert_eq!(buf[4], 0x02);
        prop_assert_eq!(buf.len(), 4 + 1 + 8);
        let mut buf = Vec::new();
        Request::Batch { object: 0, items: items.clone() }.encode(&mut buf);
        prop_assert_eq!(buf[4], 0x03);
        prop_assert_eq!(buf.len(), 4 + 1 + 4 + 16 * items.len());
        let mut v2 = Vec::new();
        Request::Batch { object: 7, items }.encode(&mut v2);
        prop_assert_eq!(v2[4], 0x13);
        prop_assert_eq!(v2.len(), buf.len() + 4);
    }

    #[test]
    fn ack_frames_roundtrip(applied in any::<u64>()) {
        let rsp = Response::Ack { applied };
        prop_assert_eq!(response_roundtrip(&rsp), rsp);
    }

    #[test]
    fn envelope_frames_roundtrip(
        key in any::<u64>(),
        estimate in any::<u64>(),
        stream_len in 0u64..1_000_000_000,
        alpha_m in 1u64..1_000,
        delta_m in 1u64..1_000,
        lag in any::<u64>(),
    ) {
        let env = Envelope::new(
            key,
            estimate,
            stream_len,
            alpha_m as f64 / 1_000.0,
            delta_m as f64 / 1_000.0,
            lag,
        );
        let rsp = Response::Envelope(ErrorEnvelope::Frequency(env));
        prop_assert_eq!(response_roundtrip(&rsp), rsp);
    }

    #[test]
    fn typed_envelope_frames_roundtrip(
        kind in 0u8..3,
        a in any::<u64>(),
        b in any::<u64>(),
        c in 0u32..1_000_000,
        obs in any::<u64>(),
        num in 1u64..1_000,
    ) {
        let env = match kind {
            0 => ErrorEnvelope::Cardinality {
                estimate: a as f64,
                rel_std_err: num as f64 / 1_000.0,
                registers: b,
                register_sum: c as u64,
                observed: obs,
            },
            1 => ErrorEnvelope::ApproxCount {
                estimate: a as f64,
                a: num as f64 / 1_000.0,
                exponent: c,
                observed: obs,
            },
            _ => ErrorEnvelope::Minimum { minimum: a, observed: obs },
        };
        let rsp = Response::Envelope(env);
        prop_assert_eq!(response_roundtrip(&rsp), rsp);
    }

    #[test]
    fn stats_frames_roundtrip(
        fields in vec(any::<u64>(), StatsReport::NUM_FIELDS),
        rows in vec((any::<u32>(), any::<u64>(), any::<u64>(), any::<u64>()), 0..6),
    ) {
        let mut report = StatsReport::from_fields(
            <[u64; StatsReport::NUM_FIELDS]>::try_from(fields).expect("fixed size"),
        );
        report.objects = rows
            .into_iter()
            .map(|(id, updates, queries, observed)| ObjectStats { id, updates, queries, observed })
            .collect();
        let rsp = Response::Stats(report);
        prop_assert_eq!(response_roundtrip(&rsp), rsp);
    }

    #[test]
    fn objects_frames_roundtrip(entries in vec((any::<u32>(), 0u8..4, vec(97u8..123, 1..13)), 0..6)) {
        let infos = entries
            .into_iter()
            .map(|(id, kind, name)| ObjectInfo {
                id,
                kind: ObjectKind::from_u8(kind).expect("kind tag in range"),
                name: String::from_utf8(name).expect("ascii lowercase"),
            })
            .collect();
        let rsp = Response::Objects(infos);
        prop_assert_eq!(response_roundtrip(&rsp), rsp);
    }

    #[test]
    fn error_frames_roundtrip(code in 0u8..4, msg in vec(32u8..127, 0..40)) {
        let code = [
            ivl_service::ErrorCode::Busy,
            ivl_service::ErrorCode::Protocol,
            ivl_service::ErrorCode::ShuttingDown,
            ivl_service::ErrorCode::UnknownObject,
        ][code as usize];
        let message = String::from_utf8(msg).expect("ascii");
        let rsp = Response::Error { code, message };
        prop_assert_eq!(response_roundtrip(&rsp), rsp);
    }

    // --- malformed input: always a typed error, never a panic ---

    #[test]
    fn truncated_frames_are_truncated_errors(
        key in any::<u64>(),
        weight in any::<u64>(),
        keep_num in any::<u32>(),
    ) {
        let mut buf = Vec::new();
        Request::Update { object: 0, key, weight }.encode(&mut buf);
        let keep = keep_num as usize % buf.len(); // strictly shorter
        buf.truncate(keep);
        let got = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_LEN);
        if keep == 0 {
            prop_assert_eq!(got.expect("clean eof"), None);
        } else {
            prop_assert_eq!(got.expect_err("mid-frame eof"), WireError::Truncated);
        }
    }

    #[test]
    fn oversized_prefixes_are_rejected(len in 65u32..u32::MAX) {
        let mut buf = Vec::from(len.to_le_bytes());
        buf.resize(16, 0);
        prop_assert_eq!(
            read_frame(&mut buf.as_slice(), 64).expect_err("over limit"),
            WireError::Oversized { len, max: 64 }
        );
    }

    #[test]
    fn unknown_opcodes_are_rejected(
        // 0x07..=0x10 and 0x14..=0x80 are unassigned request opcodes
        // (v1 claims 0x01..=0x05, v2 adds 0x06 and 0x11..=0x13); the
        // map folds the three assigned v2 opcodes onto the range top.
        op in (0x07u8..0x7e).prop_map(|op| match op {
            0x11 => 0x7e,
            0x12 => 0x7f,
            0x13 => 0x80,
            other => other,
        }),
        tail in vec(0u8..=255, 0..16),
    ) {
        let mut payload = vec![op];
        payload.extend(tail);
        prop_assert_eq!(
            Request::decode(&payload).expect_err("unassigned opcode"),
            WireError::UnknownOpcode(op)
        );
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in vec(0u8..=255, 0..64)) {
        // Any outcome is fine except a panic; a successful decode must
        // re-encode to a frame that decodes to the same value.
        if let Ok(req) = Request::decode(&bytes) {
            prop_assert_eq!(request_roundtrip(&req), req);
        }
        if let Ok(rsp) = Response::decode(&bytes) {
            prop_assert_eq!(response_roundtrip(&rsp), rsp);
        }
        let _ = read_frame(&mut bytes.as_slice(), 32);
    }

    #[test]
    fn overlong_batches_are_rejected(extra in 1u32..1_000, object in any::<u32>(), v2 in any::<bool>()) {
        // Both batch generations enforce the same item cap.
        let mut payload = if v2 {
            let mut p = vec![0x13];
            p.extend_from_slice(&object.to_le_bytes());
            p
        } else {
            vec![0x03]
        };
        payload.extend_from_slice(&(MAX_BATCH_ITEMS + extra).to_le_bytes());
        prop_assert!(matches!(
            Request::decode(&payload),
            Err(WireError::Malformed(_))
        ));
    }

    // --- resumable FrameDecoder vs. one-shot read_frame ---

    #[test]
    fn decoder_agrees_with_one_shot_under_arbitrary_splits(
        reqs in vec(arb_request(), 1..12),
        cuts in vec(1usize..64, 0..24),
    ) {
        let stream = encode_all(&reqs);
        let expected = one_shot_frames(&stream);
        // Feed the stream in chunks of the given (arbitrary, possibly
        // mid-header / mid-payload) sizes, the remainder at the end.
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        let mut got = Vec::new();
        let mut at = 0;
        for cut in cuts {
            let next = (at + cut).min(stream.len());
            decoder.feed(&stream[at..next]);
            at = next;
            drain(&mut decoder, &mut got);
        }
        decoder.feed(&stream[at..]);
        drain(&mut decoder, &mut got);
        prop_assert_eq!(got, expected);
        prop_assert!(!decoder.mid_frame(), "whole stream consumed");
    }

    #[test]
    fn decoder_agrees_with_one_shot_byte_at_a_time(reqs in vec(arb_request(), 1..8)) {
        let stream = encode_all(&reqs);
        let expected = one_shot_frames(&stream);
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        let mut got = Vec::new();
        for &b in &stream {
            decoder.feed(std::slice::from_ref(&b));
            drain(&mut decoder, &mut got);
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn decoder_reports_oversized_exactly_like_read_frame(
        len in 65u32..u32::MAX,
        split in 0usize..8,
    ) {
        let mut stream = Vec::from(len.to_le_bytes());
        stream.resize(16, 0);
        let split = split.min(stream.len());
        let mut decoder = FrameDecoder::new(64);
        decoder.feed(&stream[..split]);
        // Possibly mid-prefix: no verdict yet, never a wrong one.
        if split >= 4 {
            prop_assert_eq!(
                decoder.next_frame().expect_err("over limit"),
                WireError::Oversized { len, max: 64 }
            );
        } else {
            prop_assert_eq!(decoder.next_frame().expect("no header yet"), None);
            decoder.feed(&stream[split..]);
            prop_assert_eq!(
                decoder.next_frame().expect_err("over limit"),
                WireError::Oversized { len, max: 64 }
            );
        }
    }

    #[test]
    fn decoder_mid_frame_tracks_truncation(
        key in any::<u64>(),
        weight in any::<u64>(),
        keep_num in any::<u32>(),
    ) {
        let mut stream = Vec::new();
        Request::Update { object: 0, key, weight }.encode(&mut stream);
        let keep = keep_num as usize % stream.len(); // strictly shorter
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        decoder.feed(&stream[..keep]);
        prop_assert_eq!(decoder.next_frame().expect("incomplete, no error"), None);
        // EOF here would be WireError::Truncated iff bytes are pending
        // — exactly read_frame's clean-EOF/truncation split.
        prop_assert_eq!(decoder.mid_frame(), keep > 0);
    }
}

/// Strategy over all request variants and both frame generations
/// (object 0 encodes v1, anything else v2; small batches keep cases
/// fast).
fn arb_request() -> impl Strategy<Value = Request> {
    let object = 0u32..4;
    prop_oneof![
        (object.clone(), any::<u64>(), any::<u64>()).prop_map(|(object, key, weight)| {
            Request::Update {
                object,
                key,
                weight,
            }
        }),
        (object.clone(), any::<u64>()).prop_map(|(object, key)| Request::Query { object, key }),
        (object, vec((any::<u64>(), any::<u64>()), 0..5))
            .prop_map(|(object, items)| Request::Batch { object, items }),
        Just(Request::Stats),
        Just(Request::Objects),
        Just(Request::Shutdown),
    ]
}

fn encode_all(reqs: &[Request]) -> Vec<u8> {
    let mut buf = Vec::new();
    for r in reqs {
        r.encode(&mut buf);
    }
    buf
}

/// Reference decoding: repeated one-shot `read_frame` over the stream.
fn one_shot_frames(stream: &[u8]) -> Vec<Vec<u8>> {
    let mut r = stream;
    let mut frames = Vec::new();
    while let Some(payload) = read_frame(&mut r, DEFAULT_MAX_FRAME_LEN).expect("well-formed") {
        frames.push(payload);
    }
    frames
}

fn drain(decoder: &mut FrameDecoder, out: &mut Vec<Vec<u8>>) {
    while let Some(payload) = decoder.next_frame().expect("well-formed") {
        out.push(payload.to_vec());
    }
}
