//! Analysis layer: a happens-before/SWMR analyzer for executions and
//! a repo-invariant lint.
//!
//! Two halves, sharing nothing but a reporting style:
//!
//! * [`hb`] — a vector-clock happens-before pass over executions of
//!   the shared-memory simulator (and a precedence-level summary for
//!   recorded histories). It verifies the SWMR register discipline the
//!   paper's model assumes (§2.1), detects unordered write–write
//!   races, flags steps performing more than one shared access
//!   (breaking the uniform step-complexity measure of §3.1), and
//!   reports each violation with a replayable
//!   [`ivl_shmem::FixedScheduler`] schedule.
//! * [`lint`] — a dependency-free source lint enforcing repository
//!   invariants that the type system cannot. Since PR 7 it runs on a
//!   real token stream ([`syn`]) rather than regexes: `unsafe` stays
//!   forbidden crate-wide, every atomic access *site* in the
//!   concurrent crate (enclosing `fn`, receiver, method, literal
//!   `Ordering::` arguments) conforms to a per-site discipline table
//!   ([`atomics`]), no CAS-style RMW instructions sneak into the PCM
//!   sketch-cell update paths (the paper's algorithms use only reads,
//!   writes and `fetch_add` on shared cells), hot paths do not hide
//!   `thread::sleep` (and dead `lint:allow` annotations are findings),
//!   and the service wire-protocol frame tags stay unique and
//!   documented.
//! * [`mutate`] — the lint's self-validation harness: mechanically
//!   weakens one ordering at a time in a scratch copy of the
//!   concurrent crate (Release→Relaxed store, Acquire→Relaxed load,
//!   an injected CAS in a PCM update path) and asserts the
//!   conformance pass catches every mutant.
//!
//! All of it is wired into `scripts/verify.sh` and CI via the
//! `ivl_lint` binary (`--json`, `--sites`, `--mutate`) and the test
//! suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atomics;
pub mod hb;
pub mod lint;
pub mod mutate;
pub mod syn;

pub use hb::{
    analyze_config, analyze_steps, history_hb_summary, lease_handoff_step_model, HbFinding,
    HbIssue, HbReport, HistoryHbSummary, RwConflict,
};
pub use lint::{run_lints, LintFinding, LintReport};
pub use mutate::{run_mutations, MutationOutcome, MutationReport};

/// Escapes a string for inclusion in a JSON document (the analyzer
/// renders reports without a serialization dependency).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
