//! `ivl-syn`: a dependency-free Rust lexer and item-level scanner.
//!
//! The lint layer used to be regex-over-text: `Ordering::` substrings
//! in comments and doc examples counted against the audit table, and
//! which ordering appeared where was invisible. This module gives the
//! lints an actual view of the code: a byte-exact token stream
//! (`concat(token texts) == input`, property-tested) that separates
//! code from comments and string literals, plus just enough item
//! structure — enclosing `fn` names and the trailing `#[cfg(test)]`
//! module — for a lint to say *"this atomic access, in this function,
//! in non-test code"*.
//!
//! It is deliberately a lexer, not a parser: no AST, no expression
//! grammar, no macro expansion. Everything the conformance passes in
//! [`crate::atomics`] need is recoverable from the token stream with
//! local pattern matching, in the same vendored-shim spirit as
//! `vendor/proptest` — small, offline, and auditable.

use std::path::Path;

/// Lexical class of one token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// A run of whitespace (including newlines).
    Whitespace,
    /// `// ...` to end of line (doc comments `///` and `//!` too).
    LineComment,
    /// `/* ... */`, nested.
    BlockComment,
    /// A string literal: `"..."`, `b"..."`, `r"..."`, `r#"..."#`, ...
    Str,
    /// A character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A lifetime: `'a`, `'_`, `'static`.
    Lifetime,
    /// An identifier or keyword.
    Ident,
    /// A numeric literal (integer or the leading part of a float).
    Number,
    /// Any single other character.
    Punct,
}

/// One token: its class, the exact source slice, and where it starts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Token<'a> {
    /// Lexical class.
    pub kind: TokKind,
    /// The exact bytes of the token, unmodified.
    pub text: &'a str,
    /// Byte offset of the token's first byte in the source.
    pub lo: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

impl Token<'_> {
    /// Byte offset one past the token's last byte.
    pub fn hi(&self) -> usize {
        self.lo + self.text.len()
    }

    /// Whether this token is code (not whitespace or a comment).
    pub fn is_code(&self) -> bool {
        !matches!(
            self.kind,
            TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
        )
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Cursor over the source's chars, tracking byte offset and line.
struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, nth: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(nth)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Consumes chars while `f` holds.
    fn eat_while(&mut self, f: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&f) {
            self.bump();
        }
    }
}

/// Lexes `src` into a token stream whose concatenated texts reproduce
/// `src` byte-for-byte (every byte lands in exactly one token — the
/// round-trip property `tests/syn_props.rs` exercises).
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let mut cur = Cursor {
        src,
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let lo = cur.pos;
        let line = cur.line;
        let kind = lex_one(&mut cur, c);
        out.push(Token {
            kind,
            text: &src[lo..cur.pos],
            lo,
            line,
        });
    }
    out
}

/// Consumes one token starting at `c`; returns its kind.
fn lex_one(cur: &mut Cursor<'_>, c: char) -> TokKind {
    if c.is_whitespace() {
        cur.eat_while(char::is_whitespace);
        return TokKind::Whitespace;
    }
    if c == '/' {
        match cur.peek_at(1) {
            Some('/') => {
                cur.eat_while(|ch| ch != '\n');
                return TokKind::LineComment;
            }
            Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match cur.bump() {
                        Some('*') if cur.peek() == Some('/') => {
                            cur.bump();
                            depth -= 1;
                        }
                        Some('/') if cur.peek() == Some('*') => {
                            cur.bump();
                            depth += 1;
                        }
                        Some(_) => {}
                        None => break, // unterminated: swallow to EOF
                    }
                }
                return TokKind::BlockComment;
            }
            _ => {}
        }
    }
    // String-ish prefixes: r"...", r#"..."#, b"...", br#"..."#, b'x'.
    if c == 'r' || c == 'b' {
        let (raw_at, quote_at) = if c == 'b' && cur.peek_at(1) == Some('r') {
            (Some(2), None)
        } else if c == 'r' {
            (Some(1), None)
        } else {
            (None, Some(1)) // plain b"..." / b'...'
        };
        if let Some(off) = raw_at {
            // raw (byte) string: hashes then a quote?
            let mut n = off;
            while cur.peek_at(n) == Some('#') {
                n += 1;
            }
            if cur.peek_at(n) == Some('"') {
                let hashes = n - off;
                for _ in 0..=n {
                    cur.bump(); // prefix, hashes and opening quote
                }
                loop {
                    match cur.bump() {
                        Some('"') => {
                            let mut k = 0;
                            while k < hashes && cur.peek() == Some('#') {
                                cur.bump();
                                k += 1;
                            }
                            if k == hashes {
                                break;
                            }
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
                return TokKind::Str;
            }
        }
        if let Some(off) = quote_at {
            match cur.peek_at(off) {
                Some('"') => {
                    cur.bump(); // b
                    return lex_quoted(cur, '"', TokKind::Str);
                }
                Some('\'') => {
                    cur.bump(); // b
                    return lex_quoted(cur, '\'', TokKind::Char);
                }
                _ => {}
            }
        }
        // fall through: plain identifier starting with r/b
    }
    if c == '"' {
        return lex_quoted(cur, '"', TokKind::Str);
    }
    if c == '\'' {
        // Lifetime (`'a`, `'_`) vs char literal (`'x'`, `'\n'`): a
        // lifetime is `'` + ident with no closing quote right after.
        let next = cur.peek_at(1);
        let after = cur.peek_at(2);
        if next.is_some_and(is_ident_start) && after != Some('\'') {
            cur.bump();
            cur.eat_while(is_ident_continue);
            return TokKind::Lifetime;
        }
        return lex_quoted(cur, '\'', TokKind::Char);
    }
    if is_ident_start(c) {
        cur.eat_while(is_ident_continue);
        return TokKind::Ident;
    }
    if c.is_ascii_digit() {
        cur.eat_while(is_ident_continue);
        // A fractional part only if `.` is followed by a digit (so
        // `0..n` and `1.method()` keep their dots as punctuation).
        if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
            cur.bump();
            cur.eat_while(is_ident_continue);
        }
        return TokKind::Number;
    }
    cur.bump();
    TokKind::Punct
}

/// Consumes a quoted literal (opening quote at the cursor), honoring
/// backslash escapes; unterminated literals swallow to EOF.
fn lex_quoted(cur: &mut Cursor<'_>, quote: char, kind: TokKind) -> TokKind {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            Some('\\') => {
                cur.bump();
            }
            Some(ch) if ch == quote => break,
            Some(_) => {}
            None => break,
        }
    }
    kind
}

/// A lexed source file with the item-level facts the lints consume.
#[derive(Clone, Debug)]
pub struct ScannedFile<'a> {
    /// The full token stream (whitespace and comments included).
    pub tokens: Vec<Token<'a>>,
    /// Indices of code tokens (everything but whitespace/comments).
    pub code: Vec<usize>,
    /// For each *code* position (index into `code`), the name of the
    /// innermost enclosing `fn`, or `None` at module level.
    pub enclosing_fn: Vec<Option<&'a str>>,
    /// 1-based line where the trailing `#[cfg(test)]` module starts
    /// (`u32::MAX` when the file has none). By repository convention
    /// tests sit in a single trailing module, so everything at or
    /// after this line is test code.
    pub test_start_line: u32,
}

impl<'a> ScannedFile<'a> {
    /// Lexes and scans one source text.
    pub fn new(src: &'a str) -> Self {
        let tokens = lex(src);
        let code: Vec<usize> = (0..tokens.len()).filter(|&i| tokens[i].is_code()).collect();
        let enclosing_fn = enclosing_fns(&tokens, &code);
        let test_start_line = cfg_test_line(&tokens, &code).unwrap_or(u32::MAX);
        ScannedFile {
            tokens,
            code,
            enclosing_fn,
            test_start_line,
        }
    }

    /// The code token at code-position `ci`.
    pub fn code_tok(&self, ci: usize) -> &Token<'a> {
        &self.tokens[self.code[ci]]
    }

    /// Whether the code token at code-position `ci` is in test code.
    pub fn in_test(&self, ci: usize) -> bool {
        self.code_tok(ci).line >= self.test_start_line
    }
}

/// Computes, for every code position, the innermost enclosing `fn`
/// name, by tracking brace depth: an ident after `fn` becomes the
/// name of the frame opened by the next `{` (a `;` first cancels it —
/// trait method signatures have no body).
fn enclosing_fns<'a>(tokens: &[Token<'a>], code: &[usize]) -> Vec<Option<&'a str>> {
    let mut out = Vec::with_capacity(code.len());
    // Each frame: the fn name if the brace belongs to a fn body.
    let mut stack: Vec<Option<&'a str>> = Vec::new();
    let mut pending_fn: Option<&'a str> = None;
    let mut innermost: Vec<&'a str> = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        let t = &tokens[ti];
        out.push(innermost.last().copied());
        if t.is_ident("fn") {
            if let Some(next) = code.get(ci + 1).map(|&j| &tokens[j]) {
                if next.kind == TokKind::Ident {
                    pending_fn = Some(next.text);
                }
            }
        } else if t.is_punct(';') {
            pending_fn = None;
        } else if t.is_punct('{') {
            let name = pending_fn.take();
            if let Some(n) = name {
                innermost.push(n);
            }
            stack.push(name);
        } else if t.is_punct('}') {
            if let Some(frame) = stack.pop() {
                if frame.is_some() {
                    innermost.pop();
                }
            }
        }
    }
    out
}

/// Line of the first `#[cfg(test)]` attribute (exact token sequence
/// `#` `[` `cfg` `(` `test` `)` `]`), if any.
fn cfg_test_line(tokens: &[Token<'_>], code: &[usize]) -> Option<u32> {
    const WANT: [&str; 7] = ["#", "[", "cfg", "(", "test", ")", "]"];
    'outer: for w in code.windows(WANT.len()) {
        for (&ti, want) in w.iter().zip(WANT.iter()) {
            if tokens[ti].text != *want {
                continue 'outer;
            }
        }
        return Some(tokens[w[0]].line);
    }
    None
}

/// Finds the code-position of the `)`/`]`/`}` matching the opener at
/// code-position `open` (which must hold `(`, `[` or `{`).
pub fn matching_close(file: &ScannedFile<'_>, open: usize) -> Option<usize> {
    let (o, c) = match file.code_tok(open).text {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0usize;
    for ci in open..file.code.len() {
        let t = file.code_tok(ci);
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(ci);
            }
        }
    }
    None
}

/// Finds the code-position of the `(`/`[`/`{` matching the closer at
/// code-position `close` (which must hold `)`, `]` or `}`).
pub fn matching_open(file: &ScannedFile<'_>, close: usize) -> Option<usize> {
    let (o, c) = match file.code_tok(close).text {
        ")" => ('(', ')'),
        "]" => ('[', ']'),
        "}" => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0usize;
    for ci in (0..=close).rev() {
        let t = file.code_tok(ci);
        if t.is_punct(c) {
            depth += 1;
        } else if t.is_punct(o) {
            depth -= 1;
            if depth == 0 {
                return Some(ci);
            }
        }
    }
    None
}

/// Reads and scans a file, returning `None` when it cannot be read.
/// (The caller keeps the source text alive; this is a convenience for
/// the owned-source pattern the lint passes use.)
pub fn read_source(path: &Path) -> Option<String> {
    std::fs::read_to_string(path).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn round_trips_mixed_source() {
        let src = "fn f() -> u64 { /* nest /* ed */ */ let s = \"x\\\"y\"; s.len() as u64 } // t\n";
        let toks = lex(src);
        let joined: String = toks.iter().map(|t| t.text).collect();
        assert_eq!(joined, src);
    }

    #[test]
    fn classifies_comments_strings_chars_lifetimes() {
        let ts = kinds("'a 'x' b'z' r#\"raw\"# // c");
        assert!(ts.contains(&(TokKind::Lifetime, "'a")));
        assert!(ts.contains(&(TokKind::Char, "'x'")));
        assert!(ts.contains(&(TokKind::Char, "b'z'")));
        assert!(ts.contains(&(TokKind::Str, "r#\"raw\"#")));
        assert!(ts.contains(&(TokKind::LineComment, "// c")));
    }

    #[test]
    fn numbers_keep_range_dots_as_punct() {
        let ts = kinds("0..10 1.5 0x1f");
        assert!(ts.contains(&(TokKind::Number, "0")));
        assert!(ts.contains(&(TokKind::Number, "1.5")));
        assert!(ts.contains(&(TokKind::Number, "0x1f")));
        assert_eq!(
            ts.iter()
                .filter(|(k, t)| *k == TokKind::Punct && *t == ".")
                .count(),
            2
        );
    }

    #[test]
    fn enclosing_fn_tracks_nesting_and_test_module() {
        let src = "fn outer() {\n    fn inner() { x(); }\n    y();\n}\n#[cfg(test)]\nmod tests {\n    fn t() { z(); }\n}\n";
        let f = ScannedFile::new(src);
        let fn_at = |name: &str| {
            let ci = (0..f.code.len())
                .find(|&i| f.code_tok(i).is_ident(name))
                .unwrap();
            f.enclosing_fn[ci]
        };
        assert_eq!(fn_at("x"), Some("inner"));
        assert_eq!(fn_at("y"), Some("outer"));
        assert_eq!(fn_at("z"), Some("t"));
        assert_eq!(f.test_start_line, 5);
        let zi = (0..f.code.len())
            .find(|&i| f.code_tok(i).is_ident("z"))
            .unwrap();
        assert!(f.in_test(zi));
        let yi = (0..f.code.len())
            .find(|&i| f.code_tok(i).is_ident("y"))
            .unwrap();
        assert!(!f.in_test(yi));
    }
}
