//! Repo-invariant lint runner.
//!
//! ```text
//! ivl_lint [--root DIR] [--json]
//! ```
//!
//! Exits 0 when every check passes, 1 when any finding is reported,
//! 2 on usage errors. Run from anywhere inside the repository; the
//! root defaults to the nearest ancestor containing `Cargo.toml` with
//! a `[workspace]` table.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: ivl_lint [--root DIR] [--json]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match find_workspace_root(cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no workspace root found; pass --root DIR");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = ivl_analyzer::run_lints(&root);
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
