//! Repo-invariant lint runner.
//!
//! ```text
//! ivl_lint [--root DIR] [--json]            # run all checks
//! ivl_lint [--root DIR] --sites             # print the atomic-site audit rows
//! ivl_lint [--root DIR] [--json] --mutate   # mutation self-validation
//! ```
//!
//! `--sites` regenerates the "Atomic access sites" table rows for
//! `crates/concurrent/ORDERINGS.md` from the code, reusing the
//! discipline tag and justification of every row that still matches —
//! paste the output into the audit table after changing an access.
//!
//! `--mutate` plants weakened-ordering mutants (and one injected CAS)
//! in a scratch tree and verifies the conformance + hazard passes
//! catch every one; see `crates/analyzer/src/mutate.rs`.
//!
//! Exits 0 when every check passes (or every mutant is caught), 1 on
//! findings (or an escaped mutant / dirty baseline), 2 on usage
//! errors. Run from anywhere inside the repository; the root defaults
//! to the nearest ancestor containing `Cargo.toml` with a
//! `[workspace]` table.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut sites = false;
    let mut mutate = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--sites" => sites = true,
            "--mutate" => mutate = true,
            "--help" | "-h" => {
                println!("usage: ivl_lint [--root DIR] [--json] [--sites | --mutate]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    if sites && mutate {
        eprintln!("--sites and --mutate are mutually exclusive");
        return ExitCode::from(2);
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match find_workspace_root(cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no workspace root found; pass --root DIR");
                    return ExitCode::from(2);
                }
            }
        }
    };
    if sites {
        let src_dir = root.join("crates").join("concurrent").join("src");
        let audit_path = root.join("crates").join("concurrent").join("ORDERINGS.md");
        let files = ivl_analyzer::atomics::collect_file_sites(&src_dir);
        if files.is_empty() {
            eprintln!("no sources under {}", src_dir.display());
            return ExitCode::from(2);
        }
        let audit = std::fs::read_to_string(&audit_path).unwrap_or_default();
        let existing = ivl_analyzer::atomics::parse_site_table(&audit);
        print!(
            "{}",
            ivl_analyzer::atomics::render_site_rows(&files, &existing)
        );
        return ExitCode::SUCCESS;
    }
    if mutate {
        let scratch = std::env::temp_dir().join(format!("ivl_lint_mutate_{}", std::process::id()));
        let report = match ivl_analyzer::run_mutations(&root, &scratch) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mutation harness I/O failure: {e}");
                std::fs::remove_dir_all(&scratch).ok();
                return ExitCode::from(2);
            }
        };
        std::fs::remove_dir_all(&scratch).ok();
        if json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.render());
        }
        return if report.is_valid() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    let report = ivl_analyzer::run_lints(&root);
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
