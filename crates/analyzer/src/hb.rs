//! Vector-clock happens-before analysis of simulator executions.
//!
//! The simulator records every scheduled step's shared-memory access
//! footprint ([`StepRecord`]). This pass replays those footprints
//! through per-process vector clocks with release/acquire semantics
//! on atomic registers: a read of register `r` happens-after the
//! latest prior write of `r` (reads-from), a process's steps are
//! totally ordered (program order), and an RMW is both. On top of the
//! resulting partial order it checks the model's discipline:
//!
//! * **SWMR violations** — a `Write` to a register the stepping
//!   process does not own, or an RMW on an owned (single-writer)
//!   register. The paper's model (§2.1) gives every register exactly
//!   one writer; `fetch_add` is reserved for explicitly shared cells.
//! * **Write–write races** — two writes to the same register that are
//!   unordered by happens-before. Impossible under intact SWMR
//!   ownership; their presence is how a planted ownership bug
//!   manifests *behaviourally* rather than structurally.
//! * **Non-atomic steps** — a step performing more than one shared
//!   access, which breaks the uniform step-complexity measure (§3.1)
//!   every theorem counts in.
//!
//! Unordered **read→write conflicts** (a later write unordered with
//! an earlier read of the same register) are reported as a count, not
//! an error: they are exactly the paper's intermediate-read pattern —
//! a reader overlapping an updater is how IVL-but-not-linearizable
//! histories arise (Example 9), so flagging them as errors would flag
//! the object of study.
//!
//! Every finding carries a replayable schedule: the process indices
//! of the execution's steps up to and including the offending one,
//! feedable verbatim to [`FixedScheduler`].

use crate::json_escape;
use ivl_shmem::executor::{RunResult, SimObject, Workload};
use ivl_shmem::{Executor, FixedScheduler, Memory, Scheduler, StepRecord};
use ivl_spec::history::History;
use ivl_spec::ProcessId;
use std::collections::BTreeMap;
use std::fmt::Debug;

/// What went wrong at a step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HbIssue {
    /// A write by a process that does not own the register (or an RMW
    /// on a single-writer register).
    SwmrViolation {
        /// Register index written.
        reg: usize,
        /// The register's owner, if single-writer.
        owner: Option<usize>,
    },
    /// Two happens-before-unordered writes to one register.
    WwRace {
        /// Register index written.
        reg: usize,
        /// Step index of the earlier unordered write.
        other_step: usize,
        /// Process of the earlier unordered write.
        other_process: usize,
    },
    /// A step with more than one shared-memory access.
    NonAtomicStep {
        /// Number of accesses the step performed.
        accesses: usize,
    },
}

impl HbIssue {
    fn kind(&self) -> &'static str {
        match self {
            HbIssue::SwmrViolation { .. } => "swmr-violation",
            HbIssue::WwRace { .. } => "ww-race",
            HbIssue::NonAtomicStep { .. } => "non-atomic-step",
        }
    }
}

/// One error-level finding, anchored to the first offending step.
#[derive(Clone, Debug)]
pub struct HbFinding {
    /// The violation.
    pub issue: HbIssue,
    /// Index of the offending step in the execution.
    pub step: usize,
    /// The process that took the offending step.
    pub process: usize,
    /// Process indices of steps `0..=step`: a [`FixedScheduler`]
    /// script that replays the execution up to the violation.
    pub schedule: Vec<usize>,
}

impl HbFinding {
    /// One-line human rendering.
    pub fn render(&self) -> String {
        let what = match &self.issue {
            HbIssue::SwmrViolation { reg, owner } => match owner {
                Some(o) => format!("wrote register r{reg} owned by process {o}"),
                None => format!("performed an RMW on shared register r{reg} it may not write"),
            },
            HbIssue::WwRace {
                reg,
                other_step,
                other_process,
            } => format!(
                "write to r{reg} races with the write at step {other_step} by process {other_process}"
            ),
            HbIssue::NonAtomicStep { accesses } => {
                format!("performed {accesses} shared accesses in one step (at most 1 allowed)")
            }
        };
        format!(
            "[{}] step {} (process {}): {} — replay schedule {:?}",
            self.issue.kind(),
            self.step,
            self.process,
            what,
            self.schedule
        )
    }
}

/// The first unordered read→write pair, kept for diagnostics.
#[derive(Clone, Debug)]
pub struct RwConflict {
    /// Step index of the earlier read.
    pub read_step: usize,
    /// Process of the earlier read.
    pub reader: usize,
    /// Step index of the unordered later write.
    pub write_step: usize,
    /// Process of the later write.
    pub writer: usize,
    /// Register index.
    pub reg: usize,
    /// Replay schedule through the write step.
    pub schedule: Vec<usize>,
}

/// Outcome of a happens-before pass over one execution.
#[derive(Clone, Debug)]
pub struct HbReport {
    /// Number of processes.
    pub nprocs: usize,
    /// Steps analyzed.
    pub steps: usize,
    /// Error-level findings (empty iff the execution respects the
    /// model's discipline).
    pub findings: Vec<HbFinding>,
    /// Count of unordered read→write pairs (informational: the
    /// intermediate-read pattern IVL exists to license).
    pub rw_conflicts: u64,
    /// The first unordered read→write pair observed, if any.
    pub first_rw_conflict: Option<RwConflict>,
}

impl HbReport {
    /// Whether the execution satisfied SWMR, ordered writes and
    /// one-access steps.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "hb: {} steps, {} processes: {} finding(s), {} unordered read->write pair(s)\n",
            self.steps,
            self.nprocs,
            self.findings.len(),
            self.rw_conflicts
        );
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        if let Some(rw) = &self.first_rw_conflict {
            out.push_str(&format!(
                "[rw-conflict, informational] read of r{} at step {} (process {}) unordered with write at step {} (process {})\n",
                rw.reg, rw.read_step, rw.reader, rw.write_step, rw.writer
            ));
        }
        out
    }

    /// JSON rendering (see README "JSON report schemas").
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                let sched: Vec<String> = f.schedule.iter().map(|p| p.to_string()).collect();
                format!(
                    "{{\"kind\":\"{}\",\"step\":{},\"process\":{},\"detail\":\"{}\",\"schedule\":[{}]}}",
                    f.issue.kind(),
                    f.step,
                    f.process,
                    json_escape(&f.render()),
                    sched.join(",")
                )
            })
            .collect();
        format!(
            "{{\"steps\":{},\"processes\":{},\"clean\":{},\"rw_conflicts\":{},\"findings\":[{}]}}",
            self.steps,
            self.nprocs,
            self.is_clean(),
            self.rw_conflicts,
            findings.join(",")
        )
    }
}

fn leq(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b.iter()).all(|(x, y)| x <= y)
}

fn join(a: &mut [u64], b: &[u64]) {
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x = (*x).max(*y);
    }
}

#[derive(Clone, Debug, Default)]
struct RegState {
    /// Latest write: (step index, process, clock at the write).
    last_write: Option<(usize, usize, Vec<u64>)>,
    /// Latest read per process: (step index, clock at the read).
    last_reads: BTreeMap<usize, (usize, Vec<u64>)>,
}

/// Runs the vector-clock pass over recorded step footprints.
///
/// `owners` is the memory's ownership table
/// ([`Memory::owners`]); `None` entries are shared (RMW-only)
/// registers.
pub fn analyze_steps(
    nprocs: usize,
    steps: &[StepRecord],
    owners: &[Option<ProcessId>],
) -> HbReport {
    let mut clocks: Vec<Vec<u64>> = vec![vec![0; nprocs]; nprocs];
    let mut regs: BTreeMap<usize, RegState> = BTreeMap::new();
    let mut findings: Vec<HbFinding> = Vec::new();
    let mut rw_conflicts = 0u64;
    let mut first_rw: Option<RwConflict> = None;
    let schedule_through =
        |i: usize| -> Vec<usize> { steps[..=i].iter().map(|s| s.process).collect() };

    for (i, st) in steps.iter().enumerate() {
        let p = st.process;
        if st.accesses.len() > 1 {
            findings.push(HbFinding {
                issue: HbIssue::NonAtomicStep {
                    accesses: st.accesses.len(),
                },
                step: i,
                process: p,
                schedule: schedule_through(i),
            });
        }
        // Acquire: reads synchronize with the latest write they
        // observe (execution order = coherence order per register).
        for a in &st.accesses {
            if a.kind.is_read() {
                if let Some(rs) = regs.get(&a.reg.0) {
                    if let Some((_, _, wc)) = &rs.last_write {
                        let wc = wc.clone();
                        join(&mut clocks[p], &wc);
                    }
                }
            }
        }
        clocks[p][p] += 1;
        let now = clocks[p].clone();

        for a in &st.accesses {
            let rs = regs.entry(a.reg.0).or_default();
            if a.kind.is_write() {
                let owner = owners.get(a.reg.0).copied().flatten();
                let violates = if a.kind.is_read() {
                    // RMW: legal only on shared (ownerless) cells.
                    owner.is_some()
                } else {
                    owner != Some(ProcessId(p as u32))
                };
                if violates {
                    findings.push(HbFinding {
                        issue: HbIssue::SwmrViolation {
                            reg: a.reg.0,
                            owner: owner.map(|o| o.0 as usize),
                        },
                        step: i,
                        process: p,
                        schedule: schedule_through(i),
                    });
                }
                if let Some((ws, wp, wc)) = &rs.last_write {
                    if *wp != p && !leq(wc, &now) {
                        findings.push(HbFinding {
                            issue: HbIssue::WwRace {
                                reg: a.reg.0,
                                other_step: *ws,
                                other_process: *wp,
                            },
                            step: i,
                            process: p,
                            schedule: schedule_through(i),
                        });
                    }
                }
                for (&q, (ri, rc)) in rs.last_reads.iter() {
                    if q != p && !leq(rc, &now) {
                        rw_conflicts += 1;
                        if first_rw.is_none() {
                            first_rw = Some(RwConflict {
                                read_step: *ri,
                                reader: q,
                                write_step: i,
                                writer: p,
                                reg: a.reg.0,
                                schedule: schedule_through(i),
                            });
                        }
                    }
                }
                rs.last_write = Some((i, p, now.clone()));
            }
            if a.kind.is_read() {
                rs.last_reads.insert(p, (i, now.clone()));
            }
        }
    }

    HbReport {
        nprocs,
        steps: steps.len(),
        findings,
        rw_conflicts,
        first_rw_conflict: first_rw,
    }
}

/// Executes a configuration under `scheduler` in *detection* mode —
/// ownership enforcement off, lenient (multi-access) steps on, step
/// log enabled — then runs [`analyze_steps`] over what happened.
/// This is how suspect machines are examined: a planted violation
/// executes and is reported (with a replayable schedule) instead of
/// panicking inside the simulator.
pub fn analyze_config<S: Scheduler + Clone>(
    mem: Memory,
    object: Box<dyn SimObject>,
    workloads: Vec<Workload>,
    scheduler: S,
    max_turns: u64,
) -> (HbReport, RunResult) {
    let nprocs = workloads.len();
    let mut exec = Executor::new(mem, object, workloads, scheduler);
    exec.memory_mut().set_enforce_ownership(false);
    exec.set_lenient_steps(true);
    exec.enable_step_log();
    let result = exec.run_bounded(max_turns);
    let report = analyze_steps(nprocs, exec.step_log(), exec.memory().owners());
    (report, result)
}

/// Replays a [`FixedScheduler`] script in detection mode — the
/// round-trip for a finding's `schedule` field.
pub fn replay_schedule(
    mem: Memory,
    object: Box<dyn SimObject>,
    workloads: Vec<Workload>,
    schedule: &[usize],
) -> (HbReport, RunResult) {
    let turns = schedule.len() as u64;
    analyze_config(
        mem,
        object,
        workloads,
        FixedScheduler::new(schedule.to_vec()),
        turns,
    )
}

/// Step-model of the `sharded.rs` lease handoff, for the mutation
/// harness: does the happens-before pass detect the lease-pair
/// ordering being weakened?
///
/// Register 0 is the shard's `in_use` flag, register 1 stands for the
/// shard's cells (the exclusive write access the lease protects).
/// The correct protocol (`weakened = false`):
///
/// 1. p0 writes the shard under its lease,
/// 2. p0 returns the lease — the `store(Release)` of the flag,
/// 3. p1 acquires the lease — the `swap(AcqRel)`, modeled as an RMW
///    whose read half synchronizes with p0's release store,
/// 4. p1 writes the shard under its new lease.
///
/// The reads-from edge at step 3 orders the two shard writes, so the
/// report has no write–write race. With `weakened = true` the swap's
/// acquire half is dropped (a `Relaxed` swap, modeled as a plain
/// write to the flag): no synchronization edge forms and both the
/// flag and the shard exhibit WW races — the behavioural signature of
/// the weakened handoff. Callers should assert on
/// [`HbIssue::WwRace`] findings only: lease-recycled cells have no
/// static owner, so the structural SWMR check does not apply (the
/// model passes ownerless registers and plain writes trip
/// `SwmrViolation` rows that carry no information here).
pub fn lease_handoff_step_model(weakened: bool) -> HbReport {
    use ivl_shmem::{Access, AccessKind, RegisterId};
    let step = |process: usize, reg: usize, kind: AccessKind| StepRecord {
        process,
        accesses: vec![Access {
            reg: RegisterId(reg),
            kind,
        }],
        invoked: None,
        responded: None,
    };
    let acquire_kind = if weakened {
        AccessKind::Write
    } else {
        AccessKind::Rmw
    };
    let steps = [
        step(0, 1, AccessKind::Write), // p0: shard write under lease
        step(0, 0, AccessKind::Write), // p0: lease return (Release)
        step(1, 0, acquire_kind),      // p1: lease acquire (AcqRel swap)
        step(1, 1, AccessKind::Write), // p1: shard write under lease
    ];
    analyze_steps(2, &steps, &[None, None])
}

/// Precedence-level summary of a recorded history (`ivl_check --hb`).
///
/// A history from [`ivl_spec::record::Recorder`] has no memory
/// footprints, so the analysis is at operation granularity: the
/// happens-before order is `≺_H` (response before invocation) plus
/// per-process program order, and the summary quantifies how
/// concurrent the run actually was — the denominators behind any
/// IVL-vs-linearizability verdict on the same file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistoryHbSummary {
    /// Total operations.
    pub operations: usize,
    /// Operations with a response.
    pub completed: usize,
    /// Pending operations.
    pub pending: usize,
    /// Distinct invoking processes.
    pub processes: usize,
    /// Ordered pairs `a ≺_H b`.
    pub precedence_pairs: usize,
    /// Unordered (concurrent) operation pairs.
    pub concurrent_pairs: usize,
    /// Maximum number of simultaneously in-flight operations.
    pub max_overlap: usize,
}

impl HistoryHbSummary {
    /// Human-readable one-liner.
    pub fn render(&self) -> String {
        format!(
            "hb summary: {} ops ({} completed, {} pending) on {} processes; {} precedence pair(s), {} concurrent pair(s), max overlap {}",
            self.operations,
            self.completed,
            self.pending,
            self.processes,
            self.precedence_pairs,
            self.concurrent_pairs,
            self.max_overlap
        )
    }

    /// JSON rendering (see README "JSON report schemas").
    pub fn to_json(&self) -> String {
        format!(
            "{{\"operations\":{},\"completed\":{},\"pending\":{},\"processes\":{},\"precedence_pairs\":{},\"concurrent_pairs\":{},\"max_overlap\":{}}}",
            self.operations,
            self.completed,
            self.pending,
            self.processes,
            self.precedence_pairs,
            self.concurrent_pairs,
            self.max_overlap
        )
    }
}

/// Computes the [`HistoryHbSummary`] of a history.
pub fn history_hb_summary<U, Q, V>(h: &History<U, Q, V>) -> HistoryHbSummary
where
    U: Clone + Debug,
    Q: Clone + Debug,
    V: Clone + Debug,
{
    let ops = h.operations();
    let mut s = HistoryHbSummary {
        operations: ops.len(),
        ..Default::default()
    };
    let mut procs: Vec<u32> = ops.iter().map(|o| o.process.0).collect();
    procs.sort_unstable();
    procs.dedup();
    s.processes = procs.len();
    for o in &ops {
        if o.is_complete() {
            s.completed += 1;
        } else {
            s.pending += 1;
        }
    }
    for (i, a) in ops.iter().enumerate() {
        for (j, b) in ops.iter().enumerate() {
            if i == j {
                continue;
            }
            if a.precedes(b) {
                s.precedence_pairs += 1;
            } else if i < j && a.concurrent_with(b) {
                s.concurrent_pairs += 1;
            }
        }
    }
    // Max overlap: sweep invocation points, counting intervals that
    // contain them.
    for a in &ops {
        let t = a.invoke_index;
        let overlap = ops
            .iter()
            .filter(|b| b.invoke_index <= t && b.respond_index.map(|r| r > t).unwrap_or(true))
            .count();
        s.max_overlap = s.max_overlap.max(overlap);
    }
    s
}
