//! `ivl_lint`: a hand-rolled, dependency-free repository lint.
//!
//! Since PR 7 the engine parses the code, not the text: every pass
//! that inspects Rust sources runs over the [`crate::syn`] token
//! stream, so comments, string literals and the trailing
//! `#[cfg(test)]` module can never trip (or hide) a finding.
//!
//! Nine checks, each encoding an invariant of this repository that
//! the compiler cannot express:
//!
//! 1. **crate-attrs** — every workspace crate's `src/lib.rs` carries
//!    `#![forbid(unsafe_code)]`. The reproduction's claim to model
//!    fidelity rests on there being no backdoor around the memory
//!    model.
//! 2. **atomics-conformance** — the site-level ordering audit (see
//!    [`crate::atomics`]): every atomic access site in
//!    `crates/concurrent` (enclosing `fn`, receiver, method, literal
//!    `Ordering::` arguments) must match a row of the "Atomic access
//!    sites" table in `crates/concurrent/ORDERINGS.md`, each row
//!    tagged with a discipline (`pcm-cell`, `swmr-slot`,
//!    `lease-flag`, `cas-loop`, `monotone-merge`, `id-alloc`) whose
//!    shape rules the row must satisfy. Weakening one ordering at one
//!    site is a finding even when the weaker ordering is legal
//!    elsewhere — `ivl_lint --mutate` proves this has teeth.
//! 3. **rmw-hazard** — the PCM sketch-cell update paths must not use
//!    compare-and-swap style RMWs (`compare_exchange`,
//!    `compare_exchange_weak`, `fetch_update`, `compare_and_swap`).
//!    The paper's counters are built from reads, writes and
//!    `fetch_add` only; a CAS loop in an update path silently changes
//!    the progress guarantee the theorems assume. (`morris_conc.rs` /
//!    `min_register.rs` use CAS-style RMWs by design and are exempt.)
//! 4. **no-sleep** — no `thread::sleep` in non-test server/client
//!    code. Sleeping in a hot path hides backpressure bugs that the
//!    IVL error envelopes would otherwise surface. A deliberate sleep
//!    is annotated `// lint:allow sleep — <reason>` on the same or
//!    preceding line.
//! 5. **stale-allow** — a `lint:allow sleep` annotation with no
//!    `thread::sleep` on its own or the following line is a finding:
//!    dead allows silently widen the exemption surface.
//! 6. **frame-tags** — the wire-protocol tag bytes in
//!    `crates/service/src/protocol.rs` are pairwise distinct within
//!    each namespace (the constant's name prefix: `OP_*` frame
//!    opcodes, `ENV_*` envelope kind tags, ...).
//! 7. **frame-docs** — every `OP_*` opcode constant appears (by its
//!    byte, e.g. `0x14`) in the README's frame table, and (by its
//!    name) in `protocol.rs` test code — the round-trip suite — so
//!    adding an opcode without documenting *and* testing it fails the
//!    lint.
//! 8. **served-objects** — every `impl ServedObject for <Type>` in
//!    `crates/service` has a row in the "Served objects" table of
//!    `crates/concurrent/ORDERINGS.md` naming the concurrent
//!    structure it serves and arguing why its recorded projection is
//!    checkable.
//! 9. **envelope-compose** — every `ErrorEnvelope` variant declared in
//!    `crates/service/src/envelope.rs` appears in the body of
//!    `ErrorEnvelope::compose`, so replicated merges of every kind
//!    stay boundable.
//!
//! The engine is parameterized by the repository root so the test
//! suite (and the mutation harness) can point it at fixture trees
//! with planted violations.

use crate::json_escape;
use crate::syn::{ScannedFile, TokKind, Token};
use std::fs;
use std::path::{Path, PathBuf};

/// The checks, in execution order.
pub const CHECKS: [&str; 9] = [
    "crate-attrs",
    "atomics-conformance",
    "rmw-hazard",
    "no-sleep",
    "stale-allow",
    "frame-tags",
    "frame-docs",
    "served-objects",
    "envelope-compose",
];

/// Files whose update paths must stay free of CAS-style RMWs. The
/// buffered path's flush (`buffered.rs` draining into `arena.rs`
/// cells) is deliberately in scope: batching may defer visibility but
/// must never smuggle in a CAS loop.
pub const RMW_HAZARD_FILES: [&str; 7] = [
    "pcm.rs",
    "sharded.rs",
    "buffered.rs",
    "arena.rs",
    "batch.rs",
    "delegation.rs",
    "locked.rs",
];

/// CAS-style RMW method names flagged by the rmw-hazard check.
const RMW_PATTERNS: [&str; 4] = [
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
    "compare_and_swap",
];

/// Crates whose non-test sources must not sleep.
const NO_SLEEP_CRATES: [&str; 5] = ["service", "bench", "counter", "core", "replica"];

/// One lint violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LintFinding {
    /// Which check fired.
    pub check: &'static str,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: usize,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl LintFinding {
    /// `check file:line message` single-line rendering.
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!("[{}] {}: {}", self.check, self.file, self.message)
        } else {
            format!(
                "[{}] {}:{}: {}",
                self.check, self.file, self.line, self.message
            )
        }
    }
}

/// Outcome of a lint run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LintReport {
    /// All violations found, in check order.
    pub findings: Vec<LintFinding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the repository passed every check.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "ivl_lint: {} file(s) scanned, {} finding(s)\n",
            self.files_scanned,
            self.findings.len()
        );
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        if self.is_clean() {
            out.push_str("all checks passed\n");
        }
        out
    }

    /// JSON rendering (see README "JSON report schemas").
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{{\"check\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                    f.check,
                    json_escape(&f.file),
                    f.line,
                    json_escape(&f.message)
                )
            })
            .collect();
        let checks: Vec<String> = CHECKS.iter().map(|c| format!("\"{c}\"")).collect();
        format!(
            "{{\"clean\":{},\"files_scanned\":{},\"checks\":[{}],\"findings\":[{}]}}",
            self.is_clean(),
            self.files_scanned,
            checks.join(","),
            findings.join(",")
        )
    }
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Collects `.rs` files under `dir`, recursively, in sorted order.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

/// Whether the code-token subsequence starting at code-position `ci`
/// spells out `want` exactly.
fn code_seq_at(file: &ScannedFile<'_>, ci: usize, want: &[&str]) -> bool {
    want.len() <= file.code.len() - ci
        && want
            .iter()
            .enumerate()
            .all(|(k, w)| file.code_tok(ci + k).text == *w)
}

fn check_crate_attrs(root: &Path, report: &mut LintReport) {
    const FORBID: [&str; 8] = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return;
    };
    let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    for dir in dirs.into_iter().filter(|d| d.is_dir()) {
        let lib = dir.join("src").join("lib.rs");
        let Ok(text) = fs::read_to_string(&lib) else {
            continue;
        };
        report.files_scanned += 1;
        let file = ScannedFile::new(&text);
        let found = (0..file.code.len()).any(|ci| code_seq_at(&file, ci, &FORBID));
        if !found {
            report.findings.push(LintFinding {
                check: "crate-attrs",
                file: rel(root, &lib),
                line: 0,
                message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
            });
        }
    }
}

pub(crate) fn check_rmw_hazard(root: &Path, report: &mut LintReport) {
    let src = root.join("crates").join("concurrent").join("src");
    for name in RMW_HAZARD_FILES {
        let path = src.join(name);
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        report.files_scanned += 1;
        let file = ScannedFile::new(&text);
        for ci in 1..file.code.len() {
            let t = file.code_tok(ci);
            if t.kind != TokKind::Ident || !RMW_PATTERNS.contains(&t.text) {
                continue;
            }
            if !file.code_tok(ci - 1).is_punct('.') || file.in_test(ci) {
                continue;
            }
            report.findings.push(LintFinding {
                check: "rmw-hazard",
                file: rel(root, &path),
                line: t.line as usize,
                message: format!(
                    "`{}` in a PCM update path: sketch cells take only load/store/fetch_add (model §2.1); move CAS logic to an exempt module or redesign",
                    t.text
                ),
            });
        }
    }
}

/// `thread::sleep` call lines (token pattern `thread` `::` `sleep`) in
/// non-test code, and `lint:allow sleep` comment lines in non-test
/// code, for one source file.
fn sleep_sites(file: &ScannedFile<'_>) -> (Vec<u32>, Vec<u32>) {
    let mut sleeps = Vec::new();
    for ci in 0..file.code.len().saturating_sub(3) {
        if file.code_tok(ci).is_ident("thread")
            && file.code_tok(ci + 1).is_punct(':')
            && file.code_tok(ci + 2).is_punct(':')
            && file.code_tok(ci + 3).is_ident("sleep")
            && !file.in_test(ci)
        {
            sleeps.push(file.code_tok(ci + 3).line);
        }
    }
    let allows: Vec<u32> = file
        .tokens
        .iter()
        .filter(|t| {
            matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
                && t.text.contains("lint:allow sleep")
                && t.line < file.test_start_line
        })
        .map(|t: &Token<'_>| t.line)
        .collect();
    (sleeps, allows)
}

fn check_no_sleep(root: &Path, report: &mut LintReport) {
    for krate in NO_SLEEP_CRATES {
        let src = root.join("crates").join(krate).join("src");
        for path in rust_files(&src) {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            report.files_scanned += 1;
            let file = ScannedFile::new(&text);
            let (sleeps, allows) = sleep_sites(&file);
            for line in &sleeps {
                let allowed = allows.iter().any(|a| *a == *line || *a + 1 == *line);
                if !allowed {
                    report.findings.push(LintFinding {
                        check: "no-sleep",
                        file: rel(root, &path),
                        line: *line as usize,
                        message: "thread::sleep in a non-test hot path; use real backpressure, or annotate `// lint:allow sleep — <reason>`".to_string(),
                    });
                }
            }
            for a in &allows {
                let live = sleeps.iter().any(|l| *l == *a || *l == *a + 1);
                if !live {
                    report.findings.push(LintFinding {
                        check: "stale-allow",
                        file: rel(root, &path),
                        line: *a as usize,
                        message: "`lint:allow sleep` with no thread::sleep on this or the next line; dead allows widen the exemption surface — delete it".to_string(),
                    });
                }
            }
        }
    }
}

/// `const NAME: u8 = VALUE;` declarations (token-level), as
/// `(name, value, line)`.
fn parse_u8_consts(file: &ScannedFile<'_>) -> Vec<(String, u8, u32)> {
    let mut out = Vec::new();
    for ci in 0..file.code.len() {
        if !file.code_tok(ci).is_ident("const") || file.code.len() - ci < 6 {
            continue;
        }
        let name_t = file.code_tok(ci + 1);
        if name_t.kind != TokKind::Ident
            || !file.code_tok(ci + 2).is_punct(':')
            || !file.code_tok(ci + 3).is_ident("u8")
            || !file.code_tok(ci + 4).is_punct('=')
        {
            continue;
        }
        let value_t = file.code_tok(ci + 5);
        if value_t.kind != TokKind::Number {
            continue;
        }
        let digits = value_t.text.replace('_', "");
        let value = if let Some(hex) = digits
            .strip_prefix("0x")
            .or_else(|| digits.strip_prefix("0X"))
        {
            u8::from_str_radix(hex, 16).ok()
        } else {
            digits.parse::<u8>().ok()
        };
        if let Some(value) = value {
            out.push((name_t.text.to_string(), value, name_t.line));
        }
    }
    out
}

fn check_frame_tags(root: &Path, report: &mut LintReport) {
    let path = root
        .join("crates")
        .join("service")
        .join("src")
        .join("protocol.rs");
    let Ok(text) = fs::read_to_string(&path) else {
        return;
    };
    report.files_scanned += 1;
    let file = ScannedFile::new(&text);
    // A tag byte must be unique within its namespace — the constant's
    // name prefix up to the first `_`. `OP_*` bytes share the frame
    // opcode position; `ENV_*` bytes tag envelope kinds inside an
    // ENVELOPE2 body and may reuse the same small integers without
    // ambiguity.
    let mut seen: Vec<(String, String, u8, u32)> = Vec::new();
    for (name, value, line) in parse_u8_consts(&file) {
        let namespace = name.split('_').next().unwrap_or(&name).to_string();
        if let Some((_, other, _, other_line)) = seen
            .iter()
            .find(|(ns, _, v, _)| *ns == namespace && *v == value)
        {
            report.findings.push(LintFinding {
                check: "frame-tags",
                file: rel(root, &path),
                line: line as usize,
                message: format!(
                    "frame tag {name} = {value:#04x} collides with {other} (line {other_line}); every wire opcode must be unique"
                ),
            });
        }
        seen.push((namespace, name, value, line));
    }
}

/// Cross-checks the `OP_*` opcode constants two ways: every opcode
/// byte must appear (as `0xNN`) in a README frame-table line (a README
/// line starting with `|`), and every opcode constant must be
/// referenced by name from `protocol.rs` test code — the round-trip
/// suite — so a new frame can land neither undocumented nor untested.
fn check_frame_docs(root: &Path, report: &mut LintReport) {
    let path = root
        .join("crates")
        .join("service")
        .join("src")
        .join("protocol.rs");
    let Ok(text) = fs::read_to_string(&path) else {
        return;
    };
    let readme_path = root.join("README.md");
    let readme = fs::read_to_string(&readme_path).unwrap_or_default();
    let file = ScannedFile::new(&text);
    let ops: Vec<(String, u8, u32)> = parse_u8_consts(&file)
        .into_iter()
        .filter(|(name, _, _)| name.starts_with("OP_"))
        .collect();
    if ops.is_empty() {
        return;
    }
    report.files_scanned += 1;
    // Bytes documented in README table rows.
    let mut documented: Vec<u8> = Vec::new();
    for line in readme.lines() {
        let line = line.trim_start();
        if !line.starts_with('|') {
            continue;
        }
        let mut rest = line;
        while let Some(at) = rest.find("0x") {
            let hex: String = rest[at + 2..]
                .chars()
                .take_while(|c| c.is_ascii_hexdigit())
                .collect();
            if let Ok(v) = u8::from_str_radix(&hex, 16) {
                if hex.len() <= 2 {
                    documented.push(v);
                }
            }
            rest = &rest[at + 2..];
        }
    }
    // Opcode names referenced from the file's `#[cfg(test)]` module —
    // the protocol round-trip suite.
    let tested: Vec<&str> = (0..file.code.len())
        .filter(|&ci| file.in_test(ci))
        .map(|ci| file.code_tok(ci).text)
        .filter(|t| t.starts_with("OP_"))
        .collect();
    for (name, value, line) in &ops {
        if !documented.contains(value) {
            report.findings.push(LintFinding {
                check: "frame-docs",
                file: rel(root, &path),
                line: *line as usize,
                message: format!(
                    "opcode {name} = {value:#04x} is not documented in the README frame table; add a row (every wire frame is part of the public protocol)"
                ),
            });
        }
        if !tested.iter().any(|t| t == name) {
            report.findings.push(LintFinding {
                check: "frame-docs",
                file: rel(root, &path),
                line: *line as usize,
                message: format!(
                    "opcode {name} = {value:#04x} is never referenced from protocol.rs test code; cover it in a round-trip test (every wire frame must encode/decode under test)"
                ),
            });
        }
    }
}

/// Parses "Served objects" rows from `ORDERINGS.md`:
/// `| TypeName | kind | argument |` — distinguished from the atomic
/// site rows by the first cell being a bare CamelCase type name
/// rather than a `.rs` file name.
fn parse_served_table(text: &str) -> Vec<(String, String)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line
            .trim_matches('|')
            .split('|')
            .map(|c| c.trim())
            .collect();
        if cells.len() < 3 {
            continue;
        }
        let name = cells[0];
        let is_type_name = name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            && name.chars().all(|c| c.is_alphanumeric() || c == '_');
        if !is_type_name {
            continue;
        }
        rows.push((name.to_string(), cells[2].to_string()));
    }
    rows
}

fn check_served_objects(root: &Path, report: &mut LintReport) {
    let src = root.join("crates").join("service").join("src");
    let audit_path = root.join("crates").join("concurrent").join("ORDERINGS.md");
    // Every `impl ServedObject for <Type>` in the service crate,
    // found on the token stream (a doc example cannot trip it).
    let mut impls: Vec<(String, PathBuf, u32)> = Vec::new();
    for path in rust_files(&src) {
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        report.files_scanned += 1;
        let file = ScannedFile::new(&text);
        for ci in 0..file.code.len().saturating_sub(3) {
            if file.code_tok(ci).is_ident("impl")
                && file.code_tok(ci + 1).is_ident("ServedObject")
                && file.code_tok(ci + 2).is_ident("for")
                && file.code_tok(ci + 3).kind == TokKind::Ident
            {
                let t = file.code_tok(ci + 3);
                impls.push((t.text.to_string(), path.clone(), t.line));
            }
        }
    }
    if impls.is_empty() {
        return;
    }
    let audit = fs::read_to_string(&audit_path).unwrap_or_default();
    let rows = parse_served_table(&audit);
    let audit_rel = rel(root, &audit_path);
    for (name, path, line) in &impls {
        match rows.iter().find(|(t, _)| t == name) {
            None => report.findings.push(LintFinding {
                check: "served-objects",
                file: rel(root, path),
                line: *line as usize,
                message: format!(
                    "`{name}` implements ServedObject but the {audit_rel} \"Served objects\" table has no row for it; add `| {name} | <kind> | <recorded functional & verdict argument> |`"
                ),
            }),
            Some((_, arg)) if arg.is_empty() => report.findings.push(LintFinding {
                check: "served-objects",
                file: rel(root, path),
                line: *line as usize,
                message: format!(
                    "served-objects row for {name} in {audit_rel} has an empty verdict argument"
                ),
            }),
            Some(_) => {}
        }
    }
    for (t, _) in &rows {
        if !impls.iter().any(|(n, _, _)| n == t) {
            report.findings.push(LintFinding {
                check: "served-objects",
                file: audit_rel.clone(),
                line: 0,
                message: format!(
                    "stale served-objects row for {t}: no `impl ServedObject for {t}` left in crates/service"
                ),
            });
        }
    }
}

/// The variant names of `pub enum ErrorEnvelope` and their 1-based
/// declaration lines, parsed from the envelope source text.
fn envelope_variants(text: &str) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut in_enum = false;
    let mut depth = 0usize;
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if !in_enum {
            if t.starts_with("pub enum ErrorEnvelope") {
                in_enum = true;
                depth = 0;
            }
            continue;
        }
        // Only top-level lines of the enum body declare variants;
        // struct-variant fields sit one brace deeper.
        if depth == 0 {
            if t == "}" {
                break;
            }
            if !t.starts_with("///") && !t.starts_with("#[") {
                let name: String = t
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    variants.push((name, i + 1));
                }
            }
        }
        depth += t.matches('{').count();
        depth = depth.saturating_sub(t.matches('}').count());
    }
    variants
}

fn check_envelope_compose(root: &Path, report: &mut LintReport) {
    let path = root
        .join("crates")
        .join("service")
        .join("src")
        .join("envelope.rs");
    let Ok(text) = fs::read_to_string(&path) else {
        return;
    };
    report.files_scanned += 1;
    let variants = envelope_variants(&text);
    if variants.is_empty() {
        return;
    }
    let Some(compose_at) = text.find("fn compose") else {
        report.findings.push(LintFinding {
            check: "envelope-compose",
            file: rel(root, &path),
            line: 0,
            message: "ErrorEnvelope declares variants but has no compose() — merged \
                      replica reads need a composition rule per envelope kind"
                .to_string(),
        });
        return;
    };
    // The compose body: from the fn to the next fn (or end of file).
    let after = &text[compose_at..];
    let body = match after["fn compose".len()..].find("fn ") {
        Some(next) => &after[..next + "fn compose".len()],
        None => after,
    };
    for (name, line) in variants {
        if !body.contains(&name) {
            report.findings.push(LintFinding {
                check: "envelope-compose",
                file: rel(root, &path),
                line,
                message: format!(
                    "`ErrorEnvelope::{name}` has no arm in compose(); every envelope kind \
                     needs a composition rule (and its soundness note in the compose doc) \
                     or replicated merges of this kind cannot be bounded"
                ),
            });
        }
    }
}

/// Runs every check against the repository rooted at `root`.
pub fn run_lints(root: &Path) -> LintReport {
    let mut report = LintReport::default();
    check_crate_attrs(root, &mut report);
    crate::atomics::check_conformance(root, &mut report);
    check_rmw_hazard(root, &mut report);
    check_no_sleep(root, &mut report);
    check_frame_tags(root, &mut report);
    check_frame_docs(root, &mut report);
    check_served_objects(root, &mut report);
    check_envelope_compose(root, &mut report);
    report
}
