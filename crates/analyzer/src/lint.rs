//! `ivl_lint`: a hand-rolled, dependency-free repository lint.
//!
//! Seven checks, each encoding an invariant of this repository that
//! the compiler cannot express:
//!
//! 1. **crate-attrs** — every workspace crate's `src/lib.rs` carries
//!    `#![forbid(unsafe_code)]`. The reproduction's claim to model
//!    fidelity rests on there being no backdoor around the memory
//!    model.
//! 2. **ordering-audit** — every `Ordering::` occurrence in
//!    `crates/concurrent` is accounted for in the checked-in audit
//!    table `crates/concurrent/ORDERINGS.md` (file, occurrence count,
//!    justification). Adding or removing an atomic ordering without
//!    updating the audit fails the lint — the table is how reviewers
//!    know each relaxed access was argued about, not pasted.
//! 3. **rmw-hazard** — the PCM sketch-cell update paths (`pcm.rs`,
//!    `sharded.rs`, `buffered.rs`, `arena.rs`, `delegation.rs`,
//!    `locked.rs`) must not use compare-and-swap style RMWs
//!    (`compare_exchange`, `fetch_update`, `compare_and_swap`). The
//!    paper's counters are built from reads, writes and `fetch_add`
//!    only; a CAS loop in an update path silently changes the
//!    progress guarantee the theorems assume. The buffered flush is
//!    covered, not exempted: propagation is pure `fetch_add`, which
//!    the check permits (`morris_conc.rs` / `min_register.rs` use CAS
//!    by design and are exempt).
//! 4. **no-sleep** — no `thread::sleep` in non-test server/client
//!    code (`crates/service`, `crates/bench`, `crates/counter`,
//!    `crates/core`, `crates/replica`). Sleeping in a hot path hides
//!    backpressure bugs that the IVL error envelopes would otherwise
//!    surface. A deliberate sleep is annotated
//!    `// lint:allow sleep — <reason>` on the same or preceding line.
//! 5. **frame-tags** — the wire-protocol tag bytes in
//!    `crates/service/src/protocol.rs` are pairwise distinct within
//!    each namespace (the constant's name prefix: `OP_*` frame
//!    opcodes, `ENV_*` envelope kind tags, ...).
//! 6. **served-objects** — every `impl ServedObject for <Type>` in
//!    `crates/service` has a row in the "Served objects" table of
//!    `crates/concurrent/ORDERINGS.md` naming the concurrent
//!    structure it serves and arguing why its recorded projection is
//!    checkable. Registering a new object kind without writing down
//!    its verdict argument fails the lint — the per-object IVL
//!    verdicts are only as trustworthy as the functional each object
//!    chooses to record.
//! 7. **envelope-compose** — every `ErrorEnvelope` variant declared in
//!    `crates/service/src/envelope.rs` appears in the body of
//!    `ErrorEnvelope::compose`. The replication layer ships composed
//!    envelopes for merged reads; an envelope kind added without a
//!    composition rule would make `compose` refuse (or worse,
//!    mis-bound) that kind's merged reads, so the arm — and its
//!    soundness argument in the compose doc — must land with the
//!    variant.
//!
//! The engine is parameterized by the repository root so the test
//! suite can point it at fixture trees with planted violations.

use crate::json_escape;
use std::fs;
use std::path::{Path, PathBuf};

/// The checks, in execution order.
pub const CHECKS: [&str; 7] = [
    "crate-attrs",
    "ordering-audit",
    "rmw-hazard",
    "no-sleep",
    "frame-tags",
    "served-objects",
    "envelope-compose",
];

/// Files whose update paths must stay free of CAS-style RMWs. The
/// buffered path's flush (`buffered.rs` draining into `arena.rs`
/// cells) is deliberately in scope: batching may defer visibility but
/// must never smuggle in a CAS loop.
const RMW_HAZARD_FILES: [&str; 6] = [
    "pcm.rs",
    "sharded.rs",
    "buffered.rs",
    "arena.rs",
    "delegation.rs",
    "locked.rs",
];

/// CAS-style RMW method names flagged by the rmw-hazard check.
const RMW_PATTERNS: [&str; 3] = ["compare_exchange", "fetch_update", "compare_and_swap"];

/// Crates whose non-test sources must not sleep.
const NO_SLEEP_CRATES: [&str; 5] = ["service", "bench", "counter", "core", "replica"];

/// One lint violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LintFinding {
    /// Which check fired.
    pub check: &'static str,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: usize,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl LintFinding {
    /// `check file:line message` single-line rendering.
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!("[{}] {}: {}", self.check, self.file, self.message)
        } else {
            format!(
                "[{}] {}:{}: {}",
                self.check, self.file, self.line, self.message
            )
        }
    }
}

/// Outcome of a lint run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LintReport {
    /// All violations found, in check order.
    pub findings: Vec<LintFinding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the repository passed every check.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "ivl_lint: {} file(s) scanned, {} finding(s)\n",
            self.files_scanned,
            self.findings.len()
        );
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        if self.is_clean() {
            out.push_str("all checks passed\n");
        }
        out
    }

    /// JSON rendering (see README "JSON report schemas").
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{{\"check\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                    f.check,
                    json_escape(&f.file),
                    f.line,
                    json_escape(&f.message)
                )
            })
            .collect();
        let checks: Vec<String> = CHECKS.iter().map(|c| format!("\"{c}\"")).collect();
        format!(
            "{{\"clean\":{},\"files_scanned\":{},\"checks\":[{}],\"findings\":[{}]}}",
            self.is_clean(),
            self.files_scanned,
            checks.join(","),
            findings.join(",")
        )
    }
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Collects `.rs` files under `dir`, recursively, in sorted order.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

/// Number of `Ordering::` occurrences in a source text.
fn ordering_occurrences(text: &str) -> usize {
    text.matches("Ordering::").count()
}

/// Line number (1-based) where the file's `#[cfg(test)]` module
/// starts, if any — by repository convention tests sit in a single
/// trailing module, so everything after it is test code.
fn test_module_start(text: &str) -> Option<usize> {
    text.lines()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .map(|i| i + 1)
}

fn check_crate_attrs(root: &Path, report: &mut LintReport) {
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return;
    };
    let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    for dir in dirs.into_iter().filter(|d| d.is_dir()) {
        let lib = dir.join("src").join("lib.rs");
        let Ok(text) = fs::read_to_string(&lib) else {
            continue;
        };
        report.files_scanned += 1;
        if !text.contains("#![forbid(unsafe_code)]") {
            report.findings.push(LintFinding {
                check: "crate-attrs",
                file: rel(root, &lib),
                line: 0,
                message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
            });
        }
    }
}

/// Parses `ORDERINGS.md` audit rows: `| file.rs | count | justification |`.
fn parse_audit_table(text: &str) -> Vec<(String, usize, String)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line
            .trim_matches('|')
            .split('|')
            .map(|c| c.trim())
            .collect();
        if cells.len() < 3 || !cells[0].ends_with(".rs") {
            continue;
        }
        let Ok(count) = cells[1].parse::<usize>() else {
            continue;
        };
        rows.push((cells[0].to_string(), count, cells[2].to_string()));
    }
    rows
}

fn check_ordering_audit(root: &Path, report: &mut LintReport) {
    let src = root.join("crates").join("concurrent").join("src");
    let audit_path = root.join("crates").join("concurrent").join("ORDERINGS.md");
    let files = rust_files(&src);
    if files.is_empty() {
        return;
    }
    let audit = fs::read_to_string(&audit_path).unwrap_or_default();
    let rows = parse_audit_table(&audit);
    let audit_rel = rel(root, &audit_path);

    for path in &files {
        let Ok(text) = fs::read_to_string(path) else {
            continue;
        };
        report.files_scanned += 1;
        let count = ordering_occurrences(&text);
        if count == 0 {
            continue;
        }
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        match rows.iter().find(|(f, _, _)| *f == name) {
            None => report.findings.push(LintFinding {
                check: "ordering-audit",
                file: rel(root, path),
                line: 0,
                message: format!(
                    "{count} Ordering:: use(s) but no audit row in {audit_rel}; add `| {name} | {count} | <justification> |`"
                ),
            }),
            Some((_, audited, _)) if *audited != count => report.findings.push(LintFinding {
                check: "ordering-audit",
                file: rel(root, path),
                line: 0,
                message: format!(
                    "{count} Ordering:: use(s) but {audit_rel} audits {audited}; re-justify and update the row"
                ),
            }),
            Some((_, _, just)) if just.is_empty() => report.findings.push(LintFinding {
                check: "ordering-audit",
                file: rel(root, path),
                line: 0,
                message: format!("audit row in {audit_rel} has an empty justification"),
            }),
            Some(_) => {}
        }
    }
    // Stale rows: audited files that no longer exist or no longer use
    // atomics.
    for (f, _, _) in &rows {
        let exists = files.iter().any(|p| {
            p.file_name().unwrap_or_default().to_string_lossy() == *f
                && fs::read_to_string(p)
                    .map(|t| ordering_occurrences(&t) > 0)
                    .unwrap_or(false)
        });
        if !exists {
            report.findings.push(LintFinding {
                check: "ordering-audit",
                file: audit_rel.clone(),
                line: 0,
                message: format!("stale audit row for {f}: file gone or no Ordering:: uses left"),
            });
        }
    }
}

fn check_rmw_hazard(root: &Path, report: &mut LintReport) {
    let src = root.join("crates").join("concurrent").join("src");
    for name in RMW_HAZARD_FILES {
        let path = src.join(name);
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        report.files_scanned += 1;
        for (i, line) in text.lines().enumerate() {
            let code = line.split("//").next().unwrap_or(line);
            for pat in RMW_PATTERNS {
                if code.contains(pat) {
                    report.findings.push(LintFinding {
                        check: "rmw-hazard",
                        file: rel(root, &path),
                        line: i + 1,
                        message: format!(
                            "`{pat}` in a PCM update path: sketch cells take only load/store/fetch_add (model §2.1); move CAS logic to an exempt module or redesign"
                        ),
                    });
                }
            }
        }
    }
}

fn check_no_sleep(root: &Path, report: &mut LintReport) {
    for krate in NO_SLEEP_CRATES {
        let src = root.join("crates").join(krate).join("src");
        for path in rust_files(&src) {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            report.files_scanned += 1;
            let test_start = test_module_start(&text).unwrap_or(usize::MAX);
            let lines: Vec<&str> = text.lines().collect();
            for (i, line) in lines.iter().enumerate() {
                let lineno = i + 1;
                if lineno >= test_start {
                    break; // trailing test module
                }
                let code = line.split("//").next().unwrap_or(line);
                if !code.contains("thread::sleep") {
                    continue;
                }
                let allowed = line.contains("lint:allow sleep")
                    || (i > 0 && lines[i - 1].contains("lint:allow sleep"));
                if !allowed {
                    report.findings.push(LintFinding {
                        check: "no-sleep",
                        file: rel(root, &path),
                        line: lineno,
                        message: "thread::sleep in a non-test hot path; use real backpressure, or annotate `// lint:allow sleep — <reason>`".to_string(),
                    });
                }
            }
        }
    }
}

fn check_frame_tags(root: &Path, report: &mut LintReport) {
    let path = root
        .join("crates")
        .join("service")
        .join("src")
        .join("protocol.rs");
    let Ok(text) = fs::read_to_string(&path) else {
        return;
    };
    report.files_scanned += 1;
    // (namespace, name, value, line): a tag byte must be unique within
    // its namespace — the constant's name prefix up to the first `_`.
    // `OP_*` bytes share the frame-opcode position; `ENV_*` bytes tag
    // envelope kinds inside an ENVELOPE2 body and may reuse the same
    // small integers without ambiguity.
    let mut seen: Vec<(String, String, u8, usize)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        let Some(rest) = t
            .strip_prefix("const ")
            .or_else(|| t.strip_prefix("pub const "))
        else {
            continue;
        };
        let Some((name, tail)) = rest.split_once(':') else {
            continue;
        };
        let namespace = name.split('_').next().unwrap_or(name).to_string();
        let tail = tail.trim_start();
        let Some(value_txt) = tail.strip_prefix("u8 =") else {
            continue;
        };
        let value_txt = value_txt.trim().trim_end_matches(';').trim();
        let value = if let Some(hex) = value_txt.strip_prefix("0x") {
            u8::from_str_radix(hex, 16).ok()
        } else {
            value_txt.parse::<u8>().ok()
        };
        let Some(value) = value else { continue };
        if let Some((_, other, _, other_line)) = seen
            .iter()
            .find(|(ns, _, v, _)| *ns == namespace && *v == value)
        {
            report.findings.push(LintFinding {
                check: "frame-tags",
                file: rel(root, &path),
                line: i + 1,
                message: format!(
                    "frame tag {name} = {value:#04x} collides with {other} (line {other_line}); every wire opcode must be unique"
                ),
            });
        }
        seen.push((namespace, name.trim().to_string(), value, i + 1));
    }
}

/// Parses "Served objects" rows from `ORDERINGS.md`:
/// `| TypeName | kind | argument |` — distinguished from the ordering
/// audit rows by the first cell being a bare CamelCase type name
/// rather than a `.rs` file name.
fn parse_served_table(text: &str) -> Vec<(String, String)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line
            .trim_matches('|')
            .split('|')
            .map(|c| c.trim())
            .collect();
        if cells.len() < 3 {
            continue;
        }
        let name = cells[0];
        let is_type_name = name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            && name.chars().all(|c| c.is_alphanumeric() || c == '_');
        if !is_type_name {
            continue;
        }
        rows.push((name.to_string(), cells[2].to_string()));
    }
    rows
}

fn check_served_objects(root: &Path, report: &mut LintReport) {
    let src = root.join("crates").join("service").join("src");
    let audit_path = root.join("crates").join("concurrent").join("ORDERINGS.md");
    // Every `impl ServedObject for <Type>` in the service crate.
    let mut impls: Vec<(String, PathBuf, usize)> = Vec::new();
    for path in rust_files(&src) {
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        report.files_scanned += 1;
        for (i, line) in text.lines().enumerate() {
            let Some(rest) = line.trim().strip_prefix("impl ServedObject for ") else {
                continue;
            };
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                impls.push((name, path.clone(), i + 1));
            }
        }
    }
    if impls.is_empty() {
        return;
    }
    let audit = fs::read_to_string(&audit_path).unwrap_or_default();
    let rows = parse_served_table(&audit);
    let audit_rel = rel(root, &audit_path);
    for (name, path, line) in &impls {
        match rows.iter().find(|(t, _)| t == name) {
            None => report.findings.push(LintFinding {
                check: "served-objects",
                file: rel(root, path),
                line: *line,
                message: format!(
                    "`{name}` implements ServedObject but the {audit_rel} \"Served objects\" table has no row for it; add `| {name} | <kind> | <recorded functional & verdict argument> |`"
                ),
            }),
            Some((_, arg)) if arg.is_empty() => report.findings.push(LintFinding {
                check: "served-objects",
                file: rel(root, path),
                line: *line,
                message: format!(
                    "served-objects row for {name} in {audit_rel} has an empty verdict argument"
                ),
            }),
            Some(_) => {}
        }
    }
    for (t, _) in &rows {
        if !impls.iter().any(|(n, _, _)| n == t) {
            report.findings.push(LintFinding {
                check: "served-objects",
                file: audit_rel.clone(),
                line: 0,
                message: format!(
                    "stale served-objects row for {t}: no `impl ServedObject for {t}` left in crates/service"
                ),
            });
        }
    }
}

/// The variant names of `pub enum ErrorEnvelope` and their 1-based
/// declaration lines, parsed from the envelope source text.
fn envelope_variants(text: &str) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut in_enum = false;
    let mut depth = 0usize;
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if !in_enum {
            if t.starts_with("pub enum ErrorEnvelope") {
                in_enum = true;
                depth = 0;
            }
            continue;
        }
        // Only top-level lines of the enum body declare variants;
        // struct-variant fields sit one brace deeper.
        if depth == 0 {
            if t == "}" {
                break;
            }
            if !t.starts_with("///") && !t.starts_with("#[") {
                let name: String = t
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    variants.push((name, i + 1));
                }
            }
        }
        depth += t.matches('{').count();
        depth = depth.saturating_sub(t.matches('}').count());
    }
    variants
}

fn check_envelope_compose(root: &Path, report: &mut LintReport) {
    let path = root
        .join("crates")
        .join("service")
        .join("src")
        .join("envelope.rs");
    let Ok(text) = fs::read_to_string(&path) else {
        return;
    };
    report.files_scanned += 1;
    let variants = envelope_variants(&text);
    if variants.is_empty() {
        return;
    }
    let Some(compose_at) = text.find("fn compose") else {
        report.findings.push(LintFinding {
            check: "envelope-compose",
            file: rel(root, &path),
            line: 0,
            message: "ErrorEnvelope declares variants but has no compose() — merged \
                      replica reads need a composition rule per envelope kind"
                .to_string(),
        });
        return;
    };
    // The compose body: from the fn to the next fn (or end of file).
    let after = &text[compose_at..];
    let body = match after["fn compose".len()..].find("fn ") {
        Some(next) => &after[..next + "fn compose".len()],
        None => after,
    };
    for (name, line) in variants {
        if !body.contains(&name) {
            report.findings.push(LintFinding {
                check: "envelope-compose",
                file: rel(root, &path),
                line,
                message: format!(
                    "`ErrorEnvelope::{name}` has no arm in compose(); every envelope kind \
                     needs a composition rule (and its soundness note in the compose doc) \
                     or replicated merges of this kind cannot be bounded"
                ),
            });
        }
    }
}

/// Runs every check against the repository rooted at `root`.
pub fn run_lints(root: &Path) -> LintReport {
    let mut report = LintReport::default();
    check_crate_attrs(root, &mut report);
    check_ordering_audit(root, &mut report);
    check_rmw_hazard(root, &mut report);
    check_no_sleep(root, &mut report);
    check_frame_tags(root, &mut report);
    check_served_objects(root, &mut report);
    check_envelope_compose(root, &mut report);
    report
}
